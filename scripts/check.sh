#!/usr/bin/env bash
# Full validation pipeline for the FlatStore reproduction — the same gate
# CI runs (.github/workflows/ci.yml). Everything is --offline: the
# workspace has no registry dependencies (std-only shims under shims/).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== format =="
cargo fmt --all -- --check

echo "== build (release) =="
cargo build --release --workspace --all-targets --offline

echo "== clippy =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== pmlint (persistence-discipline lint) =="
cargo run --release --offline -p pmlint

echo "== pmcheck strict mode (real paths, zero violations) =="
cargo test -p pmcheck -q --offline

echo "== racecheck (interleaving explorer over the fabric protocols) =="
cargo test -p racecheck -q --offline

echo "== racecheck stays out of release artifacts =="
# The model layer is compiled into the fabric crates only under
# `cfg(racecheck)`; the cfg must never leak outside the checker's crate.
if grep -rn 'cfg(racecheck)' crates shims --include='*.rs' \
        | grep -v '^crates/racecheck/'; then
    echo "cfg(racecheck) found outside crates/racecheck"
    exit 1
fi

echo "== tests (unit + integration + property) =="
cargo test --workspace -q --offline

echo "== cluster gate (routing, migration, fault injection) =="
cargo test -p flatclus -q --offline

echo "== stats_report schema gate (emit -> parse -> re-emit byte-identical) =="
cargo test -p flatstore --test schema_roundtrip -q --offline

echo "== docs (warnings are errors) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline

echo "== session smoke: pipelined sessions fill HB batches =="
cargo run --release --offline --example session_pipeline

echo "== replication smoke: failover, promotion, catch-up =="
cargo run --release --offline --example replicated_failover

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT

echo "== wire smoke: flatsrv + flatload ETC over a unix socket =="
sock="$tmpdir/flatsrv.sock"
./target/release/flatsrv --unix "$sock" --quiet &
srv_pid=$!
for _ in $(seq 50); do [ -S "$sock" ] && break; sleep 0.1; done
[ -S "$sock" ] || { echo "flatsrv never bound $sock"; exit 1; }
# 50k ETC ops over 4 pipelined connections; the run fails unless every
# command succeeds AND the engine's mean HB batch stays > 1 — i.e. real
# sockets still fill horizontal batches. --shutdown then exercises the
# drain path; the server must exit cleanly.
./target/release/flatload --unix "$sock" --conns 4 --depth 8 \
    --ops 50000 --assert-batch-gt 1.0 --shutdown
wait "$srv_pid"

echo "== observability smoke: simulate with exporters =="
cargo run --release --offline --example simulate -- \
    --metrics-out "$tmpdir/metrics.json" --trace-out "$tmpdir/trace.json"
test -s "$tmpdir/metrics.json"
test -s "$tmpdir/trace.json"

echo "== smoke-scale figures =="
FLATBENCH_QUICK=1 cargo bench --workspace --offline

echo "== BENCH trajectory smoke (tracing-overhead harness) =="
FLATBENCH_QUICK=1 scripts/bench.sh

echo "== BENCH wire-transport smoke (in-process / tcp / unix) =="
FLATBENCH_QUICK=1 scripts/bench.sh --wire

echo "== BENCH cluster smoke (throughput vs groups + migration pause) =="
FLATBENCH_QUICK=1 scripts/bench.sh --cluster

echo "== BENCH adaptive-batching smoke (static sizes vs self-tuning) =="
FLATBENCH_QUICK=1 scripts/bench.sh --tuner

echo "All checks passed."
