#!/usr/bin/env bash
# Full validation pipeline for the FlatStore reproduction.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build =="
cargo build --workspace --all-targets

echo "== clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tests (unit + integration + property) =="
cargo test --workspace

echo "== docs =="
cargo doc --workspace --no-deps

echo "== smoke-scale figures =="
FLATBENCH_QUICK=1 cargo bench --workspace

echo "All checks passed."
