#!/usr/bin/env bash
# ThreadSanitizer sweep over the fabric hot path.
#
# racecheck (crates/racecheck) explores *extracted models* of the
# concurrency protocols exhaustively; TSan complements it by watching the
# *real* code race-detect itself under whatever interleavings the OS
# happens to produce. Neither subsumes the other, so CI runs both — this
# one non-blocking, because it needs a nightly toolchain with rust-src
# (`-Zsanitizer=thread` must rebuild std instrumented via -Zbuild-std).
#
# Usage: scripts/tsan.sh
# Exits 0 with a notice when the nightly prerequisites are missing.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "tsan.sh: no nightly toolchain installed — skipping (racecheck still gates)."
    exit 0
fi
if ! rustup component list --toolchain nightly 2>/dev/null \
        | grep -q 'rust-src.*(installed)'; then
    echo "tsan.sh: nightly rust-src not installed — skipping (racecheck still gates)."
    exit 0
fi

host="$(rustc -vV | sed -n 's/^host: //p')"

export RUSTFLAGS="-Zsanitizer=thread ${RUSTFLAGS:-}"
# Suppress allocation-heavy interceptor noise in histograms; fail on the
# first reported race.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

run() {
    echo "== tsan: $* =="
    cargo +nightly test --offline -Zbuild-std --target "$host" "$@" -- --test-threads=2
}

# The protocols racecheck models, exercised end-to-end in real code: the
# SPSC ring and client port fabric, completion fulfil/poll and per-key
# gates (session tests), and the cache fill-vs-invalidate path.
run -p flatrpc
run -p flatstore --test session_tests
run -p flatstore --test cache_tests

echo "tsan.sh: all suites clean."
