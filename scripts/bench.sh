#!/usr/bin/env bash
# BENCH trajectory runner.
#
#   scripts/bench.sh              # BENCH_6.json: tracing-overhead trajectory
#                                 #   at the pinned full scale (deterministic
#                                 #   DES — reproduces bit-for-bit anywhere)
#   scripts/bench.sh --wire       # BENCH_7.json: flatload --compare, the
#                                 #   in-process / loopback-TCP / Unix-socket
#                                 #   three-way (wall-clock: machine-dependent)
#   scripts/bench.sh --cluster    # BENCH_9.json: throughput vs 1/2/4 replica
#                                 #   groups (DES) + live-migration pause p99
#                                 #   vs ship window on the real engine
#   scripts/bench.sh --tuner      # BENCH_10.json: static group sizes vs the
#                                 #   adaptive batching controller across key
#                                 #   skew (deterministic DES)
#   FLATBENCH_QUICK=1 scripts/bench.sh [--wire|--cluster|--tuner]  # CI smoke:
#                                 #   small scale, tmp output
set -euo pipefail
cd "$(dirname "$0")/.."

quick="${FLATBENCH_QUICK:-0}"
mode="${1:-trajectory}"

if [ "$mode" = "--wire" ]; then
    if [ "$quick" != "0" ]; then
        out="${FLATBENCH_OUT:-$(mktemp -d)/BENCH_7.json}"
        ops=20000
    else
        out="${FLATBENCH_OUT:-$PWD/BENCH_7.json}"
        ops=200000
    fi
    cargo build --release --offline -p flatsrv
    ./target/release/flatload --compare --conns 4 --depth 8 \
        --ops "$ops" --keyspace 10000 --put-ratio 0.1 --seed 42 \
        --out "$out"
    test -s "$out"
    echo "wire transport bench at $out"
    exit 0
fi

if [ "$mode" = "--cluster" ]; then
    if [ "$quick" != "0" ]; then
        out="${FLATBENCH_OUT:-$(mktemp -d)/BENCH_9.json}"
    else
        out="${FLATBENCH_OUT:-$PWD/BENCH_9.json}"
    fi
    FLATBENCH_OUT="$out" cargo bench -p flatstore-bench --bench cluster9 --offline
    test -s "$out"
    echo "cluster bench at $out"
    exit 0
fi

if [ "$mode" = "--tuner" ]; then
    if [ "$quick" != "0" ]; then
        out="${FLATBENCH_OUT:-$(mktemp -d)/BENCH_10.json}"
    else
        out="${FLATBENCH_OUT:-$PWD/BENCH_10.json}"
    fi
    FLATBENCH_OUT="$out" cargo bench -p flatstore-bench --bench tuner10 --offline
    test -s "$out"
    echo "adaptive batching bench at $out"
    exit 0
fi

if [ "$quick" != "0" ]; then
    # Smoke mode: exercise the harness end-to-end but do not clobber the
    # committed full-scale trajectory.
    out="${FLATBENCH_OUT:-$(mktemp -d)/BENCH_6.json}"
else
    out="${FLATBENCH_OUT:-$PWD/BENCH_6.json}"
fi

FLATBENCH_OUT="$out" cargo bench -p flatstore-bench --bench trajectory --offline

test -s "$out"
echo "bench trajectory at $out"
