#!/usr/bin/env bash
# BENCH trajectory runner — regenerates BENCH_6.json at the pinned
# full scale (200k keys / 120k ops / 36 cores / 288 clients, the same
# defaults every figure harness uses). The DES is deterministic, so the
# committed file reproduces bit-for-bit on any machine.
#
#   scripts/bench.sh              # full scale, writes BENCH_6.json
#   FLATBENCH_QUICK=1 scripts/bench.sh   # CI smoke: small scale, tmp output
set -euo pipefail
cd "$(dirname "$0")/.."

quick="${FLATBENCH_QUICK:-0}"
if [ "$quick" != "0" ]; then
    # Smoke mode: exercise the harness end-to-end but do not clobber the
    # committed full-scale trajectory.
    out="${FLATBENCH_OUT:-$(mktemp -d)/BENCH_6.json}"
else
    out="${FLATBENCH_OUT:-$PWD/BENCH_6.json}"
fi

FLATBENCH_OUT="$out" cargo bench -p flatstore-bench --bench trajectory --offline

test -s "$out"
echo "bench trajectory at $out"
