//! Umbrella crate for the FlatStore reproduction (Chen et al., ASPLOS'20).
//!
//! This workspace implements the paper's full system and evaluation stack:
//!
//! | Crate | Role |
//! |---|---|
//! | [`pmem`] | simulated persistent memory + Optane cost model |
//! | [`pmalloc`] | lazy-persist allocator (4 MB chunks, size classes) |
//! | [`oplog`] | compacted operation log (16 B entries, batched appends) |
//! | [`indexes`] | CCEH, Level-Hashing, FAST&FAIR, FPTree baselines |
//! | [`masstree`] | concurrent ordered index for FlatStore-M |
//! | [`flatstore`] | the engine: pipelined horizontal batching, GC, recovery |
//! | [`simkv`] | discrete-event evaluation testbed (regenerates §5) |
//! | [`workloads`] | YCSB + Facebook-ETC workload generators |
//!
//! See `README.md` for a tour, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for paper-vs-measured results. Runnable examples live
//! in `examples/` (`cargo run --release --example quickstart`).

pub use flatstore::{Config, ExecutionModel, FlatStore, GcConfig, IndexKind, StoreError};
