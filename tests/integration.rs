//! Cross-crate integration tests: the full stack (workload generators →
//! engine → PM substrate → recovery) exercised end to end.

use std::collections::HashMap;

use flatstore::{Config, ExecutionModel, FlatStore, IndexKind};
use workloads::{value_bytes, EtcWorkload, KeyDist, Op, Workload};

fn cfg() -> Config {
    Config::builder()
        .pm_bytes(192 << 20)
        .dram_bytes(16 << 20)
        .ncores(3)
        .group_size(3)
        .build()
        .expect("valid test config")
}

/// Replays a YCSB-style script through the engine and checks the final
/// state against a model map.
#[test]
fn ycsb_workload_matches_model() {
    let store = FlatStore::create(cfg()).unwrap();
    let mut gen = Workload::new(2_000, KeyDist::Zipfian { theta: 0.99 }, 48, 0.7, 11);
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut serial = 0u64;
    for _ in 0..20_000 {
        match gen.next_op() {
            Op::Put { key, value_len } => {
                serial += 1;
                let v = value_bytes(key ^ serial, value_len);
                store.put(key, &v).unwrap();
                model.insert(key, v);
            }
            Op::Get { key } => {
                assert_eq!(store.get(key).unwrap(), model.get(&key).cloned());
            }
            Op::Delete { key } => {
                assert_eq!(store.delete(key).unwrap(), model.remove(&key).is_some());
            }
        }
    }
    store.barrier();
    assert_eq!(store.len(), model.len());
    for (k, v) in &model {
        assert_eq!(store.get(*k).unwrap().as_deref(), Some(v.as_slice()));
    }
}

/// The ETC trimodal mix (inline + allocator paths interleaved) survives a
/// crash with exactly the acknowledged state.
#[test]
fn etc_mix_survives_crash() {
    let mut c = cfg();
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    let keyspace = 3_000u64;
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    let mut gen = EtcWorkload::new(keyspace, 1.0, 5);
    for round in 0..15_000u64 {
        if let Op::Put { key, value_len } = gen.next_op() {
            let v = value_bytes(key.wrapping_add(round), value_len);
            store.put(key, &v).unwrap();
            model.insert(key, v);
        }
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();

    let store = FlatStore::open(pm, c).unwrap();
    assert_eq!(store.len(), model.len());
    for (k, v) in &model {
        assert_eq!(
            store.get(*k).unwrap().as_deref(),
            Some(v.as_slice()),
            "key {k}"
        );
    }
}

/// Two crash/recover cycles back to back (recovery state is itself
/// recoverable).
#[test]
fn double_crash_recovery() {
    let mut c = cfg();
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..500u64 {
        store.put(k, value_bytes(k, 120)).unwrap();
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();

    let store = FlatStore::open(pm, c.clone()).unwrap();
    for k in 500..800u64 {
        store.put(k, value_bytes(k, 120)).unwrap();
    }
    store.delete(0).unwrap();
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();

    let store = FlatStore::open(pm, c).unwrap();
    assert_eq!(store.len(), 799);
    assert_eq!(store.get(0).unwrap(), None);
    for k in 1..800u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 120)));
    }
}

/// Clean shutdown → reopen → crash → reopen: both recovery paths compose.
#[test]
fn clean_then_crash_paths_compose() {
    let mut c = cfg();
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..400u64 {
        store.put(k, value_bytes(k, 200)).unwrap();
    }
    let pm = store.shutdown().unwrap();

    let store = FlatStore::open(pm, c.clone()).unwrap();
    for k in 0..200u64 {
        store.put(k, value_bytes(k + 1, 500)).unwrap();
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();

    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..400u64 {
        let expect = if k < 200 {
            value_bytes(k + 1, 500)
        } else {
            value_bytes(k, 200)
        };
        assert_eq!(store.get(k).unwrap(), Some(expect), "key {k}");
    }
}

/// Ordered index + workload mix: range results always reflect a quiesced
/// prefix of operations.
#[test]
fn ordered_index_full_stack() {
    let mut c = cfg();
    c.index = IndexKind::Masstree;
    c.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(c).unwrap();
    for k in (0..1_000u64).step_by(2) {
        store.put(k, value_bytes(k, 33)).unwrap();
    }
    store.barrier();
    let rows = store.range(100, 200, 1000).unwrap();
    assert_eq!(rows.len(), 50);
    assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
    for (k, v) in rows {
        assert_eq!(v, value_bytes(k, 33));
    }
}

/// The DES testbed and the real engine agree on semantics: the sim is a
/// performance model, but its FlatStore runs the same library code, so a
/// basic run must complete with sensible metrics.
#[test]
fn sim_and_engine_agree_on_batching_effect() {
    use simkv::{Engine, ExecModel, SimConfig, SimIndex};
    let mk = |model| SimConfig {
        engine: Engine::FlatStore {
            model,
            index: SimIndex::Hash,
        },
        ncores: 4,
        group_size: 4,
        clients: 64,
        keyspace: 10_000,
        ops: 15_000,
        warmup: 1_500,
        ..SimConfig::default()
    };
    let pipelined = simkv::run(&mk(ExecModel::PipelinedHb));
    let nonbatch = simkv::run(&mk(ExecModel::NonBatch));
    assert!(
        pipelined.mops > nonbatch.mops,
        "batching must win: {} vs {}",
        pipelined.mops,
        nonbatch.mops
    );
    assert!(pipelined.avg_batch > 1.5);
}
