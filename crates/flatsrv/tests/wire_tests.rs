//! End-to-end wire tests: a real engine behind a real Unix socket,
//! spoken to with raw RESP bytes — command semantics, pipelined reply
//! order, connection churn back to baseline, the slow-consumer bound,
//! and the malformed corpus against a live server.

use std::io::{ErrorKind, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use flatsrv::resp::{self, Reply};
use flatsrv::server::{Listener, Server, ServerOpts, StatsSource};
use flatstore::{Config, ExecutionModel, FlatStore, IndexKind};
use obs::Json;

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

struct TestServer {
    server: Option<Server>,
    store: Arc<FlatStore>,
    path: PathBuf,
}

impl TestServer {
    fn boot(opts: ServerOpts) -> TestServer {
        let mut cfg = Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .pipeline_depth(8)
            .index(IndexKind::Masstree)
            .build()
            .expect("valid test config");
        cfg.model = ExecutionModel::PipelinedHb;
        let store = Arc::new(FlatStore::create(cfg).expect("boot store"));
        let path = std::env::temp_dir().join(format!(
            "flatsrv-wire-{}-{}.sock",
            std::process::id(),
            SOCK_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_file(&path);
        let listener = std::os::unix::net::UnixListener::bind(&path).expect("bind unix socket");
        let st = Arc::clone(&store);
        let stats_src: StatsSource = Arc::new(move || st.stats_report().to_json());
        let server = Server::start(
            store.handle(),
            stats_src,
            vec![Listener::Unix(listener)],
            opts,
        )
        .expect("start server");
        TestServer {
            server: Some(server),
            store,
            path,
        }
    }

    fn connect(&self) -> Client {
        let s = UnixStream::connect(&self.path).expect("connect");
        s.set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        Client {
            s,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn server(&self) -> &Server {
        self.server.as_ref().expect("server running")
    }

    fn clients_attached(&self) -> f64 {
        let report = self.store.stats_report().to_json();
        let json = Json::parse(&report).expect("report parses");
        json.get("sections")
            .and_then(|s| s.get("fabric"))
            .and_then(|f| f.get("clients_attached"))
            .and_then(|v| v.as_f64())
            .expect("fabric.clients_attached present")
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.stop();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

struct Client {
    s: UnixStream,
    buf: Vec<u8>,
    pos: usize,
}

impl Client {
    fn send(&mut self, bytes: &[u8]) {
        self.s.write_all(bytes).expect("send");
    }

    fn cmd(&mut self, argv: &[&[u8]]) {
        let argv: Vec<Vec<u8>> = argv.iter().map(|a| a.to_vec()).collect();
        self.send(&resp::command(&argv));
    }

    /// Reads one reply; panics on timeout or malformed bytes.
    fn reply(&mut self) -> Reply {
        loop {
            if let Some((r, used)) = resp::parse_reply(&self.buf[self.pos..]).expect("reply frame")
            {
                self.pos += used;
                return r;
            }
            let mut chunk = [0u8; 8192];
            match self.s.read(&mut chunk) {
                Ok(0) => panic!("server closed mid-reply"),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => panic!("read: {e}"),
            }
        }
    }

    /// Reads until EOF/reset; returns replies seen on the way (used when
    /// the server is expected to hang up).
    fn drain_to_eof(&mut self) -> Vec<Reply> {
        let mut replies = Vec::new();
        loop {
            while let Ok(Some((r, used))) = resp::parse_reply(&self.buf[self.pos..]) {
                self.pos += used;
                replies.push(r);
            }
            let mut chunk = [0u8; 8192];
            match self.s.read(&mut chunk) {
                Ok(0) => return replies,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e)
                    if e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::BrokenPipe =>
                {
                    return replies
                }
                Err(e) => panic!("read: {e}"),
            }
        }
    }
}

fn bulk(data: &[u8]) -> Reply {
    Reply::Bulk(Some(data.to_vec()))
}

#[test]
fn commands_end_to_end() {
    let ts = TestServer::boot(ServerOpts::default());
    let mut c = ts.connect();

    c.cmd(&[b"PING"]);
    assert_eq!(c.reply(), Reply::Simple("PONG".into()));
    c.cmd(&[b"PING", b"echo me"]);
    assert_eq!(c.reply(), bulk(b"echo me"));

    c.cmd(&[b"SET", b"alpha", b"one"]);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));
    c.cmd(&[b"GET", b"alpha"]);
    assert_eq!(c.reply(), bulk(b"one"));
    c.cmd(&[b"GET", b"missing"]);
    assert_eq!(c.reply(), Reply::Bulk(None));

    // Overwrite, then an empty value (legal over the wire; the key frame
    // keeps the stored value non-empty for the engine).
    c.cmd(&[b"SET", b"alpha", b"two"]);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));
    c.cmd(&[b"SET", b"empty", b""]);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));
    c.cmd(&[b"GET", b"empty"]);
    assert_eq!(c.reply(), bulk(b""));

    // Multi-key DEL counts only keys that existed.
    c.cmd(&[b"DEL", b"alpha", b"empty", b"never-was"]);
    assert_eq!(c.reply(), Reply::Integer(2));
    c.cmd(&[b"GET", b"alpha"]);
    assert_eq!(c.reply(), Reply::Bulk(None));

    // SCAN pages through every live key by cursor.
    for key in [&b"scan-a"[..], b"scan-b", b"scan-c"] {
        c.cmd(&[b"SET", key, b"v"]);
        assert_eq!(c.reply(), Reply::Simple("OK".into()));
    }
    let mut cursor = b"0".to_vec();
    let mut seen: Vec<Vec<u8>> = Vec::new();
    loop {
        c.cmd(&[b"SCAN", &cursor, b"COUNT", b"2"]);
        let Reply::Array(parts) = c.reply() else {
            panic!("SCAN must reply with an array")
        };
        assert_eq!(parts.len(), 2);
        let Reply::Bulk(Some(next)) = &parts[0] else {
            panic!("cursor must be a bulk string")
        };
        let Reply::Array(keys) = &parts[1] else {
            panic!("keys must be an array")
        };
        for k in keys {
            let Reply::Bulk(Some(k)) = k else {
                panic!("key must be a bulk string")
            };
            seen.push(k.clone());
        }
        if next == b"0" {
            break;
        }
        cursor = next.clone();
    }
    seen.sort();
    assert_eq!(
        seen,
        vec![b"scan-a".to_vec(), b"scan-b".to_vec(), b"scan-c".to_vec()]
    );

    // INFO streams the engine's schema-v2 stats report.
    c.cmd(&[b"INFO"]);
    let Reply::Bulk(Some(report)) = c.reply() else {
        panic!("INFO must reply with a bulk string")
    };
    let json = Json::parse(std::str::from_utf8(&report).expect("utf-8"))
        .expect("INFO payload parses as JSON");
    assert_eq!(json.get("schema").and_then(|v| v.as_f64()), Some(2.0));
    assert!(json
        .get("sections")
        .and_then(|s| s.get("batching"))
        .and_then(|b| b.get("avg_batch"))
        .is_some());

    // Usage errors answer -ERR and keep the connection serving.
    c.cmd(&[b"SET", b"only-key"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("wrong number of arguments")));
    c.cmd(&[b"NOSUCH", b"x"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("unknown command")));
    c.cmd(&[b"SCAN", b"not-a-number"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("cursor")));

    // QUIT: +OK, flush, close.
    c.cmd(&[b"QUIT"]);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));
    let tail = c.drain_to_eof();
    assert!(tail.is_empty(), "no replies after QUIT: {tail:?}");
}

#[test]
fn pipelined_commands_reply_in_order() {
    let ts = TestServer::boot(ServerOpts::default());
    let mut c = ts.connect();

    // One burst: 40 SETs, then 40 GETs, then one PING — far deeper than
    // the engine pipeline (8), so ordering is the server's FIFO at work.
    let mut burst = Vec::new();
    for i in 0..40u32 {
        let argv = vec![
            b"SET".to_vec(),
            format!("pipe-{i}").into_bytes(),
            format!("value-{i}").into_bytes(),
        ];
        burst.extend_from_slice(&resp::command(&argv));
    }
    for i in 0..40u32 {
        let argv = vec![b"GET".to_vec(), format!("pipe-{i}").into_bytes()];
        burst.extend_from_slice(&resp::command(&argv));
    }
    burst.extend_from_slice(&resp::command(&[b"PING".to_vec()]));
    c.send(&burst);

    for _ in 0..40 {
        assert_eq!(c.reply(), Reply::Simple("OK".into()));
    }
    for i in 0..40u32 {
        assert_eq!(c.reply(), bulk(format!("value-{i}").as_bytes()));
    }
    assert_eq!(c.reply(), Reply::Simple("PONG".into()));
}

#[test]
fn mget_mset_fan_out_and_gather() {
    let ts = TestServer::boot(ServerOpts::default());
    let mut c = ts.connect();

    // MSET fills many keys in one command (deeper than the pipeline
    // depth of 8, so submit's credit-blocking path runs too).
    let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..20u32)
        .map(|i| {
            (
                format!("multi-{i}").into_bytes(),
                format!("mv-{i}").into_bytes(),
            )
        })
        .collect();
    let mut argv: Vec<&[u8]> = vec![b"MSET"];
    for (k, v) in &pairs {
        argv.push(k);
        argv.push(v);
    }
    c.cmd(&argv);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));

    // MGET gathers hits and misses in request order, one array frame.
    c.cmd(&[b"MGET", b"multi-3", b"never-was", b"multi-19", b"multi-0"]);
    assert_eq!(
        c.reply(),
        Reply::Array(vec![
            bulk(b"mv-3"),
            Reply::Bulk(None),
            bulk(b"mv-19"),
            bulk(b"mv-0"),
        ])
    );

    // A deleted key reads as nil inside the gather.
    c.cmd(&[b"DEL", b"multi-3"]);
    assert_eq!(c.reply(), Reply::Integer(1));
    c.cmd(&[b"MGET", b"multi-3", b"multi-4"]);
    assert_eq!(
        c.reply(),
        Reply::Array(vec![Reply::Bulk(None), bulk(b"mv-4")])
    );

    // Arity: MGET needs a key; MSET needs complete pairs.
    c.cmd(&[b"MGET"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("wrong number of arguments")));
    c.cmd(&[b"MSET", b"k"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("wrong number of arguments")));
    c.cmd(&[b"MSET", b"k", b"v", b"dangling"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("wrong number of arguments")));

    // An oversized key rejects the whole MSET before anything applies.
    let huge = vec![b'x'; 5000];
    c.cmd(&[b"MSET", b"good", b"val", &huge, b"val"]);
    assert!(matches!(c.reply(), Reply::Error(e) if e.contains("key too long")));
    c.cmd(&[b"GET", b"good"]);
    assert_eq!(c.reply(), Reply::Bulk(None));

    // Multi-key verbs interleave cleanly with the rest of a pipeline.
    let mut burst = Vec::new();
    burst.extend_from_slice(&resp::command(&[
        b"MSET".to_vec(),
        b"a".to_vec(),
        b"1".to_vec(),
        b"b".to_vec(),
        b"2".to_vec(),
    ]));
    burst.extend_from_slice(&resp::command(&[
        b"MGET".to_vec(),
        b"a".to_vec(),
        b"b".to_vec(),
    ]));
    burst.extend_from_slice(&resp::command(&[b"PING".to_vec()]));
    c.send(&burst);
    assert_eq!(c.reply(), Reply::Simple("OK".into()));
    assert_eq!(c.reply(), Reply::Array(vec![bulk(b"1"), bulk(b"2")]));
    assert_eq!(c.reply(), Reply::Simple("PONG".into()));
}

#[test]
fn connection_churn_returns_to_baseline() {
    let ts = TestServer::boot(ServerOpts::default());
    let baseline = ts.clients_attached();

    for cycle in 0..100u32 {
        let mut c = ts.connect();
        let key = format!("churn-{cycle}");
        c.cmd(&[b"SET", key.as_bytes(), b"v"]);
        c.cmd(&[b"GET", key.as_bytes()]);
        c.cmd(&[b"PING"]);
        assert_eq!(c.reply(), Reply::Simple("OK".into()));
        assert_eq!(c.reply(), bulk(b"v"));
        assert_eq!(c.reply(), Reply::Simple("PONG".into()));
        // Drop: the server must reap the connection and park its port.
    }

    // The server reaps closed connections asynchronously; the gauge must
    // come back to exactly the pre-churn value.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let now = ts.clients_attached();
        if now == baseline {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "clients_attached stuck at {now}, baseline {baseline}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the fleet still serves.
    let mut c = ts.connect();
    c.cmd(&[b"PING"]);
    assert_eq!(c.reply(), Reply::Simple("PONG".into()));
}

#[test]
fn slow_consumer_is_disconnected() {
    let ts = TestServer::boot(ServerOpts {
        write_buf_limit: 8 << 10,
        max_conns: 16,
    });
    let mut c = ts.connect();

    // Thousands of INFO replies (~2 KiB each) with a reader that never
    // reads: the OS socket buffer fills, the server-side write buffer
    // passes the bound, and the server must hang up rather than buffer
    // without limit.
    let mut burst = Vec::new();
    for _ in 0..4000 {
        burst.extend_from_slice(&resp::command(&[b"INFO".to_vec()]));
    }
    c.send(&burst);
    // Do NOT read; wait for the server to give up on us.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(
            Instant::now() < deadline,
            "server never dropped the slow consumer"
        );
        if ts
            .server()
            .stats()
            .slow_consumer_drops
            .load(Ordering::Relaxed)
            > 0
        {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(c);

    // The drop was surgical: other connections still serve.
    let mut c2 = ts.connect();
    c2.cmd(&[b"PING"]);
    assert_eq!(c2.reply(), Reply::Simple("PONG".into()));
}

#[test]
fn malformed_corpus_answers_err_and_keeps_serving() {
    // Arm the crash flight recorder: if any engine worker panics while
    // the corpus is replayed, a dump appears and the test fails.
    let dump_dir =
        std::env::temp_dir().join(format!("flatsrv-malformed-dumps-{}", std::process::id()));
    std::fs::create_dir_all(&dump_dir).expect("create dump dir");
    std::env::set_var("FLATSTORE_CRASH_DIR", &dump_dir);

    let corpus: &[&[u8]] = &[
        b"*-1\r\n",
        b"*2\r\n$3\r\nGET\r\n:5\r\n",
        b"*1\r\n$-3\r\n",
        b"*9999999\r\n",
        b"*1\r\n$99999999\r\n",
        b"*1\r\n$3\r\nabcXY\r\n",
        b"*x\r\n",
        b"*1\r\n$x\r\n",
        b"*123456789012345678901234567890\r\n",
        b"$5\r\nhello\r\n",
        b"GET\x00key\r\n",
        b"*1\r\n$1000000000000\r\n",
        b"\x00\x01\x02\x03\n",
        b"*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$9999999999999999999\r\n",
    ];

    let ts = TestServer::boot(ServerOpts::default());
    for (i, bad) in corpus.iter().enumerate() {
        let mut c = ts.connect();
        c.send(bad);
        // Close our writing side is not available on UnixStream halves
        // here; instead just read whatever comes back. Every reply must
        // be -ERR (garbage never executes), and the server may close.
        let _ = c.s.set_read_timeout(Some(Duration::from_secs(5)));
        let replies = c.drain_to_eof_or_quiet();
        for r in &replies {
            assert!(
                matches!(r, Reply::Error(_)),
                "corpus[{i}] got non-error reply {r:?}"
            );
        }
        drop(c);

        // The server survived this input: a fresh connection serves.
        let mut probe = ts.connect();
        probe.cmd(&[b"PING"]);
        assert_eq!(
            probe.reply(),
            Reply::Simple("PONG".into()),
            "after corpus[{i}]"
        );
    }

    // Flight recorder stayed quiet: no engine worker panicked.
    let dumps: Vec<_> = std::fs::read_dir(&dump_dir)
        .map(|rd| rd.filter_map(|e| e.ok().map(|e| e.path())).collect())
        .unwrap_or_default();
    assert!(dumps.is_empty(), "crash dumps written: {dumps:?}");
    let _ = std::fs::remove_dir_all(&dump_dir);
}

impl Client {
    /// Like [`drain_to_eof`], but also returns once the stream goes
    /// quiet (read timeout) — malformed inline garbage gets `-ERR`
    /// replies without a close, and we don't QUIT here.
    fn drain_to_eof_or_quiet(&mut self) -> Vec<Reply> {
        let mut replies = Vec::new();
        let _ = self.s.set_read_timeout(Some(Duration::from_millis(500)));
        loop {
            while let Ok(Some((r, used))) = resp::parse_reply(&self.buf[self.pos..]) {
                self.pos += used;
                replies.push(r);
            }
            let mut chunk = [0u8; 8192];
            match self.s.read(&mut chunk) {
                Ok(0) => return replies,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return replies
                }
                Err(e)
                    if e.kind() == ErrorKind::ConnectionReset
                        || e.kind() == ErrorKind::BrokenPipe =>
                {
                    return replies
                }
                Err(e) => panic!("read: {e}"),
            }
        }
    }
}
