//! Property tests for the RESP codec: serialize∘parse identity, partial
//! reads at every byte boundary, pipelined streams, and a malformed
//! corpus that must come back as errors — never panics.

use flatsrv::resp::{self, Argv, Reply};
use proptest::prelude::*;

fn argv_strategy() -> impl Strategy<Value = Argv> {
    prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..6)
}

/// Serializes a client-visible reply the way the server does, so the
/// client parser can be tested as the exact inverse.
fn serialize_reply(r: &Reply, out: &mut Vec<u8>) {
    match r {
        Reply::Simple(s) => resp::simple(out, s),
        Reply::Error(line) => {
            out.push(b'-');
            out.extend_from_slice(line.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        Reply::Integer(n) => resp::integer(out, *n),
        Reply::Bulk(Some(data)) => resp::bulk(out, data),
        Reply::Bulk(None) => resp::nil(out),
        Reply::Array(items) => {
            resp::array_header(out, items.len());
            for item in items {
                serialize_reply(item, out);
            }
        }
    }
}

/// CRLF-free printable text for simple/error lines.
fn line_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u8..64, 0..24)
        .prop_map(|v| v.into_iter().map(|b| char::from(b' ' + (b % 64))).collect())
}

fn scalar_reply() -> BoxedStrategy<Reply> {
    prop_oneof![
        line_strategy().prop_map(Reply::Simple).boxed(),
        line_strategy()
            .prop_map(|s| Reply::Error(format!("ERR {s}")))
            .boxed(),
        any::<u64>().prop_map(|n| Reply::Integer(n as i64)).boxed(),
        prop::collection::vec(any::<u8>(), 0..64)
            .prop_map(|d| Reply::Bulk(Some(d)))
            .boxed(),
        Just(Reply::Bulk(None)).boxed(),
    ]
    .boxed()
}

fn reply_strategy() -> BoxedStrategy<Reply> {
    prop_oneof![
        4 => scalar_reply(),
        1 => prop::collection::vec(scalar_reply(), 0..4)
            .prop_map(Reply::Array)
            .boxed(),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// `parse_command` is the exact inverse of `command` and consumes
    /// exactly the serialized bytes.
    #[test]
    fn command_roundtrip(argv in argv_strategy()) {
        let wire = resp::command(&argv);
        let (parsed, used) = resp::parse_command(&wire)
            .expect("well-formed")
            .expect("complete");
        prop_assert_eq!(parsed, argv);
        prop_assert_eq!(used, wire.len());
    }

    /// Every strict prefix of a serialized command is "incomplete, read
    /// more" — never an error, never a bogus short parse.
    #[test]
    fn every_split_point_reads_as_partial(argv in argv_strategy()) {
        let wire = resp::command(&argv);
        for cut in 0..wire.len() {
            let r = resp::parse_command(&wire[..cut]).expect("prefix never malformed");
            prop_assert!(r.is_none(), "prefix of {cut} bytes parsed as {r:?}");
        }
    }

    /// A pipelined stream of commands, fed to the parser in arbitrary
    /// chunks, yields exactly the original command sequence.
    #[test]
    fn pipelined_stream_reassembles(
        argvs in prop::collection::vec(argv_strategy(), 1..8),
        chunk in 1usize..24,
    ) {
        let mut wire = Vec::new();
        for argv in &argvs {
            wire.extend_from_slice(&resp::command(argv));
        }
        // Feed `chunk` bytes at a time, parsing as much as possible after
        // each feed — the server's read loop in miniature.
        let mut buf: Vec<u8> = Vec::new();
        let mut parsed: Vec<Argv> = Vec::new();
        for piece in wire.chunks(chunk) {
            buf.extend_from_slice(piece);
            let mut consumed = 0;
            while let Some((argv, used)) =
                resp::parse_command(&buf[consumed..]).expect("stream well-formed")
            {
                parsed.push(argv);
                consumed += used;
            }
            buf.drain(..consumed);
        }
        prop_assert!(buf.is_empty(), "{} stray bytes", buf.len());
        prop_assert_eq!(parsed, argvs);
    }

    /// Client side: serialize∘parse identity for every reply shape the
    /// server can produce, under pipelining and arbitrary split points.
    #[test]
    fn reply_roundtrip(replies in prop::collection::vec(reply_strategy(), 1..6)) {
        let mut wire = Vec::new();
        for r in &replies {
            serialize_reply(r, &mut wire);
        }
        // Whole-stream parse.
        let mut pos = 0;
        let mut parsed = Vec::new();
        while pos < wire.len() {
            let (r, used) = resp::parse_reply(&wire[pos..])
                .expect("well-formed")
                .expect("complete");
            parsed.push(r);
            pos += used;
        }
        prop_assert_eq!(&parsed, &replies);
        // Every strict prefix of a single reply is incomplete, not wrong.
        let mut single = Vec::new();
        serialize_reply(&replies[0], &mut single);
        for cut in 0..single.len() {
            let r = resp::parse_reply(&single[..cut]).expect("prefix never malformed");
            prop_assert!(r.is_none(), "reply prefix of {cut} bytes parsed as {r:?}");
        }
    }

    /// Arbitrary bytes never panic either parser; they parse, want more,
    /// or error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = resp::parse_command(&bytes);
        let _ = resp::parse_reply(&bytes);
    }
}

/// Hand-picked malformed inputs: each must be rejected (error) or held
/// as incomplete — and must never panic. The same corpus is replayed
/// against a live server in `wire_tests.rs`.
pub const MALFORMED: &[&[u8]] = &[
    b"*-1\r\n",
    b"*2\r\n$3\r\nGET\r\n:5\r\n",
    b"*1\r\n$-3\r\n",
    b"*9999999\r\n",
    b"*1\r\n$99999999\r\n",
    b"*1\r\n$3\r\nabcXY",
    b"*x\r\n",
    b"*1\r\n$x\r\n",
    b"*123456789012345678901234567890\r\n",
    b"$5\r\nhello\r\n",
    b"GET\x00key\r\n",
    b"*1\r\n$1000000000000\r\n",
];

#[test]
fn malformed_corpus_is_rejected_without_panic() {
    for (i, bad) in MALFORMED.iter().enumerate() {
        let r = resp::parse_command(bad);
        match r {
            Err(_) => {}
            // `$5\r\nhello\r\n` is inline-parsed garbage: it yields argv
            // tokens, which the command layer answers with -ERR unknown
            // command. Either way: no panic, no misframe.
            Ok(Some(_)) if bad[0] != b'*' => {}
            Ok(None) => {}
            Ok(Some(parsed)) => panic!("corpus[{i}] parsed as {parsed:?}"),
        }
    }
}
