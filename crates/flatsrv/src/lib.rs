//! `flatsrv`: a RESP wire front end for the FlatStore engine.
//!
//! The paper's clients reach FlatStore over an RDMA-style shared-memory
//! fabric; this crate adds the commodity equivalent — a socket server
//! speaking a Redis-protocol (RESP) subset — so the engine can be driven
//! by ordinary network clients and the pipelining/batching story can be
//! measured end-to-end under real connections.
//!
//! Layers, bottom up:
//!
//! - [`resp`]: the codec. Server-side incremental command parsing
//!   (multi-bulk `*N\r\n$len\r\n…` and inline commands), reply
//!   serializers, and a client-side reply parser for the load generator.
//! - [`keymap`]: byte keys on the engine's `u64` keyspace. Raw keys are
//!   hashed (FNV-1a + avalanche) and stored inside the value frame, so
//!   `GET` verifies the raw key and a hash collision reads as a miss,
//!   never as another key's value.
//! - [`server`]: acceptor threads (one per listener, TCP or Unix
//!   socket) running a poll-style event loop. Each connection owns one
//!   pipelined engine [`Session`](flatstore::Session), so N busy
//!   connections look to the engine like the paper's client fleet and
//!   fill horizontal batches. Commands: `GET` `SET` `DEL` `MGET` `MSET`
//!   `SCAN` `PING` `INFO` `QUIT` (+ `SHUTDOWN` for orchestration). The
//!   multi-key verbs fan out over the session's pipelined `Op` API and
//!   gather their replies into one frame, so a single command fills a
//!   whole horizontal batch.
//! - [`load`]: the `flatload` generator — pipelined ETC workload over
//!   real sockets, latency percentiles, and engine-side `INFO` readback
//!   (mean HB batch size, cache hit rate) — plus an in-process twin for
//!   transport comparisons.
//!
//! Everything is `std`-only: no async runtime, no epoll crate — a
//! non-blocking sweep loop with a spin/yield/sleep idle ladder, matching
//! the engine's own polling discipline.

pub mod keymap;
pub mod load;
pub mod resp;
pub mod server;

pub use load::{LoadOpts, LoadSummary, Target};
pub use server::{Listener, Server, ServerOpts, ServerStats, StatsSource};
