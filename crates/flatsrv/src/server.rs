//! The wire server: acceptor threads multiplexing RESP connections onto
//! pipelined engine [`Session`]s.
//!
//! One thread per listener runs a small poll-style event loop: a
//! non-blocking accept, then a sweep over every connection — read,
//! parse, submit, harvest completions, write. Each connection owns one
//! engine `Session`, so its commands pipeline up to
//! `Config::pipeline_depth` deep while replies still go out strictly in
//! command order (a per-connection FIFO pairs each submitted ticket with
//! its reply slot; out-of-order engine completions park in a map until
//! their slot reaches the head). Many live connections therefore look to
//! the engine exactly like the paper's client fleet — horizontal
//! batching fills from real sockets.
//!
//! Robustness: per-connection write buffers are bounded
//! ([`ServerOpts::write_buf_limit`]) and a consumer that stops reading
//! long enough to exceed the bound is disconnected; `QUIT` and EOF drain
//! in-flight operations and flush before closing; dropped connections
//! drop their session, which drains in flight and parks the fabric port
//! for reuse, so connection churn leaks nothing.

use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use flatstore::prelude::*;
use flatstore::{Session, StoreHandle};

use crate::keymap::{decode_frame, encode_frame, hash_key, MAX_KEY_LEN};
use crate::resp;
use crate::resp::Argv;

/// Produces the engine's `stats_report` JSON for `INFO`.
pub type StatsSource = Arc<dyn Fn() -> String + Send + Sync>;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerOpts {
    /// Disconnect a connection whose pending reply bytes exceed this
    /// (slow-consumer policy).
    pub write_buf_limit: usize,
    /// Most simultaneous connections per listener; extras are refused.
    pub max_conns: usize,
}

impl Default for ServerOpts {
    fn default() -> ServerOpts {
        ServerOpts {
            write_buf_limit: 1 << 20,
            max_conns: 1024,
        }
    }
}

/// A pre-bound listening socket (bind at the call site so `:0` ports can
/// be reported back).
pub enum Listener {
    /// TCP listener (e.g. `127.0.0.1:6379`).
    Tcp(TcpListener),
    /// Unix-domain socket listener.
    Unix(UnixListener),
}

/// Counters the server aggregates across all its acceptor threads.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted over the server's lifetime.
    pub accepted: AtomicU64,
    /// Connections dropped for exceeding the write-buffer bound.
    pub slow_consumer_drops: AtomicU64,
    /// Commands executed (including immediate ones like `PING`).
    pub commands: AtomicU64,
    /// `GET`s whose stored frame carried a different raw key (hash
    /// collision surfaced as a miss).
    pub collision_misses: AtomicU64,
}

/// A running wire front end; dropping it stops the acceptor threads.
pub struct Server {
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    threads: Vec<JoinHandle<()>>,
    tcp_addrs: Vec<SocketAddr>,
}

impl Server {
    /// Starts one acceptor thread per listener, each serving connections
    /// with sessions opened on `handle`.
    ///
    /// # Errors
    ///
    /// Propagates listener configuration failures
    /// (`set_nonblocking`); accept-time errors are handled per
    /// connection.
    pub fn start(
        handle: StoreHandle,
        stats_source: StatsSource,
        listeners: Vec<Listener>,
        opts: ServerOpts,
    ) -> std::io::Result<Server> {
        let stop = Arc::new(AtomicBool::new(false));
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let mut tcp_addrs = Vec::new();
        let mut threads = Vec::new();
        for (i, listener) in listeners.into_iter().enumerate() {
            if let Listener::Tcp(l) = &listener {
                tcp_addrs.push(l.local_addr()?);
            }
            match &listener {
                Listener::Tcp(l) => l.set_nonblocking(true)?,
                Listener::Unix(l) => l.set_nonblocking(true)?,
            }
            let worker = AcceptLoop {
                listener,
                handle: handle.clone(),
                stats_source: Arc::clone(&stats_source),
                stop: Arc::clone(&stop),
                shutdown_requested: Arc::clone(&shutdown_requested),
                stats: Arc::clone(&stats),
                opts: opts.clone(),
            };
            threads.push(
                std::thread::Builder::new()
                    .name(format!("flatsrv-accept-{i}"))
                    .spawn(move || worker.run())?,
            );
        }
        Ok(Server {
            stop,
            shutdown_requested,
            stats,
            threads,
            tcp_addrs,
        })
    }

    /// Actual addresses of the TCP listeners (useful after binding `:0`).
    pub fn tcp_addrs(&self) -> &[SocketAddr] {
        &self.tcp_addrs
    }

    /// Server-side counters.
    pub fn stats(&self) -> Arc<ServerStats> {
        Arc::clone(&self.stats)
    }

    /// Whether a client issued `SHUTDOWN`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::Acquire)
    }

    /// Blocks until the acceptor threads exit (a client's `SHUTDOWN` or
    /// [`stop`](Self::stop) from another thread); returns whether
    /// shutdown was client-requested.
    pub fn wait(mut self) -> bool {
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        self.shutdown_requested()
    }

    /// Asks the acceptor threads to exit and joins them.
    pub fn stop(mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Either stream type behind one non-blocking interface.
enum WireStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl WireStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.read(buf),
            WireStream::Unix(s) => s.read(buf),
        }
    }

    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            WireStream::Tcp(s) => s.write(buf),
            WireStream::Unix(s) => s.write(buf),
        }
    }
}

/// What a completed engine reply should render as, FIFO-ordered per
/// connection.
enum Pend {
    /// Bytes already rendered (immediate commands: `PING`, `INFO`, …).
    Ready(Vec<u8>),
    /// One engine operation.
    One { ticket: Ticket, kind: PendKind },
    /// A multi-key `DEL`: resolves once every ticket has completed.
    Del { tickets: Vec<Ticket> },
    /// A multi-key `MGET`: one array reply, one bulk-or-nil per key, in
    /// request order, once every ticket has completed.
    MGet { items: Vec<(Ticket, Vec<u8>)> },
    /// A multi-pair `MSET`: one `+OK` (or the first failure) once every
    /// ticket has completed.
    MSet { tickets: Vec<Ticket> },
}

enum PendKind {
    Set,
    Get { raw: Vec<u8> },
    Scan { limit: usize },
}

/// One live connection.
struct Conn {
    stream: WireStream,
    session: Session,
    /// Unparsed input bytes.
    rdbuf: Vec<u8>,
    /// Rendered reply bytes not yet written; `out_pos` marks the flushed
    /// prefix.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Reply slots in command order.
    fifo: VecDeque<Pend>,
    /// Engine completions waiting for their slot to reach the FIFO head.
    results: HashMap<Ticket, Reply>,
    /// No more reads (QUIT or EOF); close once fully flushed.
    draining: bool,
    /// Connection is finished; remove it from the sweep.
    dead: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }
}

struct AcceptLoop {
    listener: Listener,
    handle: StoreHandle,
    stats_source: StatsSource,
    stop: Arc<AtomicBool>,
    shutdown_requested: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    opts: ServerOpts,
}

impl AcceptLoop {
    fn run(self) {
        let mut conns: Vec<Conn> = Vec::new();
        // Idle ladder: spin a few sweeps, then sleep briefly so an idle
        // server does not burn a core.
        let mut idle: u32 = 0;
        while !self.stop.load(Ordering::Acquire) {
            let mut progressed = self.accept_new(&mut conns);
            for conn in conns.iter_mut() {
                progressed |= self.sweep(conn);
            }
            conns.retain(|c| !c.dead);
            if progressed {
                idle = 0;
            } else {
                idle = idle.saturating_add(1);
                if idle < 64 {
                    std::hint::spin_loop();
                } else if idle < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        }
        // Final flush so a SHUTDOWN's +OK (and anything else rendered)
        // reaches clients before the sockets close.
        let deadline = Instant::now() + Duration::from_millis(250);
        for conn in conns.iter_mut() {
            while conn.pending_out() > 0 && Instant::now() < deadline {
                if !flush(conn, &self.stats, self.opts.write_buf_limit) {
                    std::thread::sleep(Duration::from_micros(100));
                }
                if conn.dead {
                    break;
                }
            }
        }
    }

    fn accept_new(&self, conns: &mut Vec<Conn>) -> bool {
        let mut progressed = false;
        loop {
            let accepted = match &self.listener {
                Listener::Tcp(l) => match l.accept() {
                    Ok((s, _)) => {
                        let _ = s.set_nodelay(true);
                        s.set_nonblocking(true).map(|()| WireStream::Tcp(s))
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => Err(e),
                },
                Listener::Unix(l) => match l.accept() {
                    Ok((s, _)) => s.set_nonblocking(true).map(|()| WireStream::Unix(s)),
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) => Err(e),
                },
            };
            let stream = match accepted {
                Ok(s) => s,
                Err(_) => continue, // refused/failed handshake: next accept
            };
            if conns.len() >= self.opts.max_conns {
                continue; // drop: over the connection cap
            }
            let Ok(session) = self.handle.session() else {
                continue; // engine is shutting down
            };
            self.stats.accepted.fetch_add(1, Ordering::Relaxed);
            conns.push(Conn {
                stream,
                session,
                rdbuf: Vec::new(),
                outbuf: Vec::new(),
                out_pos: 0,
                fifo: VecDeque::new(),
                results: HashMap::new(),
                draining: false,
                dead: false,
            });
            progressed = true;
        }
        progressed
    }

    /// One pass over a connection: read → parse/execute → harvest →
    /// render in order → write. Returns whether anything progressed.
    fn sweep(&self, conn: &mut Conn) -> bool {
        let mut progressed = false;

        // Read — unless draining, or backpressured (a client that keeps
        // pipelining while not reading replies must not grow our buffers
        // unboundedly; pausing reads is the flow control).
        let paused = conn.fifo.len() >= 4 * conn.session.pipeline_depth().max(1)
            || conn.pending_out() >= self.opts.write_buf_limit / 2;
        if !conn.draining && !paused {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.draining = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rdbuf.extend_from_slice(&chunk[..n]);
                        progressed = true;
                        if conn.rdbuf.len() >= resp::MAX_BULK {
                            break; // parse before buffering more
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => {
                        conn.dead = true;
                        return true;
                    }
                }
            }
        }

        // Parse and execute as long as the session has pipeline credit.
        let mut consumed = 0;
        while conn.session.in_flight() < conn.session.pipeline_depth() {
            match resp::parse_command(&conn.rdbuf[consumed..]) {
                Ok(Some((argv, used))) => {
                    consumed += used;
                    progressed = true;
                    if argv.is_empty() {
                        continue; // blank inline line
                    }
                    self.stats.commands.fetch_add(1, Ordering::Relaxed);
                    if !self.execute(conn, argv) {
                        break; // QUIT/SHUTDOWN: stop parsing this buffer
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    // Framing is lost: answer once, then drain and close.
                    let mut out = Vec::new();
                    resp::error(&mut out, &format!("protocol error: {e}"));
                    conn.fifo.push_back(Pend::Ready(out));
                    conn.rdbuf.clear();
                    consumed = 0;
                    conn.draining = true;
                    progressed = true;
                    break;
                }
            }
        }
        if consumed > 0 {
            conn.rdbuf.drain(..consumed);
        }

        // Harvest engine completions (out of order).
        for (t, r) in conn.session.poll_completions() {
            conn.results.insert(t, r);
            progressed = true;
        }

        // Render resolved FIFO heads in command order.
        progressed |= render_ready(conn, &self.stats);

        // Write.
        progressed |= flush(conn, &self.stats, self.opts.write_buf_limit);

        // A drained connection with nothing left to say is done.
        if conn.draining
            && conn.fifo.is_empty()
            && conn.pending_out() == 0
            && conn.session.in_flight() == 0
        {
            conn.dead = true;
        }
        progressed
    }

    /// Executes one command; returns `false` when the connection should
    /// stop consuming input (QUIT/SHUTDOWN).
    fn execute(&self, conn: &mut Conn, argv: Argv) -> bool {
        let verb = argv[0].to_ascii_uppercase();
        let mut out = Vec::new();
        match verb.as_slice() {
            b"PING" => {
                if argv.len() > 1 {
                    resp::bulk(&mut out, &argv[1]);
                } else {
                    resp::simple(&mut out, "PONG");
                }
                conn.fifo.push_back(Pend::Ready(out));
            }
            b"SET" => {
                if argv.len() != 3 {
                    return arity_err(conn, "set");
                }
                if argv[1].len() > MAX_KEY_LEN {
                    resp::error(&mut out, "key too long");
                    conn.fifo.push_back(Pend::Ready(out));
                    return true;
                }
                let key = hash_key(&argv[1]);
                let frame = encode_frame(&argv[1], &argv[2]);
                match conn.session.submit(Op::Put { key, value: frame }) {
                    Ok(ticket) => conn.fifo.push_back(Pend::One {
                        ticket,
                        kind: PendKind::Set,
                    }),
                    Err(e) => {
                        resp::error(&mut out, &e.to_string());
                        conn.fifo.push_back(Pend::Ready(out));
                    }
                }
            }
            b"GET" => {
                if argv.len() != 2 {
                    return arity_err(conn, "get");
                }
                let key = hash_key(&argv[1]);
                match conn.session.submit(Op::Get { key }) {
                    Ok(ticket) => conn.fifo.push_back(Pend::One {
                        ticket,
                        kind: PendKind::Get {
                            raw: argv[1].clone(),
                        },
                    }),
                    Err(e) => {
                        resp::error(&mut out, &e.to_string());
                        conn.fifo.push_back(Pend::Ready(out));
                    }
                }
            }
            b"DEL" => {
                if argv.len() < 2 {
                    return arity_err(conn, "del");
                }
                let mut tickets = Vec::with_capacity(argv.len() - 1);
                for raw in &argv[1..] {
                    let key = hash_key(raw);
                    // May block briefly past the pipeline depth on huge
                    // multi-key DELs; submit absorbs completions while it
                    // waits, so the engine keeps making progress.
                    match conn.session.submit(Op::Delete { key }) {
                        Ok(t) => tickets.push(t),
                        Err(e) => {
                            // Render what we have; report the failure.
                            conn.fifo.push_back(Pend::Del { tickets });
                            resp::error(&mut out, &e.to_string());
                            conn.fifo.push_back(Pend::Ready(out));
                            return true;
                        }
                    }
                }
                conn.fifo.push_back(Pend::Del { tickets });
            }
            b"MGET" => {
                if argv.len() < 2 {
                    return arity_err(conn, "mget");
                }
                let mut items = Vec::with_capacity(argv.len() - 1);
                for raw in &argv[1..] {
                    let key = hash_key(raw);
                    // Like DEL: submit may block past the pipeline depth
                    // on huge fan-outs, absorbing completions meanwhile.
                    match conn.session.submit(Op::Get { key }) {
                        Ok(t) => items.push((t, raw.clone())),
                        Err(e) => {
                            // Render what we have; report the failure.
                            conn.fifo.push_back(Pend::MGet { items });
                            resp::error(&mut out, &e.to_string());
                            conn.fifo.push_back(Pend::Ready(out));
                            return true;
                        }
                    }
                }
                conn.fifo.push_back(Pend::MGet { items });
            }
            b"MSET" => {
                // Pairs: MSET k1 v1 [k2 v2 ...]
                if argv.len() < 3 || argv.len().is_multiple_of(2) {
                    return arity_err(conn, "mset");
                }
                // Validate every key before submitting anything, so a bad
                // pair never leaves a partial multi-set behind.
                if argv[1..].chunks(2).any(|pair| pair[0].len() > MAX_KEY_LEN) {
                    resp::error(&mut out, "key too long");
                    conn.fifo.push_back(Pend::Ready(out));
                    return true;
                }
                let mut tickets = Vec::with_capacity((argv.len() - 1) / 2);
                for pair in argv[1..].chunks(2) {
                    let key = hash_key(&pair[0]);
                    let frame = encode_frame(&pair[0], &pair[1]);
                    match conn.session.submit(Op::Put { key, value: frame }) {
                        Ok(t) => tickets.push(t),
                        Err(e) => {
                            conn.fifo.push_back(Pend::MSet { tickets });
                            resp::error(&mut out, &e.to_string());
                            conn.fifo.push_back(Pend::Ready(out));
                            return true;
                        }
                    }
                }
                conn.fifo.push_back(Pend::MSet { tickets });
            }
            b"SCAN" => {
                if argv.len() != 2 && argv.len() != 4 {
                    return arity_err(conn, "scan");
                }
                let Some(cursor) = parse_u64(&argv[1]) else {
                    resp::error(&mut out, "invalid cursor");
                    conn.fifo.push_back(Pend::Ready(out));
                    return true;
                };
                let mut limit = 10usize;
                if argv.len() == 4 {
                    if !argv[2].eq_ignore_ascii_case(b"COUNT") {
                        resp::error(&mut out, "syntax error");
                        conn.fifo.push_back(Pend::Ready(out));
                        return true;
                    }
                    let Some(n) = parse_u64(&argv[3]).filter(|&n| n > 0 && n <= 10_000) else {
                        resp::error(&mut out, "invalid COUNT");
                        conn.fifo.push_back(Pend::Ready(out));
                        return true;
                    };
                    limit = n as usize;
                }
                match conn.session.submit(Op::Range {
                    lo: cursor,
                    hi: u64::MAX,
                    limit,
                }) {
                    Ok(ticket) => conn.fifo.push_back(Pend::One {
                        ticket,
                        kind: PendKind::Scan { limit },
                    }),
                    Err(e) => {
                        resp::error(&mut out, &e.to_string());
                        conn.fifo.push_back(Pend::Ready(out));
                    }
                }
            }
            b"INFO" => {
                resp::bulk(&mut out, (self.stats_source)().as_bytes());
                conn.fifo.push_back(Pend::Ready(out));
            }
            b"QUIT" => {
                resp::simple(&mut out, "OK");
                conn.fifo.push_back(Pend::Ready(out));
                conn.draining = true;
                return false;
            }
            b"SHUTDOWN" => {
                resp::simple(&mut out, "OK");
                conn.fifo.push_back(Pend::Ready(out));
                conn.draining = true;
                self.shutdown_requested.store(true, Ordering::Release);
                self.stop.store(true, Ordering::Release);
                return false;
            }
            other => {
                let name = String::from_utf8_lossy(other);
                resp::error(&mut out, &format!("unknown command '{name}'"));
                conn.fifo.push_back(Pend::Ready(out));
            }
        }
        true
    }
}

fn arity_err(conn: &mut Conn, cmd: &str) -> bool {
    let mut out = Vec::new();
    resp::error(
        &mut out,
        &format!("wrong number of arguments for '{cmd}' command"),
    );
    conn.fifo.push_back(Pend::Ready(out));
    true
}

fn parse_u64(b: &[u8]) -> Option<u64> {
    std::str::from_utf8(b).ok()?.parse().ok()
}

/// Renders every resolved slot at the FIFO head into the write buffer.
fn render_ready(conn: &mut Conn, stats: &ServerStats) -> bool {
    let mut progressed = false;
    loop {
        let rendered = match conn.fifo.front() {
            None => break,
            Some(Pend::Ready(_)) => {
                let Some(Pend::Ready(bytes)) = conn.fifo.pop_front() else {
                    unreachable!("front() just matched Ready");
                };
                bytes
            }
            Some(Pend::One { ticket, .. }) => {
                if !conn.results.contains_key(ticket) {
                    break;
                }
                let Some(Pend::One { ticket, kind }) = conn.fifo.pop_front() else {
                    unreachable!("front() just matched One");
                };
                let Some(reply) = conn.results.remove(&ticket) else {
                    unreachable!("contains_key checked above");
                };
                render_one(kind, reply, stats)
            }
            Some(Pend::Del { tickets }) => {
                if !tickets.iter().all(|t| conn.results.contains_key(t)) {
                    break;
                }
                let Some(Pend::Del { tickets }) = conn.fifo.pop_front() else {
                    unreachable!("front() just matched Del");
                };
                let mut existed = 0i64;
                let mut first_err: Option<StoreError> = None;
                for t in tickets {
                    match conn.results.remove(&t) {
                        Some(Reply::Delete(Ok(true))) => existed += 1,
                        Some(Reply::Delete(Ok(false))) | None => {}
                        Some(Reply::Delete(Err(e))) => {
                            first_err.get_or_insert(e);
                        }
                        Some(_) => {}
                    }
                }
                let mut out = Vec::new();
                match first_err {
                    Some(e) => resp::error(&mut out, &e.to_string()),
                    None => resp::integer(&mut out, existed),
                }
                out
            }
            Some(Pend::MGet { items }) => {
                if !items.iter().all(|(t, _)| conn.results.contains_key(t)) {
                    break;
                }
                let Some(Pend::MGet { items }) = conn.fifo.pop_front() else {
                    unreachable!("front() just matched MGet");
                };
                let mut body = Vec::new();
                let mut first_err: Option<StoreError> = None;
                resp::array_header(&mut body, items.len());
                for (t, raw) in items {
                    match conn.results.remove(&t) {
                        Some(Reply::Get(Ok(Some(frame)))) => match decode_frame(&frame) {
                            Some((stored_key, value)) if stored_key == raw => {
                                resp::bulk(&mut body, value);
                            }
                            Some(_) => {
                                // A different raw key hashed onto the
                                // same u64: nil for this caller.
                                stats.collision_misses.fetch_add(1, Ordering::Relaxed);
                                resp::nil(&mut body);
                            }
                            None => {
                                first_err.get_or_insert(StoreError::corrupt(
                                    "stored value frame corrupt",
                                ));
                            }
                        },
                        Some(Reply::Get(Ok(None))) | None => resp::nil(&mut body),
                        Some(Reply::Get(Err(e))) => {
                            first_err.get_or_insert(e);
                        }
                        Some(_) => {}
                    }
                }
                match first_err {
                    // One engine failure poisons the whole array — a
                    // partial MGET with silent nils would read as misses.
                    Some(e) => {
                        let mut out = Vec::new();
                        resp::error(&mut out, &e.to_string());
                        out
                    }
                    None => body,
                }
            }
            Some(Pend::MSet { tickets }) => {
                if !tickets.iter().all(|t| conn.results.contains_key(t)) {
                    break;
                }
                let Some(Pend::MSet { tickets }) = conn.fifo.pop_front() else {
                    unreachable!("front() just matched MSet");
                };
                let mut first_err: Option<StoreError> = None;
                for t in tickets {
                    match conn.results.remove(&t) {
                        Some(Reply::Put(Ok(()))) | None => {}
                        Some(Reply::Put(Err(e))) => {
                            first_err.get_or_insert(e);
                        }
                        Some(_) => {}
                    }
                }
                let mut out = Vec::new();
                match first_err {
                    Some(e) => resp::error(&mut out, &e.to_string()),
                    None => resp::simple(&mut out, "OK"),
                }
                out
            }
        };
        conn.outbuf.extend_from_slice(&rendered);
        progressed = true;
    }
    progressed
}

/// Renders one completed single-op command.
fn render_one(kind: PendKind, reply: Reply, stats: &ServerStats) -> Vec<u8> {
    let mut out = Vec::new();
    match (kind, reply) {
        (PendKind::Set, Reply::Put(Ok(()))) => resp::simple(&mut out, "OK"),
        (PendKind::Set, Reply::Put(Err(e))) => resp::error(&mut out, &e.to_string()),
        (PendKind::Get { raw }, Reply::Get(Ok(Some(frame)))) => match decode_frame(&frame) {
            Some((stored_key, value)) if stored_key == raw => resp::bulk(&mut out, value),
            Some(_) => {
                // A different raw key hashed onto the same u64: for this
                // caller the key does not exist.
                stats.collision_misses.fetch_add(1, Ordering::Relaxed);
                resp::nil(&mut out);
            }
            None => resp::error(&mut out, "stored value frame corrupt"),
        },
        (PendKind::Get { .. }, Reply::Get(Ok(None))) => resp::nil(&mut out),
        (PendKind::Get { .. }, Reply::Get(Err(e))) => resp::error(&mut out, &e.to_string()),
        (PendKind::Scan { limit }, Reply::Range(Ok(items))) => {
            let exhausted = items.len() < limit;
            let next = match items.last() {
                Some(&(last, _)) if !exhausted => last.wrapping_add(1).max(1),
                _ => 0,
            };
            let keys: Vec<Vec<u8>> = items
                .iter()
                .filter_map(|(_, frame)| decode_frame(frame).map(|(k, _)| k.to_vec()))
                .collect();
            resp::array_header(&mut out, 2);
            resp::bulk(&mut out, next.to_string().as_bytes());
            resp::array_header(&mut out, keys.len());
            for k in keys {
                resp::bulk(&mut out, &k);
            }
        }
        (PendKind::Scan { .. }, Reply::Range(Err(e))) => resp::error(&mut out, &e.to_string()),
        (_, other) => resp::error(&mut out, &format!("mismatched completion: {other:?}")),
    }
    out
}

/// Writes pending bytes; enforces the slow-consumer bound. Returns
/// whether bytes moved.
fn flush(conn: &mut Conn, stats: &ServerStats, write_buf_limit: usize) -> bool {
    if conn.pending_out() > write_buf_limit {
        stats.slow_consumer_drops.fetch_add(1, Ordering::Relaxed);
        conn.dead = true;
        return true;
    }
    let mut progressed = false;
    while conn.out_pos < conn.outbuf.len() {
        match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return true;
            }
            Ok(n) => {
                conn.out_pos += n;
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => {
                conn.dead = true;
                return true;
            }
        }
    }
    if conn.out_pos == conn.outbuf.len() {
        conn.outbuf.clear();
        conn.out_pos = 0;
    } else if conn.out_pos > 64 * 1024 {
        conn.outbuf.drain(..conn.out_pos);
        conn.out_pos = 0;
    }
    progressed
}
