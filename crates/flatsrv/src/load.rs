//! `flatload`: a pipelined RESP load generator driving the ETC workload.
//!
//! Each connection runs on its own thread with classic pipelining: keep
//! up to `depth` commands outstanding, reading one reply before sending
//! the next once the window is full. Replies are parsed with the codec's
//! client side ([`resp::parse_reply`]), per-op latency is measured from
//! send to reply, and at the end one control connection fetches `INFO`
//! so the run can report *engine-side* figures — mean horizontal-batch
//! size, cache hit rate — observed under real sockets.
//!
//! [`run_inproc`] mirrors the same workload through in-process
//! [`Session`]s (no sockets, same key hashing and value frames), so the
//! compare harness can price the wire: in-process vs loopback TCP vs
//! Unix socket on identical seeded op streams.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use flatstore::prelude::*;
use flatstore::{Session, StoreHandle};
use workloads::{value_bytes, EtcWorkload, Op as WlOp};

use crate::keymap::{encode_frame, hash_key};
use crate::resp;

/// Where the server lives.
#[derive(Debug, Clone)]
pub enum Target {
    /// `host:port`.
    Tcp(String),
    /// Unix-socket path.
    Unix(PathBuf),
}

impl Target {
    fn connect(&self) -> std::io::Result<NetStream> {
        let stream = match self {
            Target::Tcp(addr) => {
                let s = TcpStream::connect(addr)?;
                s.set_nodelay(true)?;
                s.set_read_timeout(Some(Duration::from_secs(30)))?;
                NetStream::Tcp(s)
            }
            Target::Unix(path) => {
                let s = UnixStream::connect(path)?;
                s.set_read_timeout(Some(Duration::from_secs(30)))?;
                NetStream::Unix(s)
            }
        };
        Ok(stream)
    }
}

enum NetStream {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl NetStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            NetStream::Tcp(s) => s.read(buf),
            NetStream::Unix(s) => s.read(buf),
        }
    }

    fn write_all(&mut self, buf: &[u8]) -> std::io::Result<()> {
        match self {
            NetStream::Tcp(s) => s.write_all(buf),
            NetStream::Unix(s) => s.write_all(buf),
        }
    }
}

/// Blocking RESP reply stream over a connected socket.
struct ReplyReader {
    buf: Vec<u8>,
    pos: usize,
}

impl ReplyReader {
    fn new() -> ReplyReader {
        ReplyReader {
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn next(&mut self, stream: &mut NetStream) -> std::io::Result<resp::Reply> {
        loop {
            match resp::parse_reply(&self.buf[self.pos..]) {
                Ok(Some((reply, used))) => {
                    self.pos += used;
                    if self.pos > 64 * 1024 {
                        self.buf.drain(..self.pos);
                        self.pos = 0;
                    }
                    return Ok(reply);
                }
                Ok(None) => {
                    let mut chunk = [0u8; 16 * 1024];
                    match stream.read(&mut chunk) {
                        Ok(0) => {
                            return Err(std::io::Error::new(
                                ErrorKind::UnexpectedEof,
                                "server closed mid-reply",
                            ))
                        }
                        Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        Err(e) => return Err(e),
                    }
                }
                Err(e) => {
                    return Err(std::io::Error::new(
                        ErrorKind::InvalidData,
                        format!("bad reply: {e}"),
                    ))
                }
            }
        }
    }
}

/// Workload shape and concurrency for a load run.
#[derive(Debug, Clone)]
pub struct LoadOpts {
    /// Concurrent connections (each on its own thread).
    pub conns: usize,
    /// Pipeline window per connection.
    pub depth: usize,
    /// Total operations across all connections.
    pub ops: u64,
    /// Distinct keys.
    pub keyspace: u64,
    /// Fraction of writes (ETC default is write-light).
    pub put_ratio: f64,
    /// Workload RNG seed (per-connection streams derive from it).
    pub seed: u64,
}

impl Default for LoadOpts {
    fn default() -> LoadOpts {
        LoadOpts {
            conns: 4,
            depth: 8,
            ops: 50_000,
            keyspace: 10_000,
            put_ratio: 0.1,
            seed: 42,
        }
    }
}

/// What a run measured.
#[derive(Debug, Clone)]
pub struct LoadSummary {
    /// Operations completed.
    pub ops: u64,
    /// `-ERR` replies received (should be 0).
    pub errors: u64,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Million operations per second.
    pub mops: f64,
    /// Median per-op latency, microseconds (send → reply under
    /// pipelining, so it includes queueing in the window).
    pub p50_us: f64,
    /// 99th-percentile per-op latency, microseconds.
    pub p99_us: f64,
    /// Engine-side mean horizontal-batch size (from `INFO`, when a
    /// target was queried).
    pub avg_batch: Option<f64>,
    /// Engine-side read-cache hit rate (from `INFO`).
    pub cache_hit_rate: Option<f64>,
}

impl LoadSummary {
    fn from_latencies(mut lat_ns: Vec<u64>, errors: u64, secs: f64) -> LoadSummary {
        lat_ns.sort_unstable();
        let pct = |p: f64| -> f64 {
            if lat_ns.is_empty() {
                return 0.0;
            }
            let idx = ((lat_ns.len() as f64 - 1.0) * p / 100.0).round() as usize;
            lat_ns[idx] as f64 / 1_000.0
        };
        let ops = lat_ns.len() as u64;
        LoadSummary {
            ops,
            errors,
            secs,
            mops: if secs > 0.0 {
                ops as f64 / secs / 1e6
            } else {
                0.0
            },
            p50_us: pct(50.0),
            p99_us: pct(99.0),
            avg_batch: None,
            cache_hit_rate: None,
        }
    }

    /// One JSON object (used by `--compare` and scripts).
    pub fn to_json(&self, label: &str) -> String {
        let mut s = String::new();
        s.push_str("{\"transport\":");
        s.push_str(&obs::json::quote(label));
        s.push_str(&format!(
            ",\"ops\":{},\"errors\":{},\"secs\":{},\"mops\":{},\"p50_us\":{},\"p99_us\":{}",
            self.ops,
            self.errors,
            obs::json::number(self.secs),
            obs::json::number(self.mops),
            obs::json::number(self.p50_us),
            obs::json::number(self.p99_us),
        ));
        if let Some(b) = self.avg_batch {
            s.push_str(&format!(",\"avg_batch\":{}", obs::json::number(b)));
        }
        if let Some(h) = self.cache_hit_rate {
            s.push_str(&format!(",\"cache_hit_rate\":{}", obs::json::number(h)));
        }
        s.push('}');
        s
    }
}

/// Raw key bytes for an engine key: stable, human-greppable.
pub fn raw_key(key: u64) -> Vec<u8> {
    format!("key:{key:016x}").into_bytes()
}

fn wire_command(op: &WlOp) -> Vec<u8> {
    match op {
        WlOp::Put { key, value_len } => resp::command(&[
            b"SET".to_vec(),
            raw_key(*key),
            value_bytes(*key, (*value_len).max(1)),
        ]),
        WlOp::Get { key } => resp::command(&[b"GET".to_vec(), raw_key(*key)]),
        WlOp::Delete { key } => resp::command(&[b"DEL".to_vec(), raw_key(*key)]),
    }
}

/// Drives `opts.ops` ETC operations at the target over `opts.conns`
/// pipelined connections; queries `INFO` afterwards for engine-side
/// figures.
///
/// # Errors
///
/// Connection or protocol failures on any connection abort the run.
pub fn run_wire(target: &Target, opts: &LoadOpts) -> std::io::Result<LoadSummary> {
    let per_conn = opts.ops.div_ceil(opts.conns.max(1) as u64);
    let start = Instant::now();
    let results: Vec<std::io::Result<(Vec<u64>, u64)>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..opts.conns {
            let target = target.clone();
            let opts = opts.clone();
            handles.push(s.spawn(move || drive_conn(&target, &opts, c as u64, per_conn)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();

    let mut lat = Vec::new();
    let mut errors = 0u64;
    for r in results {
        let (l, e) = r?;
        lat.extend(l);
        errors += e;
    }
    let mut summary = LoadSummary::from_latencies(lat, errors, secs);

    let info = fetch_info(target)?;
    summary.avg_batch = json_path_f64(&info, &["sections", "batching", "avg_batch"]);
    summary.cache_hit_rate = json_path_f64(&info, &["sections", "read_cache", "hit_rate"]);
    Ok(summary)
}

fn drive_conn(
    target: &Target,
    opts: &LoadOpts,
    conn_id: u64,
    ops: u64,
) -> std::io::Result<(Vec<u64>, u64)> {
    let mut stream = target.connect()?;
    let mut reader = ReplyReader::new();
    let mut wl = EtcWorkload::new(
        opts.keyspace.max(100),
        opts.put_ratio,
        opts.seed.wrapping_add(conn_id.wrapping_mul(0x9e37)),
    );
    let mut outstanding: std::collections::VecDeque<Instant> = std::collections::VecDeque::new();
    let mut lat = Vec::with_capacity(ops as usize);
    let mut errors = 0u64;
    let read_one = |stream: &mut NetStream,
                    outstanding: &mut std::collections::VecDeque<Instant>,
                    reader: &mut ReplyReader,
                    lat: &mut Vec<u64>,
                    errors: &mut u64|
     -> std::io::Result<()> {
        let reply = reader.next(stream)?;
        let sent = outstanding.pop_front().expect("reply without request");
        lat.push(sent.elapsed().as_nanos() as u64);
        if matches!(reply, resp::Reply::Error(_)) {
            *errors += 1;
        }
        Ok(())
    };
    for _ in 0..ops {
        let cmd = wire_command(&wl.next_op());
        if outstanding.len() >= opts.depth.max(1) {
            read_one(
                &mut stream,
                &mut outstanding,
                &mut reader,
                &mut lat,
                &mut errors,
            )?;
        }
        outstanding.push_back(Instant::now());
        stream.write_all(&cmd)?;
    }
    while !outstanding.is_empty() {
        read_one(
            &mut stream,
            &mut outstanding,
            &mut reader,
            &mut lat,
            &mut errors,
        )?;
    }
    Ok((lat, errors))
}

/// Fetches the server's `INFO` bulk (the engine `stats_report` JSON).
///
/// # Errors
///
/// Fails on connection errors or a non-bulk reply.
pub fn fetch_info(target: &Target) -> std::io::Result<String> {
    let mut stream = target.connect()?;
    stream.write_all(&resp::command(&[b"INFO".to_vec()]))?;
    let mut reader = ReplyReader::new();
    match reader.next(&mut stream)? {
        resp::Reply::Bulk(Some(bytes)) => String::from_utf8(bytes)
            .map_err(|_| std::io::Error::new(ErrorKind::InvalidData, "INFO not utf-8")),
        other => Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("unexpected INFO reply: {other:?}"),
        )),
    }
}

/// Sends `SHUTDOWN` and waits for the `+OK`.
///
/// # Errors
///
/// Fails if the server is unreachable or answers with an error.
pub fn shutdown(target: &Target) -> std::io::Result<()> {
    let mut stream = target.connect()?;
    stream.write_all(&resp::command(&[b"SHUTDOWN".to_vec()]))?;
    let mut reader = ReplyReader::new();
    match reader.next(&mut stream)? {
        resp::Reply::Simple(s) if s == "OK" => Ok(()),
        other => Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("unexpected SHUTDOWN reply: {other:?}"),
        )),
    }
}

/// Extracts a float at a key path from a stats-report JSON string.
pub fn json_path_f64(json: &str, path: &[&str]) -> Option<f64> {
    let parsed = obs::Json::parse(json).ok()?;
    let mut node = &parsed;
    for key in path {
        node = node.get(key)?;
    }
    node.as_f64()
}

/// The same ETC streams through in-process sessions: no sockets, no
/// RESP, but identical key hashing and value frames, so the wire
/// transports can be compared against it fairly.
pub fn run_inproc(handle: &StoreHandle, opts: &LoadOpts) -> Result<LoadSummary, StoreError> {
    let per_conn = opts.ops.div_ceil(opts.conns.max(1) as u64);
    let start = Instant::now();
    let results: Vec<Result<(Vec<u64>, u64), StoreError>> = std::thread::scope(|s| {
        let mut handles = Vec::new();
        for c in 0..opts.conns {
            let opts = opts.clone();
            let session = handle.session();
            handles.push(s.spawn(move || drive_inproc(session?, &opts, c as u64, per_conn)));
        }
        handles
            .into_iter()
            .map(|h| h.join().expect("load thread"))
            .collect()
    });
    let secs = start.elapsed().as_secs_f64();
    let mut lat = Vec::new();
    let mut errors = 0u64;
    for r in results {
        let (l, e) = r?;
        lat.extend(l);
        errors += e;
    }
    Ok(LoadSummary::from_latencies(lat, errors, secs))
}

fn drive_inproc(
    mut session: Session,
    opts: &LoadOpts,
    conn_id: u64,
    ops: u64,
) -> Result<(Vec<u64>, u64), StoreError> {
    let mut wl = EtcWorkload::new(
        opts.keyspace.max(100),
        opts.put_ratio,
        opts.seed.wrapping_add(conn_id.wrapping_mul(0x9e37)),
    );
    let mut sent: HashMap<Ticket, Instant> = HashMap::new();
    let mut lat = Vec::with_capacity(ops as usize);
    let mut errors = 0u64;
    let harvest = |session: &mut Session,
                   sent: &mut HashMap<Ticket, Instant>,
                   lat: &mut Vec<u64>,
                   errors: &mut u64| {
        for (t, reply) in session.poll_completions() {
            if let Some(at) = sent.remove(&t) {
                lat.push(at.elapsed().as_nanos() as u64);
            }
            if reply.status().is_err() {
                *errors += 1;
            }
        }
    };
    for _ in 0..ops {
        let op = match wl.next_op() {
            WlOp::Put { key, value_len } => {
                let raw = raw_key(key);
                let value = value_bytes(key, value_len.max(1));
                Op::Put {
                    key: hash_key(&raw),
                    value: encode_frame(&raw, &value),
                }
            }
            WlOp::Get { key } => Op::Get {
                key: hash_key(&raw_key(key)),
            },
            WlOp::Delete { key } => Op::Delete {
                key: hash_key(&raw_key(key)),
            },
        };
        let t = session.submit(op)?;
        sent.insert(t, Instant::now());
        harvest(&mut session, &mut sent, &mut lat, &mut errors);
    }
    for (t, reply) in session.wait_all()? {
        if let Some(at) = sent.remove(&t) {
            lat.push(at.elapsed().as_nanos() as u64);
        }
        if reply.status().is_err() {
            errors += 1;
        }
    }
    Ok((lat, errors))
}
