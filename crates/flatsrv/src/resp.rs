//! A RESP (REdis Serialization Protocol) subset codec.
//!
//! The server side parses **commands** — either multi-bulk arrays
//! (`*2\r\n$3\r\nGET\r\n$3\r\nfoo\r\n`, what every real client sends) or
//! inline commands (`GET foo\r\n`, what a human types into `nc`) — and
//! serializes **replies** (simple strings, errors, integers, bulk
//! strings, arrays). The client side ([`parse_reply`]) parses replies so
//! `flatload` can drive a pipelined connection.
//!
//! Both parsers are incremental: they take the unconsumed read buffer
//! and return `Ok(None)` when more bytes are needed, or the parsed item
//! plus the number of bytes consumed. A malformed prefix returns
//! `Err(RespError)` — the connection answers `-ERR` and (for framing
//! errors that leave the stream unsynchronized) closes.

/// One command's arguments, `argv[0]` being the verb.
pub type Argv = Vec<Vec<u8>>;

/// Protocol-level parse failure (the stream can no longer be framed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RespError(pub String);

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for RespError {}

fn err(msg: impl Into<String>) -> RespError {
    RespError(msg.into())
}

/// Most elements one command array may carry.
pub const MAX_ARGS: usize = 1024;
/// Largest single bulk payload accepted (also caps values over the wire).
pub const MAX_BULK: usize = 8 << 20;
/// Longest inline command line accepted.
pub const MAX_INLINE: usize = 64 << 10;

/// Finds `\r\n` starting the search at `from`; returns the index of the
/// `\r`.
fn find_crlf(buf: &[u8], from: usize) -> Option<usize> {
    let mut i = from;
    while i + 1 < buf.len() {
        if buf[i] == b'\r' && buf[i + 1] == b'\n' {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Parses the decimal integer in `buf[start..end]` (one RESP header
/// line, no sign except an optional leading `-`).
fn parse_int(buf: &[u8]) -> Result<i64, RespError> {
    if buf.is_empty() {
        return Err(err("empty integer"));
    }
    let (neg, digits) = match buf[0] {
        b'-' => (true, &buf[1..]),
        _ => (false, buf),
    };
    if digits.is_empty() || digits.len() > 19 {
        return Err(err("bad integer"));
    }
    // Accumulate negated so i64::MIN (19 digits) parses without overflow.
    let mut v: i64 = 0;
    for &b in digits {
        if !b.is_ascii_digit() {
            return Err(err("bad integer"));
        }
        v = v
            .checked_mul(10)
            .and_then(|v| v.checked_sub(i64::from(b - b'0')))
            .ok_or_else(|| err("integer out of range"))?;
    }
    if neg {
        Ok(v)
    } else {
        v.checked_neg().ok_or_else(|| err("integer out of range"))
    }
}

/// Parses one command from the front of `buf`.
///
/// Returns `Ok(Some((argv, consumed)))` on a complete command — an empty
/// `argv` means a blank line / empty array that consumes bytes but
/// carries no command. `Ok(None)` means the buffer holds an incomplete
/// command; read more and retry.
///
/// # Errors
///
/// [`RespError`] when the prefix cannot be a valid command (bad header,
/// oversized payload, non-bulk array element).
pub fn parse_command(buf: &[u8]) -> Result<Option<(Argv, usize)>, RespError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf[0] == b'*' {
        parse_multibulk(buf)
    } else {
        parse_inline(buf)
    }
}

fn parse_multibulk(buf: &[u8]) -> Result<Option<(Argv, usize)>, RespError> {
    let Some(hdr_end) = find_crlf(buf, 1) else {
        if buf.len() > 32 {
            return Err(err("multibulk header too long"));
        }
        return Ok(None);
    };
    let nargs = parse_int(&buf[1..hdr_end])?;
    if nargs < 0 {
        return Err(err("negative multibulk length"));
    }
    let nargs = nargs as usize;
    if nargs > MAX_ARGS {
        return Err(err("multibulk length exceeds limit"));
    }
    let mut pos = hdr_end + 2;
    let mut argv = Vec::with_capacity(nargs.min(16));
    for _ in 0..nargs {
        if pos >= buf.len() {
            return Ok(None);
        }
        if buf[pos] != b'$' {
            return Err(err("expected bulk string in multibulk"));
        }
        let Some(len_end) = find_crlf(buf, pos + 1) else {
            if buf.len() - pos > 32 {
                return Err(err("bulk header too long"));
            }
            return Ok(None);
        };
        let len = parse_int(&buf[pos + 1..len_end])?;
        if len < 0 {
            return Err(err("negative bulk length in command"));
        }
        let len = len as usize;
        if len > MAX_BULK {
            return Err(err("bulk length exceeds limit"));
        }
        let data_start = len_end + 2;
        let data_end = data_start + len;
        if buf.len() < data_end + 2 {
            return Ok(None);
        }
        if &buf[data_end..data_end + 2] != b"\r\n" {
            return Err(err("bulk payload not CRLF-terminated"));
        }
        argv.push(buf[data_start..data_end].to_vec());
        pos = data_end + 2;
    }
    Ok(Some((argv, pos)))
}

fn parse_inline(buf: &[u8]) -> Result<Option<(Argv, usize)>, RespError> {
    let Some(line_end) = find_crlf(buf, 0) else {
        // A bare `\n` terminator is also accepted inline (telnet ease).
        if let Some(nl) = buf.iter().position(|&b| b == b'\n') {
            let argv = split_inline(&buf[..nl])?;
            return Ok(Some((argv, nl + 1)));
        }
        if buf.len() > MAX_INLINE {
            return Err(err("inline command too long"));
        }
        return Ok(None);
    };
    if line_end > MAX_INLINE {
        return Err(err("inline command too long"));
    }
    let argv = split_inline(&buf[..line_end])?;
    Ok(Some((argv, line_end + 2)))
}

/// Splits an inline command line on spaces/tabs (empty fields dropped).
fn split_inline(line: &[u8]) -> Result<Argv, RespError> {
    if line.contains(&0) {
        return Err(err("NUL in inline command"));
    }
    Ok(line
        .split(|&b| b == b' ' || b == b'\t' || b == b'\r')
        .filter(|f| !f.is_empty())
        .map(<[u8]>::to_vec)
        .collect())
}

// ---------------------------------------------------------------------
// Reply serialization (server → client)

/// `+msg\r\n`
pub fn simple(out: &mut Vec<u8>, msg: &str) {
    out.push(b'+');
    out.extend_from_slice(msg.as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `-ERR msg\r\n` (any CR/LF in `msg` is flattened to spaces).
pub fn error(out: &mut Vec<u8>, msg: &str) {
    out.push(b'-');
    out.extend_from_slice(b"ERR ");
    for b in msg.bytes() {
        out.push(if b == b'\r' || b == b'\n' { b' ' } else { b });
    }
    out.extend_from_slice(b"\r\n");
}

/// `:n\r\n`
pub fn integer(out: &mut Vec<u8>, n: i64) {
    out.push(b':');
    out.extend_from_slice(n.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// `$len\r\n<data>\r\n`
pub fn bulk(out: &mut Vec<u8>, data: &[u8]) {
    out.push(b'$');
    out.extend_from_slice(data.len().to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
    out.extend_from_slice(data);
    out.extend_from_slice(b"\r\n");
}

/// `$-1\r\n` — the null bulk (missing key).
pub fn nil(out: &mut Vec<u8>) {
    out.extend_from_slice(b"$-1\r\n");
}

/// `*n\r\n` — array header; the caller emits the `n` elements after it.
pub fn array_header(out: &mut Vec<u8>, n: usize) {
    out.push(b'*');
    out.extend_from_slice(n.to_string().as_bytes());
    out.extend_from_slice(b"\r\n");
}

/// Serializes `argv` as the multi-bulk command framing a client sends —
/// the exact inverse of [`parse_command`]'s multi-bulk path.
pub fn command(argv: &[Vec<u8>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + argv.iter().map(|a| a.len() + 16).sum::<usize>());
    array_header(&mut out, argv.len());
    for arg in argv {
        bulk(&mut out, arg);
    }
    out
}

// ---------------------------------------------------------------------
// Reply parsing (client side)

/// One parsed server reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `+msg`
    Simple(String),
    /// `-msg` (full message, prefix included in the payload)
    Error(String),
    /// `:n`
    Integer(i64),
    /// `$len` payload; `None` is the null bulk `$-1`.
    Bulk(Option<Vec<u8>>),
    /// `*n` elements.
    Array(Vec<Reply>),
}

/// Parses one reply from the front of `buf`; `Ok(None)` means incomplete.
///
/// # Errors
///
/// [`RespError`] on malformed framing.
pub fn parse_reply(buf: &[u8]) -> Result<Option<(Reply, usize)>, RespError> {
    if buf.is_empty() {
        return Ok(None);
    }
    let Some(line_end) = find_crlf(buf, 1) else {
        return Ok(None);
    };
    let line = &buf[1..line_end];
    let after = line_end + 2;
    match buf[0] {
        b'+' => Ok(Some((
            Reply::Simple(String::from_utf8_lossy(line).into_owned()),
            after,
        ))),
        b'-' => Ok(Some((
            Reply::Error(String::from_utf8_lossy(line).into_owned()),
            after,
        ))),
        b':' => Ok(Some((Reply::Integer(parse_int(line)?), after))),
        b'$' => {
            let len = parse_int(line)?;
            if len < 0 {
                return Ok(Some((Reply::Bulk(None), after)));
            }
            let len = len as usize;
            if len > MAX_BULK {
                return Err(err("bulk reply exceeds limit"));
            }
            if buf.len() < after + len + 2 {
                return Ok(None);
            }
            if &buf[after + len..after + len + 2] != b"\r\n" {
                return Err(err("bulk reply not CRLF-terminated"));
            }
            Ok(Some((
                Reply::Bulk(Some(buf[after..after + len].to_vec())),
                after + len + 2,
            )))
        }
        b'*' => {
            let n = parse_int(line)?;
            if n < 0 {
                return Ok(Some((Reply::Array(Vec::new()), after)));
            }
            let mut items = Vec::with_capacity((n as usize).min(64));
            let mut pos = after;
            for _ in 0..n {
                match parse_reply(&buf[pos..])? {
                    Some((item, used)) => {
                        items.push(item);
                        pos += used;
                    }
                    None => return Ok(None),
                }
            }
            Ok(Some((Reply::Array(items), pos)))
        }
        other => Err(err(format!("unknown reply type byte {other:#x}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multibulk_roundtrip() {
        let argv: Argv = vec![b"SET".to_vec(), b"k".to_vec(), b"v\r\nwith crlf".to_vec()];
        let wire = command(&argv);
        let (parsed, used) = parse_command(&wire).unwrap().unwrap();
        assert_eq!(parsed, argv);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn inline_variants() {
        let (argv, used) = parse_command(b"GET  foo\r\n").unwrap().unwrap();
        assert_eq!(argv, vec![b"GET".to_vec(), b"foo".to_vec()]);
        assert_eq!(used, 10);
        // Bare-\n termination and blank lines.
        let (argv, used) = parse_command(b"PING\n").unwrap().unwrap();
        assert_eq!(argv, vec![b"PING".to_vec()]);
        assert_eq!(used, 5);
        let (argv, used) = parse_command(b"\r\nGET x\r\n").unwrap().unwrap();
        assert!(argv.is_empty());
        assert_eq!(used, 2);
    }

    #[test]
    fn partial_input_wants_more() {
        let wire = command(&[b"GET".to_vec(), b"foo".to_vec()]);
        for cut in 0..wire.len() {
            let r = parse_command(&wire[..cut]).unwrap();
            assert!(r.is_none(), "cut at {cut} yielded {r:?}");
        }
    }

    #[test]
    fn malformed_is_an_error_not_a_panic() {
        for bad in [
            &b"*-1\r\n"[..],
            b"*1\r\n:5\r\n",
            b"*1\r\n$-3\r\n",
            b"*99999999\r\n",
            b"*1\r\n$3\r\nabcXY",
            b"*x\r\n",
            b"$5\r\nhello\r\n\x00\n",
        ] {
            assert!(matches!(parse_command(bad), Err(_) | Ok(None)) || bad[0] != b'*');
        }
        assert!(parse_command(b"*1\r\n$3\r\nabcXY").is_err());
    }

    #[test]
    fn reply_roundtrip() {
        let mut out = Vec::new();
        simple(&mut out, "OK");
        integer(&mut out, -42);
        bulk(&mut out, b"payload");
        nil(&mut out);
        array_header(&mut out, 2);
        bulk(&mut out, b"a");
        bulk(&mut out, b"b");

        let mut pos = 0;
        let mut replies = Vec::new();
        while pos < out.len() {
            let (r, used) = parse_reply(&out[pos..]).unwrap().unwrap();
            replies.push(r);
            pos += used;
        }
        assert_eq!(
            replies,
            vec![
                Reply::Simple("OK".into()),
                Reply::Integer(-42),
                Reply::Bulk(Some(b"payload".to_vec())),
                Reply::Bulk(None),
                Reply::Array(vec![
                    Reply::Bulk(Some(b"a".to_vec())),
                    Reply::Bulk(Some(b"b".to_vec())),
                ]),
            ]
        );
    }
}
