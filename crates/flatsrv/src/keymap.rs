//! Byte keys on a `u64` engine keyspace.
//!
//! The engine indexes fixed 8-byte keys; the wire speaks arbitrary byte
//! strings. The front end hashes each raw key onto `u64` ([`hash_key`])
//! and stores the raw key *inside* the value frame ([`encode_frame`]),
//! so a `GET` can verify it found the caller's key and not a hash
//! collision — a colliding key reads as a miss instead of returning a
//! stranger's value, and `SET` on a colliding key overwrites (last
//! writer wins within a hash slot, the same trade every fixed-width-key
//! cache front end makes).

/// Longest raw key accepted over the wire (frame stores a `u16` length).
pub const MAX_KEY_LEN: usize = 4096;

/// FNV-1a over the raw key, finished with a 64-bit avalanche so short
/// keys spread across the whole keyspace (the engine shards cores by
/// key hash). The engine reserves `u64::MAX`; it is remapped.
pub fn hash_key(raw: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in raw {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    // splitmix64 finalizer.
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    if h == u64::MAX {
        0x9e3779b97f4a7c15 // arbitrary fixed stand-in, still well spread
    } else {
        h
    }
}

/// Builds the stored value frame: `[klen: u16 LE][raw key][value]`.
///
/// The frame is never empty (it always carries the 2-byte length), so
/// empty wire values never trip the engine's `EmptyValue` rule.
///
/// # Panics
///
/// `raw.len()` must be ≤ [`MAX_KEY_LEN`] (the command layer rejects
/// longer keys before calling this).
pub fn encode_frame(raw: &[u8], value: &[u8]) -> Vec<u8> {
    assert!(
        raw.len() <= MAX_KEY_LEN,
        "key length checked at the command layer"
    );
    let mut frame = Vec::with_capacity(2 + raw.len() + value.len());
    frame.extend_from_slice(&(raw.len() as u16).to_le_bytes());
    frame.extend_from_slice(raw);
    frame.extend_from_slice(value);
    frame
}

/// Splits a stored frame back into `(raw key, value)`; `None` if the
/// frame is too short for its declared key (not written by this front
/// end).
pub fn decode_frame(frame: &[u8]) -> Option<(&[u8], &[u8])> {
    let (len_bytes, rest) = frame.split_first_chunk::<2>()?;
    let klen = u16::from_le_bytes(*len_bytes) as usize;
    if rest.len() < klen {
        return None;
    }
    Some(rest.split_at(klen))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        for (k, v) in [
            (&b"key"[..], &b"value"[..]),
            (b"", b""),
            (b"k", b""),
            (b"", b"v"),
        ] {
            let frame = encode_frame(k, v);
            assert!(!frame.is_empty());
            assert_eq!(decode_frame(&frame), Some((k, v)));
        }
    }

    #[test]
    fn truncated_frames_are_rejected() {
        assert_eq!(decode_frame(b""), None);
        assert_eq!(decode_frame(&[9]), None);
        assert_eq!(decode_frame(&[9, 0, b'a']), None); // claims 9, has 1
    }

    #[test]
    fn hash_spreads_and_avoids_reserved() {
        assert_ne!(hash_key(b"a"), hash_key(b"b"));
        assert_eq!(hash_key(b"stable"), hash_key(b"stable"));
        // Short sequential keys land on distinct cores (avalanche works).
        let cores: std::collections::HashSet<u64> = (0..64u8).map(|i| hash_key(&[i]) % 4).collect();
        assert_eq!(cores.len(), 4);
        for i in 0..10_000u64 {
            assert_ne!(hash_key(&i.to_le_bytes()), u64::MAX);
        }
    }
}
