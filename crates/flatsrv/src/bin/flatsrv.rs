//! The `flatsrv` server binary: boots a FlatStore engine and serves the
//! RESP subset over TCP and/or Unix-domain sockets.
//!
//! ```sh
//! flatsrv --listen 127.0.0.1:6399 --unix /tmp/flatsrv.sock --ncores 4
//! ```
//!
//! Runs until a client issues `SHUTDOWN` (flatload's `--shutdown` flag
//! does this), then drains and prints the final engine stats report.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use flatsrv::server::{Listener, Server, ServerOpts, StatsSource};
use flatstore::{Config, ExecutionModel, FlatStore, IndexKind};

struct Args {
    listen: Vec<String>,
    unix: Vec<PathBuf>,
    pm_bytes: usize,
    ncores: usize,
    pipeline_depth: usize,
    index: IndexKind,
    write_buf_limit: usize,
    max_conns: usize,
    quiet: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: flatsrv [--listen ADDR:PORT]... [--unix PATH]... \
         [--pm-bytes N] [--ncores N] [--pipeline-depth N] \
         [--index hash|masstree|fastfair] [--write-buf-limit N] \
         [--max-conns N] [--quiet]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: Vec::new(),
        unix: Vec::new(),
        pm_bytes: 512 << 20,
        ncores: 4,
        pipeline_depth: 8,
        index: IndexKind::Masstree,
        write_buf_limit: 1 << 20,
        max_conns: 1024,
        quiet: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--listen" => {
                let v = val();
                args.listen
                    .push(v.strip_prefix("tcp://").unwrap_or(&v).to_string());
            }
            "--unix" => args.unix.push(PathBuf::from(val())),
            "--pm-bytes" => args.pm_bytes = val().parse().unwrap_or_else(|_| usage()),
            "--ncores" => args.ncores = val().parse().unwrap_or_else(|_| usage()),
            "--pipeline-depth" => args.pipeline_depth = val().parse().unwrap_or_else(|_| usage()),
            "--index" => {
                args.index = match val().as_str() {
                    "hash" => IndexKind::Hash,
                    "masstree" => IndexKind::Masstree,
                    "fastfair" => IndexKind::FastFair,
                    _ => usage(),
                }
            }
            "--write-buf-limit" => args.write_buf_limit = val().parse().unwrap_or_else(|_| usage()),
            "--max-conns" => args.max_conns = val().parse().unwrap_or_else(|_| usage()),
            "--quiet" => args.quiet = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.listen.is_empty() && args.unix.is_empty() {
        args.listen.push("127.0.0.1:6399".to_string());
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();

    let mut cfg = match Config::builder()
        .pm_bytes(args.pm_bytes)
        .ncores(args.ncores)
        .group_size(args.ncores)
        .pipeline_depth(args.pipeline_depth)
        .index(args.index)
        .build()
    {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flatsrv: bad config: {e}");
            return ExitCode::FAILURE;
        }
    };
    cfg.model = ExecutionModel::PipelinedHb;
    let store = match FlatStore::create(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flatsrv: engine boot failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = store.handle();
    let store = Arc::new(store);

    let mut listeners = Vec::new();
    for addr in &args.listen {
        match TcpListener::bind(addr) {
            Ok(l) => {
                if !args.quiet {
                    println!(
                        "flatsrv: listening on tcp://{}",
                        l.local_addr()
                            .map_or_else(|_| addr.clone(), |a| a.to_string())
                    );
                }
                listeners.push(Listener::Tcp(l));
            }
            Err(e) => {
                eprintln!("flatsrv: cannot bind {addr}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    for path in &args.unix {
        let _ = std::fs::remove_file(path); // stale socket from a dead run
        match UnixListener::bind(path) {
            Ok(l) => {
                if !args.quiet {
                    println!("flatsrv: listening on unix://{}", path.display());
                }
                listeners.push(Listener::Unix(l));
            }
            Err(e) => {
                eprintln!("flatsrv: cannot bind {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }

    let stats_src: StatsSource = {
        let st = Arc::clone(&store);
        Arc::new(move || st.stats_report().to_json())
    };
    let server = match Server::start(
        handle,
        stats_src,
        listeners,
        ServerOpts {
            write_buf_limit: args.write_buf_limit,
            max_conns: args.max_conns,
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flatsrv: server start failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let shutdown = server.wait();
    for path in &args.unix {
        let _ = std::fs::remove_file(path);
    }
    if !args.quiet {
        println!("{}", store.stats_report().to_json());
        println!(
            "flatsrv: exiting ({})",
            if shutdown {
                "client shutdown"
            } else {
                "stopped"
            }
        );
    }
    ExitCode::SUCCESS
}
