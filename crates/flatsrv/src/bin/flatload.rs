//! The `flatload` load generator: drives the ETC workload at a running
//! `flatsrv` over pipelined RESP connections, then reads the engine's
//! own `INFO` figures back over the wire.
//!
//! ```sh
//! flatload --tcp 127.0.0.1:6399 --conns 4 --depth 8 --ops 50000
//! flatload --unix /tmp/flatsrv.sock --assert-batch-gt 1.0 --shutdown
//! ```
//!
//! `--compare` needs no server: it boots a fresh engine per transport
//! (in-process sessions, loopback TCP, Unix socket), runs identical
//! seeded workloads, and emits the three-way BENCH_7 JSON.

use std::net::TcpListener;
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use flatsrv::load::{self, LoadOpts, LoadSummary, Target};
use flatsrv::server::{Listener, Server, ServerOpts, StatsSource};
use flatstore::{Config, ExecutionModel, FlatStore};

struct Args {
    target: Option<Target>,
    opts: LoadOpts,
    assert_batch_gt: Option<f64>,
    shutdown: bool,
    json: bool,
    compare: bool,
    out: Option<PathBuf>,
}

fn usage() -> ! {
    eprintln!(
        "usage: flatload (--tcp ADDR:PORT | --unix PATH | --compare) \
         [--conns N] [--depth N] [--ops N] [--keyspace N] [--put-ratio F] \
         [--seed N] [--assert-batch-gt F] [--shutdown] [--json] [--out PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        target: None,
        opts: LoadOpts::default(),
        assert_batch_gt: None,
        shutdown: false,
        json: false,
        compare: false,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--tcp" => args.target = Some(Target::Tcp(val())),
            "--unix" => args.target = Some(Target::Unix(PathBuf::from(val()))),
            "--conns" => args.opts.conns = val().parse().unwrap_or_else(|_| usage()),
            "--depth" => args.opts.depth = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => args.opts.ops = val().parse().unwrap_or_else(|_| usage()),
            "--keyspace" => args.opts.keyspace = val().parse().unwrap_or_else(|_| usage()),
            "--put-ratio" => args.opts.put_ratio = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.opts.seed = val().parse().unwrap_or_else(|_| usage()),
            "--assert-batch-gt" => {
                args.assert_batch_gt = Some(val().parse().unwrap_or_else(|_| usage()))
            }
            "--shutdown" => args.shutdown = true,
            "--json" => args.json = true,
            "--compare" => args.compare = true,
            "--out" => args.out = Some(PathBuf::from(val())),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if args.compare == args.target.is_some() {
        usage(); // exactly one of --compare / a target
    }
    args
}

fn print_summary(s: &LoadSummary, label: &str, json: bool) {
    if json {
        println!("{}", s.to_json(label));
    } else {
        print!(
            "flatload [{label}]: {} ops in {:.2}s ({:.3} Mops/s), \
             p50 {:.1}us p99 {:.1}us, {} errors",
            s.ops, s.secs, s.mops, s.p50_us, s.p99_us, s.errors
        );
        if let Some(b) = s.avg_batch {
            print!(", mean HB batch {b:.2}");
        }
        if let Some(h) = s.cache_hit_rate {
            print!(", cache hit rate {h:.2}");
        }
        println!();
    }
}

fn main() -> ExitCode {
    let args = parse_args();
    if args.compare {
        return compare(&args);
    }
    let target = args.target.as_ref().expect("checked in parse_args");

    let summary = match load::run_wire(target, &args.opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("flatload: run failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    print_summary(&summary, "wire", args.json);

    let mut ok = true;
    if summary.errors > 0 {
        eprintln!("flatload: {} commands answered -ERR", summary.errors);
        ok = false;
    }
    if let Some(min) = args.assert_batch_gt {
        match summary.avg_batch {
            Some(b) if b > min => {}
            Some(b) => {
                eprintln!("flatload: mean HB batch {b:.3} not > {min}");
                ok = false;
            }
            None => {
                eprintln!("flatload: INFO did not report avg_batch");
                ok = false;
            }
        }
    }
    if args.shutdown {
        if let Err(e) = load::shutdown(target) {
            eprintln!("flatload: shutdown failed: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Boots a fresh engine, runs the workload through `drive`, and returns
/// the summary with the engine's own mean batch size attached.
fn measured<F>(opts: &LoadOpts, drive: F) -> Result<LoadSummary, String>
where
    F: FnOnce(&Arc<FlatStore>) -> Result<LoadSummary, String>,
{
    let mut cfg = Config::builder()
        .pm_bytes(512 << 20)
        .ncores(4)
        .group_size(4)
        .pipeline_depth(opts.depth.max(1))
        .build()
        .map_err(|e| e.to_string())?;
    cfg.model = ExecutionModel::PipelinedHb;
    let store = Arc::new(FlatStore::create(cfg).map_err(|e| e.to_string())?);
    let mut summary = drive(&store)?;
    summary.avg_batch = Some(store.stats().avg_batch());
    Ok(summary)
}

fn serve(store: &Arc<FlatStore>, listener: Listener) -> std::io::Result<Server> {
    let st = Arc::clone(store);
    let stats_src: StatsSource = Arc::new(move || st.stats_report().to_json());
    Server::start(
        store.handle(),
        stats_src,
        vec![listener],
        ServerOpts::default(),
    )
}

fn compare(args: &Args) -> ExitCode {
    let opts = &args.opts;
    let mut rows: Vec<String> = Vec::new();

    let inproc = measured(opts, |store| {
        load::run_inproc(&store.handle(), opts).map_err(|e| e.to_string())
    });

    let tcp = measured(opts, |store| {
        let l = TcpListener::bind("127.0.0.1:0").map_err(|e| e.to_string())?;
        let server = serve(store, Listener::Tcp(l)).map_err(|e| e.to_string())?;
        let addr = server.tcp_addrs()[0].to_string();
        let r = load::run_wire(&Target::Tcp(addr), opts).map_err(|e| e.to_string());
        server.stop();
        r
    });

    let unix = measured(opts, |store| {
        let path = std::env::temp_dir().join(format!(
            "flatsrv-bench-{}-{}.sock",
            std::process::id(),
            opts.seed
        ));
        let _ = std::fs::remove_file(&path);
        let l = UnixListener::bind(&path).map_err(|e| e.to_string())?;
        let server = serve(store, Listener::Unix(l)).map_err(|e| e.to_string())?;
        let r = load::run_wire(&Target::Unix(path.clone()), opts).map_err(|e| e.to_string());
        server.stop();
        let _ = std::fs::remove_file(&path);
        r
    });

    for (label, result) in [("inproc", inproc), ("tcp", tcp), ("unix", unix)] {
        match result {
            Ok(s) => {
                print_summary(&s, label, false);
                rows.push(s.to_json(label));
            }
            Err(e) => {
                eprintln!("flatload: {label} run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let json = format!(
        "{{\"bench\":\"wire_transports\",\"workload\":\"etc\",\"ops\":{},\"conns\":{},\"depth\":{},\"keyspace\":{},\"put_ratio\":{},\"seed\":{},\"transports\":[{}]}}",
        opts.ops,
        opts.conns,
        opts.depth,
        opts.keyspace,
        obs::json::number(opts.put_ratio),
        opts.seed,
        rows.join(",")
    );
    match &args.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("flatload: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("flatload: wrote {}", path.display());
        }
        None => println!("{json}"),
    }
    ExitCode::SUCCESS
}
