//! Crash recovery under strict fence semantics: flushed-but-unfenced
//! cachelines randomly do not survive a crash, so any missing fence in the
//! engine's persistence protocol shows up as lost acknowledged data.

use flatstore::{Config, FlatStore};
use workloads::value_bytes;

#[test]
fn acknowledged_writes_survive_strict_fence_crashes() {
    for seed in 0..6u64 {
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .crash_tracking(true)
            .strict_fence_seed(Some(seed))
            .build()
            .expect("valid test config");
        let store = FlatStore::create(cfg.clone()).unwrap();
        for k in 0..400u64 {
            store
                .put(k, value_bytes(k ^ seed, 30 + (k % 400) as usize))
                .unwrap();
        }
        for k in 0..50u64 {
            store.delete(k * 3).unwrap();
        }
        store.barrier();
        let pm = store.kill();
        pm.simulate_crash();
        let store = FlatStore::open(pm, cfg).unwrap();
        for k in 0..400u64 {
            let expect = if k % 3 == 0 && k / 3 < 50 {
                None
            } else {
                Some(value_bytes(k ^ seed, 30 + (k % 400) as usize))
            };
            assert_eq!(store.get(k).unwrap(), expect, "seed {seed} key {k}");
        }
        // The recovered store keeps working under strict fences too.
        store.put(10_000, b"alive").unwrap();
        assert_eq!(store.get(10_000).unwrap().as_deref(), Some(&b"alive"[..]));
    }
}

#[test]
fn strict_fence_crash_mid_stream_loses_nothing_acknowledged() {
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true)
        .strict_fence_seed(Some(0xF1A7))
        .build()
        .expect("valid test config");
    let store = FlatStore::create(cfg.clone()).unwrap();
    // No barrier: kill() drains in-flight work, then the crash drops every
    // unfenced line. Everything put() acknowledged must still be there.
    let mut acked = Vec::new();
    for k in 0..600u64 {
        store.put(k, value_bytes(k, 64)).unwrap();
        acked.push(k);
    }
    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, cfg).unwrap();
    for k in acked {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 64)), "key {k}");
    }
}
