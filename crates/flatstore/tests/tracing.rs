//! End-to-end causal tracing: a traced put under replication must report
//! its full causal stage chain, the stage deltas must sum to the
//! end-to-end latency, and the same numbers must be visible in the
//! `latency_breakdown` report section and the Chrome trace export.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flatstore::{Config, FlatStore, Op, OpResult, ReplOp, ReplicationSink};
use obs::{Json, Stage};
use pmem::PmAddr;

/// In-test replication sink that acks every shipped batch instantly: the
/// engine's ack gate opens at once, but traced spans still pass through
/// the `repl_ship` and `repl_ack_wait` stages.
struct InstantSink {
    shipped: Vec<AtomicU64>,
    ops: AtomicU64,
}

impl InstantSink {
    fn new(ncores: usize) -> InstantSink {
        InstantSink {
            shipped: (0..ncores).map(|_| AtomicU64::new(0)).collect(),
            ops: AtomicU64::new(0),
        }
    }
}

impl ReplicationSink for InstantSink {
    fn ship(&self, core: usize, ops: Vec<ReplOp>, _tail: PmAddr) -> u64 {
        self.ops.fetch_add(ops.len() as u64, Ordering::Relaxed);
        self.shipped[core].fetch_add(1, Ordering::AcqRel) + 1
    }

    fn acked(&self, core: usize) -> u64 {
        self.shipped[core].load(Ordering::Acquire)
    }
}

fn traced_cfg() -> Config {
    // pmlint: allow(no-unwrap) — test-only configuration.
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20) // read cache on → cache_invalidate stage
        .ncores(2)
        .group_size(2)
        .pipeline_depth(8)
        .trace_sample(1)
        .build()
        .expect("valid test config")
}

#[test]
fn traced_put_under_replication_reports_causal_stage_chain() {
    let sink = Arc::new(InstantSink::new(2));
    let store = FlatStore::create_with_replication(
        traced_cfg(),
        Arc::clone(&sink) as Arc<dyn ReplicationSink>,
    )
    .expect("create replicated store");
    let mut session = store.session().expect("session");
    for k in 0..64u64 {
        session.submit(Op::put(k, b"traced-value")).expect("submit");
    }
    for (_, r) in session.wait_all().expect("wait_all") {
        assert_eq!(r, OpResult::Put(Ok(())));
    }
    assert!(sink.ops.load(Ordering::Relaxed) >= 64, "sink never shipped");

    let spans = session.drain_spans();
    assert_eq!(spans.len(), 64, "trace_sample=1 must trace every op");
    let span = spans
        .iter()
        .max_by_key(|s| s.stamps.len())
        .expect("non-empty");

    // ≥ 7 distinct causal stages on a replicated put (10 expected here).
    let stages: BTreeSet<Stage> = span.stamps.iter().map(|&(s, _)| s).collect();
    assert!(
        stages.len() >= 7,
        "only {} distinct stages: {stages:?}",
        stages.len()
    );
    for required in [
        Stage::ClientEnqueue,
        Stage::RingTransit,
        Stage::ShardPoll,
        Stage::KeyGate,
        Stage::LeaderPersist,
        Stage::ReplShip,
        Stage::ReplAckWait,
        Stage::Delivery,
    ] {
        assert!(stages.contains(&required), "missing stage {required:?}");
    }

    // The stage deltas must account for the whole end-to-end latency.
    let total = span.total_ns();
    assert!(total > 0, "span has no duration");
    let sum: u64 = span.deltas().iter().map(|&(_, d)| d).sum();
    assert!(
        sum.abs_diff(total) <= total / 100,
        "stage deltas sum to {sum} ns but end-to-end is {total} ns"
    );

    // Same story in the stats report's latency_breakdown section...
    let report = store.stats_report();
    let json = Json::parse(&report.to_json()).expect("report JSON parses");
    let breakdown = json
        .get("sections")
        .and_then(|s| s.get("latency_breakdown"))
        .expect("latency_breakdown section");
    assert!(
        breakdown
            .get("spans")
            .and_then(Json::as_f64)
            .is_some_and(|n| n >= 64.0),
        "breakdown spans row missing or too small"
    );
    for row in [
        "client_enqueue_p50_ns",
        "ring_transit_p50_ns",
        "shard_poll_p50_ns",
        "key_gate_p50_ns",
        "batch_join_p50_ns",
        "leader_persist_p50_ns",
        "repl_ship_p50_ns",
        "repl_ack_wait_p50_ns",
        "cache_invalidate_p50_ns",
        "delivery_p50_ns",
        "end_to_end_p50_ns",
        "persist_per_entry_p50_ns",
    ] {
        assert!(breakdown.get(row).is_some(), "missing breakdown row {row}");
    }

    // ...and in the Chrome export: the chosen op's stage events must sum
    // (in fractional microseconds) to its end-to-end latency.
    let doc = store.chrome_trace(&spans);
    let parsed = Json::parse(&doc).expect("chrome trace parses");
    let events = parsed
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents");
    let dur_us: f64 = events
        .iter()
        .filter(|e| {
            e.get("args")
                .and_then(|a| a.get("trace"))
                .and_then(Json::as_f64)
                == Some(span.ctx.trace_id as f64)
        })
        .filter_map(|e| e.get("dur").and_then(Json::as_f64))
        .sum();
    let total_us = total as f64 / 1000.0;
    assert!(
        (dur_us - total_us).abs() <= total_us * 0.01 + 1e-3,
        "chrome durations sum to {dur_us} us but end-to-end is {total_us} us"
    );
    // Batch spans from the leader's flight ring ride along in the export.
    assert!(
        events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("batch_persist")),
        "no batch_persist spans in the chrome export"
    );

    store.shutdown().expect("shutdown");
}

#[test]
fn traced_get_takes_the_short_path() {
    let store = FlatStore::create(traced_cfg()).expect("create store");
    store.put(9, b"value").expect("put");
    let mut session = store.session().expect("session");
    let t = session.submit(Op::Get { key: 9 }).expect("submit");
    assert_eq!(
        session.wait(t).expect("wait"),
        OpResult::Get(Ok(Some(b"value".to_vec())))
    );
    let spans = session.drain_spans();
    let span = spans.iter().find(|s| !s.stamps.is_empty()).expect("span");
    let stages: BTreeSet<Stage> = span.stamps.iter().map(|&(s, _)| s).collect();
    for required in [Stage::RingTransit, Stage::Execute, Stage::Delivery] {
        assert!(stages.contains(&required), "missing stage {required:?}");
    }
    assert!(
        !stages.contains(&Stage::LeaderPersist) && !stages.contains(&Stage::BatchJoin),
        "a get must not pass through the persist pipeline: {stages:?}"
    );
    store.shutdown().expect("shutdown");
}

#[test]
fn trace_sample_zero_records_nothing() {
    // pmlint: allow(no-unwrap) — test-only configuration.
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .ncores(2)
        .group_size(2)
        .pipeline_depth(4)
        .build()
        .expect("valid test config");
    let store = FlatStore::create(cfg).expect("create store");
    let mut session = store.session().expect("session");
    for k in 0..32u64 {
        session.submit(Op::put(k, b"untraced")).expect("submit");
    }
    session.wait_all().expect("wait_all");
    assert!(session.drain_spans().is_empty(), "unsampled ops left spans");
    let json = store.stats_report().to_json();
    assert!(
        !json.contains("latency_breakdown"),
        "breakdown section must be absent with trace_sample=0"
    );
    store.shutdown().expect("shutdown");
}
