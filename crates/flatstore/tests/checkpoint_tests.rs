//! Checkpointing (paper §3.5): a checkpoint lets crash recovery skip the
//! pre-checkpoint log while recovering exactly the acknowledged state.

use flatstore::{Config, FlatStore, StoreError};
use workloads::value_bytes;

fn cfg() -> Config {
    Config::builder()
        .pm_bytes(128 << 20)
        .dram_bytes(16 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true)
        .build()
        .expect("valid test config")
}

#[test]
fn checkpoint_then_crash_recovers_everything() {
    let c = cfg();
    let store = FlatStore::create(c.clone()).unwrap();
    // Pre-checkpoint state: mixed sizes, overwrites, deletes.
    for k in 0..800u64 {
        store.put(k, value_bytes(k, 90)).unwrap();
    }
    for k in 0..200u64 {
        store.put(k, value_bytes(k + 1, 700)).unwrap();
    }
    store.delete(5).unwrap();
    store.checkpoint().unwrap();

    // Post-checkpoint writes (only these need replaying).
    for k in 800..1_000u64 {
        store.put(k, value_bytes(k, 40)).unwrap();
    }
    store.put(0, value_bytes(999, 50)).unwrap(); // overwrite a ckpt key
    store.delete(1).unwrap(); // delete a ckpt key
    store.put(5, value_bytes(55, 60)).unwrap(); // resurrect a ckpt-deleted key
    store.barrier();

    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, c).unwrap();

    assert_eq!(store.get(0).unwrap(), Some(value_bytes(999, 50)));
    assert_eq!(store.get(1).unwrap(), None);
    assert_eq!(store.get(5).unwrap(), Some(value_bytes(55, 60)));
    for k in 2..200u64 {
        if k == 5 {
            continue;
        }
        assert_eq!(
            store.get(k).unwrap(),
            Some(value_bytes(k + 1, 700)),
            "key {k}"
        );
    }
    for k in 200..800u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 90)), "key {k}");
    }
    for k in 800..1_000u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 40)), "key {k}");
    }
    // Fully writable afterwards (allocator state consistent).
    for k in 0..300u64 {
        store.put(50_000 + k, value_bytes(k, 500)).unwrap();
    }
    for k in 0..300u64 {
        assert_eq!(store.get(50_000 + k).unwrap(), Some(value_bytes(k, 500)));
    }
}

#[test]
fn checkpoint_recovery_scans_less_log() {
    let c = cfg();

    // Without a checkpoint: recovery reads the whole log.
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..4_000u64 {
        store.put(k, value_bytes(k, 120)).unwrap();
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();
    let before = pm.stats().snapshot();
    let store = FlatStore::open(pm.clone(), c.clone()).unwrap();
    let full_reads = pm.stats().snapshot().delta(&before).bytes_read;
    drop(store);

    // With a checkpoint covering the same writes: the replay is tiny.
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..4_000u64 {
        store.put(k, value_bytes(k, 120)).unwrap();
    }
    store.checkpoint().unwrap();
    for k in 0..40u64 {
        store.put(100_000 + k, value_bytes(k, 20)).unwrap();
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();
    let before = pm.stats().snapshot();
    let store = FlatStore::open(pm.clone(), c).unwrap();
    let ckpt_reads = pm.stats().snapshot().delta(&before).bytes_read;
    assert_eq!(store.len(), 4_040);
    assert!(
        ckpt_reads * 2 < full_reads,
        "checkpointed recovery should read far less: {ckpt_reads} vs {full_reads}"
    );
}

#[test]
fn cleaner_invalidates_checkpoints() {
    let mut c = cfg();
    c.pm_bytes = 64 << 20;
    c.gc.min_free_chunks = 10;
    c.gc.max_live_ratio = 0.9;
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..500u64 {
        store.put(k, value_bytes(k, 150)).unwrap();
    }
    store.checkpoint().unwrap();
    // Churn until the cleaner runs (relocating entries the checkpoint
    // references). Transient OutOfSpace just means the cooperative cleaner
    // is behind; give it a moment and retry, as a real client would.
    let put_retry = |key: u64, val: &[u8]| loop {
        match store.put(key, val) {
            Ok(()) => break,
            Err(StoreError::OutOfSpace) => {
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    };
    for round in 0..260u64 {
        for k in 0..400u64 {
            put_retry(k, &value_bytes(k + round, 200));
        }
    }
    store.barrier();
    assert!(
        store
            .stats()
            .gc_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "test needs the cleaner to run"
    );
    let pm = store.kill();
    pm.simulate_crash();
    // Recovery must have taken the full-scan path (checkpoint invalidated)
    // and still be exactly right.
    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..400u64 {
        assert_eq!(
            store.get(k).unwrap(),
            Some(value_bytes(k + 259, 200)),
            "key {k}"
        );
    }
    for k in 400..500u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 150)), "key {k}");
    }
}

#[test]
fn checkpoint_is_repeatable_and_survives_clean_shutdown() {
    let c = cfg();
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..100u64 {
        store.put(k, value_bytes(k, 64)).unwrap();
    }
    store.checkpoint().unwrap();
    for k in 100..200u64 {
        store.put(k, value_bytes(k, 64)).unwrap();
    }
    store.checkpoint().unwrap(); // replaces the first snapshot
    let pm = store.shutdown().unwrap(); // clean shutdown replaces it again
    let store = FlatStore::open(pm, c).unwrap();
    assert_eq!(store.len(), 200);
    for k in 0..200u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 64)));
    }
    // And checkpointing still works on the reopened store.
    store.put(1_000, b"x").unwrap();
    store.checkpoint().unwrap();
    assert_eq!(store.get(1_000).unwrap().as_deref(), Some(&b"x"[..]));
    let _ = StoreError::OutOfSpace; // silence unused-import lints if any
}

#[test]
fn checkpoint_under_strict_fences() {
    // Strict mode drops flushed-but-unfenced lines on crash: every persist
    // in the checkpoint protocol (cursors, bitmaps, snapshot, flag) must be
    // properly fenced or this loses data.
    for seed in 0..4u64 {
        let mut c = cfg();
        c.strict_fence_seed = Some(seed);
        let store = FlatStore::create(c.clone()).unwrap();
        for k in 0..600u64 {
            store.put(k, value_bytes(k ^ seed, 70)).unwrap();
        }
        store.checkpoint().unwrap();
        for k in 600..700u64 {
            store.put(k, value_bytes(k ^ seed, 70)).unwrap();
        }
        store.barrier();
        let pm = store.kill();
        pm.simulate_crash();
        let store = FlatStore::open(pm, c).unwrap();
        assert_eq!(store.len(), 700, "seed {seed}");
        for k in 0..700u64 {
            assert_eq!(
                store.get(k).unwrap(),
                Some(value_bytes(k ^ seed, 70)),
                "seed {seed} key {k}"
            );
        }
    }
}
