//! Crash-point property testing: run an arbitrary prefix of an arbitrary
//! workload, pull the plug, and verify recovery restores exactly the
//! acknowledged state — for every prefix the strategy picks.

use std::collections::HashMap;

use flatstore::{Config, FlatStore};
use proptest::prelude::*;
use workloads::value_bytes;

#[derive(Debug, Clone)]
enum Cmd {
    Put { key: u64, len: usize },
    Delete { key: u64 },
}

fn script() -> impl Strategy<Value = (Vec<Cmd>, usize)> {
    let cmd = prop_oneof![
        4 => (0u64..60, 1usize..600).prop_map(|(key, len)| Cmd::Put { key, len }),
        1 => (0u64..60).prop_map(|key| Cmd::Delete { key }),
    ];
    prop::collection::vec(cmd, 1..120).prop_flat_map(|cmds| {
        let n = cmds.len();
        (Just(cmds), 0..n)
    })
}

fn small_cfg() -> Config {
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .crash_tracking(true)
        .build()
        .expect("valid test config")
}

proptest! {
    // Each case spins up worker threads; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Crash after an arbitrary prefix of acknowledged operations: the
    /// recovered store equals the model at exactly that prefix.
    #[test]
    fn any_crash_point_recovers_acknowledged_state((cmds, crash_at) in script()) {
        let cfg = small_cfg();
        let store = FlatStore::create(cfg.clone()).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (i, cmd) in cmds.iter().enumerate().take(crash_at) {
            match cmd {
                Cmd::Put { key, len } => {
                    let v = value_bytes(*key ^ i as u64, *len);
                    store.put(*key, &v).unwrap();
                    model.insert(*key, v);
                }
                Cmd::Delete { key } => {
                    let existed = store.delete(*key).unwrap();
                    prop_assert_eq!(existed, model.remove(key).is_some());
                }
            }
        }
        // Every operation above was acknowledged (put/delete returned), so
        // all of it must survive the crash — nothing more, nothing less.
        let pm = store.kill();
        pm.simulate_crash();
        let store = FlatStore::open(pm, cfg).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            let got = store.get(*k).unwrap();
            prop_assert_eq!(got.as_deref(), Some(v.as_slice()));
        }
        // Keys the model never saw (or deleted) are absent.
        for k in 0..60u64 {
            if !model.contains_key(&k) {
                prop_assert_eq!(store.get(k).unwrap(), None);
            }
        }
        // The recovered store accepts new writes.
        store.put(1_000, b"post-crash").unwrap();
        let got = store.get(1_000).unwrap();
        prop_assert_eq!(got.as_deref(), Some(&b"post-crash"[..]));
    }
}
