//! Pipelined-session semantics over the FlatRPC fabric: every ticket
//! completes exactly once, per-key completions arrive in submission order,
//! and pipelining actually feeds horizontal batching (the reason the
//! session API exists).

use std::collections::{HashMap, HashSet};

use flatstore::{Config, ExecutionModel, FlatStore, Op, OpResult, StoreError, Ticket};
use proptest::prelude::*;
use workloads::value_bytes;

fn cfg(ncores: usize, depth: usize) -> Config {
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(ncores)
        .group_size(ncores)
        .pipeline_depth(depth)
        .build()
        .expect("valid test config")
}

/// What one submitted op should complete with, per a sequential replay of
/// the whole script. Per-key completions are promised in submission order
/// and keys are independent, so sequential replay is the exact model.
fn sequential_model(ops: &[(u8, u64)]) -> Vec<OpResult> {
    let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
    ops.iter()
        .enumerate()
        .map(|(i, &(op, key))| match op % 3 {
            0 => {
                model.insert(key, value_bytes(i as u64, 24));
                OpResult::Put(Ok(()))
            }
            1 => OpResult::Delete(Ok(model.remove(&key).is_some())),
            _ => OpResult::Get(Ok(model.get(&key).cloned())),
        })
        .collect()
}

proptest! {
    // Each case spins up a live engine; keep the count moderate.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A depth-8 session under a random put/delete/get script over a hot
    /// key space: every ticket completes exactly once, a harvested ticket
    /// is gone, per-key completion order equals submission order, and each
    /// completion carries the sequentially-consistent result.
    #[test]
    fn pipelined_script_completes_exactly_once_in_per_key_order(
        ops in proptest::collection::vec((0..3u8, 0..12u64), 1..150)
    ) {
        let store = FlatStore::create(cfg(2, 8)).unwrap();
        let mut session = store.session().unwrap();

        let mut submitted: HashMap<Ticket, usize> = HashMap::new();
        let mut completed: Vec<(Ticket, OpResult)> = Vec::new();
        for (i, &(op, key)) in ops.iter().enumerate() {
            let t = match op % 3 {
                0 => session.submit(Op::put(key, value_bytes(i as u64, 24))).unwrap(),
                1 => session.submit(Op::Delete { key }).unwrap(),
                _ => session.submit(Op::Get { key }).unwrap(),
            };
            prop_assert!(submitted.insert(t, i).is_none(), "ticket reused");
            // Harvest opportunistically, as a real client would.
            completed.extend(session.poll_completions());
        }
        completed.extend(session.wait_all().unwrap());
        prop_assert_eq!(session.in_flight(), 0);

        // Exactly once: one completion per submission, no strays.
        prop_assert_eq!(completed.len(), ops.len());
        let uniq: HashSet<Ticket> = completed.iter().map(|(t, _)| *t).collect();
        prop_assert_eq!(uniq.len(), ops.len());
        for (t, _) in &completed {
            prop_assert!(submitted.contains_key(t), "completion for unknown ticket");
        }
        // A harvested ticket is spent.
        let (first, _) = completed[0];
        prop_assert!(matches!(session.wait(first), Err(StoreError::UnknownTicket)));

        // Per-key completion order matches submission order, and each
        // result is the sequential-replay one.
        let expect = sequential_model(&ops);
        let mut last_idx_per_key: HashMap<u64, usize> = HashMap::new();
        for (t, result) in &completed {
            let i = submitted[t];
            let key = ops[i].1;
            if let Some(&prev) = last_idx_per_key.get(&key) {
                prop_assert!(
                    prev < i,
                    "key {} completed op {} before op {}", key, prev, i
                );
            }
            last_idx_per_key.insert(key, i);
            prop_assert_eq!(result, &expect[i], "op {} on key {}", i, key);
        }
        store.shutdown().unwrap();
    }
}

/// The regression the pipeline exists to prevent: with blocking depth-1
/// clients a core's batch rarely exceeds one entry, but 4 sessions at
/// depth 8 must keep enough puts in flight that horizontal batching
/// amortises persists across entries (mean batch size > 1).
#[test]
fn pipelined_sessions_fill_hb_batches() {
    let mut c = cfg(4, 8);
    c.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(c).unwrap();

    std::thread::scope(|s| {
        for client in 0..4u64 {
            let mut session = store.session().unwrap();
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let key = client * 100_000 + i % 512;
                    session.submit(Op::put(key, value_bytes(i, 32))).unwrap();
                }
                for (_, r) in session.wait_all().unwrap() {
                    assert_eq!(r, OpResult::Put(Ok(())));
                }
            });
        }
    });

    let avg = store.stats().avg_batch();
    assert!(
        avg > 1.0,
        "4 clients x depth 8 should batch more than one entry per persist, got {avg:.3}"
    );
    store.shutdown().unwrap();
}

/// Adaptive mode must preserve the same batching property end-to-end —
/// same workload as above, but on the single publish fabric with the
/// tuner live — and its report must carry the `batch_tuner` section
/// (which static runs must NOT emit).
#[test]
fn adaptive_sessions_fill_hb_batches_and_report_tuner() {
    let mut c = cfg(4, 8);
    c.model = ExecutionModel::PipelinedHb;
    c.adaptive = true;
    let store = FlatStore::create(c).unwrap();

    std::thread::scope(|s| {
        for client in 0..4u64 {
            let mut session = store.session().unwrap();
            s.spawn(move || {
                for i in 0..2_000u64 {
                    let key = client * 100_000 + i % 512;
                    session.submit(Op::put(key, value_bytes(i, 32))).unwrap();
                }
                for (_, r) in session.wait_all().unwrap() {
                    assert_eq!(r, OpResult::Put(Ok(())));
                }
            });
        }
    });

    let avg = store.stats().avg_batch();
    assert!(
        avg > 1.0,
        "adaptive mode must batch more than one entry per persist, got {avg:.3}"
    );
    let report = store.stats_report();
    assert!(
        report.sections.iter().any(|s| s.title == "batch_tuner"),
        "adaptive run must report the batch_tuner section"
    );
    // Writes must read back (the swept-subgroup sweep may not drop ops).
    for client in 0..4u64 {
        let key = client * 100_000;
        assert!(store.get(key).unwrap().is_some(), "key {key} lost");
    }
    store.shutdown().unwrap();
}

/// Static runs keep the report vocabulary unchanged: no tuner section.
#[test]
fn static_runs_do_not_report_a_tuner_section() {
    let store = FlatStore::create(cfg(2, 4)).unwrap();
    store.put(1, b"v").unwrap();
    let report = store.stats_report();
    assert!(report.sections.iter().all(|s| s.title != "batch_tuner"));
    store.shutdown().unwrap();
}

/// The backoff ladder in `Session::wait` must never throttle an *active*
/// pipeline: a saturated depth-8 session spends its waits in the spin
/// phase (completions arrive within microseconds), so a sustained burst
/// has to finish at interactive speed AND still fill HB batches. If the
/// ladder ever escalated to sleeps on the hot path, this burst would
/// take minutes, not seconds.
#[test]
fn backoff_does_not_throttle_a_saturated_pipeline() {
    let mut c = cfg(2, 8);
    c.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(c).unwrap();
    let mut session = store.session().unwrap();

    let ops = 20_000u64;
    let start = std::time::Instant::now();
    for i in 0..ops {
        session
            .submit(Op::put(i % 1024, value_bytes(i, 32)))
            .unwrap();
    }
    for (_, r) in session.wait_all().unwrap() {
        assert_eq!(r, OpResult::Put(Ok(())));
    }
    let elapsed = start.elapsed();
    drop(session);

    // Generous bound: the engine sustains well over 100k puts/s here even
    // on a loaded CI box; a sleep-poisoned wait path would blow through it
    // by orders of magnitude (20k ops x 5 µs minimum sleep = 100 ms of
    // sleeping per escalation round).
    assert!(
        elapsed < std::time::Duration::from_secs(20),
        "saturated pipeline took {elapsed:?} for {ops} ops"
    );
    let avg = store.stats().avg_batch();
    assert!(avg > 1.0, "pipelined puts should still batch, got {avg:.3}");
    store.shutdown().unwrap();
}

/// Dropping a session mid-flight must not wedge the engine or lose
/// acknowledged-by-submission durability semantics for completed ops.
#[test]
fn dropping_a_busy_session_leaves_the_engine_healthy() {
    let store = FlatStore::create(cfg(2, 8)).unwrap();
    {
        let mut session = store.session().unwrap();
        for k in 0..64u64 {
            session.submit(Op::put(k, value_bytes(k, 48))).unwrap();
        }
        // Drop with most completions unharvested.
    }
    // The blocking path still works and observes the drained puts.
    for k in 0..64u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 48)), "key {k}");
    }
    store.shutdown().unwrap();
}

/// Sessions fail fast once the engine has stopped.
#[test]
fn sessions_error_after_shutdown() {
    let store = FlatStore::create(cfg(2, 4)).unwrap();
    let handle = store.handle();
    store.shutdown().unwrap();
    assert!(matches!(handle.session(), Err(StoreError::ShuttingDown)));
    assert!(matches!(handle.put(1, b"x"), Err(StoreError::ShuttingDown)));
}

/// The pre-redesign `submit_*` wrappers stay behaviour-identical to
/// `submit(Op)` — one test pins them so the compatibility shim cannot
/// rot while the rest of the suite moves to the typed entry point.
#[test]
fn legacy_submit_wrappers_still_work() {
    let store = FlatStore::create(cfg(2, 4)).unwrap();
    let mut session = store.session().unwrap();

    let t = session.submit_put(5, b"legacy").unwrap();
    assert_eq!(session.wait(t).unwrap(), OpResult::Put(Ok(())));
    let t = session.submit_get(5).unwrap();
    assert_eq!(
        session.wait(t).unwrap(),
        OpResult::Get(Ok(Some(b"legacy".to_vec())))
    );
    let t = session.submit_delete(5).unwrap();
    assert_eq!(session.wait(t).unwrap(), OpResult::Delete(Ok(true)));
    // Hash index: ranges complete with RangeUnsupported, same as Op::Range.
    let t = session.submit_range(0, 10, 16).unwrap();
    assert_eq!(
        session.wait(t).unwrap(),
        OpResult::Range(Err(StoreError::RangeUnsupported))
    );

    drop(session);
    store.shutdown().unwrap();
}

/// `KvApi` is one surface over both blocking transports: the same
/// generic driver runs against a `StoreHandle` and a session-backed
/// `Client`.
#[test]
fn kv_api_unifies_handle_and_client() {
    use flatstore::{Client, KvApi};

    fn drive(kv: &mut impl KvApi, base: u64) {
        kv.put(base, b"unified").unwrap();
        assert_eq!(kv.get(base).unwrap(), Some(b"unified".to_vec()));
        assert!(kv.delete(base).unwrap());
        assert_eq!(kv.get(base).unwrap(), None);
        assert!(matches!(
            kv.range(0, 10, 4),
            Err(StoreError::RangeUnsupported)
        ));
    }

    let store = FlatStore::create(cfg(2, 4)).unwrap();
    let mut handle = store.handle();
    drive(&mut handle, 100);
    let mut client = Client::new(store.session().unwrap());
    drive(&mut client, 200);
    // Object safety: the transport can be picked at run time.
    let mut dyn_kv: Box<dyn KvApi> = Box::new(client);
    dyn_kv.put(300, b"dyn").unwrap();
    assert_eq!(dyn_kv.get(300).unwrap(), Some(b"dyn".to_vec()));
    drop(dyn_kv);
    drop(handle);
    store.shutdown().unwrap();
}
