//! End-to-end engine tests: correctness across execution models and index
//! kinds, concurrency, crash recovery, clean shutdown and log cleaning.

use flatstore::{Config, ExecutionModel, FlatStore, IndexKind, StoreError};
use workloads::value_bytes;

fn cfg(ncores: usize) -> Config {
    Config::builder()
        .pm_bytes(128 << 20)
        .dram_bytes(16 << 20)
        .ncores(ncores)
        .group_size(ncores.max(1))
        .crash_tracking(false)
        .build()
        .expect("valid test config")
}

#[test]
fn put_get_delete_round_trip() {
    let store = FlatStore::create(cfg(2)).unwrap();
    for k in 0..500u64 {
        store.put(k, value_bytes(k, 32)).unwrap();
    }
    for k in 0..500u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 32)), "key {k}");
    }
    assert_eq!(store.get(10_000).unwrap(), None);
    assert!(store.delete(123).unwrap());
    assert_eq!(store.get(123).unwrap(), None);
    assert!(!store.delete(123).unwrap());
    assert_eq!(store.len(), 499);
}

#[test]
fn overwrites_return_latest() {
    let store = FlatStore::create(cfg(2)).unwrap();
    for round in 1..=5u64 {
        for k in 0..50u64 {
            store.put(k, value_bytes(k * round + 1, 24)).unwrap();
        }
    }
    for k in 0..50u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k * 5 + 1, 24)));
    }
    assert_eq!(store.len(), 50);
}

#[test]
fn values_span_inline_and_allocator_paths() {
    let store = FlatStore::create(cfg(2)).unwrap();
    // 1 B (inline), 256 B (inline boundary), 257 B (allocator), 4 KB, 1 MB.
    for (k, len) in [(1u64, 1usize), (2, 256), (3, 257), (4, 4096), (5, 1 << 20)] {
        store.put(k, value_bytes(k, len)).unwrap();
    }
    for (k, len) in [(1u64, 1usize), (2, 256), (3, 257), (4, 4096), (5, 1 << 20)] {
        assert_eq!(
            store.get(k).unwrap(),
            Some(value_bytes(k, len)),
            "len {len}"
        );
    }
}

#[test]
fn empty_values_and_reserved_keys_rejected() {
    let store = FlatStore::create(cfg(1)).unwrap();
    assert_eq!(store.put(1, b""), Err(StoreError::EmptyValue));
    assert_eq!(store.put(u64::MAX, b"x"), Err(StoreError::ReservedKey));
}

#[test]
fn all_execution_models_are_correct() {
    for model in [
        ExecutionModel::NonBatch,
        ExecutionModel::Vertical,
        ExecutionModel::NaiveHb,
        ExecutionModel::PipelinedHb,
    ] {
        let mut c = cfg(3);
        c.model = model;
        let store = FlatStore::create(c).unwrap();
        let handle = store.handle();
        let mut joins = Vec::new();
        for t in 0..3u64 {
            let h = handle.clone();
            joins.push(std::thread::spawn(move || {
                for i in 0..300u64 {
                    let k = t * 1000 + i;
                    h.put(k, value_bytes(k, 40)).unwrap();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        for t in 0..3u64 {
            for i in 0..300u64 {
                let k = t * 1000 + i;
                assert_eq!(
                    store.get(k).unwrap(),
                    Some(value_bytes(k, 40)),
                    "{model:?} key {k}"
                );
            }
        }
        assert_eq!(store.len(), 900, "{model:?}");
    }
}

#[test]
fn all_index_kinds_are_correct() {
    for kind in [IndexKind::Hash, IndexKind::Masstree, IndexKind::FastFair] {
        let mut c = cfg(2);
        c.index = kind;
        let store = FlatStore::create(c).unwrap();
        for k in 0..400u64 {
            store.put(k, value_bytes(k, 16)).unwrap();
        }
        for k in 0..400u64 {
            assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 16)), "{kind:?}");
        }
        store.delete(7).unwrap();
        assert_eq!(store.get(7).unwrap(), None);
    }
}

#[test]
fn range_scan_on_ordered_indexes() {
    for kind in [IndexKind::Masstree, IndexKind::FastFair] {
        let mut c = cfg(2);
        c.index = kind;
        let store = FlatStore::create(c).unwrap();
        for k in (0..200u64).rev() {
            store.put(k * 2, value_bytes(k, 20)).unwrap();
        }
        store.barrier();
        let got = store.range(10, 50, 100).unwrap();
        let keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
        let expect: Vec<u64> = (10..50).filter(|k| k % 2 == 0).collect();
        assert_eq!(keys, expect, "{kind:?}");
        for (k, v) in got {
            assert_eq!(v, value_bytes(k / 2, 20));
        }
        // Limit respected.
        assert_eq!(store.range(0, 400, 5).unwrap().len(), 5);
    }
}

#[test]
fn range_unsupported_on_hash() {
    let store = FlatStore::create(cfg(1)).unwrap();
    assert_eq!(
        store.range(0, 10, 10).unwrap_err(),
        StoreError::RangeUnsupported
    );
}

#[test]
fn concurrent_mixed_clients() {
    let mut c = cfg(4);
    c.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(c).unwrap();
    let handle = store.handle();
    let mut joins = Vec::new();
    for t in 0..6u64 {
        let h = handle.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..400u64 {
                let k = i % 200; // heavy key overlap across clients
                match (t + i) % 3 {
                    0 => {
                        h.put(k, value_bytes(k + t, 30)).unwrap();
                    }
                    1 => {
                        let _ = h.get(k).unwrap();
                    }
                    _ => {
                        let _ = h.delete(k).unwrap();
                    }
                }
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    store.barrier();
    // Batching actually happened under concurrency.
    assert!(
        store
            .stats()
            .batches
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0
    );
}

#[test]
fn clean_shutdown_and_reopen() {
    let mut c = cfg(2);
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..300u64 {
        store.put(k, value_bytes(k, 48)).unwrap();
    }
    store.delete(5).unwrap();
    store.delete(6).unwrap();
    let pm = store.shutdown().unwrap();

    let store = FlatStore::open(pm, c).unwrap();
    assert_eq!(store.len(), 298);
    for k in 0..300u64 {
        let expect = (k != 5 && k != 6).then(|| value_bytes(k, 48));
        assert_eq!(store.get(k).unwrap(), expect, "key {k}");
    }
    // The store remains fully usable: new writes and deletes work.
    store.put(5, value_bytes(500, 48)).unwrap();
    assert_eq!(store.get(5).unwrap(), Some(value_bytes(500, 48)));
}

#[test]
fn crash_recovery_preserves_acknowledged_writes() {
    let mut c = cfg(2);
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    for k in 0..300u64 {
        store.put(k, value_bytes(k, 100)).unwrap();
    }
    // Mix of inline and out-of-log values.
    for k in 0..50u64 {
        store.put(k, value_bytes(k + 1, 1000)).unwrap();
    }
    store.delete(10).unwrap();
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();

    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..300u64 {
        let expect = if k == 10 {
            None
        } else if k < 50 {
            Some(value_bytes(k + 1, 1000))
        } else {
            Some(value_bytes(k, 100))
        };
        assert_eq!(store.get(k).unwrap(), expect, "key {k}");
    }
    // Version continuity: a new Put to the deleted key wins over the
    // tombstone even across another crash.
    store.put(10, value_bytes(99, 64)).unwrap();
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, cfg(2)).unwrap();
    assert_eq!(store.get(10).unwrap(), Some(value_bytes(99, 64)));
}

#[test]
fn crash_recovery_after_overwrites_keeps_newest() {
    let mut c = cfg(2);
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    for round in 0..6u64 {
        for k in 0..100u64 {
            store.put(k, value_bytes(k + round * 7, 64)).unwrap();
        }
    }
    store.barrier();
    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..100u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k + 35, 64)));
    }
    assert_eq!(store.len(), 100);
}

#[test]
fn gc_reclaims_space_under_overwrite_pressure() {
    let mut c = cfg(2);
    c.pm_bytes = 64 << 20; // 15 pool chunks
    c.gc.min_free_chunks = 10;
    c.gc.max_live_ratio = 0.9;
    let store = FlatStore::create(c).unwrap();
    // Overwrite a small key set with inline values until several chunks
    // fill with dead entries.
    for round in 0..300u64 {
        for k in 0..400u64 {
            store.put(k, value_bytes(k + round, 200)).unwrap();
        }
    }
    store.barrier();
    // Wait for quarantined chunks to mature and be released.
    std::thread::sleep(std::time::Duration::from_millis(60));
    for k in 0..10u64 {
        store.put(100_000 + k, value_bytes(k, 8)).unwrap();
    }
    store.barrier();
    let cleaned = store
        .stats()
        .gc_chunks
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(cleaned > 0, "cleaner never ran");
    // All data still correct after cleaning.
    for k in 0..400u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k + 299, 200)));
    }
    assert!(store.free_chunks() > 0);
}

#[test]
fn gc_then_crash_recovery_is_consistent() {
    let mut c = cfg(2);
    c.pm_bytes = 64 << 20;
    c.crash_tracking = true;
    c.gc.min_free_chunks = 10;
    c.gc.max_live_ratio = 0.9;
    let store = FlatStore::create(c.clone()).unwrap();
    for round in 0..400u64 {
        for k in 0..300u64 {
            store.put(k, value_bytes(k * round + 3, 180)).unwrap();
        }
    }
    store.barrier();
    assert!(
        store
            .stats()
            .gc_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "test needs GC to have run"
    );
    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..300u64 {
        assert_eq!(
            store.get(k).unwrap(),
            Some(value_bytes(k * 399 + 3, 180)),
            "key {k}"
        );
    }
}

#[test]
fn out_of_space_is_an_error_not_a_crash() {
    let mut c = cfg(1);
    c.pm_bytes = 24 << 20; // 5 pool chunks: log + a few huge values
    c.gc.enabled = false;
    let store = FlatStore::create(c).unwrap();
    let mut hit_oom = false;
    for k in 0..40u64 {
        match store.put(k, value_bytes(k, 3 << 20)) {
            Ok(()) => {}
            Err(StoreError::OutOfSpace) => {
                hit_oom = true;
                break;
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(hit_oom, "expected OOM in a tiny region");
    // Store still serves reads.
    assert_eq!(store.get(0).unwrap(), Some(value_bytes(0, 3 << 20)));
}

#[test]
fn pipelined_hb_batches_multiple_cores_entries() {
    let mut c = cfg(4);
    c.model = ExecutionModel::PipelinedHb;
    let store = FlatStore::create(c).unwrap();
    let handle = store.handle();
    let mut joins = Vec::new();
    for t in 0..8u64 {
        let h = handle.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..500u64 {
                h.put(t * 10_000 + i, value_bytes(i, 8)).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    let stats = store.stats();
    let avg = stats.avg_batch();
    assert!(avg >= 1.0, "avg batch {avg}");
    // With 8 concurrent clients over 4 cores some batches must carry more
    // than one entry (stealing worked).
    assert!(
        stats
            .batched_entries
            .load(std::sync::atomic::Ordering::Relaxed)
            > stats.batches.load(std::sync::atomic::Ordering::Relaxed),
        "no multi-entry batch was ever formed"
    );
}

#[test]
fn handle_is_usable_from_many_threads_after_store_drop_errors() {
    let store = FlatStore::create(cfg(2)).unwrap();
    let handle = store.handle();
    store.put(1, b"x").unwrap();
    drop(store); // workers stop
    assert_eq!(handle.put(2, b"y"), Err(StoreError::ShuttingDown));
}

#[test]
fn pipelined_same_key_puts_keep_version_order() {
    // Multiple clients hammer one hot key concurrently: Put-after-Put
    // pipelines (no conflict stall), versions order the overwrites, and
    // the final state is some client's *last* write — before and after a
    // crash.
    let mut c = cfg(3);
    c.crash_tracking = true;
    let store = FlatStore::create(c.clone()).unwrap();
    let handle = store.handle();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let h = handle.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..500u64 {
                h.put(42, value_bytes(t * 10_000 + i, 32)).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
    store.barrier();
    let finals: Vec<Vec<u8>> = (0..4u64)
        .map(|t| value_bytes(t * 10_000 + 499, 32))
        .collect();
    let got = store.get(42).unwrap().unwrap();
    assert!(
        finals.contains(&got),
        "final value is not any client's last write"
    );
    assert_eq!(store.len(), 1);

    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, c).unwrap();
    assert_eq!(store.get(42).unwrap().as_deref(), Some(got.as_slice()));
}

#[test]
fn get_after_put_same_key_reads_own_write() {
    // The conflict queue still guarantees read-your-writes per key.
    let store = FlatStore::create(cfg(2)).unwrap();
    let handle = store.handle();
    let mut joins = Vec::new();
    for t in 0..4u64 {
        let h = handle.clone();
        joins.push(std::thread::spawn(move || {
            for i in 0..300u64 {
                let key = 1000 + t; // per-thread key
                let v = value_bytes(t * 1_000 + i, 24);
                h.put(key, &v).unwrap();
                assert_eq!(h.get(key).unwrap().as_deref(), Some(v.as_slice()));
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }
}

#[test]
fn ordered_index_gc_and_crash_compose() {
    // FlatStore-M with cleaning pressure, then a crash: relocated entries,
    // CAS-updated Masstree pointers and the recovery scan must agree.
    let mut c = cfg(2);
    c.index = IndexKind::Masstree;
    c.pm_bytes = 64 << 20;
    c.crash_tracking = true;
    c.gc.min_free_chunks = 10;
    c.gc.max_live_ratio = 0.9;
    let store = FlatStore::create(c.clone()).unwrap();
    for round in 0..250u64 {
        for k in 0..300u64 {
            loop {
                match store.put(k, value_bytes(k * 13 + round, 190)) {
                    Ok(()) => break,
                    Err(StoreError::OutOfSpace) => {
                        std::thread::sleep(std::time::Duration::from_millis(20));
                    }
                    Err(e) => panic!("{e}"),
                }
            }
        }
    }
    store.barrier();
    assert!(
        store
            .stats()
            .gc_chunks
            .load(std::sync::atomic::Ordering::Relaxed)
            > 0,
        "cleaner must have run"
    );
    // Range scan sees relocated entries correctly.
    let rows = store.range(10, 20, 100).unwrap();
    assert_eq!(rows.len(), 10);
    for (k, v) in rows {
        assert_eq!(v, value_bytes(k * 13 + 249, 190));
    }
    let pm = store.kill();
    pm.simulate_crash();
    let store = FlatStore::open(pm, c).unwrap();
    for k in 0..300u64 {
        assert_eq!(
            store.get(k).unwrap(),
            Some(value_bytes(k * 13 + 249, 190)),
            "key {k}"
        );
    }
    let rows = store.range(0, 300, 1000).unwrap();
    assert_eq!(rows.len(), 300);
}

/// Long soak: millions of mixed operations with periodic crash/recover
/// cycles. Run explicitly with `cargo test -p flatstore -- --ignored`.
#[test]
#[ignore = "multi-minute soak; run with --ignored"]
fn soak_mixed_ops_with_periodic_crashes() {
    let mut c = cfg(3);
    c.pm_bytes = 512 << 20;
    c.crash_tracking = true;
    let mut store = FlatStore::create(c.clone()).unwrap();
    let mut model: std::collections::HashMap<u64, Vec<u8>> = std::collections::HashMap::new();
    let mut gen = workloads::Workload::new(
        20_000,
        workloads::KeyDist::Zipfian { theta: 0.99 },
        0,
        0.6,
        99,
    );
    let mut serial = 0u64;
    for cycle in 0..6 {
        for _ in 0..100_000 {
            serial += 1;
            let key = gen.next_key();
            match serial % 10 {
                0..=5 => {
                    let len = 8 + (serial % 900) as usize;
                    let v = value_bytes(key ^ serial, len);
                    store.put(key, &v).unwrap();
                    model.insert(key, v);
                }
                6..=8 => {
                    assert_eq!(store.get(key).unwrap(), model.get(&key).cloned());
                }
                _ => {
                    assert_eq!(store.delete(key).unwrap(), model.remove(&key).is_some());
                }
            }
        }
        store.barrier();
        let pm = store.kill();
        pm.simulate_crash();
        store = FlatStore::open(pm, c.clone()).unwrap();
        assert_eq!(store.len(), model.len(), "cycle {cycle}");
        for (k, v) in model.iter().take(500) {
            assert_eq!(store.get(*k).unwrap().as_deref(), Some(v.as_slice()));
        }
    }
}
