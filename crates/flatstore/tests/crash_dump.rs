//! Crash flight recorder, end to end: a panic inside a shard worker (the
//! `FLATSTORE_CRASH_TEST_KEY` knob) with `FLATSTORE_CRASH_DIR` armed must
//! leave a crash dump that parses as JSON and contains the in-flight
//! operation's *partial* stage vector.
//!
//! The panicked worker can never rejoin the engine's drain-quiet exit
//! protocol, so the test leaks the session and store instead of joining
//! them (`std::mem::forget`) — the dump, not the shutdown, is under test.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::Duration;

use flatstore::{Config, FlatStore, Op};
use obs::Json;

fn dump_dir() -> PathBuf {
    // target/crash-dump-test: a stable path the CI workflow uploads as an
    // artifact after this test runs.
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/crash-dump-test")
}

fn dumps_in(dir: &PathBuf) -> HashSet<PathBuf> {
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| {
                    p.file_name()
                        .and_then(|n| n.to_str())
                        .is_some_and(|n| n.starts_with("flatstore-crash-"))
                })
                .collect()
        })
        .unwrap_or_default()
}

#[test]
fn shard_panic_dumps_partial_stage_vector() {
    let dir = dump_dir();
    std::fs::create_dir_all(&dir).expect("create dump dir");
    // Both variables are read before any worker starts: the dir on first
    // dump, the poisoned key once per shard at construction.
    std::env::set_var("FLATSTORE_CRASH_DIR", &dir);
    std::env::set_var("FLATSTORE_CRASH_TEST_KEY", "7");
    let before = dumps_in(&dir);

    // pmlint: allow(no-unwrap) — test-only configuration.
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .ncores(2)
        .group_size(2)
        .pipeline_depth(4)
        .trace_sample(1)
        .build()
        .expect("valid test config");
    let store = FlatStore::create(cfg).expect("create store");
    let mut session = store.session().expect("session");
    session
        .submit(Op::put(7, b"boom"))
        .expect("submit poisoned put");

    // The owning worker panics while the put is in flight; the panic hook
    // dumps every live registry. Poll for the new file.
    let mut dump = None;
    for _ in 0..200 {
        if let Some(p) = dumps_in(&dir).difference(&before).next() {
            dump = Some(p.clone());
            break;
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    let dump = dump.expect("no crash dump appeared within 20s");

    let body = std::fs::read_to_string(&dump).expect("read dump");
    let json = Json::parse(&body).expect("crash dump must parse as JSON");
    assert!(
        json.get("reason")
            .and_then(Json::as_str)
            .is_some_and(|r| r.contains("panic")),
        "dump reason must record the panic"
    );
    // The full stats report rides along for post-mortems.
    assert!(
        json.get("stats_report")
            .and_then(|s| s.get("schema"))
            .is_some(),
        "dump must embed the stats_report"
    );

    // Find the poisoned op's record: it crashed mid-flight, so its stage
    // vector is partial — the ingress stages are there, delivery is not.
    let flight = json.get("flight").and_then(Json::as_arr).expect("flight");
    let record = flight
        .iter()
        .filter_map(|core| core.get("records").and_then(Json::as_arr))
        .flatten()
        .find(|r| {
            r.get("detail")
                .and_then(Json::as_str)
                .is_some_and(|d| d.contains("crash-test"))
        })
        .expect("no flight record for the in-flight op");
    assert!(
        matches!(record.get("ok"), Some(Json::Bool(false))),
        "the crashed op must not be marked ok"
    );
    let stamps: Vec<&str> = record
        .get("stamps")
        .and_then(Json::as_arr)
        .expect("stamps")
        .iter()
        .filter_map(|s| s.as_arr()?.first()?.as_str())
        .collect();
    assert!(
        stamps.contains(&"ring_transit"),
        "partial stage vector must include the ingress stages: {stamps:?}"
    );
    assert!(
        !stamps.contains(&"delivery"),
        "a crashed op can never have a delivery stamp: {stamps:?}"
    );

    // Leak instead of joining: the dead worker would wedge shutdown.
    std::mem::forget(session);
    std::mem::forget(store);
    std::env::remove_var("FLATSTORE_CRASH_TEST_KEY");
}
