//! Hot-read cache equivalence: a cache of ANY capacity must be purely an
//! optimization. Every test drives a cache-enabled store and a
//! cache-disabled twin through identical scripts and demands byte-for-byte
//! identical answers — including range scans that bypass the cache, crash
//! recovery, and eviction-heavy capacities of a single slot.

use std::collections::{BTreeMap, HashMap};

use flatstore::{Config, FlatStore, IndexKind};
use proptest::prelude::*;
use workloads::value_bytes;

fn cfg(read_cache_bytes: usize, index: IndexKind) -> Config {
    Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .index(index)
        .read_cache_bytes(read_cache_bytes)
        .crash_tracking(false)
        .build()
        .expect("valid test config")
}

#[derive(Debug, Clone)]
enum Cmd {
    Put { key: u64, len: usize },
    Get { key: u64 },
    Delete { key: u64 },
    Range { lo: u64, span: u64 },
}

fn script() -> impl Strategy<Value = Vec<Cmd>> {
    let cmd = prop_oneof![
        4 => (0u64..48, 1usize..600).prop_map(|(key, len)| Cmd::Put { key, len }),
        4 => (0u64..48).prop_map(|key| Cmd::Get { key }),
        2 => (0u64..48).prop_map(|key| Cmd::Delete { key }),
        1 => (0u64..48, 1u64..48).prop_map(|(lo, span)| Cmd::Range { lo, span }),
    ];
    prop::collection::vec(cmd, 1..160)
}

/// Replays `cmds` against a store, checking every answer against a model
/// as it goes; returns the transcript of Get/Range answers so two stores
/// can additionally be compared to each other.
#[allow(clippy::type_complexity)]
fn replay(store: &FlatStore, cmds: &[Cmd]) -> Result<Vec<Vec<(u64, Vec<u8>)>>, TestCaseError> {
    let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut transcript = Vec::new();
    for (i, cmd) in cmds.iter().enumerate() {
        match cmd {
            Cmd::Put { key, len } => {
                let v = value_bytes(key ^ i as u64, *len);
                store.put(*key, &v).unwrap();
                model.insert(*key, v);
            }
            Cmd::Get { key } => {
                let got = store.get(*key).unwrap();
                prop_assert_eq!(&got, &model.get(key).cloned(), "get {} at step {}", key, i);
                transcript.push(got.map(|v| vec![(*key, v)]).unwrap_or_default());
            }
            Cmd::Delete { key } => {
                let existed = store.delete(*key).unwrap();
                prop_assert_eq!(existed, model.remove(key).is_some());
            }
            Cmd::Range { lo, span } => {
                // Engine ranges are half-open: lo..hi.
                let hi = lo + span;
                let got = store.range(*lo, hi, usize::MAX).unwrap();
                let want: Vec<(u64, Vec<u8>)> =
                    model.range(*lo..hi).map(|(k, v)| (*k, v.clone())).collect();
                prop_assert_eq!(&got, &want, "range [{}, {}] at step {}", lo, hi, i);
                transcript.push(got);
            }
        }
    }
    Ok(transcript)
}

proptest! {
    // Each case spins up several engines with worker threads.
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The ISSUE's core property: for ANY capacity — disabled, a single
    /// slot (eviction on every insert), small (CLOCK churn) or default —
    /// randomized put/get/delete/range interleavings answer exactly like
    /// the cache-disabled engine. Ranges run on Masstree so the ordered
    /// index and the cache are exercised against each other.
    #[test]
    fn any_capacity_matches_disabled_engine(cmds in script()) {
        let mut transcripts = Vec::new();
        for budget in [0usize, 1, 4 << 10, 8 << 20] {
            let store = FlatStore::create(cfg(budget, IndexKind::Masstree)).unwrap();
            transcripts.push(replay(&store, &cmds)?);
            store.shutdown().unwrap();
        }
        let base = &transcripts[0];
        for t in &transcripts[1..] {
            prop_assert_eq!(base, t);
        }
    }

    /// Crash recovery is cache-oblivious: populate the cache with reads,
    /// pull the plug, and the recovered store (cache enabled again, now
    /// cold) equals the acknowledged state exactly.
    #[test]
    fn recovery_with_hot_cache_matches_acknowledged_state(cmds in script()) {
        let config = Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .read_cache_bytes(1 << 20)
            .crash_tracking(true)
            .build()
            .unwrap();
        let store = FlatStore::create(config.clone()).unwrap();
        let mut model: HashMap<u64, Vec<u8>> = HashMap::new();
        for (i, cmd) in cmds.iter().enumerate() {
            match cmd {
                Cmd::Put { key, len } => {
                    let v = value_bytes(key ^ i as u64, *len);
                    store.put(*key, &v).unwrap();
                    model.insert(*key, v);
                }
                // Gets warm the cache; Ranges need Masstree, skip here.
                Cmd::Get { key } | Cmd::Range { lo: key, .. } => {
                    let _ = store.get(*key).unwrap();
                }
                Cmd::Delete { key } => {
                    let existed = store.delete(*key).unwrap();
                    prop_assert_eq!(existed, model.remove(key).is_some());
                }
            }
        }
        let pm = store.kill();
        pm.simulate_crash();
        let store = FlatStore::open(pm, config).unwrap();
        prop_assert_eq!(store.len(), model.len());
        for (k, v) in &model {
            prop_assert_eq!(&store.get(*k).unwrap(), &Some(v.clone()));
        }
        store.shutdown().unwrap();
    }
}

/// Overlapping puts and deletes interleaved with gets and scans: the
/// ordered index and the cache must never disagree. This is the
/// deterministic regression for the range/cache interaction — a stale
/// cached value after an overwrite would make a Get disagree with the
/// scan that bypasses the cache.
#[test]
fn range_scans_agree_with_cached_gets_after_overwrites() {
    let store = FlatStore::create(cfg(1 << 20, IndexKind::Masstree)).unwrap();
    for k in 0..64u64 {
        store.put(k, value_bytes(k, 64)).unwrap();
    }
    // Warm the cache on every key.
    for k in 0..64u64 {
        assert_eq!(store.get(k).unwrap(), Some(value_bytes(k, 64)));
    }
    // Overwrite half, delete a quarter — all keys currently cached.
    for k in (0..64u64).step_by(2) {
        store.put(k, value_bytes(k + 1000, 96)).unwrap();
    }
    for k in (0..64u64).step_by(4) {
        assert!(store.delete(k).unwrap());
    }
    // Scan bypasses the cache; gets may hit it. Both must tell the same
    // story for every key.
    let scan = store.range(0, 64, usize::MAX).unwrap();
    let by_scan: HashMap<u64, Vec<u8>> = scan.into_iter().collect();
    for k in 0..64u64 {
        let expect = if k % 4 == 0 {
            None
        } else if k % 2 == 0 {
            Some(value_bytes(k + 1000, 96))
        } else {
            Some(value_bytes(k, 64))
        };
        assert_eq!(store.get(k).unwrap(), expect, "get key {k}");
        assert_eq!(by_scan.get(&k).cloned(), expect, "scan key {k}");
    }
    store.shutdown().unwrap();
}

/// Repeated hits actually come from the cache: stats must show hits
/// climbing while the answers stay correct, and invalidation must reset
/// the key to a miss.
#[test]
fn stats_expose_hits_misses_and_invalidations() {
    let store = FlatStore::create(cfg(8 << 20, IndexKind::Hash)).unwrap();
    store.put(7, b"cached").unwrap();
    for _ in 0..10 {
        assert_eq!(store.get(7).unwrap().as_deref(), Some(&b"cached"[..]));
    }
    store.put(7, b"fresh").unwrap();
    assert_eq!(store.get(7).unwrap().as_deref(), Some(&b"fresh"[..]));
    let r = store.stats_report();
    let hits = match r.get("read_cache", "hits") {
        Some(obs::Value::U64(v)) => *v,
        other => panic!("missing read_cache hits row: {other:?}"),
    };
    let inval = match r.get("read_cache", "invalidations") {
        Some(obs::Value::U64(v)) => *v,
        other => panic!("missing invalidations row: {other:?}"),
    };
    assert!(hits >= 9, "repeated gets should hit, saw {hits}");
    assert!(inval >= 1, "overwrite should invalidate, saw {inval}");
    store.shutdown().unwrap();
}

/// `read_cache_bytes(0)` must not report a cache section at all — the
/// disabled engine is bit-identical to the pre-cache engine.
#[test]
fn disabled_cache_reports_nothing() {
    let store = FlatStore::create(cfg(0, IndexKind::Hash)).unwrap();
    store.put(1, b"v").unwrap();
    assert_eq!(store.get(1).unwrap().as_deref(), Some(&b"v"[..]));
    let r = store.stats_report();
    assert!(r.get("read_cache", "hits").is_none());
    store.shutdown().unwrap();
}
