//! The stats_report JSON schema gate (run by name from `scripts/check.sh`):
//! a live engine's report must emit → parse → re-emit byte-identically,
//! with every optional section populated so the gate covers the whole
//! schema surface.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flatstore::{Config, FlatStore, Op, ReplOp, ReplicationSink};
use obs::{Json, STATS_SCHEMA_VERSION};
use pmem::PmAddr;

struct CountingSink(Vec<AtomicU64>);

impl ReplicationSink for CountingSink {
    fn ship(&self, core: usize, _ops: Vec<ReplOp>, _tail: PmAddr) -> u64 {
        self.0[core].fetch_add(1, Ordering::AcqRel) + 1
    }

    fn acked(&self, core: usize) -> u64 {
        self.0[core].load(Ordering::Acquire)
    }
}

#[test]
fn stats_report_json_round_trips_byte_identical() {
    // pmlint: allow(no-unwrap) — test-only configuration.
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .pipeline_depth(8)
        .trace_sample(2)
        .build()
        .expect("valid test config");
    let sink = Arc::new(CountingSink((0..2).map(|_| AtomicU64::new(0)).collect()));
    let store =
        FlatStore::create_with_replication(cfg, sink as Arc<dyn ReplicationSink>).expect("create");

    // Exercise every report section: batched puts (batching + breakdown +
    // replication), gets (cache), deletes (maintenance counters).
    let mut session = store.session().expect("session");
    for k in 0..256u64 {
        session.submit(Op::put(k, b"round-trip")).expect("put");
    }
    session.wait_all().expect("wait_all");
    drop(session);
    for k in 0..256u64 {
        store.get(k % 64).expect("get");
        let _ = k;
    }
    store.delete(3).expect("delete");

    let emitted = store.stats_report().to_json();
    let parsed = Json::parse(&emitted).expect("emitted report must parse");
    assert_eq!(
        parsed.dump(),
        emitted,
        "parse → re-emit must reproduce the document byte for byte"
    );
    assert_eq!(
        parsed.get("schema").and_then(Json::as_f64),
        Some(f64::from(STATS_SCHEMA_VERSION)),
        "schema version field"
    );
    // The gate is only meaningful if the run actually populated the new
    // section alongside the existing ones.
    let sections = parsed.get("sections").expect("sections");
    for sec in ["ops", "batching", "latency", "latency_breakdown", "pm"] {
        assert!(sections.get(sec).is_some(), "missing section {sec}");
    }
    store.shutdown().expect("shutdown");
}
