//! `FlatStore::stats_report` end-to-end: drive real operations through the
//! engine and check that the unified report carries coherent counters and
//! latency percentiles from the client-observed histograms.

use flatstore::{Config, FlatStore};
use obs::Value;
use workloads::value_bytes;

fn num(report: &obs::StatsReport, section: &str, row: &str) -> f64 {
    match report.get(section, row) {
        Some(Value::U64(v)) => *v as f64,
        Some(Value::F64(v)) => *v,
        other => panic!("missing numeric row [{section}] {row}: {other:?}"),
    }
}

#[test]
fn report_carries_op_counts_and_latency_percentiles() {
    let store = FlatStore::create(
        Config::builder()
            .pm_bytes(64 << 20)
            .dram_bytes(8 << 20)
            .ncores(2)
            .group_size(2)
            .crash_tracking(false)
            .build()
            .unwrap(),
    )
    .unwrap();

    for k in 0..200u64 {
        store.put(k, value_bytes(k, 32)).unwrap();
    }
    for k in 0..200u64 {
        assert!(store.get(k).unwrap().is_some());
    }
    assert!(store.delete(7).unwrap());
    store.checkpoint().unwrap();

    let r = store.stats_report();

    assert_eq!(num(&r, "ops", "puts"), 200.0);
    assert_eq!(num(&r, "ops", "gets"), 200.0);
    assert_eq!(num(&r, "ops", "deletes"), 1.0);
    assert_eq!(num(&r, "maintenance", "checkpoints"), 1.0);

    // Latency histograms: every op was recorded, and the percentile chain
    // is ordered the way percentiles must be.
    assert_eq!(num(&r, "latency", "put_count"), 200.0);
    assert_eq!(num(&r, "latency", "get_count"), 200.0);
    let p50 = num(&r, "latency", "put_p50_ns");
    let p99 = num(&r, "latency", "put_p99_ns");
    let max = num(&r, "latency", "put_max_ns");
    assert!(p50 > 0.0, "put p50 {p50}");
    assert!(p50 <= p99, "p50 {p50} > p99 {p99}");
    assert!(p99 <= max, "p99 {p99} > max {max}");

    // Fabric counters: every operation plus the checkpoint's control
    // messages crossed the rings, and every one of them was answered,
    // either directly by the agent core or by delegation through it.
    let requests = num(&r, "fabric", "requests");
    assert!(requests >= 401.0, "fabric requests {requests}");
    let direct = num(&r, "fabric", "direct_responses");
    let delegated = num(&r, "fabric", "delegated_responses");
    assert!(
        direct + delegated >= 401.0,
        "responses direct {direct} + delegated {delegated}"
    );
    assert!(num(&r, "fabric", "clients_attached") >= 1.0);

    // The session layer recorded one completion per data operation.
    assert_eq!(num(&r, "session", "completion_count"), 401.0);

    // The region's persistence counters ride along in the same report.
    assert!(num(&r, "pm", "flushes") > 0.0);
    assert!(num(&r, "pm", "fences") > 0.0);
    assert!(num(&r, "batching", "batches") >= 1.0);

    // And the whole thing serialises to valid JSON.
    let json = r.to_json();
    obs::Json::parse(&json).expect("stats report JSON must parse");
}
