//! Regression budget on wasted `clwb`s: the standard mixed workload must
//! keep [`pmem::REDUNDANT_FLUSH_BUDGET`] — see the constant's docs for why
//! the engine should essentially never flush a clean line.

use flatstore::{Config, FlatStore, Op};
use pmem::REDUNDANT_FLUSH_BUDGET;
use workloads::value_bytes;

#[test]
fn standard_workload_keeps_redundant_flush_budget() {
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(2)
        .group_size(2)
        .build()
        .expect("valid test config");
    let store = FlatStore::create(cfg).unwrap();

    // The standard mix: inline puts, out-of-place puts, overwrites, gets
    // and deletes, plus a pipelined session burst and a checkpoint.
    for k in 0..2_000u64 {
        let len = if k % 5 == 0 {
            1024
        } else {
            30 + (k % 64) as usize
        };
        store.put(k % 600, value_bytes(k, len)).unwrap();
        if k % 3 == 0 {
            store.get(k % 600).unwrap();
        }
        if k % 11 == 0 {
            store.delete((k + 1) % 600).unwrap();
        }
    }
    let mut session = store.session().unwrap();
    for k in 0..500u64 {
        session
            .submit(Op::put(10_000 + k, value_bytes(k, 48)))
            .unwrap();
    }
    session.wait_all().unwrap();
    drop(session);
    store.barrier();
    store.checkpoint().unwrap();

    let s = store.pm().stats().snapshot();
    assert!(
        s.flushes > 1_000,
        "workload too small to be meaningful: {} flushes",
        s.flushes
    );
    let ratio = s.redundant_flush_ratio();
    assert!(
        ratio <= REDUNDANT_FLUSH_BUDGET,
        "redundant flush ratio {:.4} ({} of {} flushes) exceeds the {:.2}% budget",
        ratio,
        s.redundant_flushes,
        s.flushes,
        REDUNDANT_FLUSH_BUDGET * 100.0
    );
}
