//! **FlatStore** — a log-structured key-value storage engine for
//! persistent memory (reproduction of Chen et al., ASPLOS 2020).
//!
//! FlatStore decouples a PM key-value store into a **volatile index** in
//! DRAM and a **persistent compacted operation log**. Small updates that
//! would each cost a cacheline flush in a conventional persistent index are
//! instead appended as 16-byte log entries and persisted in
//! cacheline-aligned batches; **pipelined horizontal batching** lets one
//! server core steal the pending entries of its group's other cores so a
//! batch fills quickly without adding latency.
//!
//! # Engine anatomy (paper Figure 2)
//!
//! * Per-core **compacted OpLog** ([`oplog`]) — 16 B pointer entries or
//!   inline values ≤ 256 B; batch appends padded to cacheline boundaries.
//! * **Lazy-persist allocator** ([`pmalloc`]) — 4 MB chunks and size
//!   classes for values > 256 B; allocation bitmaps are never flushed on
//!   the fast path and are reconstructed from the log on recovery.
//! * **Volatile index** — pluggable: per-core CCEH hash
//!   ([`IndexKind::Hash`], FlatStore-H), a shared Masstree
//!   ([`IndexKind::Masstree`], FlatStore-M) or a volatile FAST&FAIR
//!   ([`IndexKind::FastFair`], FlatStore-FF).
//! * **FlatRPC fabric** ([`flatrpc`]) — per-core per-client shared-memory
//!   request rings; every response completes through the agent core (§4.3).
//! * **Pipelined horizontal batching** ([`ExecutionModel::PipelinedHb`]) —
//!   plus the paper's ablation models (`NonBatch`, `Vertical`, `NaiveHb`).
//! * **Log cleaning** — version-based liveness, per-core victim selection,
//!   index CAS re-pointing and grace-period chunk reclamation.
//! * **Recovery** — clean-shutdown snapshot or full log scan (§3.5).
//!
//! # Quickstart
//!
//! ```
//! use flatstore::{Config, FlatStore};
//!
//! let cfg = Config::builder()
//!     .pm_bytes(64 << 20)
//!     .ncores(2)
//!     .group_size(2)
//!     .build()?;
//! let store = FlatStore::create(cfg)?;
//! store.put(7, b"persistent")?;
//! assert_eq!(store.get(7)?.as_deref(), Some(&b"persistent"[..]));
//! assert!(store.delete(7)?);
//! let pm = store.shutdown()?; // clean shutdown; reopen with FlatStore::open
//! # drop(pm);
//! # Ok::<(), flatstore::StoreError>(())
//! ```
//!
//! # Pipelined sessions
//!
//! Blocking calls complete one operation per round trip. A [`Session`]
//! keeps up to [`Config::pipeline_depth`] operations in flight, which is
//! what lets horizontal batching fill a group's batch from a single
//! client. Every verb goes through one entry point,
//! [`Session::submit`], taking a typed [`Op`] and completing as the
//! mirrored [`Reply`] variant:
//!
//! ```
//! use flatstore::prelude::*;
//! use flatstore::FlatStore;
//!
//! let cfg = Config::builder()
//!     .pm_bytes(64 << 20)
//!     .ncores(2)
//!     .group_size(2)
//!     .pipeline_depth(8)
//!     .build()?;
//! let store = FlatStore::create(cfg)?;
//!
//! let mut session = store.session()?;
//! let tickets: Vec<_> = (0..32)
//!     .map(|k| session.submit(Op::put(k, b"v")))
//!     .collect::<Result<_, _>>()?;
//! for t in tickets {
//!     assert_eq!(session.wait(t)?, Reply::Put(Ok(())));
//! }
//! drop(session);
//! store.shutdown()?;
//! # Ok::<(), flatstore::StoreError>(())
//! ```
//!
//! For blocking callers, the [`KvApi`] trait is the one surface every
//! client type implements: [`StoreHandle`] (clonable, internally
//! synchronized) and [`Client`] (a blocking adapter over an owned
//! [`Session`]). Code taking `&mut impl KvApi` runs unchanged over
//! either.

mod api;
mod batch;
mod cache;
mod config;
mod engine;
mod error;
mod flight;
mod repl;
mod request;
mod session;
mod shard;
mod superblock;
mod tuner;
mod value;
mod vindex;

pub use api::{Client, KvApi};
pub use batch::EngineStats;
pub use config::{Config, ConfigBuilder, ExecutionModel, GcConfig, IndexKind};
pub use engine::{FlatStore, StoreHandle};
pub use error::StoreError;
pub use repl::{BackupImage, ReplOp, ReplicationSink};
pub use request::{Op, OpResult, Reply};
pub use session::{Session, Ticket};

/// The one-line import for client code: the types every caller touches.
///
/// ```
/// use flatstore::prelude::*;
/// ```
pub mod prelude {
    pub use crate::api::{Client, KvApi};
    pub use crate::config::Config;
    pub use crate::error::StoreError;
    pub use crate::request::{Op, Reply};
    pub use crate::session::Ticket;
}

/// Routes `key` to its owning server core (exposed for benchmark
/// harnesses that model client-side routing).
pub fn core_of(key: u64, ncores: usize) -> usize {
    shard::core_of(key, ncores)
}
