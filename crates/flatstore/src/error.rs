//! Engine errors.

use std::error::Error;
use std::fmt;

use indexes::IndexError;
use oplog::LogError;
use pmalloc::AllocError;

/// Errors returned by the FlatStore engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// PM space (chunks or index arena) is exhausted.
    OutOfSpace,
    /// The key `u64::MAX` is reserved by the volatile index.
    ReservedKey,
    /// Empty values are not supported (the log-entry size field encodes
    /// 1..=256, and the paper's workloads have no empty items).
    EmptyValue,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The persistent image is not a FlatStore region or is from an
    /// incompatible layout version.
    BadImage(String),
    /// The requested operation needs an ordered index (FlatStore-M/-FF).
    RangeUnsupported,
    /// Internal invariant violation (corruption).
    Corrupt(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfSpace => write!(f, "persistent memory exhausted"),
            StoreError::ReservedKey => write!(f, "key u64::MAX is reserved"),
            StoreError::EmptyValue => write!(f, "empty values are not supported"),
            StoreError::ShuttingDown => write!(f, "store is shutting down"),
            StoreError::BadImage(s) => write!(f, "bad persistent image: {s}"),
            StoreError::RangeUnsupported => {
                write!(f, "range scans need FlatStore-M or FlatStore-FF")
            }
            StoreError::Corrupt(s) => write!(f, "corruption detected: {s}"),
        }
    }
}

impl Error for StoreError {}

impl From<AllocError> for StoreError {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::OutOfMemory { .. } => StoreError::OutOfSpace,
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}

impl From<LogError> for StoreError {
    fn from(e: LogError) -> Self {
        match e {
            LogError::OutOfSpace => StoreError::OutOfSpace,
            other => StoreError::Corrupt(other.to_string()),
        }
    }
}

impl From<IndexError> for StoreError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::OutOfSpace => StoreError::OutOfSpace,
            IndexError::ReservedKey => StoreError::ReservedKey,
        }
    }
}
