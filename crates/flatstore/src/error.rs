//! Engine errors.

use std::error::Error;
use std::fmt;
use std::sync::Arc;

use indexes::IndexError;
use oplog::LogError;
use pmalloc::AllocError;

/// Errors returned by the FlatStore engine.
///
/// The enum is `#[non_exhaustive]`: future engine versions may add
/// variants, so match with a wildcard arm. Corruption errors carry their
/// PM-layer cause, reachable through [`std::error::Error::source`].
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum StoreError {
    /// PM space (chunks or index arena) is exhausted.
    OutOfSpace,
    /// The key `u64::MAX` is reserved by the volatile index.
    ReservedKey,
    /// Empty values are not supported (the log-entry size field encodes
    /// 1..=256, and the paper's workloads have no empty items).
    EmptyValue,
    /// The engine is shutting down and no longer accepts requests.
    ShuttingDown,
    /// The persistent image is not a FlatStore region or is from an
    /// incompatible layout version.
    BadImage(String),
    /// The requested operation needs an ordered index (FlatStore-M/-FF).
    RangeUnsupported,
    /// The ticket is not pending on this session (already harvested, or
    /// from another session).
    UnknownTicket,
    /// The configuration failed validation (see [`Config::builder`]).
    ///
    /// [`Config::builder`]: crate::Config::builder
    InvalidConfig(String),
    /// The group this operation reached no longer owns the key's slot —
    /// the cluster's routing table changed under the client. Carries the
    /// routing epoch at the time of refusal; a client whose cached table
    /// is older must refresh its routes and retry.
    WrongGroup {
        /// The refusing node's current routing epoch.
        epoch: u64,
    },
    /// Internal invariant violation (corruption). `source` carries the
    /// PM-layer cause when one exists.
    Corrupt {
        /// What was found corrupted.
        detail: String,
        /// The underlying PM-layer error, if any.
        source: Option<Arc<dyn Error + Send + Sync + 'static>>,
    },
}

impl StoreError {
    /// A corruption error with no underlying cause.
    ///
    /// Constructing one is treated as a crash: every live flight-recorder
    /// registry dumps to `FLATSTORE_CRASH_DIR` (when set) so the last
    /// operations before the corruption are preserved.
    pub fn corrupt(detail: impl Into<String>) -> StoreError {
        let detail = detail.into();
        crate::flight::dump_all(&format!("corrupt: {detail}"));
        StoreError::Corrupt {
            detail,
            source: None,
        }
    }

    /// A corruption error caused by a lower-layer error (kept as the
    /// [`std::error::Error::source`] chain). Dumps the flight recorder
    /// like [`corrupt`](Self::corrupt).
    pub fn corrupt_with(
        detail: impl Into<String>,
        source: impl Error + Send + Sync + 'static,
    ) -> StoreError {
        let detail = detail.into();
        crate::flight::dump_all(&format!("corrupt: {detail}"));
        StoreError::Corrupt {
            detail,
            source: Some(Arc::new(source)),
        }
    }
}

/// Equality ignores the `source` chain of [`StoreError::Corrupt`] — two
/// corruption reports with the same detail are the same error.
impl PartialEq for StoreError {
    fn eq(&self, other: &Self) -> bool {
        use StoreError::*;
        match (self, other) {
            (OutOfSpace, OutOfSpace)
            | (ReservedKey, ReservedKey)
            | (EmptyValue, EmptyValue)
            | (ShuttingDown, ShuttingDown)
            | (RangeUnsupported, RangeUnsupported)
            | (UnknownTicket, UnknownTicket) => true,
            (BadImage(a), BadImage(b)) | (InvalidConfig(a), InvalidConfig(b)) => a == b,
            (WrongGroup { epoch: a }, WrongGroup { epoch: b }) => a == b,
            (Corrupt { detail: a, .. }, Corrupt { detail: b, .. }) => a == b,
            _ => false,
        }
    }
}

impl Eq for StoreError {}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::OutOfSpace => write!(f, "persistent memory exhausted"),
            StoreError::ReservedKey => write!(f, "key u64::MAX is reserved"),
            StoreError::EmptyValue => write!(f, "empty values are not supported"),
            StoreError::ShuttingDown => write!(f, "store is shutting down"),
            StoreError::BadImage(s) => write!(f, "bad persistent image: {s}"),
            StoreError::RangeUnsupported => {
                write!(f, "range scans need FlatStore-M or FlatStore-FF")
            }
            StoreError::UnknownTicket => write!(f, "ticket is not pending on this session"),
            StoreError::InvalidConfig(s) => write!(f, "invalid configuration: {s}"),
            StoreError::WrongGroup { epoch } => {
                write!(f, "slot moved to another group (routing epoch {epoch})")
            }
            StoreError::Corrupt { detail, .. } => write!(f, "corruption detected: {detail}"),
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Corrupt {
                source: Some(s), ..
            } => Some(&**s as &(dyn Error + 'static)),
            _ => None,
        }
    }
}

impl From<AllocError> for StoreError {
    fn from(e: AllocError) -> Self {
        match e {
            AllocError::OutOfMemory { .. } => StoreError::OutOfSpace,
            other => StoreError::corrupt_with(format!("allocator: {other}"), other),
        }
    }
}

impl From<LogError> for StoreError {
    fn from(e: LogError) -> Self {
        match e {
            LogError::OutOfSpace => StoreError::OutOfSpace,
            other => StoreError::corrupt_with(format!("log: {other}"), other),
        }
    }
}

impl From<IndexError> for StoreError {
    fn from(e: IndexError) -> Self {
        match e {
            IndexError::OutOfSpace => StoreError::OutOfSpace,
            IndexError::ReservedKey => StoreError::ReservedKey,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corrupt_carries_its_source() {
        let cause = LogError::Corrupt { addr: 0x40 };
        let err = StoreError::from(cause.clone());
        let StoreError::Corrupt { ref detail, .. } = err else {
            panic!("expected Corrupt, got {err:?}");
        };
        assert!(detail.starts_with("log: "), "detail {detail:?}");
        let source = err.source().expect("source chain");
        assert_eq!(source.to_string(), cause.to_string());
    }

    #[test]
    fn out_of_space_maps_without_source() {
        let err = StoreError::from(LogError::OutOfSpace);
        assert_eq!(err, StoreError::OutOfSpace);
        assert!(err.source().is_none());
    }

    #[test]
    fn equality_ignores_source() {
        let a = StoreError::corrupt("torn entry");
        let b = StoreError::corrupt_with("torn entry", LogError::Corrupt { addr: 0x40 });
        assert_eq!(a, b);
        assert_ne!(a, StoreError::corrupt("other"));
    }
}
