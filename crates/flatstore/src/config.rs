//! Engine configuration.

use crate::error::StoreError;

/// Which volatile index backs the store (paper §4.1–4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// FlatStore-H: one volatile CCEH instance per server core (no locks;
    /// requests are routed by keyhash).
    #[default]
    Hash,
    /// FlatStore-M: a single shared Masstree supporting range scans.
    Masstree,
    /// FlatStore-FF: a single shared volatile FAST&FAIR (the paper's
    /// ablation separating Masstree's contribution from the engine's).
    FastFair,
}

/// How server cores persist log entries — the paper's execution models
/// (Figure 4 and §5.4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// One request at a time per core, one flush each ("Base").
    NonBatch,
    /// Each core batches only its own pending requests (Figure 4b).
    Vertical,
    /// Horizontal batching where the leader holds the group lock through
    /// the flush and followers block (Figure 4c).
    NaiveHb,
    /// Pipelined horizontal batching: early lock release, followers keep
    /// processing (Figure 4d, the paper's design).
    #[default]
    PipelinedHb,
}

/// Log-cleaning (GC) parameters (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Whether cleaning runs at all.
    pub enabled: bool,
    /// Chunks whose live-entry ratio is at most this become victims.
    pub max_live_ratio: f64,
    /// Cleaning starts when the shared pool has fewer free chunks.
    pub min_free_chunks: u32,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            enabled: true,
            max_live_ratio: 0.5,
            min_free_chunks: 8,
        }
    }
}

/// FlatStore engine configuration.
///
/// Build one with [`Config::builder`], which validates the settings and
/// returns [`StoreError::InvalidConfig`] on inconsistency — long before
/// any PM is formatted. The struct is `#[non_exhaustive]`; fields stay
/// readable (and assignable on an existing value) but literal
/// construction outside this crate must go through the builder.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Config {
    /// Total simulated-PM size in bytes (superblock + chunk pool). Must be
    /// a multiple of 4 MB and at least `(ncores + 3) * 4 MB`.
    pub pm_bytes: usize,
    /// DRAM arena for the volatile index (per core for `Hash`, total for
    /// `FastFair`).
    pub dram_bytes: usize,
    /// Number of server cores (worker threads).
    pub ncores: usize,
    /// Cores per horizontal-batching group (paper: one socket per group);
    /// must divide `ncores`.
    pub group_size: usize,
    /// The volatile index flavor.
    pub index: IndexKind,
    /// The batching execution model.
    pub model: ExecutionModel,
    /// Track flushed state so `simulate_crash` works (2× memory).
    pub crash_tracking: bool,
    /// Testing: build the region with strict fence semantics — flushed but
    /// unfenced cachelines survive a crash only with probability ½
    /// (seeded). Implies crash tracking.
    pub strict_fence_seed: Option<u64>,
    /// Log-cleaning parameters.
    pub gc: GcConfig,
    /// Max requests a core drains from its request rings per loop
    /// iteration.
    pub channel_batch: usize,
    /// Max operations a [`Session`] keeps in flight before `submit`
    /// absorbs completions; also sizes the fabric's per-client rings.
    ///
    /// [`Session`]: crate::Session
    pub pipeline_depth: usize,
    /// DRAM budget for the hot-value read cache, split evenly across the
    /// server cores' shards; 0 disables the cache. Purely volatile — the
    /// cache starts empty on every open/recovery/failover and never
    /// changes what a Get returns, only whether it pays the simulated-PM
    /// media read.
    pub read_cache_bytes: usize,
    /// Causal-trace sampling rate: 1-in-N operations carry a full stage
    /// span through the request pipeline (`1` traces every op, `0`
    /// disables tracing). Unsampled operations pay one branch per stage
    /// and no clock reads, so `0` restores the pre-tracing fast path.
    pub trace_sample: u64,
    /// Self-tuning horizontal batching: all cores share one publish
    /// fabric and a per-epoch controller adjusts the leader linger window
    /// and the effective sweep width, starting from `group_size` (which
    /// becomes the initial operating point rather than a fixed wall).
    /// Requires [`ExecutionModel::PipelinedHb`]. `false` keeps the static
    /// groups bit-compatible with previous releases.
    pub adaptive: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            pm_bytes: 256 << 20,
            dram_bytes: 32 << 20,
            ncores: 4,
            group_size: 4,
            index: IndexKind::Hash,
            model: ExecutionModel::PipelinedHb,
            crash_tracking: false,
            strict_fence_seed: None,
            gc: GcConfig::default(),
            channel_batch: 32,
            pipeline_depth: 16,
            read_cache_bytes: 8 << 20,
            trace_sample: 0,
            adaptive: false,
        }
    }
}

impl Config {
    /// Starts a builder from the defaults.
    pub fn builder() -> ConfigBuilder {
        ConfigBuilder {
            cfg: Config::default(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] on inconsistent settings (zero cores,
    /// group size not dividing the core count, PM pool too small for the
    /// per-core logs, …).
    pub fn validate(&self) -> Result<(), StoreError> {
        fn bad(msg: impl Into<String>) -> Result<(), StoreError> {
            Err(StoreError::InvalidConfig(msg.into()))
        }
        if self.ncores == 0 {
            return bad("need at least one server core");
        }
        if self.ncores > 60 {
            return bad(format!(
                "superblock layout supports at most 60 cores, got {}",
                self.ncores
            ));
        }
        if self.group_size == 0 {
            return bad("group size must be positive");
        }
        if !self.ncores.is_multiple_of(self.group_size) {
            return bad(format!(
                "group size {} must divide the core count {}",
                self.group_size, self.ncores
            ));
        }
        if !self.pm_bytes.is_multiple_of(4 << 20) {
            return bad(format!(
                "pm_bytes {} must be a multiple of the 4 MB chunk size",
                self.pm_bytes
            ));
        }
        if self.pm_bytes < (self.ncores + 3) * (4 << 20) {
            return bad(format!(
                "pm_bytes {} too small: {} cores need at least {} bytes \
                 (superblock + per-core logs + headroom)",
                self.pm_bytes,
                self.ncores,
                (self.ncores + 3) * (4 << 20)
            ));
        }
        if self.channel_batch == 0 {
            return bad("channel_batch must be positive");
        }
        if self.pipeline_depth == 0 {
            return bad("pipeline_depth must be positive");
        }
        if self.adaptive && self.model != ExecutionModel::PipelinedHb {
            return bad(format!(
                "adaptive batching requires the PipelinedHb execution \
                 model, got {:?}",
                self.model
            ));
        }
        Ok(())
    }
}

/// Chainable builder for [`Config`]; [`build`](ConfigBuilder::build)
/// validates and returns the result.
///
/// # Example
///
/// ```
/// use flatstore::Config;
///
/// let cfg = Config::builder()
///     .pm_bytes(64 << 20)
///     .ncores(2)
///     .group_size(2)
///     .build()?;
/// assert_eq!(cfg.ncores, 2);
/// # Ok::<(), flatstore::StoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ConfigBuilder {
    cfg: Config,
}

impl ConfigBuilder {
    /// Total simulated-PM size in bytes.
    pub fn pm_bytes(mut self, v: usize) -> Self {
        self.cfg.pm_bytes = v;
        self
    }

    /// DRAM arena for the volatile index.
    pub fn dram_bytes(mut self, v: usize) -> Self {
        self.cfg.dram_bytes = v;
        self
    }

    /// Number of server cores (worker threads).
    pub fn ncores(mut self, v: usize) -> Self {
        self.cfg.ncores = v;
        self
    }

    /// Cores per horizontal-batching group.
    pub fn group_size(mut self, v: usize) -> Self {
        self.cfg.group_size = v;
        self
    }

    /// The volatile index flavor.
    pub fn index(mut self, v: IndexKind) -> Self {
        self.cfg.index = v;
        self
    }

    /// The batching execution model.
    pub fn model(mut self, v: ExecutionModel) -> Self {
        self.cfg.model = v;
        self
    }

    /// Track flushed state so `simulate_crash` works.
    pub fn crash_tracking(mut self, v: bool) -> Self {
        self.cfg.crash_tracking = v;
        self
    }

    /// Strict fence semantics with the given RNG seed (testing).
    pub fn strict_fence_seed(mut self, v: Option<u64>) -> Self {
        self.cfg.strict_fence_seed = v;
        self
    }

    /// Log-cleaning parameters.
    pub fn gc(mut self, v: GcConfig) -> Self {
        self.cfg.gc = v;
        self
    }

    /// Max requests a core drains from its rings per loop iteration.
    pub fn channel_batch(mut self, v: usize) -> Self {
        self.cfg.channel_batch = v;
        self
    }

    /// Max in-flight operations per session (see
    /// [`Config::pipeline_depth`]).
    pub fn pipeline_depth(mut self, v: usize) -> Self {
        self.cfg.pipeline_depth = v;
        self
    }

    /// DRAM budget for the hot-value read cache; 0 disables it (see
    /// [`Config::read_cache_bytes`]).
    pub fn read_cache_bytes(mut self, v: usize) -> Self {
        self.cfg.read_cache_bytes = v;
        self
    }

    /// Causal-trace sampling: trace 1-in-`v` operations, 0 = off (see
    /// [`Config::trace_sample`]).
    pub fn trace_sample(mut self, v: u64) -> Self {
        self.cfg.trace_sample = v;
        self
    }

    /// Self-tuning horizontal batching (see [`Config::adaptive`]).
    pub fn adaptive(mut self, v: bool) -> Self {
        self.cfg.adaptive = v;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] — see [`Config::validate`].
    pub fn build(self) -> Result<Config, StoreError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accepts_consistent_settings() {
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .pipeline_depth(8)
            .read_cache_bytes(1 << 20)
            .trace_sample(16)
            .build()
            .unwrap();
        assert_eq!(cfg.ncores, 2);
        assert_eq!(cfg.pipeline_depth, 8);
        assert_eq!(cfg.read_cache_bytes, 1 << 20);
        assert_eq!(cfg.trace_sample, 16);
    }

    #[test]
    fn trace_sampling_defaults_off() {
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .build()
            .unwrap();
        assert_eq!(cfg.trace_sample, 0);
    }

    #[test]
    fn zero_read_cache_is_valid_and_means_disabled() {
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .read_cache_bytes(0)
            .build()
            .unwrap();
        assert_eq!(cfg.read_cache_bytes, 0);
    }

    #[test]
    fn adaptive_defaults_off_and_requires_pipelined_hb() {
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .build()
            .unwrap();
        assert!(!cfg.adaptive);
        let cfg = Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .adaptive(true)
            .build()
            .unwrap();
        assert!(cfg.adaptive);
        for model in [
            ExecutionModel::NonBatch,
            ExecutionModel::Vertical,
            ExecutionModel::NaiveHb,
        ] {
            match Config::builder().adaptive(true).model(model).build() {
                Err(StoreError::InvalidConfig(msg)) => {
                    assert!(msg.contains("adaptive"), "{msg:?}");
                }
                other => panic!("expected InvalidConfig, got {other:?}"),
            }
        }
    }

    #[test]
    fn builder_rejects_inconsistent_settings() {
        for (builder, needle) in [
            (Config::builder().ncores(0), "at least one"),
            (Config::builder().ncores(61), "at most 60"),
            (Config::builder().group_size(0), "group size"),
            (Config::builder().ncores(4).group_size(3), "must divide"),
            (Config::builder().pm_bytes((4 << 20) + 1), "multiple"),
            (Config::builder().pm_bytes(4 << 20), "too small"),
            (Config::builder().channel_batch(0), "channel_batch"),
            (Config::builder().pipeline_depth(0), "pipeline_depth"),
        ] {
            match builder.build() {
                Err(StoreError::InvalidConfig(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} missing {needle:?}");
                }
                other => panic!("expected InvalidConfig({needle}), got {other:?}"),
            }
        }
    }
}
