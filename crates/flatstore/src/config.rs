//! Engine configuration.

/// Which volatile index backs the store (paper §4.1–4.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum IndexKind {
    /// FlatStore-H: one volatile CCEH instance per server core (no locks;
    /// requests are routed by keyhash).
    #[default]
    Hash,
    /// FlatStore-M: a single shared Masstree supporting range scans.
    Masstree,
    /// FlatStore-FF: a single shared volatile FAST&FAIR (the paper's
    /// ablation separating Masstree's contribution from the engine's).
    FastFair,
}

/// How server cores persist log entries — the paper's execution models
/// (Figure 4 and §5.4's ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecutionModel {
    /// One request at a time per core, one flush each ("Base").
    NonBatch,
    /// Each core batches only its own pending requests (Figure 4b).
    Vertical,
    /// Horizontal batching where the leader holds the group lock through
    /// the flush and followers block (Figure 4c).
    NaiveHb,
    /// Pipelined horizontal batching: early lock release, followers keep
    /// processing (Figure 4d, the paper's design).
    #[default]
    PipelinedHb,
}

/// Log-cleaning (GC) parameters (paper §3.4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GcConfig {
    /// Whether cleaning runs at all.
    pub enabled: bool,
    /// Chunks whose live-entry ratio is at most this become victims.
    pub max_live_ratio: f64,
    /// Cleaning starts when the shared pool has fewer free chunks.
    pub min_free_chunks: u32,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            enabled: true,
            max_live_ratio: 0.5,
            min_free_chunks: 8,
        }
    }
}

/// FlatStore engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// Total simulated-PM size in bytes (superblock + chunk pool). Must be
    /// a multiple of 4 MB and at least `(ncores + 2) * 4 MB + 4 MB`.
    pub pm_bytes: usize,
    /// DRAM arena for the volatile index (per core for `Hash`, total for
    /// `FastFair`).
    pub dram_bytes: usize,
    /// Number of server cores (worker threads).
    pub ncores: usize,
    /// Cores per horizontal-batching group (paper: one socket per group).
    pub group_size: usize,
    /// The volatile index flavor.
    pub index: IndexKind,
    /// The batching execution model.
    pub model: ExecutionModel,
    /// Track flushed state so `simulate_crash` works (2× memory).
    pub crash_tracking: bool,
    /// Testing: build the region with strict fence semantics — flushed but
    /// unfenced cachelines survive a crash only with probability ½
    /// (seeded). Implies crash tracking.
    pub strict_fence_seed: Option<u64>,
    /// Log-cleaning parameters.
    pub gc: GcConfig,
    /// Max requests a core drains from its channel per loop iteration.
    pub channel_batch: usize,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            pm_bytes: 256 << 20,
            dram_bytes: 32 << 20,
            ncores: 4,
            group_size: 4,
            index: IndexKind::Hash,
            model: ExecutionModel::PipelinedHb,
            crash_tracking: false,
            strict_fence_seed: None,
            gc: GcConfig::default(),
            channel_batch: 32,
        }
    }
}

impl Config {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent settings (zero cores, PM too small, …).
    pub fn validate(&self) {
        assert!(self.ncores > 0, "need at least one server core");
        assert!(
            self.ncores <= 60,
            "superblock layout supports at most 60 cores"
        );
        assert!(self.group_size > 0, "group size must be positive");
        assert_eq!(
            self.pm_bytes % (4 << 20),
            0,
            "pm_bytes must be 4 MB aligned"
        );
        assert!(
            self.pm_bytes >= (self.ncores + 3) * (4 << 20),
            "pm_bytes too small for {} cores",
            self.ncores
        );
        assert!(self.channel_batch > 0);
    }
}
