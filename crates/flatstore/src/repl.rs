//! Primary–backup replication hooks: the shipped-operation wire type, the
//! sink trait the engine calls at batch-persist time, and the passive
//! backup image that applies shipped batches into its own persistent logs.
//!
//! FlatStore's horizontal batching gives replication its unit of shipping
//! for free: the leader that just persisted a group batch ships that whole
//! batch as **one** message, so the per-message network cost is amortized
//! exactly like the per-batch flush cost (Cyclone-style log shipping on
//! top of paper §3.3's batches). The engine acknowledges a client only
//! once its operation is durable locally **and** covered by the backup's
//! acked watermark; the actual transport lives in the `flatrepl` crate.

use std::sync::Arc;

use oplog::{LogEntry, OpLog, INLINE_MAX};
use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};

use crate::config::Config;
use crate::error::StoreError;
use crate::superblock::{Superblock, POOL_BASE};
use crate::value::{read_record, record_size, write_record};

/// One replicated operation, self-contained: pointer payloads are resolved
/// to bytes before shipping, so a backup never needs the primary's heap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplOp {
    /// A Put of `value` under `key` at `version`.
    Put {
        /// The key.
        key: u64,
        /// The version the primary assigned.
        version: u32,
        /// The full value bytes.
        value: Vec<u8>,
    },
    /// A tombstone for `key` at `version`.
    Delete {
        /// The key.
        key: u64,
        /// The version the primary assigned.
        version: u32,
    },
}

impl ReplOp {
    /// Builds the shipped form of a just-persisted log entry, resolving a
    /// pointer payload through `pm`. Seal entries are internal and never
    /// reach replication.
    pub(crate) fn from_entry(pm: &PmRegion, e: &LogEntry) -> ReplOp {
        match e.op {
            oplog::LogOp::Delete => ReplOp::Delete {
                key: e.key,
                version: e.version,
            },
            _ => ReplOp::Put {
                key: e.key,
                version: e.version,
                value: match &e.payload {
                    oplog::Payload::Inline(v) => v.clone(),
                    oplog::Payload::Ptr(b) => read_record(pm, *b),
                    oplog::Payload::None => Vec::new(),
                },
            },
        }
    }
}

/// Where a primary ships its persisted batches. Implemented by
/// `flatrepl::Replicator`; the engine only sees this trait so the
/// dependency points from the transport to the engine, not back.
///
/// Shipping is pipelined: [`ship`](Self::ship) enqueues and returns a
/// per-core sequence number immediately; the engine withholds the client
/// acknowledgment of each operation until [`acked`](Self::acked) reaches
/// that number (the backup has durably applied the batch).
pub trait ReplicationSink: Send + Sync {
    /// Ships one persisted batch from `core`. `tail` is the primary's log
    /// tail after the append — the backup persists it as its catch-up
    /// cursor. Returns the batch's per-core ship sequence number (1-based,
    /// monotonic per core).
    fn ship(&self, core: usize, ops: Vec<ReplOp>, tail: PmAddr) -> u64;

    /// Highest ship sequence number of `core` the backup has durably
    /// applied and acknowledged.
    fn acked(&self, core: usize) -> u64;
}

/// One core's persistent state on a backup image.
struct BackupCore {
    log: OpLog,
    alloc: CoreAllocator,
}

/// A passive replica image: the same persistent layout as a primary
/// (superblock, chunk pool, per-core compacted logs), but with no worker
/// threads and no volatile index — shipped batches are appended straight
/// into the per-core logs. Promotion is just [`FlatStore::open`] on the
/// image's region: the clean flag is never set, so opening takes the
/// full log-scan crash path and rebuilds the index and allocator bitmaps
/// from the logs (paper §3.5, path 3).
///
/// [`FlatStore::open`]: crate::FlatStore::open
pub struct BackupImage {
    pm: Arc<PmRegion>,
    cores: Vec<parking_lot::Mutex<BackupCore>>,
}

impl std::fmt::Debug for BackupImage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackupImage")
            .field("ncores", &self.cores.len())
            .finish()
    }
}

impl BackupImage {
    /// Formats a fresh backup region mirroring a primary built from `cfg`
    /// (same core count, same chunk pool geometry).
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] on inconsistent settings;
    /// [`StoreError::OutOfSpace`] if the region cannot hold the per-core
    /// logs.
    pub fn format(cfg: &Config) -> Result<BackupImage, StoreError> {
        cfg.validate()?;
        let pm = if let Some(seed) = cfg.strict_fence_seed {
            Arc::new(PmRegion::with_strict_fences(cfg.pm_bytes, seed))
        } else if cfg.crash_tracking {
            Arc::new(PmRegion::with_crash_tracking(cfg.pm_bytes))
        } else {
            Arc::new(PmRegion::new(cfg.pm_bytes))
        };
        let nchunks = ((cfg.pm_bytes as u64 - POOL_BASE) / CHUNK_SIZE) as u32;
        // Deliberately never marked clean: a promoted backup must take the
        // full-scan recovery path, because only its logs are trustworthy
        // (the lazy-persist bitmaps were never maintained here).
        Superblock::new(&pm).format(cfg.ncores, nchunks);
        let mgr = Arc::new(ChunkManager::format(
            Arc::clone(&pm),
            PmAddr(POOL_BASE),
            nchunks,
        ));
        let mut cores = Vec::with_capacity(cfg.ncores);
        for core in 0..cfg.ncores {
            let log = OpLog::create(Arc::clone(&mgr), Superblock::log_desc(core))?;
            let alloc = CoreAllocator::new(Arc::clone(&mgr), core as u32);
            cores.push(parking_lot::Mutex::new(BackupCore { log, alloc }));
        }
        Ok(BackupImage { pm, cores })
    }

    /// Number of per-core logs.
    pub fn ncores(&self) -> usize {
        self.cores.len()
    }

    /// The backup's PM region (promote by passing it to
    /// [`FlatStore::open`](crate::FlatStore::open)).
    pub fn pm(&self) -> Arc<PmRegion> {
        Arc::clone(&self.pm)
    }

    /// Appends one shipped batch into `core`'s log, mirroring the
    /// primary's append path: out-of-line records first (one fence covers
    /// them all), then the compacted entries as one batched append whose
    /// tail persist is the batch's durability point.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfSpace`] if the backup pool is exhausted.
    pub fn apply(&self, core: usize, ops: &[ReplOp]) -> Result<(), StoreError> {
        let mut guard = self.cores[core].lock();
        let mut entries = Vec::with_capacity(ops.len());
        let mut fence_needed = false;
        for op in ops {
            match op {
                ReplOp::Put {
                    key,
                    version,
                    value,
                } if value.len() <= INLINE_MAX => {
                    entries.push(LogEntry::put_inline(*key, *version, value.clone())?);
                }
                ReplOp::Put {
                    key,
                    version,
                    value,
                } => {
                    let block = guard.alloc.alloc(record_size(value.len()))?;
                    write_record(&self.pm, block, value);
                    fence_needed = true;
                    entries.push(LogEntry::put_ptr(*key, *version, block));
                }
                ReplOp::Delete { key, version } => {
                    entries.push(LogEntry::tombstone(*key, *version));
                }
            }
        }
        if fence_needed {
            self.pm.fence();
        }
        // append_batch flushes, fences, persists the tail and declares the
        // commit point — the backup's durability point for this batch.
        guard.log.append_batch(&entries)?;
        Ok(())
    }

    /// Durably records that everything before the primary's log `tail` on
    /// `core` has been applied here. Reuses the checkpoint-cursor slot:
    /// a backup image never has a valid checkpoint, and a rejoining
    /// primary reads this cursor to ship only the suffix past it.
    pub fn set_ship_cursor(&self, core: usize, tail: PmAddr) {
        let cursor = Superblock::ckpt_cursor(core);
        self.pm.write_u64(cursor, tail.offset());
        self.pm.persist(cursor, 8);
        // Durability point: the batch this cursor covers was already
        // committed by `apply`, so advancing the cursor is safe.
        self.pm.commit_point();
    }

    /// The persisted ship cursor of `core` ([`PmAddr::NULL`] before the
    /// first batch lands).
    pub fn ship_cursor(&self, core: usize) -> PmAddr {
        PmAddr(self.pm.read_u64(Superblock::ckpt_cursor(core)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FlatStore;

    fn cfg() -> Config {
        // pmlint: allow(no-unwrap) — test-only configuration.
        Config::builder()
            .pm_bytes(64 << 20)
            .ncores(2)
            .group_size(2)
            .build()
            .expect("valid config")
    }

    #[test]
    fn backup_image_applies_and_promotes() {
        let backup = BackupImage::format(&cfg()).expect("format backup");
        assert_eq!(backup.ncores(), 2);
        let core = crate::core_of(7, 2);
        backup
            .apply(
                core,
                &[
                    ReplOp::Put {
                        key: 7,
                        version: 1,
                        value: b"small".to_vec(),
                    },
                    ReplOp::Put {
                        key: 9,
                        version: 1,
                        value: vec![0xCD; 4000], // out-of-line record
                    },
                ],
            )
            .expect("apply batch");
        backup
            .apply(core, &[ReplOp::Delete { key: 9, version: 2 }])
            .expect("apply delete");
        let tail = PmAddr(0x40_0040);
        backup.set_ship_cursor(core, tail);
        assert_eq!(backup.ship_cursor(core), tail);
        assert_eq!(backup.ship_cursor(1 - core), PmAddr::NULL);

        // Promotion: opening the image takes the full-scan crash path and
        // rebuilds the store from the shipped log alone.
        let pm = backup.pm();
        drop(backup);
        let store = FlatStore::open(pm, cfg()).expect("promote backup");
        assert_eq!(store.get(7).expect("get"), Some(b"small".to_vec()));
        assert_eq!(store.get(9).expect("get"), None);
        store.shutdown().expect("shutdown");
    }

    #[test]
    fn repl_op_resolves_pointer_payloads() {
        let pm = PmRegion::new(1 << 20);
        write_record(&pm, PmAddr(4096), b"resolved");
        pm.fence();
        let e = LogEntry::put_ptr(42, 3, PmAddr(4096));
        assert_eq!(
            ReplOp::from_entry(&pm, &e),
            ReplOp::Put {
                key: 42,
                version: 3,
                value: b"resolved".to_vec(),
            }
        );
        let d = LogEntry::tombstone(42, 4);
        assert_eq!(
            ReplOp::from_entry(&pm, &d),
            ReplOp::Delete {
                key: 42,
                version: 4
            }
        );
    }
}
