//! The unified blocking client surface: the [`KvApi`] trait and the
//! [`Client`] wrapper.
//!
//! The engine exposes two ways to talk to it — the clonable
//! [`StoreHandle`] (one private depth-1 session per clone) and the
//! pipelined [`Session`] (explicit tickets, up to `pipeline_depth` in
//! flight). [`KvApi`] is the common denominator: every blocking caller
//! (examples, the `flatsrv` front end's control paths, tests) codes
//! against this one trait and works unchanged over either transport.
//! [`Client`] adapts a `Session` to the trait by submitting one [`Op`]
//! and waiting for its [`Reply`] — the same depth-1 discipline
//! `StoreHandle` uses, but on a session the caller owns and can take
//! back for pipelined phases.

use crate::engine::{mismatched, StoreHandle};
use crate::error::StoreError;
use crate::request::{Op, Reply};
use crate::session::Session;

/// The blocking key-value surface shared by every client type.
///
/// Methods take `&mut self` so a [`Session`]-backed implementation can
/// drive its pipeline; [`StoreHandle`]'s implementation simply forwards
/// to its internally synchronized `&self` methods. The trait is
/// object-safe: `&mut dyn KvApi` works where the transport is chosen at
/// run time.
pub trait KvApi {
    /// Stores `value` under `key`, acknowledged only once durable.
    ///
    /// # Errors
    ///
    /// [`StoreError::EmptyValue`], [`StoreError::ReservedKey`],
    /// [`StoreError::OutOfSpace`], [`StoreError::ShuttingDown`].
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError>;

    /// Reads `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] or corruption errors.
    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError>;

    /// Deletes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// As for [`put`](Self::put).
    fn delete(&mut self, key: u64) -> Result<bool, StoreError>;

    /// Range scan over `lo..hi`, at most `limit` items (FlatStore-M/-FF
    /// only).
    ///
    /// # Errors
    ///
    /// [`StoreError::RangeUnsupported`] on FlatStore-H;
    /// [`StoreError::ShuttingDown`].
    fn range(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError>;
}

impl KvApi for StoreHandle {
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        StoreHandle::put(self, key, value)
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        StoreHandle::get(self, key)
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        StoreHandle::delete(self, key)
    }

    fn range(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        StoreHandle::range(self, lo, hi, limit)
    }
}

/// A blocking adapter over a pipelined [`Session`].
///
/// Each call submits one [`Op`] and waits for its [`Reply`] — latency
/// equals one engine round trip, and per-operation errors come back as
/// `Err` instead of a variant to unpack. Use
/// [`session`](Client::session)/[`into_session`](Client::into_session)
/// to switch to pipelined submission for bulk phases and back.
///
/// # Example
///
/// ```
/// use flatstore::prelude::*;
/// use flatstore::FlatStore;
///
/// let store = FlatStore::create(
///     Config::builder().pm_bytes(64 << 20).ncores(2).group_size(2).build()?,
/// )?;
/// let mut client = Client::new(store.session()?);
/// client.put(7, b"v")?;
/// assert_eq!(client.get(7)?.as_deref(), Some(&b"v"[..]));
/// assert!(client.delete(7)?);
/// drop(client);
/// store.shutdown()?;
/// # Ok::<(), flatstore::StoreError>(())
/// ```
pub struct Client {
    session: Session,
}

impl Client {
    /// Wraps `session` in the blocking surface.
    pub fn new(session: Session) -> Client {
        Client { session }
    }

    /// The underlying session, for mixing pipelined submissions with
    /// blocking calls (any in-flight tickets stay harvestable).
    pub fn session(&mut self) -> &mut Session {
        &mut self.session
    }

    /// Unwraps back into the owned session.
    pub fn into_session(self) -> Session {
        self.session
    }

    /// Submits `op` and blocks for its reply.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped; per-operation
    /// failures are folded into the returned result by the typed
    /// wrappers.
    pub fn roundtrip(&mut self, op: Op) -> Result<Reply, StoreError> {
        let t = self.session.submit(op)?;
        self.session.wait(t)
    }
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("session", &self.session)
            .finish()
    }
}

impl KvApi for Client {
    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        match self.roundtrip(Op::put(key, value))? {
            Reply::Put(r) => r,
            other => Err(mismatched(other)),
        }
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        match self.roundtrip(Op::Get { key })? {
            Reply::Get(r) => r,
            other => Err(mismatched(other)),
        }
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        match self.roundtrip(Op::Delete { key })? {
            Reply::Delete(r) => r,
            other => Err(mismatched(other)),
        }
    }

    fn range(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        match self.roundtrip(Op::Range { lo, hi, limit })? {
            Reply::Range(r) => r,
            other => Err(mismatched(other)),
        }
    }
}
