//! DRAM-resident hot-value read cache.
//!
//! Every Get that misses here pays a simulated-PM media read to fetch the
//! value from the log (two for out-of-log values); under skewed workloads a
//! small DRAM cache absorbs most of that cost. The cache is **purely
//! volatile** — it is rebuilt empty on every open/recovery/promotion and
//! never touches the [`PmRegion`](pmem::PmRegion) — so it cannot affect
//! durability, only read latency.
//!
//! # Sharding and coherence
//!
//! The cache is sharded per server core. Requests are routed by keyhash
//! ([`core_of`](crate::shard::core_of)), so a key's cache shard is only
//! ever touched by its owner core's worker thread: the per-shard mutex is
//! uncontended and exists only to keep the type `Sync` for the engine's
//! report path. Coherence follows from two facts (see DESIGN.md §11):
//!
//! 1. the conflict gate defers a Get while the key has an in-flight Put or
//!    Delete, so a cached fill can never race an older pending write, and
//! 2. [`Shard::complete`](crate::shard::Shard) invalidates the key *before*
//!    acknowledging the write, on the same thread that serves the key's
//!    Gets — so once a client sees a write acked, the stale value is gone.
//!
//! Range scans bypass the cache entirely: a shared ordered index crosses
//! core ownership, and filling another core's shard from a scan would break
//! the single-writer discipline above.

use racecheck::sync::atomic::{AtomicU64, Ordering};
use racecheck::sync::Arc;
use std::collections::HashMap;

use parking_lot::Mutex;

/// Accounted DRAM bytes per cached entry beyond the value itself — one
/// cacheline of metadata (key, map slot, CLOCK state, allocation headers).
const SLOT_OVERHEAD: usize = 64;

struct Slot {
    key: u64,
    value: Box<[u8]>,
    /// CLOCK reference bit: set on hit, cleared as the hand sweeps past.
    referenced: bool,
}

impl Slot {
    fn cost(&self) -> usize {
        SLOT_OVERHEAD + self.value.len()
    }
}

/// One core's CLOCK ring: a slot vector swept by a hand plus a key → slot
/// map. Eviction order is approximate LRU (second chance).
#[derive(Default)]
struct ClockShard {
    cap_bytes: usize,
    used_bytes: usize,
    hand: usize,
    slots: Vec<Slot>,
    map: HashMap<u64, usize>,
}

impl ClockShard {
    fn get(&mut self, key: u64) -> Option<Vec<u8>> {
        let &i = self.map.get(&key)?;
        self.slots[i].referenced = true;
        Some(self.slots[i].value.to_vec())
    }

    /// Inserts (or replaces) `key`; returns how many entries were evicted
    /// to make room. Values that cannot fit even an empty shard are not
    /// cached at all rather than wiping the whole shard.
    fn insert(&mut self, key: u64, value: &[u8]) -> u64 {
        let cost = SLOT_OVERHEAD + value.len();
        if cost > self.cap_bytes {
            self.remove(key);
            return 0;
        }
        let mut evicted = 0;
        if let Some(&i) = self.map.get(&key) {
            self.used_bytes -= self.slots[i].cost();
            self.slots[i].value = value.into();
            self.slots[i].referenced = true;
            self.used_bytes += cost;
        } else {
            self.slots.push(Slot {
                key,
                value: value.into(),
                referenced: true,
            });
            self.map.insert(key, self.slots.len() - 1);
            self.used_bytes += cost;
        }
        while self.used_bytes > self.cap_bytes {
            // The newly inserted entry has its reference bit set, so a full
            // sweep always finds an older victim first (second chance); the
            // ring can only empty down to the entry just inserted.
            self.clock_evict(key);
            evicted += 1;
        }
        evicted
    }

    /// Sweeps the hand to the first unreferenced slot and evicts it,
    /// skipping `protect` (the entry being inserted).
    fn clock_evict(&mut self, protect: u64) {
        loop {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            let s = &mut self.slots[self.hand];
            if s.referenced || s.key == protect {
                s.referenced = s.key == protect;
                self.hand += 1;
            } else {
                let key = s.key;
                self.remove(key);
                return;
            }
        }
    }

    fn remove(&mut self, key: u64) -> bool {
        let Some(i) = self.map.remove(&key) else {
            return false;
        };
        self.used_bytes -= self.slots[i].cost();
        self.slots.swap_remove(i);
        if let Some(moved) = self.slots.get(i) {
            self.map.insert(moved.key, i);
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
        true
    }
}

/// The engine-wide read cache: one [`ClockShard`] per server core plus the
/// monotonic counters surfaced through
/// [`FlatStore::stats_report`](crate::FlatStore::stats_report).
pub(crate) struct ReadCache {
    shards: Vec<Mutex<ClockShard>>,
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
    invalidations: AtomicU64,
}

impl ReadCache {
    /// Splits `total_bytes` of DRAM budget evenly across `ncores` shards;
    /// `total_bytes == 0` disables the cache (the engine then skips it
    /// entirely, leaving the Get path byte-identical to a cache-less
    /// build).
    pub fn new(total_bytes: usize, ncores: usize) -> Option<Arc<ReadCache>> {
        if total_bytes == 0 {
            return None;
        }
        let per_shard = (total_bytes / ncores.max(1)).max(1);
        let mut shards = Vec::with_capacity(ncores);
        shards.resize_with(ncores, || {
            Mutex::new(ClockShard {
                cap_bytes: per_shard,
                ..ClockShard::default()
            })
        });
        Some(Arc::new(ReadCache {
            shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inserts: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }))
    }

    /// Looks `key` up in `core`'s shard, counting the hit or miss.
    pub fn get(&self, core: usize, key: u64) -> Option<Vec<u8>> {
        let got = self.shards[core].lock().get(key);
        if got.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        got
    }

    /// Fills `key` after a cache miss served from the log.
    pub fn insert(&self, core: usize, key: u64, value: &[u8]) {
        let evicted = self.shards[core].lock().insert(key, value);
        self.inserts.fetch_add(1, Ordering::Relaxed);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Write-through invalidation: called by the owner core before it acks
    /// a Put or Delete of `key`.
    pub fn invalidate(&self, core: usize, key: u64) {
        if self.shards[core].lock().remove(key) {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Fills the `read_cache` report section.
    pub fn fill_report(&self, r: &mut obs::StatsReport) {
        let (mut entries, mut used, mut cap) = (0usize, 0usize, 0usize);
        for shard in &self.shards {
            let s = shard.lock();
            entries += s.slots.len();
            used += s.used_bytes;
            cap += s.cap_bytes;
        }
        let hits = self.hits.load(Ordering::Relaxed);
        let misses = self.misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        let sec = r.section("read_cache");
        sec.row("capacity_bytes", cap)
            .row("used_bytes", used)
            .row("entries", entries)
            .row("hits", hits)
            .row("misses", misses)
            .row(
                "hit_rate",
                if lookups == 0 {
                    0.0
                } else {
                    hits as f64 / lookups as f64
                },
            )
            .row("inserts", self.inserts.load(Ordering::Relaxed))
            .row("evictions", self.evictions.load(Ordering::Relaxed))
            .row("invalidations", self.invalidations.load(Ordering::Relaxed));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(bytes: usize, ncores: usize) -> Arc<ReadCache> {
        match ReadCache::new(bytes, ncores) {
            Some(c) => c,
            None => panic!("capacity {bytes} should enable the cache"),
        }
    }

    #[test]
    fn zero_budget_disables() {
        assert!(ReadCache::new(0, 4).is_none());
    }

    #[test]
    fn hit_after_insert_miss_after_invalidate() {
        let c = cache(1 << 20, 2);
        assert_eq!(c.get(0, 7), None);
        c.insert(0, 7, b"value");
        assert_eq!(c.get(0, 7).as_deref(), Some(&b"value"[..]));
        // Shards are independent: the same key misses on another core.
        assert_eq!(c.get(1, 7), None);
        c.invalidate(0, 7);
        assert_eq!(c.get(0, 7), None);
    }

    #[test]
    fn replacing_insert_updates_value_and_bytes() {
        let c = cache(1 << 20, 1);
        c.insert(0, 1, b"old");
        c.insert(0, 1, b"newer-value");
        assert_eq!(c.get(0, 1).as_deref(), Some(&b"newer-value"[..]));
        let s = c.shards[0].lock();
        assert_eq!(s.slots.len(), 1);
        assert_eq!(s.used_bytes, SLOT_OVERHEAD + b"newer-value".len());
    }

    #[test]
    fn oversized_value_is_not_cached() {
        // Budget below one slot's overhead: nothing ever fits (the
        // "capacity 1" degenerate case must behave, not panic).
        let c = cache(1, 1);
        c.insert(0, 1, b"x");
        assert_eq!(c.get(0, 1), None);
        assert_eq!(c.shards[0].lock().used_bytes, 0);
    }

    #[test]
    fn clock_evicts_cold_entries_first() {
        // Room for exactly two value-less-than-16B entries.
        let c = cache(2 * (SLOT_OVERHEAD + 16), 1);
        c.insert(0, 1, &[1u8; 16]);
        c.insert(0, 2, &[2u8; 16]);
        // Touch key 1 so its reference bit survives the next sweep.
        assert!(c.get(0, 1).is_some());
        // But clear key 2's bit by sweeping: inserting key 3 must evict the
        // unreferenced key 2, not the just-touched key 1.
        c.shards[0].lock().slots.iter_mut().for_each(|s| {
            if s.key == 2 {
                s.referenced = false;
            }
        });
        c.insert(0, 3, &[3u8; 16]);
        assert!(c.get(0, 1).is_some(), "hot key evicted");
        assert_eq!(c.get(0, 2), None, "cold key kept");
        assert!(c.get(0, 3).is_some());
        assert_eq!(c.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eviction_churn_keeps_accounting_consistent() {
        let c = cache(8 * (SLOT_OVERHEAD + 32), 1);
        for round in 0..50u64 {
            for k in 0..16u64 {
                c.insert(0, k, &[round as u8; 32]);
                let _ = c.get(0, (k * 7 + round) % 16);
            }
            c.invalidate(0, round % 16);
        }
        let s = c.shards[0].lock();
        let sum: usize = s.slots.iter().map(Slot::cost).sum();
        assert_eq!(s.used_bytes, sum);
        assert!(s.used_bytes <= s.cap_bytes);
        assert_eq!(s.map.len(), s.slots.len());
        for (k, &i) in &s.map {
            assert_eq!(s.slots[i].key, *k);
        }
    }

    #[test]
    fn report_rows_reflect_counters() {
        let c = cache(1 << 20, 1);
        c.insert(0, 1, b"v");
        let _ = c.get(0, 1);
        let _ = c.get(0, 2);
        c.invalidate(0, 1);
        let mut r = obs::StatsReport::new("t");
        c.fill_report(&mut r);
        assert_eq!(r.get("read_cache", "hits"), Some(&obs::Value::U64(1)));
        assert_eq!(r.get("read_cache", "misses"), Some(&obs::Value::U64(1)));
        assert_eq!(
            r.get("read_cache", "invalidations"),
            Some(&obs::Value::U64(1))
        );
    }
}
