//! Always-on crash flight recorder (the "black box").
//!
//! Every engine keeps one bounded [`FlightRing`] per server core holding
//! the last N completed/errored operation records plus recent stage
//! events. The rings cost a mutex'd push per completion and nothing else
//! — they are armed regardless of [`Config::trace_sample`]. When the
//! process panics (any thread) or the engine constructs a
//! [`StoreError::Corrupt`], every live registry is dumped — flight rings
//! plus the engine's full `stats_report` JSON — into the directory named
//! by the `FLATSTORE_CRASH_DIR` environment variable (no dump when
//! unset).
//!
//! The panic hook chains: the previously installed hook still runs, so
//! test harness backtraces are preserved. Ring locks are `try_lock`ed
//! from the hook — a core that panicked while holding its own ring lock
//! yields `{"core":N,"locked":true}` instead of a deadlock.
//!
//! [`Config::trace_sample`]: crate::Config::trace_sample
//! [`StoreError::Corrupt`]: crate::StoreError::Corrupt

use racecheck::sync::atomic::{AtomicU64, Ordering};
use racecheck::sync::{Arc, Mutex, OnceLock, Weak};
use std::path::PathBuf;

use obs::ring::Event;
use obs::{FlightRecord, FlightRing, Json};

/// Flight records kept per core before the oldest are overwritten.
const RECORDS_PER_CORE: usize = 64;

/// Every engine's registry, weakly held so a dropped store unregisters
/// itself; walked by the panic hook and by [`dump_all`].
static REGISTRIES: Mutex<Vec<Weak<FlightRegistry>>> = Mutex::new(Vec::new());

/// Ensures the chained panic hook installs exactly once per process.
static HOOK: OnceLock<()> = OnceLock::new();

/// Distinguishes dump files within one process.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// One engine's per-core flight rings plus the stats snapshot used when
/// dumping.
pub(crate) struct FlightRegistry {
    rings: Vec<Mutex<FlightRing>>,
    /// Renders the engine's full stats report as JSON for the dump.
    /// Captures only `Arc`'d state so it stays callable from the panic
    /// hook on any thread.
    stats_json: Mutex<Option<Box<dyn Fn() -> String + Send + Sync>>>,
}

impl FlightRegistry {
    /// Builds the registry, registers it for crash dumps, and installs
    /// the (process-wide, chained) panic hook on first use.
    pub fn new(ncores: usize) -> Arc<FlightRegistry> {
        let reg = Arc::new(FlightRegistry {
            rings: (0..ncores)
                .map(|_| Mutex::new(FlightRing::new(RECORDS_PER_CORE)))
                .collect(),
            stats_json: Mutex::new(None),
        });
        let mut all = lock_registries();
        all.retain(|w| w.strong_count() > 0);
        all.push(Arc::downgrade(&reg));
        drop(all);
        HOOK.get_or_init(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                dump_all(&format!("panic: {info}"));
                prev(info);
            }));
        });
        reg
    }

    /// Installs the closure rendering the engine's `stats_report` JSON.
    pub fn set_stats_source(&self, f: impl Fn() -> String + Send + Sync + 'static) {
        *self.stats_json.lock().unwrap_or_else(|p| p.into_inner()) = Some(Box::new(f));
    }

    /// Appends a completed/errored op record to `core`'s ring.
    pub fn record(&self, core: usize, r: FlightRecord) {
        if let Some(ring) = self.rings.get(core) {
            ring.lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_record(r);
        }
    }

    /// Appends a stage event (e.g. a batch flush span) to `core`'s ring.
    pub fn event(&self, core: usize, ev: Event) {
        if let Some(ring) = self.rings.get(core) {
            ring.lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_event(ev);
        }
    }

    /// Chrome trace events accumulated across all cores (clones the ring
    /// contents under each lock).
    pub fn chrome_events(&self) -> Vec<Event> {
        let mut out = Vec::new();
        for ring in &self.rings {
            let g = ring.lock().unwrap_or_else(|p| p.into_inner());
            out.extend(g.events().cloned());
        }
        out
    }

    /// Serialises this registry as the body of one crash dump.
    fn dump_body(&self, reason: &str) -> String {
        let mut body = String::with_capacity(4096);
        body.push_str("{\"reason\":");
        body.push_str(&Json::Str(reason.to_string()).dump());
        body.push_str(",\"flight\":[");
        for (core, ring) in self.rings.iter().enumerate() {
            if core > 0 {
                body.push(',');
            }
            // try_lock: the panicking thread may hold its own ring lock.
            match ring.try_lock() {
                Ok(g) => body.push_str(&g.dump_json(core)),
                Err(std::sync::TryLockError::Poisoned(p)) => {
                    body.push_str(&p.into_inner().dump_json(core));
                }
                Err(std::sync::TryLockError::WouldBlock) => {
                    body.push_str(&format!("{{\"core\":{core},\"locked\":true}}"));
                }
            }
        }
        body.push_str("],\"stats_report\":");
        let stats = match self.stats_json.try_lock() {
            Ok(g) => g.as_ref().map(|f| f()),
            Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner().as_ref().map(|f| f()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        };
        match stats {
            Some(json) => body.push_str(&json),
            None => body.push_str("null"),
        }
        body.push('}');
        body
    }

    /// Writes one dump file for this registry; `None` when
    /// `FLATSTORE_CRASH_DIR` is unset or the write fails.
    pub fn dump(&self, reason: &str) -> Option<PathBuf> {
        let dir = std::env::var_os("FLATSTORE_CRASH_DIR")?;
        let dir = PathBuf::from(dir);
        std::fs::create_dir_all(&dir).ok()?;
        let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flatstore-crash-{}-{seq}.json", std::process::id()));
        std::fs::write(&path, self.dump_body(reason)).ok()?;
        Some(path)
    }
}

fn lock_registries() -> std::sync::MutexGuard<'static, Vec<Weak<FlightRegistry>>> {
    REGISTRIES.lock().unwrap_or_else(|p| p.into_inner())
}

/// Dumps every live registry (panic hook and
/// [`StoreError::Corrupt`](crate::StoreError::Corrupt) construction).
pub(crate) fn dump_all(reason: &str) -> Vec<PathBuf> {
    let regs: Vec<Arc<FlightRegistry>> = {
        let mut all = lock_registries();
        all.retain(|w| w.strong_count() > 0);
        all.iter().filter_map(Weak::upgrade).collect()
    };
    regs.iter().filter_map(|r| r.dump(reason)).collect()
}
