//! Adaptive horizontal-batching controller ([`Config::adaptive`]).
//!
//! The paper's HB knobs — group size and leader behavior — are static
//! config; the right settings depend on load, skew and media flush cost.
//! `BatchTuner` closes the loop. Group leaders report every persisted
//! batch (fill, stolen count, backlog flag, a clock stamp), and once per
//! epoch (a fixed batch count, so tuning cost amortizes to ~zero per op)
//! the controller moves two knobs:
//!
//! * **effective membership** — how many publish lists a leader's sweep
//!   spans, bounded by `[1, members]`. Fill/steal signals cannot pick
//!   this knob's direction: a skewed load and a uniform one can produce
//!   identical batch shapes while wanting opposite sweep widths (wide
//!   sweeps help when steals land on idle cores, hurt when the hottest
//!   core does the stealing). So the controller measures what it
//!   optimizes: epoch throughput (entries per nanosecond). It holds the
//!   current width for a few epochs to get a baseline, *probes* a
//!   halved/doubled width for a few more, then returns to the baseline
//!   width for a *confirm* window. The candidate is adopted only if its
//!   window beat both baseline windows (before and after) by a deadband
//!   — an A/B/A cycle, so monotone load drift bracketing the probe
//!   cannot masquerade as a win. Anything else is rolled back and backed
//!   off: failed probes double the next hold, and the failure that caps
//!   the ladder at [`HOLD_MAX`] *settles* the tuner — probing stops
//!   entirely (zero churn at the converged width) until epoch throughput
//!   leaves a ±[`REARM_FRACTION`] band around the settled baseline,
//!   which re-arms the ladder from scratch.
//! * **linger window** — how long a leader with an under-filled batch
//!   keeps re-sweeping before persisting (the classic batching
//!   latency/throughput dial), bounded by [`MAX_LINGER_NS`]. Linger is
//!   signal-driven: congested epochs (backlog with nothing left to
//!   widen) step it up; full or starved epochs decay it.
//!
//! Both knobs are plain atomics read by leaders on every sweep; stale
//! reads are harmless (they only pick a slightly older operating point).
//! Stability is by construction: every knob walks a finite ladder, each
//! epoch moves at most one rung, and a probe that loses is rolled back
//! and charged with exponentially longer holds (see DESIGN.md §16). The
//! DES mirrors the same constants and state machine in `simkv::flatsim`
//! so sweeps can prove adaptive ≈ best-static.
//!
//! [`Config::adaptive`]: crate::Config::adaptive

use racecheck::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use racecheck::sync::{Arc, Mutex};

/// Batches per tuning epoch.
pub(crate) const EPOCH_BATCHES: u64 = 32;
/// Epochs in one measurement phase (baseline hold or probe). Long enough
/// that epoch-boundary jitter stays well under [`DEADBAND`].
pub(crate) const PROBE_EPOCHS: u64 = 6;
/// Shortest hold between probes (epochs), used after an adopted probe.
pub(crate) const HOLD_MIN: u64 = 6;
/// Longest hold between probes; a failed probe that caps the ladder here
/// settles the tuner (probing stops until the load visibly shifts).
pub(crate) const HOLD_MAX: u64 = 48;
/// Relative throughput gain a probe must show to be adopted.
pub(crate) const DEADBAND: f64 = 0.02;
/// Relative throughput shift that re-arms a settled tuner's probing.
pub(crate) const REARM_FRACTION: f64 = 0.15;
/// Upper bound on the leader linger window.
pub(crate) const MAX_LINGER_NS: u64 = 20_000;
/// Additive linger increase per congested epoch (decay is multiplicative).
pub(crate) const LINGER_STEP_NS: u64 = 2_000;
/// Mean fill at or below which a group counts as starved.
pub(crate) const STARVED_FILL: f64 = 1.25;
/// Fraction of the target fill at which batches count as full enough.
pub(crate) const FULL_FRACTION: f64 = 0.75;

/// The `eff` probe state machine (hold → probe → adopt-or-revert),
/// stepped under a mutex by whichever leader closes a tuning epoch.
#[derive(Debug)]
struct ProbeState {
    /// Entries accumulated across the current measurement phase.
    phase_entries: u64,
    /// Clock stamp at the phase start; 0 = not started (first epoch
    /// close only arms the measurement).
    phase_start_ns: u64,
    /// Epochs left in the current phase.
    phase_left: u64,
    /// Whether the current phase is a probe (vs a baseline hold).
    probing: bool,
    /// Whether the current phase re-measures the baseline right after a
    /// probe (the A2 of an A/B/A cycle; `eff` is back at `base_eff`).
    confirming: bool,
    /// Converged: probing stopped until epoch throughput leaves the
    /// re-arm band around the settled baseline.
    settled: bool,
    /// Current hold length in epochs (backoff ladder).
    hold_len: u64,
    /// Next probe direction: true = halve, false = double.
    dir_down: bool,
    /// `eff` before the in-flight probe (restored on a failed probe).
    base_eff: usize,
    /// Baseline throughput (entries/ns) measured by the last hold.
    base_tput: f64,
    /// Probe candidate width and its measured throughput, held across the
    /// confirm phase until `decide` adopts or rejects it.
    cand_eff: usize,
    probe_tput: f64,
}

/// Per-group adaptive-batching controller; see the module docs.
#[derive(Debug)]
pub struct BatchTuner {
    /// Physical group size (the hard upper bound for `eff`).
    members: usize,
    /// Fill a leader aims for before persisting (the config's
    /// `pipeline_depth`: one client's whole pipeline in one flush).
    target_fill: u64,
    /// Current linger window (ns); leaders load it on every sweep.
    linger_ns: AtomicU64,
    /// Current effective subgroup size; leaders load it on every sweep.
    eff: AtomicUsize,
    // Epoch accumulators, reset by the leader that closes the epoch.
    epoch_batches: AtomicU64,
    epoch_entries: AtomicU64,
    epoch_stolen: AtomicU64,
    epoch_backlog: AtomicU64,
    /// Probe state machine — cold path only: the lock is taken once per
    /// epoch close (every [`EPOCH_BATCHES`] batches), never on post/steal.
    probe: Mutex<ProbeState>,
    // Decision counters for the `batch_tuner` stats section.
    epochs: obs::Counter,
    probes: obs::Counter,
    grow: obs::Counter,
    shrink: obs::Counter,
    reverts: obs::Counter,
    rearms: obs::Counter,
    linger_up: obs::Counter,
    linger_down: obs::Counter,
}

impl BatchTuner {
    /// A tuner for a `members`-core group starting at `eff0` effective
    /// members and no linger (the first phases measure the configured
    /// operating point before moving anything).
    pub fn new(members: usize, eff0: usize, target_fill: u64) -> Arc<BatchTuner> {
        Arc::new(BatchTuner {
            members,
            target_fill: target_fill.max(1),
            linger_ns: AtomicU64::new(0),
            eff: AtomicUsize::new(eff0.clamp(1, members)),
            epoch_batches: AtomicU64::new(0),
            epoch_entries: AtomicU64::new(0),
            epoch_stolen: AtomicU64::new(0),
            epoch_backlog: AtomicU64::new(0),
            probe: Mutex::new(ProbeState {
                phase_entries: 0,
                phase_start_ns: 0,
                phase_left: HOLD_MIN,
                probing: false,
                confirming: false,
                settled: false,
                hold_len: HOLD_MIN,
                dir_down: true,
                base_eff: eff0.clamp(1, members),
                base_tput: 0.0,
                cand_eff: eff0.clamp(1, members),
                probe_tput: 0.0,
            }),
            epochs: obs::Counter::default(),
            probes: obs::Counter::default(),
            grow: obs::Counter::default(),
            shrink: obs::Counter::default(),
            reverts: obs::Counter::default(),
            rearms: obs::Counter::default(),
            linger_up: obs::Counter::default(),
            linger_down: obs::Counter::default(),
        })
    }

    /// Current leader linger window in nanoseconds.
    pub fn linger_ns(&self) -> u64 {
        // pmlint: allow(relaxed-ordering) — tuning knob: a stale read only
        // applies the previous epoch's operating point; no data is guarded.
        self.linger_ns.load(Ordering::Relaxed)
    }

    /// Current effective subgroup size (how many publish lists a leader's
    /// sweep spans).
    pub fn eff(&self) -> usize {
        // pmlint: allow(relaxed-ordering) — tuning knob: consumer tokens
        // (batch.rs) make sweeps safe under any stale subgroup view.
        self.eff.load(Ordering::Relaxed)
    }

    /// Fill a leader lingers toward before persisting.
    pub fn target_fill(&self) -> u64 {
        self.target_fill
    }

    /// Leader-side report of one persisted batch: its entry count, how
    /// many of those entries came off *other* members' publish lists
    /// (stolen), whether posted work was still pending after the sweep,
    /// and a monotonic clock stamp (wall ns in the engine, virtual ns in
    /// the DES). The leader whose report closes the epoch runs the
    /// retune step.
    pub fn observe_batch(&self, fill: u64, stolen: u64, backlog: bool, now_ns: u64) {
        self.epoch_entries.fetch_add(fill, Ordering::Relaxed);
        self.epoch_stolen.fetch_add(stolen, Ordering::Relaxed);
        if backlog {
            self.epoch_backlog.fetch_add(1, Ordering::Relaxed);
        }
        let n = self.epoch_batches.fetch_add(1, Ordering::Relaxed) + 1;
        if n.is_multiple_of(EPOCH_BATCHES) {
            self.retune(now_ns);
        }
    }

    /// One control step over the epoch's accumulated signals. The
    /// accumulators are reset with `swap`, so concurrent leaders' reports
    /// land in either the closing or the next epoch — never both.
    fn retune(&self, now_ns: u64) {
        // pmlint: allow(relaxed-ordering) — epoch accumulators: a report
        // racing the swap just counts toward the next epoch.
        let entries = self.epoch_entries.swap(0, Ordering::Relaxed);
        // pmlint: allow(relaxed-ordering) — as above.
        let _stolen = self.epoch_stolen.swap(0, Ordering::Relaxed);
        // pmlint: allow(relaxed-ordering) — as above.
        let backlog = self.epoch_backlog.swap(0, Ordering::Relaxed);
        self.epochs.inc();

        self.retune_linger(entries, backlog);
        self.retune_eff(entries, now_ns);
    }

    /// Signal-driven linger law: congestion buys fill with latency; full
    /// or starved epochs stop paying it. At most one rung per epoch.
    fn retune_linger(&self, entries: u64, backlog: u64) {
        let mean_fill = entries as f64 / EPOCH_BATCHES as f64;
        let congested = backlog >= EPOCH_BATCHES / 4;
        if mean_fill >= self.target_fill as f64 * FULL_FRACTION || mean_fill <= STARVED_FILL {
            self.linger_halve();
        } else if congested {
            self.linger_step_up();
        }
    }

    /// Measured sweep-width law: hold → probe → adopt-or-revert. See the
    /// module docs for why this knob cannot be signal-driven.
    fn retune_eff(&self, entries: u64, now_ns: u64) {
        // Cold path: once per epoch. A poisoned lock (panicking leader)
        // just freezes the current operating point.
        let Ok(mut p) = self.probe.lock() else {
            return;
        };
        if p.phase_start_ns == 0 || now_ns <= p.phase_start_ns {
            // First epoch close (or a clock that did not advance): arm
            // the measurement and start accumulating from here.
            p.phase_start_ns = now_ns.max(1);
            p.phase_entries = 0;
            return;
        }
        p.phase_entries += entries;
        p.phase_left = p.phase_left.saturating_sub(1);
        if p.phase_left > 0 {
            return;
        }
        let tput = p.phase_entries as f64 / (now_ns - p.phase_start_ns) as f64;
        p.phase_entries = 0;
        p.phase_start_ns = now_ns;
        if p.probing {
            self.finish_probe(&mut p, tput);
        } else if p.confirming {
            self.decide(&mut p, tput);
        } else if p.settled {
            // Zero-churn watch: stay at the settled width, re-arm the
            // probe ladder only when measured load genuinely moves.
            if (tput / p.base_tput - 1.0).abs() > REARM_FRACTION {
                p.settled = false;
                p.hold_len = HOLD_MIN;
                p.phase_left = HOLD_MIN;
                self.rearms.inc();
            } else {
                p.phase_left = PROBE_EPOCHS;
            }
        } else {
            self.start_probe(&mut p, tput);
        }
    }

    /// End of a baseline hold: remember its throughput and switch `eff`
    /// to the probe candidate (halve or double, per current direction).
    fn start_probe(&self, p: &mut ProbeState, base_tput: f64) {
        p.base_tput = base_tput;
        let cur = self.eff();
        p.base_eff = cur;
        let mut cand = Self::step(cur, p.dir_down, self.members);
        if cand == cur {
            // This direction is at its bound: flip and try the other.
            p.dir_down = !p.dir_down;
            cand = Self::step(cur, p.dir_down, self.members);
        }
        if cand == cur {
            // members == 1: nothing to probe, keep holding.
            p.phase_left = p.hold_len;
            return;
        }
        // pmlint: allow(relaxed-ordering) — tuning knob (see `eff`).
        self.eff.store(cand, Ordering::Relaxed);
        p.probing = true;
        p.phase_left = PROBE_EPOCHS;
        self.probes.inc();
    }

    /// End of a probe: park the candidate's measurement and return to the
    /// baseline width for a confirm window (the A2 of the A/B/A cycle),
    /// so monotone load drift cannot masquerade as a probe win.
    fn finish_probe(&self, p: &mut ProbeState, probe_tput: f64) {
        p.probing = false;
        p.confirming = true;
        p.cand_eff = self.eff();
        p.probe_tput = probe_tput;
        // pmlint: allow(relaxed-ordering) — tuning knob (see `eff`).
        self.eff.store(p.base_eff, Ordering::Relaxed);
        p.phase_left = PROBE_EPOCHS;
    }

    /// End of the confirm window: adopt the candidate only if its window
    /// beat *both* baseline windows by the deadband; otherwise flip
    /// direction and back off.
    fn decide(&self, p: &mut ProbeState, confirm_tput: f64) {
        p.confirming = false;
        if p.probe_tput > p.base_tput.max(confirm_tput) * (1.0 + DEADBAND) {
            if p.cand_eff > p.base_eff {
                self.grow.inc();
            } else {
                self.shrink.inc();
            }
            // pmlint: allow(relaxed-ordering) — tuning knob (see `eff`).
            self.eff.store(p.cand_eff, Ordering::Relaxed);
            p.hold_len = HOLD_MIN;
        } else {
            p.dir_down = !p.dir_down;
            p.hold_len = (p.hold_len * 2).min(HOLD_MAX);
            p.settled = p.hold_len == HOLD_MAX;
            self.reverts.inc();
        }
        p.phase_left = p.hold_len;
    }

    /// One ladder rung from `cur` in the given direction, clamped.
    fn step(cur: usize, down: bool, members: usize) -> usize {
        if down {
            (cur / 2).max(1)
        } else {
            (cur * 2).min(members)
        }
    }

    fn linger_step_up(&self) {
        let cur = self.linger_ns();
        let next = (cur + LINGER_STEP_NS).min(MAX_LINGER_NS);
        if next > cur {
            // pmlint: allow(relaxed-ordering) — tuning knob (see
            // `linger_ns`).
            self.linger_ns.store(next, Ordering::Relaxed);
            self.linger_up.inc();
        }
    }

    fn linger_halve(&self) {
        let cur = self.linger_ns();
        let next = cur / 2;
        if next < cur {
            // pmlint: allow(relaxed-ordering) — tuning knob (see
            // `linger_ns`).
            self.linger_ns.store(next, Ordering::Relaxed);
            self.linger_down.inc();
        }
    }

    /// Adds this tuner's decision counters and current operating point to
    /// the report (the `batch_tuner` section).
    pub fn fill_section(&self, sec: &mut obs::Section) {
        sec.row("epochs", self.epochs.get())
            .row("probes", self.probes.get())
            .row("grow", self.grow.get())
            .row("shrink", self.shrink.get())
            .row("reverts", self.reverts.get())
            .row("rearms", self.rearms.get())
            .row("linger_up", self.linger_up.get())
            .row("linger_down", self.linger_down.get())
            .row("linger_ns", self.linger_ns())
            .row("eff_members", self.eff() as u64)
            .row("target_fill", self.target_fill);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic load the tuner probes against: `tput(eff)` is the
    /// entries-per-ns the system "delivers" at a given sweep width. Each
    /// simulated epoch reports `fill` entries per batch and advances a
    /// virtual clock so that measured throughput equals `tput(eff)`.
    struct Rig<F: Fn(usize) -> f64> {
        t: Arc<BatchTuner>,
        now_ns: u64,
        tput: F,
    }

    impl<F: Fn(usize) -> f64> Rig<F> {
        fn new(members: usize, eff0: usize, target: u64, tput: F) -> Rig<F> {
            Rig {
                t: BatchTuner::new(members, eff0, target),
                now_ns: 1,
                tput,
            }
        }

        /// The width the controller has settled on: the baseline, not a
        /// probe candidate, if the run happens to end mid-probe.
        fn operating_eff(&self) -> usize {
            let p = self.t.probe.lock().expect("tuner lock");
            if p.probing {
                p.base_eff
            } else {
                self.t.eff()
            }
        }

        /// Runs `epochs` epochs of `fill`-sized batches with the given
        /// backlog flag; epoch duration follows the rig's `tput(eff)`.
        fn run(&mut self, epochs: u64, fill: u64, stolen: u64, backlog: bool) {
            for _ in 0..epochs {
                let eff = self.t.eff();
                let entries = fill * EPOCH_BATCHES;
                let dur = (entries as f64 / (self.tput)(eff)).max(1.0) as u64;
                self.now_ns += dur;
                for b in 0..EPOCH_BATCHES {
                    // Stamp every batch inside the epoch window; only the
                    // closing stamp reaches the probe state machine.
                    let frac = self.now_ns - dur + (dur * (b + 1)) / EPOCH_BATCHES;
                    self.t.observe_batch(fill, stolen, backlog, frac);
                }
            }
        }
    }

    /// Plenty of epochs for hold→probe cycles to converge even with
    /// HOLD_MAX backoffs in between.
    const SETTLE: u64 = 200;

    #[test]
    fn probing_walks_to_the_narrow_optimum_under_skew() {
        // Skew-shaped landscape: throughput rises as the sweep narrows
        // (wide sweeps pile stolen work onto the hottest core).
        let mut rig = Rig::new(16, 16, 16, |eff| 1.0 / (1.0 + 0.05 * eff as f64));
        rig.run(SETTLE, 5, 2, false);
        assert_eq!(
            rig.operating_eff(),
            1,
            "downhill-in-eff landscape ends at 1"
        );
    }

    #[test]
    fn probing_walks_to_the_wide_optimum_under_contention() {
        // Uniform-saturation-shaped landscape: wider sweeps amortize
        // flushes across idle members.
        let mut rig = Rig::new(16, 1, 16, |eff| 1.0 + 0.2 * eff as f64);
        rig.run(SETTLE, 5, 2, false);
        assert_eq!(
            rig.operating_eff(),
            16,
            "uphill-in-eff landscape ends at 16"
        );
    }

    #[test]
    fn flat_landscape_reverts_probes_and_backs_off() {
        let mut rig = Rig::new(8, 8, 16, |_| 1.0);
        rig.run(SETTLE, 5, 2, false);
        assert_eq!(
            rig.operating_eff(),
            8,
            "no measured gain: hold the configured width"
        );
        let t = &rig.t;
        assert!(t.reverts.get() > 0, "failed probes must be rolled back");
        assert_eq!(
            t.grow.get() + t.shrink.get(),
            0,
            "a flat landscape adopts nothing"
        );
        // Backoff: far fewer probes than probe-every-cycle would give.
        let cycles = SETTLE / (HOLD_MIN + PROBE_EPOCHS);
        assert!(
            t.probes.get() < cycles,
            "failed probes must back off ({} probes in {} epochs)",
            t.probes.get(),
            SETTLE
        );
    }

    #[test]
    fn settled_tuner_stops_probing_and_rearms_on_load_shift() {
        let level = std::rc::Rc::new(std::cell::Cell::new(1.0));
        let l2 = level.clone();
        let mut rig = Rig::new(8, 8, 16, move |_| l2.get());
        rig.run(SETTLE, 5, 2, false);
        let probes_settled = rig.t.probes.get();
        assert_eq!(rig.t.rearms.get(), 0);
        // Settled: further epochs at the same load add no probes at all.
        rig.run(60, 5, 2, false);
        assert_eq!(
            rig.t.probes.get(),
            probes_settled,
            "a settled tuner must stop probing"
        );
        // A genuine load shift leaves the re-arm band and wakes the
        // ladder back up.
        level.set(2.0);
        rig.run(60, 5, 2, false);
        assert!(rig.t.rearms.get() > 0, "load shift must re-arm probing");
        assert!(
            rig.t.probes.get() > probes_settled,
            "re-armed tuner probes again"
        );
    }

    #[test]
    fn congestion_raises_linger_and_full_batches_shed_it() {
        // Under-filled epochs with persistent backlog: buy fill with
        // bounded latency.
        let mut rig = Rig::new(1, 1, 16, |_| 1.0);
        rig.run(30, 5, 0, true);
        assert_eq!(
            rig.t.linger_ns(),
            MAX_LINGER_NS,
            "persistent congestion walks linger to its bound"
        );
        // Full batches: stop paying the latency (one halving per epoch).
        rig.run(20, 16, 0, false);
        assert_eq!(rig.t.linger_ns(), 0, "full batches stop paying linger");
    }

    #[test]
    fn starved_epochs_shed_linger() {
        let mut rig = Rig::new(1, 1, 16, |_| 1.0);
        rig.run(30, 5, 0, true);
        assert!(rig.t.linger_ns() > 0);
        rig.run(20, 1, 0, false);
        assert_eq!(rig.t.linger_ns(), 0, "a starved group must shed linger");
    }

    #[test]
    fn knobs_stay_inside_their_bounds() {
        let mut rig = Rig::new(4, 1, 8, |eff| 1.0 + eff as f64);
        rig.run(SETTLE, 1, 0, true);
        assert!(rig.t.eff() <= 4 && rig.t.eff() >= 1);
        assert!(rig.t.linger_ns() <= MAX_LINGER_NS);
    }
}
