//! The per-core server worker: request processing, the three-phase Put
//! (l-persist → g-persist → volatile, paper §3.3), conflict queueing,
//! leader election and log cleaning.
//!
//! Workers poll their per-core FlatRPC request rings (paper §4.3) instead
//! of blocking on a channel: requests arrive as [`FabReq`] envelopes from
//! any attached client, responses leave as [`FabResp`] envelopes — sent
//! directly by core 0 (the agent core) and delegated through it by every
//! other core.

use racecheck::sync::atomic::{AtomicUsize, Ordering};
use racecheck::sync::Arc;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Duration;

use flatrpc::{clock, ClientId, Envelope};
use obs::{Event, FlightRecord, Span, Stage};
use oplog::{LogEntry, LogOp, OpLog, Payload, INLINE_MAX};
use pmalloc::{ChunkManager, CoreAllocator};
use pmem::{PmAddr, PmRegion};

use crate::batch::{
    CkptGuard, Completion, DeletedTable, EngineStats, Group, Posted, Quarantine, UsageTable,
};
use crate::cache::ReadCache;
use crate::config::{ExecutionModel, GcConfig};
use crate::error::StoreError;
use crate::flight::FlightRegistry;
use crate::repl::{ReplOp, ReplicationSink};
use crate::request::{FabReq, OpReq, OpResult, StoreServerCore};
use crate::value::{pack, read_record, record_size, unpack, write_record};
use crate::vindex::VolatileIndex;

const VERSION_MASK: u32 = 0xF_FFFF;

/// Routes `key` to its owning server core (paper §3.1: clients send
/// requests to the core determined by the keyhash).
#[inline]
pub(crate) fn core_of(key: u64, ncores: usize) -> usize {
    let mut k = key;
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    (k % ncores as u64) as usize
}

enum InflightOp {
    Put {
        key: u64,
        version: u32,
    },
    Delete {
        key: u64,
        version: u32,
        old_block: Option<PmAddr>,
    },
}

struct Inflight {
    completion: Arc<Completion>,
    op: InflightOp,
    client: ClientId,
    seq: u64,
    /// Causal span of a sampled op, carried until the response ships.
    span: Option<Box<Span>>,
}

impl Inflight {
    fn key(&self) -> u64 {
        match self.op {
            InflightOp::Put { key, .. } | InflightOp::Delete { key, .. } => key,
        }
    }
}

/// One server core's state; owned by its worker thread and returned to the
/// engine at shutdown for snapshotting.
pub(crate) struct Shard {
    pub core: usize,
    ncores: usize,
    pm: Arc<PmRegion>,
    mgr: Arc<ChunkManager>,
    pub log: OpLog,
    pub alloc: CoreAllocator,
    index: Arc<VolatileIndex>,
    deleted: Arc<DeletedTable>,
    usage: Arc<UsageTable>,
    quarantine: Arc<Quarantine>,
    ckpt: Arc<CkptGuard>,
    group: Arc<Group>,
    slot: usize,
    model: ExecutionModel,
    gc: GcConfig,
    channel_batch: usize,
    stats: Arc<EngineStats>,
    server: StoreServerCore,
    /// Count of non-agent cores that finished draining; core 0 exits last,
    /// after pumping their final delegated responses.
    exited: Arc<AtomicUsize>,
    /// Log-shipping sink: each batch this core leads is shipped as one
    /// message after its local persist, and a completion is withheld from
    /// the client until the sink's acked watermark covers it.
    repl: Option<Arc<dyn ReplicationSink>>,
    /// Hot-value read cache; this core only ever touches its own shard
    /// (keyhash routing), and invalidates a key *before* acking its write.
    cache: Option<Arc<ReadCache>>,
    /// Always-on flight recorder: this core's ring of recent op records.
    flight: Arc<FlightRegistry>,
    /// Crash-test knob (`FLATSTORE_CRASH_TEST_KEY`): a Put to this key
    /// panics the worker mid-operation, exercising the flight-recorder
    /// dump path. Unset in normal operation.
    crash_key: Option<u64>,

    /// Keys with a Delete in flight (these serialize everything).
    conflicts: HashSet<u64>,
    /// Keys with in-flight Puts: latest assigned version + count. Later
    /// Puts to the same key pipeline (versions order them); only reads and
    /// deletes wait (paper §3.3 "Discussion").
    pending_puts: HashMap<u64, (u32, u32)>,
    deferred: VecDeque<(ClientId, FabReq)>,
    /// Count of deferred ops per key: later arrivals for these keys defer
    /// too, keeping per-key dispatch in arrival order (pipelined clients
    /// observe completion order).
    deferred_keys: HashMap<u64, u32>,
    inflight: VecDeque<Inflight>,
    barriers: Vec<(ClientId, u64)>,
    ckpt_cursors: Vec<(ClientId, u64)>,
    staged: Vec<(Posted, Inflight)>,
    pending_fence: bool,
    draining: bool,
    tick: u64,
}

#[allow(clippy::too_many_arguments)]
impl Shard {
    pub fn new(
        core: usize,
        ncores: usize,
        pm: Arc<PmRegion>,
        mgr: Arc<ChunkManager>,
        log: OpLog,
        alloc: CoreAllocator,
        index: Arc<VolatileIndex>,
        deleted: Arc<DeletedTable>,
        usage: Arc<UsageTable>,
        quarantine: Arc<Quarantine>,
        ckpt: Arc<CkptGuard>,
        group: Arc<Group>,
        slot: usize,
        model: ExecutionModel,
        gc: GcConfig,
        channel_batch: usize,
        stats: Arc<EngineStats>,
        server: StoreServerCore,
        exited: Arc<AtomicUsize>,
        repl: Option<Arc<dyn ReplicationSink>>,
        cache: Option<Arc<ReadCache>>,
        flight: Arc<FlightRegistry>,
    ) -> Shard {
        let crash_key = std::env::var("FLATSTORE_CRASH_TEST_KEY")
            .ok()
            .and_then(|v| v.parse().ok());
        Shard {
            core,
            ncores,
            pm,
            mgr,
            log,
            alloc,
            index,
            deleted,
            usage,
            quarantine,
            ckpt,
            group,
            slot,
            model,
            gc,
            channel_batch,
            stats,
            server,
            exited,
            repl,
            cache,
            flight,
            crash_key,
            conflicts: HashSet::new(),
            pending_puts: HashMap::new(),
            deferred: VecDeque::new(),
            deferred_keys: HashMap::new(),
            inflight: VecDeque::new(),
            barriers: Vec::new(),
            ckpt_cursors: Vec::new(),
            staged: Vec::new(),
            pending_fence: false,
            draining: false,
            tick: 0,
        }
    }

    /// The worker main loop; returns the shard for shutdown serialization.
    pub fn run(mut self) -> Shard {
        let mut idle = 0u32;
        loop {
            let mut did = self.server.pump_delegations() > 0;
            did |= self.drain_rings();
            did |= self.retry_deferred();
            self.publish_staged();
            did |= self.lead();
            did |= self.process_completions();
            self.maybe_gc();
            self.answer_barriers();

            if self.draining
                && self.quiet()
                && self.barriers.is_empty()
                && self.ckpt_cursors.is_empty()
                && !self.server.has_pending_requests()
            {
                if self.core != 0 {
                    // A core's last delegated response is pushed before
                    // this increment; the agent observes the count, then
                    // drains.
                    self.exited.fetch_add(1, Ordering::Release);
                    break;
                }
                if self.exited.load(Ordering::Acquire) == self.ncores - 1
                    && self.server.pump_delegations() == 0
                {
                    break;
                }
            }

            if did {
                idle = 0;
            } else {
                idle += 1;
                if idle < 32 {
                    std::hint::spin_loop();
                } else if idle < 256 {
                    std::thread::yield_now();
                } else {
                    std::thread::sleep(Duration::from_micros(100));
                }
            }
        }
        self
    }

    fn quiet(&self) -> bool {
        self.inflight.is_empty() && self.deferred.is_empty() && self.staged.is_empty()
    }

    fn respond(&mut self, client: ClientId, seq: u64, body: OpResult) {
        self.respond_span(client, seq, body, None);
    }

    /// Responds, handing a sampled op's span back on the response
    /// envelope — the client stamps Delivery when it harvests it.
    fn respond_span(
        &mut self,
        client: ClientId,
        seq: u64,
        body: OpResult,
        span: Option<Box<Span>>,
    ) {
        self.server
            .respond(client, Envelope::new(seq, body).with_span(span));
    }

    /// Records the finished op in this core's flight ring (always on —
    /// unsampled ops leave a record with no stamps) and responds.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &mut self,
        client: ClientId,
        seq: u64,
        kind: &'static str,
        ok: bool,
        detail: String,
        span: Option<Box<Span>>,
        body: OpResult,
    ) {
        let (trace_id, origin_ns, stamps) = match &span {
            Some(s) => (s.ctx.trace_id, s.ctx.origin_tsc, s.stamps.clone()),
            None => (0, 0, Vec::new()),
        };
        self.flight.record(
            self.core,
            FlightRecord {
                trace_id,
                op_seq: seq,
                origin_ns,
                core: self.core as u32,
                client: client as u64,
                kind,
                ok,
                detail,
                stamps,
            },
        );
        self.respond_span(client, seq, body, span);
    }

    fn drain_rings(&mut self) -> bool {
        let budget = if self.model == ExecutionModel::NonBatch {
            1
        } else {
            self.channel_batch
        };
        let mut got = false;
        for _ in 0..budget {
            match self.server.poll_stamped() {
                Some((client, env)) => {
                    self.dispatch(client, env);
                    got = true;
                }
                None => break,
            }
        }
        got
    }

    fn dispatch(&mut self, client: ClientId, mut env: FabReq) {
        if env.span.is_some() {
            env.stamp(Stage::ShardPoll, clock::now_ns());
        }
        if let Some(key) = env.body.conflict_key() {
            // Deletes serialize against everything; reads and deletes also
            // wait for in-flight Puts. Put-after-Put pipelines through
            // versioning. An op whose key already has deferred
            // predecessors defers too (per-key FIFO).
            let blocked = self.deferred_keys.contains_key(&key)
                || self.conflicts.contains(&key)
                || (!matches!(env.body, OpReq::Put { .. }) && self.pending_puts.contains_key(&key));
            if blocked {
                self.stats
                    .conflicts_deferred
                    .fetch_add(1, Ordering::Relaxed);
                *self.deferred_keys.entry(key).or_insert(0) += 1;
                self.deferred.push_back((client, env));
                return;
            }
        }
        self.execute(client, env);
    }

    /// Runs one request (conflict checks already passed).
    fn execute(&mut self, client: ClientId, mut env: FabReq) {
        if env.span.is_some() {
            // KeyGate ends here: for deferred ops the delta is the whole
            // per-key FIFO wait, for the rest it is ~0.
            env.stamp(Stage::KeyGate, clock::now_ns());
        }
        let seq = env.seq;
        let mut span = env.take_span();
        if let Some(s) = span.as_deref_mut() {
            s.core = self.core as u32;
        }
        match env.body {
            OpReq::Put { key, value } => self.begin_put(client, seq, key, value, span),
            OpReq::Get { key } => self.serve_get(client, seq, key, span),
            OpReq::Delete { key } => self.begin_delete(client, seq, key, span),
            OpReq::Range { lo, hi, limit } => self.serve_range(client, seq, lo, hi, limit, span),
            OpReq::Barrier => self.barriers.push((client, seq)),
            OpReq::CkptCursor => self.ckpt_cursors.push((client, seq)),
            OpReq::Shutdown => self.draining = true,
        }
    }

    /// Current version and out-of-log block of `key`, for an update.
    fn key_state(&self, key: u64) -> (u32, Option<PmAddr>) {
        if let Some(packed) = self.index.get(self.core, key) {
            let (ver, addr) = unpack(packed);
            let old_block = match self.log.read_entry(addr) {
                Ok(e) => match e.payload {
                    Payload::Ptr(b) => Some(b),
                    _ => None,
                },
                Err(_) => None,
            };
            (ver.wrapping_add(1) & VERSION_MASK, old_block)
        } else if let Some((ver, _)) = self.deleted.get(self.core, key) {
            (ver.wrapping_add(1) & VERSION_MASK, None)
        } else {
            (1, None)
        }
    }

    /// Phase 1 (l-persist): allocate + persist the record if large, build
    /// the compacted log entry, stage it for the group pool.
    fn begin_put(
        &mut self,
        client: ClientId,
        seq: u64,
        key: u64,
        value: Vec<u8>,
        span: Option<Box<Span>>,
    ) {
        if self.crash_key == Some(key) {
            // Crash-test knob: leave the in-flight op's partial stage
            // vector in the flight ring, then die mid-put the way a
            // corrupted worker would.
            self.flight.record(
                self.core,
                FlightRecord {
                    trace_id: span.as_ref().map_or(0, |s| s.ctx.trace_id),
                    op_seq: seq,
                    origin_ns: span.as_ref().map_or(0, |s| s.ctx.origin_tsc),
                    core: self.core as u32,
                    client: client as u64,
                    kind: "put",
                    ok: false,
                    detail: "crash-test poisoned key".into(),
                    stamps: span.as_ref().map_or_else(Vec::new, |s| s.stamps.clone()),
                },
            );
            panic!("flatstore crash-test: put to poisoned key {key}");
        }
        if key == u64::MAX {
            self.finish(
                client,
                seq,
                "put",
                false,
                "reserved key".into(),
                span,
                OpResult::Put(Err(StoreError::ReservedKey)),
            );
            return;
        }
        if value.is_empty() {
            self.finish(
                client,
                seq,
                "put",
                false,
                "empty value".into(),
                span,
                OpResult::Put(Err(StoreError::EmptyValue)),
            );
            return;
        }
        let version = match self.pending_puts.get(&key) {
            Some(&(latest, _)) => latest.wrapping_add(1) & VERSION_MASK,
            None => self.key_state(key).0,
        };
        let entry = if value.len() <= INLINE_MAX {
            // The request's value is moved into the entry — no second copy.
            // pmlint: allow(no-unwrap) — guarded by `len() <= INLINE_MAX`.
            LogEntry::put_inline(key, version, value).expect("length checked")
        } else {
            let block = match self.alloc.alloc(record_size(value.len())) {
                Ok(b) => b,
                Err(e) => {
                    let detail = e.to_string();
                    self.finish(
                        client,
                        seq,
                        "put",
                        false,
                        detail,
                        span,
                        OpResult::Put(Err(e.into())),
                    );
                    return;
                }
            };
            write_record(&self.pm, block, &value);
            self.pending_fence = true;
            LogEntry::put_ptr(key, version, block)
        };
        let completion = Completion::new();
        let slot = self.pending_puts.entry(key).or_insert((0, 0));
        slot.0 = version;
        slot.1 += 1;
        self.staged.push((
            Posted {
                entry,
                completion: Arc::clone(&completion),
                traced: span.is_some(),
            },
            Inflight {
                completion,
                op: InflightOp::Put { key, version },
                client,
                seq,
                span,
            },
        ));
    }

    fn begin_delete(&mut self, client: ClientId, seq: u64, key: u64, span: Option<Box<Span>>) {
        let Some(packed) = self.index.get(self.core, key) else {
            self.finish(
                client,
                seq,
                "delete",
                true,
                String::new(),
                span,
                OpResult::Delete(Ok(false)),
            );
            return;
        };
        let (ver, addr) = unpack(packed);
        let old_block = match self.log.read_entry(addr) {
            Ok(e) => match e.payload {
                Payload::Ptr(b) => Some(b),
                _ => None,
            },
            Err(_) => None,
        };
        let version = ver.wrapping_add(1) & VERSION_MASK;
        let completion = Completion::new();
        self.conflicts.insert(key);
        self.staged.push((
            Posted {
                entry: LogEntry::tombstone(key, version),
                completion: Arc::clone(&completion),
                traced: span.is_some(),
            },
            Inflight {
                completion,
                op: InflightOp::Delete {
                    key,
                    version,
                    old_block,
                },
                client,
                seq,
                span,
            },
        ));
    }

    fn serve_get(&mut self, client: ClientId, seq: u64, key: u64, mut span: Option<Box<Span>>) {
        let start = std::time::Instant::now();
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        // Dispatch already deferred this Get if the key has an in-flight
        // Put or Delete, so a cache hit here can never be older than an
        // acked write (complete() invalidates before it acks).
        if let Some(cache) = &self.cache {
            if let Some(value) = cache.get(self.core, key) {
                self.stats
                    .get_hit_latency
                    .record(start.elapsed().as_nanos() as u64);
                if let Some(s) = span.as_deref_mut() {
                    s.stamp(Stage::Execute, clock::now_ns());
                }
                self.finish(
                    client,
                    seq,
                    "get",
                    true,
                    String::new(),
                    span,
                    OpResult::Get(Ok(Some(value))),
                );
                return;
            }
        }
        let result: Result<Option<Vec<u8>>, StoreError> = match self.index.get(self.core, key) {
            None => Ok(None),
            Some(packed) => {
                let (_, addr) = unpack(packed);
                match self.log.read_entry(addr) {
                    Ok(e) => Ok(Some(self.payload_into_bytes(e))),
                    Err(e) => Err(e.into()),
                }
            }
        };
        if let Some(cache) = &self.cache {
            if let Ok(Some(value)) = &result {
                cache.insert(self.core, key, value);
            }
            self.stats
                .get_miss_latency
                .record(start.elapsed().as_nanos() as u64);
        }
        if let Some(s) = span.as_deref_mut() {
            s.stamp(Stage::Execute, clock::now_ns());
        }
        let (ok, detail) = match &result {
            Ok(_) => (true, String::new()),
            Err(e) => (false, e.to_string()),
        };
        self.finish(client, seq, "get", ok, detail, span, OpResult::Get(result));
    }

    /// Consumes a decoded entry into its value bytes. Inline payloads are
    /// *moved* out of the entry — the Vec decode filled from PM is the one
    /// handed to the client, with no intermediate copy.
    fn payload_into_bytes(&self, e: LogEntry) -> Vec<u8> {
        match e.payload {
            Payload::Inline(v) => v,
            Payload::Ptr(b) => read_record(&self.pm, b),
            Payload::None => Vec::new(),
        }
    }

    /// Range scans read the log directly and never consult or fill the
    /// cache: the shared ordered index crosses core ownership, and another
    /// core's cache shard must only be touched by its own worker (see
    /// `cache.rs`). Bypassing is always coherent — the log entry an index
    /// value points at *is* the current value.
    fn serve_range(
        &mut self,
        client: ClientId,
        seq: u64,
        lo: u64,
        hi: u64,
        limit: usize,
        mut span: Option<Box<Span>>,
    ) {
        let mut out = Vec::new();
        let r = self.index.range(lo, hi, &mut |k, packed| {
            let (_, addr) = unpack(packed);
            if let Ok(Some((e, _))) = LogEntry::decode(&self.pm, addr) {
                if e.op == LogOp::Put {
                    let value = self.payload_into_bytes(e);
                    out.push((k, value));
                }
            }
            out.len() < limit
        });
        if let Some(s) = span.as_deref_mut() {
            s.stamp(Stage::Execute, clock::now_ns());
        }
        let (ok, detail) = match &r {
            Ok(()) => (true, String::new()),
            Err(e) => (false, e.to_string()),
        };
        self.finish(
            client,
            seq,
            "range",
            ok,
            detail,
            span,
            OpResult::Range(r.map(|()| out)),
        );
    }

    /// Phase-1 close: one fence covers every large record written in this
    /// drain, then the staged entries are published for batching.
    fn publish_staged(&mut self) {
        if self.staged.is_empty() {
            return;
        }
        if self.pending_fence {
            self.pm.fence();
            self.pending_fence = false;
        }
        match self.model {
            ExecutionModel::PipelinedHb | ExecutionModel::NaiveHb => {
                // Publishing is one slot store + one cursor store per op;
                // a full list bounces the record back and this core
                // persists the overflow itself (a vertical mini-batch) —
                // bounded memory without ever blocking on a leader.
                let mut overflow = Vec::new();
                for (posted, inflight) in self.staged.drain(..) {
                    if let Err(bounced) = self.group.post(self.slot, posted) {
                        overflow.push(bounced);
                    }
                    self.inflight.push_back(inflight);
                }
                if !overflow.is_empty() {
                    self.persist_posts(overflow);
                }
                if self.model == ExecutionModel::NaiveHb {
                    // Figure 4(c): strictly ordered phases — the poster
                    // blocks until its entries are durable. The agent keeps
                    // pumping so delegating cores are never wedged.
                    while self
                        .inflight
                        .iter()
                        .any(|inf| inf.completion.poll().is_none())
                    {
                        self.server.pump_delegations();
                        self.lead();
                        std::thread::yield_now();
                    }
                }
            }
            ExecutionModel::Vertical | ExecutionModel::NonBatch => {
                // No stealing: persist this core's own batch directly.
                let staged: Vec<_> = self.staged.drain(..).collect();
                let mut posts = Vec::with_capacity(staged.len());
                for (posted, inflight) in staged {
                    posts.push(posted);
                    self.inflight.push_back(inflight);
                }
                self.persist_posts(posts);
            }
        }
    }

    /// Leader election + g-persist (paper Figure 5). Leadership is a
    /// wait-free sweep over the group's publish lists: each list's
    /// consumer token is claimed with a CAS, so there is no group lock to
    /// contend on and concurrent leaders simply partition the lists.
    fn lead(&mut self) -> bool {
        if self.model == ExecutionModel::Vertical || self.model == ExecutionModel::NonBatch {
            return false;
        }
        let group = Arc::clone(&self.group);
        if group.pending.load(Ordering::Acquire) == 0 {
            return false;
        }
        // NaiveHb pins the won tokens through the flush (Figure 4c);
        // PipelinedHb releases each list as soon as it is drained
        // (Figure 4d's early release, now per-list instead of per-group).
        let hold = self.model == ExecutionModel::NaiveHb;
        let mut posts = Vec::new();
        let (held, mut own) = group.collect(self.slot, hold, &mut posts);
        if !posts.is_empty() {
            own += self.linger(&group, &mut posts);
        }
        if posts.is_empty() {
            group.release(&held);
            return false;
        }
        let fill = posts.len() as u64;
        let stolen = fill.saturating_sub(own as u64);
        self.persist_posts(posts);
        group.release(&held);
        if let Some(tuner) = group.tuner() {
            tuner.observe_batch(fill, stolen, group.backlog(self.slot), clock::now_ns());
        }
        true
    }

    /// Adaptive leader linger: with a batch started but under-filled, keep
    /// re-sweeping until the tuner's window closes or the target fill is
    /// reached — trading bounded latency for flush amortization. Static
    /// groups (no tuner) and NaiveHb (followers are blocked; waiting
    /// would only stretch their stall) never linger. Returns how many of
    /// the absorbed entries came off this leader's own list.
    fn linger(&mut self, group: &Group, posts: &mut Vec<Posted>) -> usize {
        let Some(tuner) = group.tuner() else { return 0 };
        if self.model != ExecutionModel::PipelinedHb {
            return 0;
        }
        let target = tuner.target_fill() as usize;
        let linger_ns = tuner.linger_ns();
        if linger_ns == 0 || posts.len() >= target {
            return 0;
        }
        let mut own = 0;
        let deadline = std::time::Instant::now() + Duration::from_nanos(linger_ns);
        while posts.len() < target && std::time::Instant::now() < deadline {
            if group.pending.load(Ordering::Acquire) > 0 {
                own += group.collect(self.slot, false, posts).1;
            } else {
                std::hint::spin_loop();
            }
        }
        own
    }

    /// Appends a collected batch to this core's log and fulfils the
    /// completions.
    fn persist_posts(&mut self, posts: Vec<Posted>) {
        if posts.is_empty() {
            return;
        }
        // Leader-side stage clock: read only when the batch carries at
        // least one sampled op, so trace_sample = 0 stays clock-free.
        let any_traced = posts.iter().any(|p| p.traced);
        let collected_ns = if any_traced { clock::now_ns() } else { 0 };
        let mut entries = Vec::with_capacity(posts.len());
        let mut completions = Vec::with_capacity(posts.len());
        let mut traced = Vec::with_capacity(posts.len());
        for p in posts {
            entries.push(p.entry);
            completions.push(p.completion);
            traced.push(p.traced);
        }
        match self.log.append_batch(&entries) {
            Ok(addrs) => {
                let persisted_ns = if any_traced { clock::now_ns() } else { 0 };
                self.usage
                    .note_appended(OpLog::chunk_of(addrs[0]), addrs.len() as u32);
                // Ship the whole batch as ONE replication message, piggy-
                // backing on the HB batch boundary; tag each completion
                // with the ship sequence before fulfilling it (fulfil is
                // the Release publish the poller synchronizes on).
                let shipped = self.repl.as_ref().map(|sink| {
                    let ops: Vec<ReplOp> = entries
                        .iter()
                        .map(|e| ReplOp::from_entry(&self.pm, e))
                        .collect();
                    sink.ship(self.core, ops, self.log.tail())
                });
                let shipped_ns = if any_traced && shipped.is_some() {
                    clock::now_ns()
                } else {
                    0
                };
                for ((c, a), is_traced) in completions.iter().zip(&addrs).zip(&traced) {
                    if let Some(seq) = shipped {
                        c.set_repl(self.core, seq);
                    }
                    if *is_traced {
                        c.set_stage_stamps(collected_ns, persisted_ns, shipped_ns);
                    }
                    c.fulfil(*a);
                }
                if any_traced {
                    // Batch-amortization view (persist time ÷ batch size)
                    // plus one flight-ring span linking the batch to its
                    // member ops through the ship sequence.
                    self.stats.breakdown.record_batch(
                        persisted_ns.saturating_sub(collected_ns),
                        addrs.len() as u64,
                    );
                    self.flight.event(
                        self.core,
                        Event::span(
                            "batch_persist",
                            "batch",
                            self.core as u32,
                            collected_ns,
                            persisted_ns,
                        )
                        .arg("entries", addrs.len() as u64)
                        .arg("ship_seq", shipped.unwrap_or(0)),
                    );
                }
                self.stats.batches.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .batched_entries
                    .fetch_add(addrs.len() as u64, Ordering::Relaxed);
                self.stats.batch_size.record(addrs.len() as u64);
            }
            Err(_) => {
                for c in &completions {
                    c.fail();
                }
            }
        }
    }

    /// Phase 3 (volatile): index update, old-state reclamation, client
    /// response. Completions are applied per-key in submission order — a
    /// ready entry whose key has an older pending entry waits, so a
    /// pipelined client sees its same-key completions in the order it
    /// submitted them.
    fn process_completions(&mut self) -> bool {
        let mut progressed = false;
        let mut waiting: HashSet<u64> = HashSet::new();
        let mut i = 0;
        while i < self.inflight.len() {
            let key = self.inflight[i].key();
            if waiting.contains(&key) {
                i += 1;
                continue;
            }
            match self.inflight[i].completion.poll() {
                Some(result) => {
                    // Replication gate: locally durable but not yet covered
                    // by the backup's acked watermark — the client ack must
                    // wait (treat like an unfinished completion so per-key
                    // FIFO holds for everything queued behind it).
                    if result.is_ok() && !self.repl_acked(&self.inflight[i].completion) {
                        waiting.insert(key);
                        i += 1;
                        continue;
                    }
                    // pmlint: allow(no-unwrap) — `i < inflight.len()` is the
                    // loop condition and complete() runs after the remove.
                    let inf = self.inflight.remove(i).expect("index in bounds");
                    self.complete(inf, result);
                    progressed = true;
                    // The next entry shifted into `i`; don't advance.
                }
                None => {
                    waiting.insert(key);
                    i += 1;
                }
            }
        }
        progressed
    }

    /// Whether the replication watermark covers this completion (vacuously
    /// true without a sink, or for an entry persisted before replication
    /// tagging — e.g. one that failed before shipping).
    fn repl_acked(&self, c: &Completion) -> bool {
        match (&self.repl, c.repl()) {
            (Some(sink), Some((core, seq))) => sink.acked(core) >= seq,
            _ => true,
        }
    }

    fn unpend(&mut self, key: u64) {
        if let Some(slot) = self.pending_puts.get_mut(&key) {
            slot.1 -= 1;
            if slot.1 == 0 {
                self.pending_puts.remove(&key);
            }
        }
    }

    /// Write-through invalidation: drops `key` from this core's cache
    /// shard. Must run before the write's `respond()` — once the client
    /// sees the ack, the next Get on this core must re-read the log (or it
    /// could serve a value older than the acked write).
    fn invalidate_cached(&self, key: u64) {
        if let Some(cache) = &self.cache {
            cache.invalidate(self.core, key);
        }
    }

    fn complete(&mut self, inf: Inflight, result: Result<PmAddr, ()>) {
        let Inflight {
            op,
            client,
            seq,
            completion,
            mut span,
        } = inf;
        if let Some(s) = span.as_deref_mut() {
            // Leader-side stamps published through the completion (its
            // fulfil is the Release the poll above synchronized with).
            let (collected, persisted, shipped) = completion.stage_stamps();
            if collected > 0 {
                s.stamp(Stage::BatchJoin, collected);
            }
            if persisted > 0 {
                s.stamp(Stage::LeaderPersist, persisted);
            }
            if shipped > 0 {
                s.stamp(Stage::ReplShip, shipped);
                // The ack gate in process_completions released this op
                // just before calling here; the backup wait ends now.
                s.stamp(Stage::ReplAckWait, clock::now_ns());
            }
        }
        match op {
            InflightOp::Put { key, version } => {
                self.unpend(key);
                // Invalidate even on failure or supersession: dropping a
                // still-valid entry costs one extra miss, never coherence.
                self.invalidate_cached(key);
                if self.cache.is_some() {
                    if let Some(s) = span.as_deref_mut() {
                        s.stamp(Stage::CacheInvalidate, clock::now_ns());
                    }
                }
                let Ok(addr) = result else {
                    self.finish(
                        client,
                        seq,
                        "put",
                        false,
                        "out of space".into(),
                        span,
                        OpResult::Put(Err(StoreError::OutOfSpace)),
                    );
                    return;
                };
                // Pipelined same-key Puts may complete out of order across
                // batches; the newest version wins (the same rule recovery
                // and the cleaner apply).
                let newest = self
                    .index
                    .get(self.core, key)
                    .is_none_or(|cur| unpack(cur).0 < version);
                if !newest {
                    // Superseded before it was applied: its entry (and any
                    // out-of-log block) is dead on arrival.
                    self.usage.note_dead(addr);
                    if let Ok(e) = self.log.read_entry(addr) {
                        if let Payload::Ptr(b) = e.payload {
                            let _ = self.alloc.free(b);
                        }
                    }
                    self.stats.puts.fetch_add(1, Ordering::Relaxed);
                    self.finish(
                        client,
                        seq,
                        "put",
                        true,
                        String::new(),
                        span,
                        OpResult::Put(Ok(())),
                    );
                    return;
                }
                let packed = pack(version, addr);
                match self.index.insert(self.core, key, packed) {
                    Ok(old) => {
                        if let Some(old) = old {
                            let (_, old_addr) = unpack(old);
                            self.usage.note_dead(old_addr);
                            // Free the previous version's out-of-log block
                            // (safe within the cleaner's grace period).
                            if let Ok(e) = self.log.read_entry(old_addr) {
                                if let Payload::Ptr(b) = e.payload {
                                    let _ = self.alloc.free(b);
                                }
                            }
                        } else if let Some((_, tomb)) = self.deleted.remove(self.core, key) {
                            // A Put over a deleted key supersedes the
                            // tombstone.
                            self.usage.note_dead(tomb);
                        }
                        self.stats.puts.fetch_add(1, Ordering::Relaxed);
                        self.finish(
                            client,
                            seq,
                            "put",
                            true,
                            String::new(),
                            span,
                            OpResult::Put(Ok(())),
                        );
                    }
                    Err(e) => {
                        let detail = e.to_string();
                        self.finish(
                            client,
                            seq,
                            "put",
                            false,
                            detail,
                            span,
                            OpResult::Put(Err(e)),
                        );
                    }
                }
            }
            InflightOp::Delete {
                key,
                version,
                old_block,
            } => {
                self.invalidate_cached(key);
                if self.cache.is_some() {
                    if let Some(s) = span.as_deref_mut() {
                        s.stamp(Stage::CacheInvalidate, clock::now_ns());
                    }
                }
                let Ok(addr) = result else {
                    self.conflicts.remove(&key);
                    self.finish(
                        client,
                        seq,
                        "delete",
                        false,
                        "out of space".into(),
                        span,
                        OpResult::Delete(Err(StoreError::OutOfSpace)),
                    );
                    return;
                };
                if let Some(old) = self.index.remove(self.core, key) {
                    let (_, old_addr) = unpack(old);
                    self.usage.note_dead(old_addr);
                }
                if let Some(b) = old_block {
                    let _ = self.alloc.free(b);
                }
                self.deleted.insert(self.core, key, version, addr);
                self.stats.deletes.fetch_add(1, Ordering::Relaxed);
                self.conflicts.remove(&key);
                self.finish(
                    client,
                    seq,
                    "delete",
                    true,
                    String::new(),
                    span,
                    OpResult::Delete(Ok(true)),
                );
            }
        }
    }

    fn retry_deferred(&mut self) -> bool {
        let mut progressed = false;
        let n = self.deferred.len();
        // Keys re-pushed this round: later same-key entries stay behind
        // them to preserve per-key FIFO.
        let mut repushed: HashSet<u64> = HashSet::new();
        for _ in 0..n {
            // pmlint: allow(no-unwrap) — the loop runs deferred.len() times.
            let (client, env) = self.deferred.pop_front().expect("len checked");
            let key = env.body.conflict_key();
            let blocked = key.is_some_and(|k| {
                repushed.contains(&k)
                    || self.conflicts.contains(&k)
                    || (!matches!(env.body, OpReq::Put { .. })
                        && self.pending_puts.contains_key(&k))
            });
            if blocked {
                if let Some(k) = key {
                    repushed.insert(k);
                }
                self.deferred.push_back((client, env));
                continue;
            }
            if let Some(k) = key {
                if let Some(count) = self.deferred_keys.get_mut(&k) {
                    *count -= 1;
                    if *count == 0 {
                        self.deferred_keys.remove(&k);
                    }
                }
            }
            // Re-execute without re-counting the conflict deferral.
            self.execute(client, env);
            progressed = true;
        }
        progressed
    }

    fn answer_barriers(&mut self) {
        if self.quiet() {
            for (client, seq) in std::mem::take(&mut self.barriers) {
                self.respond(client, seq, OpResult::Control);
            }
            if !self.ckpt_cursors.is_empty() {
                // Record this core's checkpoint cursor: everything before
                // the current tail is covered by the snapshot being taken.
                let cursor = crate::superblock::Superblock::ckpt_cursor(self.core);
                self.pm.write_u64(cursor, self.log.tail().offset());
                self.pm.persist(cursor, 8);
                // Durability point: the shard is quiet, so its whole log
                // prefix (and now the cursor) is persistent.
                self.pm.commit_point();
                for (client, seq) in std::mem::take(&mut self.ckpt_cursors) {
                    self.respond(client, seq, OpResult::Control);
                }
            }
        }
    }

    /// Incremental log cleaning (paper §3.4), run cooperatively on the
    /// server core. Victims are this core's chunks with the lowest live
    /// ratio; the reclaimed chunk passes through the grace-period
    /// quarantine before re-entering the pool.
    fn maybe_gc(&mut self) {
        self.tick += 1;
        if self.tick.is_multiple_of(64) {
            self.quarantine.release(&self.mgr);
        }
        if !self.gc.enabled || !self.tick.is_multiple_of(16) {
            return;
        }
        let free = self.mgr.free_chunks();
        if free >= self.gc.min_free_chunks {
            return;
        }
        let tail_chunk = OpLog::chunk_of(self.log.tail());
        let mut best: Option<(PmAddr, f64)> = None;
        for &c in self.log.chunks() {
            if c == tail_chunk {
                continue;
            }
            let u = self.usage.usage(c);
            if u.total == 0 {
                continue;
            }
            let r = u.live_ratio();
            if best.is_none_or(|(_, br)| r < br) {
                best = Some((c, r));
            }
        }
        let Some((victim, ratio)) = best else { return };
        let urgent = free <= self.gc.min_free_chunks / 2;
        if ratio > self.gc.max_live_ratio && !urgent {
            return;
        }
        self.clean(victim);
    }

    fn clean(&mut self, victim: PmAddr) {
        // Relocation moves entry addresses: any standing checkpoint must be
        // durably invalidated first.
        self.ckpt.invalidate();
        let index = Arc::clone(&self.index);
        let deleted = Arc::clone(&self.deleted);
        let ncores = self.ncores;
        let relocs = match self.log.clean_chunk(victim, |e, addr| {
            let owner = core_of(e.key, ncores);
            match e.op {
                LogOp::Put => index.get(owner, e.key) == Some(pack(e.version, addr)),
                LogOp::Delete => deleted.get(owner, e.key) == Some((e.version, addr)),
                LogOp::Seal => false,
            }
        }) {
            Ok(r) => r,
            Err(_) => return, // no relocation chunk free; retry later
        };

        let target = relocs
            .first()
            .map(|r| (OpLog::chunk_of(r.new), relocs.len() as u32));
        self.usage.on_cleaned(victim, target);

        for r in &relocs {
            let owner = core_of(r.entry.key, self.ncores);
            let moved = match r.entry.op {
                LogOp::Put => self.index.cas(
                    owner,
                    r.entry.key,
                    pack(r.entry.version, r.old),
                    pack(r.entry.version, r.new),
                ),
                LogOp::Delete => {
                    self.deleted
                        .cas_addr(owner, r.entry.key, r.entry.version, r.old, r.new)
                }
                LogOp::Seal => false,
            };
            if !moved {
                // Superseded while relocating: the copy is dead on arrival.
                self.usage.note_dead(r.new);
            }
        }
        self.quarantine.push(victim);
        self.stats.gc_chunks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .gc_relocated
            .fetch_add(relocs.len() as u64, Ordering::Relaxed);
    }
}
