//! The FlatStore engine: worker lifecycle, the FlatRPC fabric, recovery
//! and shutdown.

use racecheck::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use racecheck::sync::Arc;
use std::collections::HashMap;
use std::thread::JoinHandle;

use oplog::{LogEntry, LogOp, OpLog, Payload};
use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};

use crate::batch::{CkptGuard, DeletedTable, EngineStats, Group, Quarantine, UsageTable};
use crate::cache::ReadCache;
use crate::config::Config;
use crate::error::StoreError;
use crate::flight::FlightRegistry;
use crate::repl::ReplicationSink;
use crate::request::{Op, OpResult, StoreFabric};
use crate::session::{EngineShared, Session};
use crate::shard::{core_of, Shard};
use crate::superblock::{Superblock, POOL_BASE};
use crate::tuner::BatchTuner;
use crate::value::{pack, unpack};
use crate::vindex::VolatileIndex;

/// Nanoseconds since `start`, saturated into a histogram sample.
#[inline]
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A completion of the wrong kind arrived for a blocking call — the
/// session matched the ticket, so this indicates engine corruption.
pub(crate) fn mismatched(other: OpResult) -> StoreError {
    StoreError::corrupt(format!("mismatched completion kind: {other:?}"))
}

/// A clonable, thread-safe client handle to a running [`FlatStore`].
///
/// Methods block until the engine acknowledges the operation (a Put is
/// acknowledged only after its log entry is durable — paper §3.2), and
/// record the client-observed latency of every call into the engine's
/// [`EngineStats`] histograms. Each method is a depth-1 pipeline: it
/// submits on the handle's private [`Session`] and waits for that single
/// completion. For overlapping operations, open a dedicated session with
/// [`session`](Self::session).
pub struct StoreHandle {
    shared: Arc<EngineShared>,
    /// Lazily attached depth-1 session backing the blocking methods.
    session: parking_lot::Mutex<Option<Session>>,
}

impl Clone for StoreHandle {
    fn clone(&self) -> Self {
        // Each clone attaches its own client port on first use, so clones
        // on different threads never contend on one response ring.
        StoreHandle {
            shared: Arc::clone(&self.shared),
            session: parking_lot::Mutex::new(None),
        }
    }
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("ncores", &self.shared.ncores)
            .finish()
    }
}

impl StoreHandle {
    /// Runs `f` on this handle's private session, attaching it on first
    /// use.
    fn with_session<T>(
        &self,
        f: impl FnOnce(&mut Session) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        let mut guard = self.session.lock();
        if guard.is_none() {
            if self.shared.stopped() {
                return Err(StoreError::ShuttingDown);
            }
            *guard = Some(Session::attach(Arc::clone(&self.shared)));
        }
        // pmlint: allow(no-unwrap) — the branch above just filled the slot.
        f(guard.as_mut().expect("session attached above"))
    }

    /// Opens a new pipelined [`Session`] on the fabric (up to
    /// [`Config::pipeline_depth`] operations in flight).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped.
    pub fn session(&self) -> Result<Session, StoreError> {
        if self.shared.stopped() {
            return Err(StoreError::ShuttingDown);
        }
        Ok(Session::attach(Arc::clone(&self.shared)))
    }

    /// Stores `value` under `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::EmptyValue`], [`StoreError::ReservedKey`],
    /// [`StoreError::OutOfSpace`], [`StoreError::ShuttingDown`].
    pub fn put(&self, key: u64, value: impl AsRef<[u8]>) -> Result<(), StoreError> {
        let start = std::time::Instant::now();
        self.with_session(|s| {
            let t = s.submit(Op::put(key, value.as_ref()))?;
            let r = s.wait(t)?;
            self.shared.stats.put_latency.record(elapsed_ns(start));
            match r {
                OpResult::Put(r) => r,
                other => Err(mismatched(other)),
            }
        })
    }

    /// Reads `key`.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] or corruption errors.
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        let start = std::time::Instant::now();
        self.with_session(|s| {
            let t = s.submit(Op::Get { key })?;
            let r = s.wait(t)?;
            self.shared.stats.get_latency.record(elapsed_ns(start));
            match r {
                OpResult::Get(r) => r,
                other => Err(mismatched(other)),
            }
        })
    }

    /// Deletes `key`; returns whether it existed.
    ///
    /// # Errors
    ///
    /// As for [`put`](Self::put).
    pub fn delete(&self, key: u64) -> Result<bool, StoreError> {
        let start = std::time::Instant::now();
        self.with_session(|s| {
            let t = s.submit(Op::Delete { key })?;
            let r = s.wait(t)?;
            self.shared.stats.delete_latency.record(elapsed_ns(start));
            match r {
                OpResult::Delete(r) => r,
                other => Err(mismatched(other)),
            }
        })
    }

    /// Range scan over `lo..hi`, at most `limit` items (FlatStore-M/-FF).
    /// Scans are weakly consistent under concurrent writes; quiesce with
    /// [`barrier`](Self::barrier) for a stable view.
    ///
    /// # Errors
    ///
    /// [`StoreError::RangeUnsupported`] on FlatStore-H.
    pub fn range(&self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        let start = std::time::Instant::now();
        self.with_session(|s| {
            let t = s.submit(Op::Range { lo, hi, limit })?;
            let r = s.wait(t)?;
            self.shared.stats.range_latency.record(elapsed_ns(start));
            match r {
                OpResult::Range(r) => r,
                other => Err(mismatched(other)),
            }
        })
    }

    /// Blocks until every request sent before this call has fully
    /// completed on all cores. A no-op once the engine stops.
    pub fn barrier(&self) {
        let _ = self.with_session(|s| s.barrier());
    }
}

/// The FlatStore engine (paper Figure 2): per-core workers over a shared
/// PM region, a volatile index, per-core compacted operation logs, the
/// lazy-persist allocator and pipelined horizontal batching, fronted by
/// the FlatRPC fabric (paper §4.3).
///
/// # Example
///
/// ```
/// use flatstore::{Config, FlatStore};
///
/// let cfg = Config::builder()
///     .pm_bytes(64 << 20)
///     .ncores(2)
///     .group_size(2)
///     .build()?;
/// let store = FlatStore::create(cfg)?;
/// store.put(1, b"hello")?;
/// assert_eq!(store.get(1)?.as_deref(), Some(&b"hello"[..]));
/// store.shutdown()?;
/// # Ok::<(), flatstore::StoreError>(())
/// ```
pub struct FlatStore {
    pm: Arc<PmRegion>,
    mgr: Arc<ChunkManager>,
    index: Arc<VolatileIndex>,
    deleted: Arc<DeletedTable>,
    usage: Arc<UsageTable>,
    quarantine: Arc<Quarantine>,
    ckpt: Arc<CkptGuard>,
    stats: Arc<EngineStats>,
    /// Hot-value read cache (`None` when `read_cache_bytes == 0`). Volatile
    /// by construction: create/open/promote all start it empty.
    cache: Option<Arc<ReadCache>>,
    /// Adaptive-batching controllers (empty in static mode) — kept for
    /// the `batch_tuner` stats section.
    tuners: Vec<Arc<BatchTuner>>,
    shared: Arc<EngineShared>,
    handle: StoreHandle,
    /// The engine's own fabric client (client id 0), used for checkpoint
    /// barriers/cursors and the shutdown broadcast.
    control: parking_lot::Mutex<Session>,
    workers: Vec<JoinHandle<Shard>>,
    cfg: Config,
}

impl std::fmt::Debug for FlatStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlatStore")
            .field("ncores", &self.cfg.ncores)
            .field("index", &self.cfg.index)
            .finish()
    }
}

impl FlatStore {
    /// Formats a fresh region per `cfg` and starts the engine.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidConfig`] on inconsistent settings;
    /// [`StoreError::OutOfSpace`] if the region cannot hold the initial
    /// per-core logs.
    pub fn create(cfg: Config) -> Result<FlatStore, StoreError> {
        Self::create_inner(cfg, None)
    }

    /// Like [`create`](Self::create), but every persisted batch is also
    /// shipped through `sink`, and operations are acknowledged to clients
    /// only once the sink's acked watermark covers them (primary–backup
    /// replication; see the `flatrepl` crate for the transport).
    ///
    /// # Errors
    ///
    /// As for [`create`](Self::create).
    pub fn create_with_replication(
        cfg: Config,
        sink: Arc<dyn ReplicationSink>,
    ) -> Result<FlatStore, StoreError> {
        Self::create_inner(cfg, Some(sink))
    }

    fn create_inner(
        cfg: Config,
        repl: Option<Arc<dyn ReplicationSink>>,
    ) -> Result<FlatStore, StoreError> {
        cfg.validate()?;
        let pm = if let Some(seed) = cfg.strict_fence_seed {
            Arc::new(PmRegion::with_strict_fences(cfg.pm_bytes, seed))
        } else if cfg.crash_tracking {
            Arc::new(PmRegion::with_crash_tracking(cfg.pm_bytes))
        } else {
            Arc::new(PmRegion::new(cfg.pm_bytes))
        };
        let nchunks = ((cfg.pm_bytes as u64 - POOL_BASE) / CHUNK_SIZE) as u32;
        Superblock::new(&pm).format(cfg.ncores, nchunks);
        let mgr = Arc::new(ChunkManager::format(
            Arc::clone(&pm),
            PmAddr(POOL_BASE),
            nchunks,
        ));
        let index = Arc::new(VolatileIndex::build(cfg.index, cfg.ncores, cfg.dram_bytes)?);
        let deleted = DeletedTable::new(cfg.ncores);
        let usage = UsageTable::new();

        let mut shards = Vec::with_capacity(cfg.ncores);
        for core in 0..cfg.ncores {
            let log = OpLog::create(Arc::clone(&mgr), Superblock::log_desc(core))?;
            let alloc = CoreAllocator::new(Arc::clone(&mgr), core as u32);
            shards.push((log, alloc));
        }
        Self::start(pm, mgr, index, deleted, usage, shards, cfg, repl)
    }

    /// Reopens an existing region: fast path after a clean shutdown,
    /// full log-scan recovery after a crash (paper §3.5).
    ///
    /// The persistent layout dictates the shard count: `cfg.ncores` is
    /// overridden by the superblock's, and `cfg.group_size` falls back to
    /// that core count if it no longer divides it.
    ///
    /// # Errors
    ///
    /// [`StoreError::BadImage`] if the region is not a FlatStore image;
    /// [`StoreError::InvalidConfig`] on inconsistent settings.
    pub fn open(pm: Arc<PmRegion>, cfg: Config) -> Result<FlatStore, StoreError> {
        Self::open_inner(pm, cfg, None)
    }

    /// Like [`open`](Self::open), with replication through `sink` (see
    /// [`create_with_replication`](Self::create_with_replication)). Used
    /// when a recovered or rejoining node resumes the primary role.
    ///
    /// # Errors
    ///
    /// As for [`open`](Self::open).
    pub fn open_with_replication(
        pm: Arc<PmRegion>,
        cfg: Config,
        sink: Arc<dyn ReplicationSink>,
    ) -> Result<FlatStore, StoreError> {
        Self::open_inner(pm, cfg, Some(sink))
    }

    fn open_inner(
        pm: Arc<PmRegion>,
        cfg: Config,
        repl: Option<Arc<dyn ReplicationSink>>,
    ) -> Result<FlatStore, StoreError> {
        let sb = Superblock::new(&pm);
        let (ncores, nchunks) = sb.load()?;
        let mut cfg = cfg;
        cfg.ncores = ncores; // the persistent layout dictates the shards
        if cfg.group_size == 0 || ncores % cfg.group_size != 0 {
            cfg.group_size = ncores;
        }
        cfg.validate()?;
        let clean = sb.is_clean();
        let ckpt_valid = sb.ckpt_valid();

        let index = Arc::new(VolatileIndex::build(cfg.index, ncores, cfg.dram_bytes)?);
        let deleted = DeletedTable::new(ncores);
        let usage = UsageTable::new();

        // Three recovery paths (paper §3.5):
        //  1. clean shutdown + snapshot: trust bitmaps, load the snapshot,
        //     walk only the chain structure — no log scan at all;
        //  2. crash with a valid checkpoint: trust the bitmaps persisted at
        //     checkpoint time, load the snapshot, replay only the log
        //     suffix after each core's checkpoint cursor;
        //  3. bare crash: full log scan rebuilding everything.
        let trust_bitmaps = clean || ckpt_valid;
        let mgr = if trust_bitmaps {
            Arc::new(ChunkManager::load_clean(
                Arc::clone(&pm),
                PmAddr(POOL_BASE),
                nchunks,
            ))
        } else {
            Arc::new(ChunkManager::recover(
                Arc::clone(&pm),
                PmAddr(POOL_BASE),
                nchunks,
            ))
        };
        let snapshot_loaded = if trust_bitmaps {
            Self::load_snapshot(&pm, &sb, &mgr, &index, &deleted, &usage, ncores)?
        } else {
            false
        };

        let mut logs = Vec::with_capacity(ncores);
        if clean && snapshot_loaded {
            // Path 1: structure-only chain walk.
            for core in 0..ncores {
                let desc = Superblock::log_desc(core);
                let tail = PmAddr(pm.read_u64(desc + 8));
                let log = OpLog::recover_with_from(Arc::clone(&mgr), desc, tail, |_, _| {})?;
                logs.push(log);
            }
        } else if !clean && ckpt_valid && snapshot_loaded {
            // Path 2: replay only the post-checkpoint suffix, incremental
            // newest-version-wins against the snapshot state.
            for core in 0..ncores {
                let cursor = sb.read_ckpt_cursor(core);
                let mut suffix: Vec<(LogEntry, PmAddr)> = Vec::new();
                let log = OpLog::recover_with_from(
                    Arc::clone(&mgr),
                    Superblock::log_desc(core),
                    cursor,
                    |e, a| suffix.push((e, a)),
                )?;
                for (e, addr) in suffix {
                    Self::apply_recovered(&index, &deleted, &usage, &mgr, ncores, e, addr)?;
                }
                logs.push(log);
            }
        } else {
            // Path 3: full scan.
            let mut all_entries: Vec<(LogEntry, PmAddr)> = Vec::new();
            for core in 0..ncores {
                let log =
                    OpLog::recover_with(Arc::clone(&mgr), Superblock::log_desc(core), |e, a| {
                        all_entries.push((e, a));
                    })?;
                logs.push(log);
            }
            for (_, addr) in &all_entries {
                usage.note_appended(OpLog::chunk_of(*addr), 1);
            }
            let mut winners: HashMap<u64, (u32, usize)> = HashMap::new();
            for (i, (e, _)) in all_entries.iter().enumerate() {
                match winners.get(&e.key) {
                    Some(&(v, _)) if v >= e.version => {
                        usage.note_dead(all_entries[i].1);
                    }
                    Some(&(_, j)) => {
                        usage.note_dead(all_entries[j].1);
                        winners.insert(e.key, (e.version, i));
                    }
                    None => {
                        winners.insert(e.key, (e.version, i));
                    }
                }
            }
            for (_, &(_, i)) in winners.iter() {
                let (e, addr) = &all_entries[i];
                let owner = core_of(e.key, ncores);
                match e.op {
                    LogOp::Put => {
                        index.insert(owner, e.key, pack(e.version, *addr))?;
                        if let Payload::Ptr(b) = e.payload {
                            if !trust_bitmaps {
                                mgr.mark_allocated(b).map_err(|err| {
                                    StoreError::corrupt_with("recovery mark failed", err)
                                })?;
                            }
                        }
                    }
                    LogOp::Delete => deleted.insert(owner, e.key, e.version, *addr),
                    LogOp::Seal => {}
                }
            }
            if !trust_bitmaps {
                mgr.finish_recovery();
            }
        }

        // Reclaim reserved chunks unreachable from any log chain (a crash
        // between take_raw_chunk and linking leaks them).
        let reachable: std::collections::HashSet<u64> = logs
            .iter()
            .flat_map(|l| l.chunks().iter().map(|c| c.offset()))
            .collect();
        for r in mgr.reserved_chunks() {
            if !reachable.contains(&r.offset()) {
                let _ = mgr.return_raw_chunk(r);
            }
        }

        sb.set_clean(false);
        sb.set_ckpt_valid(false); // cursors/snapshot are consumed

        let mut shards = Vec::with_capacity(ncores);
        for (core, log) in logs.into_iter().enumerate() {
            let mut alloc = CoreAllocator::new(Arc::clone(&mgr), core as u32);
            alloc.adopt_recovered(ncores as u32);
            shards.push((log, alloc));
        }
        Self::start(pm, mgr, index, deleted, usage, shards, cfg, repl)
    }

    /// Applies one post-checkpoint log entry on top of snapshot state:
    /// newest version wins, equal versions re-anchor the same entry (its
    /// out-of-log block may postdate the persisted bitmaps).
    fn apply_recovered(
        index: &Arc<VolatileIndex>,
        deleted: &Arc<DeletedTable>,
        usage: &Arc<UsageTable>,
        mgr: &Arc<ChunkManager>,
        ncores: usize,
        e: LogEntry,
        addr: PmAddr,
    ) -> Result<(), StoreError> {
        usage.note_appended(OpLog::chunk_of(addr), 1);
        let owner = core_of(e.key, ncores);
        let cur = index.get(owner, e.key);
        let cur_ver = cur.map(|c| unpack(c).0);
        let del_ver = deleted.get(owner, e.key).map(|(v, _)| v);
        let newer = cur_ver.is_none_or(|v| e.version > v) && del_ver.is_none_or(|v| e.version > v);
        match e.op {
            LogOp::Put => {
                if newer {
                    if let Payload::Ptr(b) = e.payload {
                        // Tolerate already-set: the block may be covered by
                        // the checkpoint's persisted bitmaps.
                        let _ = mgr.mark_allocated(b);
                    }
                    if let Some(old) = index.insert(owner, e.key, pack(e.version, addr))? {
                        usage.note_dead(unpack(old).1);
                    }
                    if let Some((_, tomb)) = deleted.remove(owner, e.key) {
                        usage.note_dead(tomb);
                    }
                } else if cur_ver == Some(e.version) && cur.map(|c| unpack(c).1) == Some(addr) {
                    // The snapshot already references exactly this entry;
                    // just make sure its block is accounted for.
                    if let Payload::Ptr(b) = e.payload {
                        let _ = mgr.mark_allocated(b);
                    }
                } else {
                    usage.note_dead(addr);
                }
            }
            LogOp::Delete => {
                if newer {
                    if let Some(old) = index.remove(owner, e.key) {
                        usage.note_dead(unpack(old).1);
                    }
                    if let Some((_, tomb)) = deleted.remove(owner, e.key) {
                        usage.note_dead(tomb);
                    }
                    deleted.insert(owner, e.key, e.version, addr);
                } else if del_ver != Some(e.version) {
                    usage.note_dead(addr);
                }
            }
            LogOp::Seal => {}
        }
        Ok(())
    }

    fn load_snapshot(
        pm: &Arc<PmRegion>,
        sb: &Superblock<'_>,
        mgr: &Arc<ChunkManager>,
        index: &Arc<VolatileIndex>,
        deleted: &Arc<DeletedTable>,
        usage: &Arc<UsageTable>,
        ncores: usize,
    ) -> Result<bool, StoreError> {
        let Some((addr, _len)) = sb.snapshot() else {
            return Ok(false);
        };
        let mut pos = addr;
        let read_u64 = |pos: &mut PmAddr| {
            let v = pm.read_u64(*pos);
            *pos += 8;
            v
        };
        let snap_cores = read_u64(&mut pos) as usize;
        if snap_cores != ncores {
            return Err(StoreError::BadImage("snapshot core count".into()));
        }
        for _ in 0..ncores {
            let n_idx = read_u64(&mut pos);
            for _ in 0..n_idx {
                let key = read_u64(&mut pos);
                let packed = read_u64(&mut pos);
                index.insert(core_of(key, ncores), key, packed)?;
            }
            let n_del = read_u64(&mut pos);
            for _ in 0..n_del {
                let key = read_u64(&mut pos);
                let ver = read_u64(&mut pos) as u32;
                let taddr = PmAddr(read_u64(&mut pos));
                deleted.insert(core_of(key, ncores), key, ver, taddr);
            }
        }
        let n_usage = read_u64(&mut pos);
        for _ in 0..n_usage {
            let chunk = read_u64(&mut pos);
            let total = read_u64(&mut pos) as u32;
            let dead = read_u64(&mut pos) as u32;
            usage.restore(chunk, total, dead);
        }
        // The snapshot block is consumed; free it and clear the anchor.
        let _ = mgr.free_block(addr);
        sb.set_snapshot(PmAddr::NULL, 0);
        Ok(true)
    }

    /// Serializes the volatile state (index, tombstones, chunk-liveness
    /// accounting) for a shutdown snapshot or a checkpoint.
    fn snapshot_payload(&self) -> Vec<u8> {
        let mut payload: Vec<u8> = Vec::new();
        payload.extend_from_slice(&(self.cfg.ncores as u64).to_le_bytes());
        for core in 0..self.cfg.ncores {
            let mut pairs: Vec<(u64, u64)> = Vec::new();
            self.index
                .for_each_of_core(core, &mut |k, v| pairs.push((k, v)));
            payload.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for (k, v) in pairs {
                payload.extend_from_slice(&k.to_le_bytes());
                payload.extend_from_slice(&v.to_le_bytes());
            }
            let mut dels: Vec<(u64, u32, PmAddr)> = Vec::new();
            self.deleted
                .for_each_of_core(core, &mut |k, ver, addr| dels.push((k, ver, addr)));
            payload.extend_from_slice(&(dels.len() as u64).to_le_bytes());
            for (k, ver, addr) in dels {
                payload.extend_from_slice(&k.to_le_bytes());
                payload.extend_from_slice(&(ver as u64).to_le_bytes());
                payload.extend_from_slice(&addr.offset().to_le_bytes());
            }
        }
        let mut usages: Vec<(u64, u32, u32)> = Vec::new();
        self.usage
            .for_each(&mut |chunk, total, dead| usages.push((chunk, total, dead)));
        payload.extend_from_slice(&(usages.len() as u64).to_le_bytes());
        for (chunk, total, dead) in usages {
            payload.extend_from_slice(&chunk.to_le_bytes());
            payload.extend_from_slice(&(total as u64).to_le_bytes());
            payload.extend_from_slice(&(dead as u64).to_le_bytes());
        }
        payload
    }

    /// Writes `payload` as the region's snapshot, replacing (and freeing)
    /// any previous one. Returns whether a block could be allocated.
    fn write_snapshot(&self, payload: &[u8]) -> bool {
        let sb = Superblock::new(&self.pm);
        if let Some((old, _)) = sb.snapshot() {
            sb.set_snapshot(PmAddr::NULL, 0);
            let _ = self.mgr.free_block(old);
        }
        match self.mgr.alloc_huge(payload.len() as u64) {
            Ok(addr) => {
                self.pm.write(addr, payload);
                self.pm.persist(addr, payload.len());
                sb.set_snapshot(addr, payload.len() as u64);
                true
            }
            Err(_) => false,
        }
    }

    /// Takes a checkpoint (paper §3.5: "FlatStore also supports to
    /// checkpoint the volatile index into PMs periodically"): records each
    /// core's log position, persists the allocator bitmaps and snapshots
    /// the volatile state, so that a subsequent **crash** recovery replays
    /// only the log written after this call.
    ///
    /// The checkpoint stays valid until the log cleaner next relocates
    /// entries (the cleaner durably invalidates it first). Intended to run
    /// during quiet periods; writes racing the checkpoint are still
    /// recovered correctly via version comparison, they just shrink the
    /// saved work.
    ///
    /// # Errors
    ///
    /// [`StoreError::OutOfSpace`] if no PM block can hold the snapshot;
    /// [`StoreError::ShuttingDown`] if the engine is stopping.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        {
            let mut ctl = self.control.lock();
            ctl.barrier()?;
            // 1. Per-core cursors (each core persists its own, on its
            //    thread).
            ctl.ckpt_cursors()?;
        }
        // 2. Allocator bitmaps (covers everything allocated so far).
        self.mgr.persist_bitmaps();
        // 3. Volatile-state snapshot.
        let payload = self.snapshot_payload();
        if !self.write_snapshot(&payload) {
            return Err(StoreError::OutOfSpace);
        }
        // 4. Publish.
        Superblock::new(&self.pm).set_ckpt_valid(true);
        // Durability point: cursors, bitmaps and snapshot are all
        // persisted, and the valid flag just made them reachable.
        self.pm.commit_point();
        self.ckpt.arm();
        self.stats
            .checkpoints
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Ok(())
    }

    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    fn start(
        pm: Arc<PmRegion>,
        mgr: Arc<ChunkManager>,
        index: Arc<VolatileIndex>,
        deleted: Arc<DeletedTable>,
        usage: Arc<UsageTable>,
        shards: Vec<(OpLog, CoreAllocator)>,
        cfg: Config,
        repl: Option<Arc<dyn ReplicationSink>>,
    ) -> Result<FlatStore, StoreError> {
        let ncores = cfg.ncores;
        let quarantine = Quarantine::new(20);
        let ckpt = CkptGuard::new(Arc::clone(&pm));
        let stats = Arc::new(EngineStats::default());
        let cache = ReadCache::new(cfg.read_cache_bytes, ncores);
        // Each member's publish list must absorb a burst of posts between
        // leader sweeps; several full pipelines of headroom keeps the
        // self-persist overflow path a cold corner case.
        let list_capacity = (cfg.pipeline_depth * 8).max(128);
        let (groups, tuners): (Vec<Arc<Group>>, Vec<Arc<BatchTuner>>) = if cfg.adaptive {
            // Adaptive mode: one publish fabric spanning every core, with
            // the configured group_size as the controller's starting
            // effective sweep width — it can grow past it under
            // contention or shrink below it when batches run empty.
            let tuner = BatchTuner::new(ncores, cfg.group_size, cfg.pipeline_depth as u64);
            (
                vec![Group::with_tuner(
                    ncores,
                    list_capacity,
                    Some(Arc::clone(&tuner)),
                )],
                vec![tuner],
            )
        } else {
            let ngroups = ncores.div_ceil(cfg.group_size);
            let groups = (0..ngroups)
                .map(|g| {
                    let members = (ncores - g * cfg.group_size).min(cfg.group_size);
                    Group::new(members, list_capacity)
                })
                .collect();
            (groups, Vec::new())
        };

        // Ring capacity covers a full pipeline plus one control message
        // per core, so the agent can always complete a response without
        // waiting on a client that is still submitting.
        let capacity = cfg.pipeline_depth + ncores + 4;
        let fabric = Arc::new(StoreFabric::new(ncores, 1, capacity));
        let mut cores = fabric.server_cores();
        let control_port = fabric.client_port(0);
        let exited = Arc::new(AtomicUsize::new(0));
        let flight = FlightRegistry::new(ncores);
        {
            // The crash dump's stats_report closure captures only Arc'd
            // state (never the engine or EngineShared — that would cycle
            // through the registry), so the panic hook can render the full
            // report from any thread.
            let stats = Arc::clone(&stats);
            let fabric = Arc::clone(&fabric);
            let cache = cache.clone();
            let pm = Arc::clone(&pm);
            let mgr = Arc::clone(&mgr);
            let tuners = tuners.clone();
            flight.set_stats_source(move || {
                Self::render_report(&stats, &fabric, cache.as_ref(), &pm, &mgr, &tuners).to_json()
            });
        }

        let shared = Arc::new(EngineShared {
            fabric,
            ncores,
            depth: cfg.pipeline_depth,
            stats: Arc::clone(&stats),
            trace_sample: cfg.trace_sample,
            flight: Arc::clone(&flight),
            stop: AtomicBool::new(false),
        });

        let mut workers = Vec::with_capacity(ncores);
        for (core, (log, alloc)) in shards.into_iter().enumerate() {
            let server = cores.remove(0);
            debug_assert_eq!(server.core(), core);
            let shard = Shard::new(
                core,
                ncores,
                Arc::clone(&pm),
                Arc::clone(&mgr),
                log,
                alloc,
                Arc::clone(&index),
                Arc::clone(&deleted),
                Arc::clone(&usage),
                Arc::clone(&quarantine),
                Arc::clone(&ckpt),
                if cfg.adaptive {
                    Arc::clone(&groups[0])
                } else {
                    Arc::clone(&groups[core / cfg.group_size])
                },
                if cfg.adaptive {
                    core
                } else {
                    core % cfg.group_size
                },
                cfg.model,
                cfg.gc,
                cfg.channel_batch,
                Arc::clone(&stats),
                server,
                Arc::clone(&exited),
                repl.clone(),
                cache.clone(),
                Arc::clone(&flight),
            );
            workers.push(
                std::thread::Builder::new()
                    .name(format!("flatstore-core-{core}"))
                    .spawn(move || shard.run())
                    // pmlint: allow(no-unwrap) — thread-spawn failure at startup
                    // is unrecoverable; no PM state exists to strand yet.
                    .expect("spawn worker"),
            );
        }
        let handle = StoreHandle {
            shared: Arc::clone(&shared),
            session: parking_lot::Mutex::new(None),
        };
        let control =
            parking_lot::Mutex::new(Session::with_port(Arc::clone(&shared), control_port));
        Ok(FlatStore {
            pm,
            mgr,
            index,
            deleted,
            usage,
            quarantine,
            ckpt,
            stats,
            cache,
            tuners,
            shared,
            handle,
            control,
            workers,
            cfg,
        })
    }

    /// A clonable client handle.
    pub fn handle(&self) -> StoreHandle {
        self.handle.clone()
    }

    /// Opens a new pipelined [`Session`] (see [`StoreHandle::session`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped.
    pub fn session(&self) -> Result<Session, StoreError> {
        self.handle.session()
    }

    /// See [`StoreHandle::put`].
    ///
    /// # Errors
    ///
    /// As for [`StoreHandle::put`].
    pub fn put(&self, key: u64, value: impl AsRef<[u8]>) -> Result<(), StoreError> {
        self.handle.put(key, value)
    }

    /// See [`StoreHandle::get`].
    ///
    /// # Errors
    ///
    /// As for [`StoreHandle::get`].
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.handle.get(key)
    }

    /// See [`StoreHandle::delete`].
    ///
    /// # Errors
    ///
    /// As for [`StoreHandle::delete`].
    pub fn delete(&self, key: u64) -> Result<bool, StoreError> {
        self.handle.delete(key)
    }

    /// See [`StoreHandle::range`].
    ///
    /// # Errors
    ///
    /// As for [`StoreHandle::range`].
    pub fn range(&self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.handle.range(lo, hi, limit)
    }

    /// Quiesces all cores (see [`StoreHandle::barrier`]).
    pub fn barrier(&self) {
        self.handle.barrier();
    }

    /// Engine activity counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// One coherent report over the whole engine: operation counters,
    /// client-observed latency percentiles, batching, session-pipeline and
    /// cleaning activity, the FlatRPC fabric's counters, and the
    /// underlying region's persistence-op counters. Render it with
    /// `Display`, [`obs::StatsReport::to_json`] or
    /// [`obs::StatsReport::to_jsonl`].
    pub fn stats_report(&self) -> obs::StatsReport {
        Self::render_report(
            &self.stats,
            &self.shared.fabric,
            self.cache.as_ref(),
            &self.pm,
            &self.mgr,
            &self.tuners,
        )
    }

    /// Builds the full report from `Arc`'d engine state only, so the
    /// flight recorder's panic hook can render the same document
    /// [`stats_report`](Self::stats_report) produces.
    fn render_report(
        stats: &EngineStats,
        fabric: &StoreFabric,
        cache: Option<&Arc<ReadCache>>,
        pm: &PmRegion,
        mgr: &ChunkManager,
        tuners: &[Arc<BatchTuner>],
    ) -> obs::StatsReport {
        let mut r = obs::StatsReport::new("flatstore");
        stats.fill_report(&mut r);
        // Adaptive mode only: decision counters + the current operating
        // point (static runs keep the report byte-identical to before).
        for tuner in tuners {
            tuner.fill_section(r.section("batch_tuner"));
        }
        {
            use racecheck::sync::atomic::Ordering::Relaxed;
            let fs = fabric.stats();
            r.section("fabric")
                .row("requests", fs.requests.load(Relaxed))
                .row("direct_responses", fs.direct_responses.load(Relaxed))
                .row("delegated_responses", fs.delegated_responses.load(Relaxed))
                .row("clients_attached", fs.clients_attached.load(Relaxed))
                .row("send_backpressure", fs.send_backpressure.load(Relaxed))
                .row("peak_ring_occupancy", fs.peak_ring_occupancy.load(Relaxed));
        }
        if let Some(cache) = cache {
            cache.fill_report(&mut r);
        }
        let sec = r.section("pm");
        pm.stats().snapshot().fill_section(sec);
        sec.row("free_chunks", mgr.free_chunks());
        r
    }

    /// Renders the engine-side trace accumulated in the flight rings —
    /// one lane per server core, with `batch_persist` spans linking HB
    /// batches to their member ops via the `ship_seq`/`entries` args —
    /// plus the given client-side spans (from [`Session::drain_spans`]),
    /// as a Chrome trace-event JSON document loadable in
    /// `chrome://tracing` or Perfetto. Client spans render on their
    /// owning core's lane; spans that never reached a shard land on the
    /// extra `client` lane.
    pub fn chrome_trace(&self, client_spans: &[obs::Span]) -> String {
        let mut events = self.shared.flight.chrome_events();
        let client_lane = self.cfg.ncores as u32;
        for s in client_spans {
            let tid = if s.core == u32::MAX {
                client_lane
            } else {
                s.core
            };
            events.extend(s.chrome_events(tid));
        }
        let mut names: Vec<(u32, String)> = (0..self.cfg.ncores)
            .map(|c| (c as u32, format!("core-{c}")))
            .collect();
        names.push((client_lane, "client".to_string()));
        obs::chrome_trace("flatstore", names, &events)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free chunks in the PM pool.
    pub fn free_chunks(&self) -> u32 {
        self.mgr.free_chunks()
    }

    /// The underlying (simulated) PM region.
    pub fn pm(&self) -> Arc<PmRegion> {
        Arc::clone(&self.pm)
    }

    /// Read-only scan of `core`'s log suffix at or after `from` (the whole
    /// log when `from` is [`PmAddr::NULL`]), invoking `f` per surviving
    /// entry and returning the persisted tail. Replication catch-up uses
    /// this to re-ship everything past a stale backup's persisted cursor.
    ///
    /// Only yields a consistent cut while the engine is quiescent (call
    /// [`barrier`](Self::barrier) first and keep clients paused), and only
    /// while the cleaner has not reordered the chain since the cursor was
    /// recorded — disable GC or fall back to a full re-ship on error.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] variants if the chain cannot be walked from
    /// `from` (e.g. the cleaner relocated it).
    pub fn log_suffix(
        &self,
        core: usize,
        from: PmAddr,
        f: impl FnMut(LogEntry, PmAddr),
    ) -> Result<PmAddr, StoreError> {
        let from = (from != PmAddr::NULL).then_some(from);
        Ok(OpLog::scan_descriptor(
            &self.pm,
            Superblock::log_desc(core),
            from,
            f,
        )?)
    }

    /// Like [`log_suffix`](Self::log_suffix), but yields shipping-ready
    /// [`ReplOp`](crate::ReplOp)s (pointer payloads resolved to bytes) —
    /// the catch-up path: re-ship everything a stale backup's persisted
    /// cursor has not covered. Same quiescence caveats as `log_suffix`.
    ///
    /// # Errors
    ///
    /// As for [`log_suffix`](Self::log_suffix).
    pub fn repl_suffix(
        &self,
        core: usize,
        from: PmAddr,
        mut f: impl FnMut(crate::ReplOp),
    ) -> Result<PmAddr, StoreError> {
        let pm = Arc::clone(&self.pm);
        self.log_suffix(core, from, move |e, _| {
            f(crate::repl::ReplOp::from_entry(&pm, &e));
        })
    }

    fn join_workers(&mut self) -> Vec<Shard> {
        if self.workers.is_empty() {
            return Vec::new();
        }
        self.control.lock().send_shutdown_all();
        let shards: Vec<Shard> = self
            .workers
            .drain(..)
            // pmlint: allow(no-unwrap) — propagate a worker panic rather
            // than pretend a clean shutdown happened over its corpse.
            .map(|w| w.join().expect("worker panicked"))
            .collect();
        // Only now do sessions fail fast: every ring has been fully
        // drained, so nothing submitted before this point is lost.
        self.shared.stop.store(true, Ordering::Release);
        shards
    }

    /// Clean shutdown (paper §3.5): drains all cores, snapshots the
    /// volatile index and tombstone table into PM, persists the allocator
    /// bitmaps and sets the clean flag. Returns the region for reopening.
    ///
    /// # Errors
    ///
    /// Snapshot allocation failures degrade gracefully: the image is still
    /// marked clean and the next open replays the log instead.
    pub fn shutdown(mut self) -> Result<Arc<PmRegion>, StoreError> {
        let shards = self.join_workers();
        self.quarantine.drain(&self.mgr);

        let payload = self.snapshot_payload();
        let sb = Superblock::new(&self.pm);
        if !self.write_snapshot(&payload) {
            // Degrade gracefully: the next open replays the log instead.
            sb.set_snapshot(PmAddr::NULL, 0);
        }
        self.mgr.persist_bitmaps();
        sb.set_ckpt_valid(false);
        sb.set_clean(true);
        // Durability point: the image is now a complete clean-shutdown
        // state (snapshot + bitmaps + clean flag).
        self.pm.commit_point();
        drop(shards);
        Ok(Arc::clone(&self.pm))
    }

    /// Abrupt stop without the clean-shutdown protocol: the next open takes
    /// the crash-recovery path. Combine with
    /// [`PmRegion::simulate_crash`] to also drop unflushed state.
    pub fn kill(mut self) -> Arc<PmRegion> {
        let _ = self.join_workers();
        Arc::clone(&self.pm)
    }
}

impl Drop for FlatStore {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            let _ = self.join_workers();
        }
        let _ = &self.usage; // shared tables dropped with the engine
    }
}
