//! The persistent superblock: region identification, shutdown flag, log
//! descriptors and the clean-shutdown snapshot anchor.
//!
//! Layout (region offsets):
//!
//! ```text
//! 0x0000  magic, layout version, ncores, nchunks, clean flag,
//!         snapshot address + length, checkpoint-valid flag
//! 0x1000  per-core operation-log descriptors, one cacheline each
//! 0x2000  per-core checkpoint cursors (log tail at checkpoint time),
//!         one cacheline each, written by the owning core
//! 4 MB    chunk pool (4 MB-aligned as the lazy-persist allocator requires)
//! ```

use pmem::{PmAddr, PmRegion};

use crate::error::StoreError;

const MAGIC: u64 = 0x464c_4154_5354_4f52; // "FLATSTOR"
const LAYOUT_VERSION: u64 = 1;

const OFF_MAGIC: u64 = 0x00;
const OFF_VERSION: u64 = 0x08;
const OFF_NCORES: u64 = 0x10;
const OFF_NCHUNKS: u64 = 0x18;
const OFF_CLEAN: u64 = 0x20;
const OFF_SNAP_ADDR: u64 = 0x28;
const OFF_SNAP_LEN: u64 = 0x30;
const OFF_CKPT_VALID: u64 = 0x38;

const DESC_BASE: u64 = 0x1000;
const CKPT_BASE: u64 = 0x2000;

/// Base of the chunk pool.
pub(crate) const POOL_BASE: u64 = 4 << 20;

/// A typed view over the superblock.
pub(crate) struct Superblock<'a> {
    pm: &'a PmRegion,
}

impl<'a> Superblock<'a> {
    pub fn new(pm: &'a PmRegion) -> Self {
        Superblock { pm }
    }

    /// Formats a fresh superblock for `ncores` / `nchunks`.
    pub fn format(&self, ncores: usize, nchunks: u32) {
        self.pm.write_u64(PmAddr(OFF_VERSION), LAYOUT_VERSION);
        self.pm.write_u64(PmAddr(OFF_NCORES), ncores as u64);
        self.pm.write_u64(PmAddr(OFF_NCHUNKS), nchunks as u64);
        self.pm.write_u64(PmAddr(OFF_CLEAN), 0);
        self.pm.write_u64(PmAddr(OFF_SNAP_ADDR), 0);
        self.pm.write_u64(PmAddr(OFF_SNAP_LEN), 0);
        self.pm.write_u64(PmAddr(OFF_CKPT_VALID), 0);
        self.pm.flush(PmAddr(0), 0x40);
        self.pm.fence();
        // Magic written last: a torn format is unrecognizable, not corrupt.
        self.pm.write_u64(PmAddr(OFF_MAGIC), MAGIC);
        self.pm.persist(PmAddr(OFF_MAGIC), 8);
    }

    /// Validates magic/version and returns `(ncores, nchunks)`.
    pub fn load(&self) -> Result<(usize, u32), StoreError> {
        if self.pm.read_u64(PmAddr(OFF_MAGIC)) != MAGIC {
            return Err(StoreError::BadImage("missing FlatStore magic".into()));
        }
        let v = self.pm.read_u64(PmAddr(OFF_VERSION));
        if v != LAYOUT_VERSION {
            return Err(StoreError::BadImage(format!("layout version {v}")));
        }
        Ok((
            self.pm.read_u64(PmAddr(OFF_NCORES)) as usize,
            self.pm.read_u64(PmAddr(OFF_NCHUNKS)) as u32,
        ))
    }

    /// Whether the image was cleanly shut down.
    pub fn is_clean(&self) -> bool {
        self.pm.read_u64(PmAddr(OFF_CLEAN)) == 1
    }

    /// Sets/clears the clean-shutdown flag (persisted).
    pub fn set_clean(&self, clean: bool) {
        self.pm.write_u64(PmAddr(OFF_CLEAN), clean as u64);
        self.pm.persist(PmAddr(OFF_CLEAN), 8);
    }

    /// Records the snapshot block (0 = none); persisted.
    pub fn set_snapshot(&self, addr: PmAddr, len: u64) {
        self.pm.write_u64(PmAddr(OFF_SNAP_ADDR), addr.offset());
        self.pm.write_u64(PmAddr(OFF_SNAP_LEN), len);
        self.pm.persist(PmAddr(OFF_SNAP_ADDR), 16);
    }

    /// The snapshot block, if any.
    pub fn snapshot(&self) -> Option<(PmAddr, u64)> {
        let addr = self.pm.read_u64(PmAddr(OFF_SNAP_ADDR));
        (addr != 0).then(|| (PmAddr(addr), self.pm.read_u64(PmAddr(OFF_SNAP_LEN))))
    }

    /// The operation-log descriptor address of `core` (one cacheline each).
    pub fn log_desc(core: usize) -> PmAddr {
        PmAddr(DESC_BASE + core as u64 * 64)
    }

    /// The checkpoint-cursor address of `core` (one cacheline each; only
    /// that core's worker writes it).
    pub fn ckpt_cursor(core: usize) -> PmAddr {
        PmAddr(CKPT_BASE + core as u64 * 64)
    }

    /// Whether a checkpoint (snapshot + per-core cursors) is valid.
    pub fn ckpt_valid(&self) -> bool {
        self.pm.read_u64(PmAddr(OFF_CKPT_VALID)) == 1
    }

    /// Sets/clears the checkpoint-valid flag (persisted). The log cleaner
    /// clears it *before* relocating any entry, so a valid checkpoint's
    /// entry addresses are never stale.
    pub fn set_ckpt_valid(&self, valid: bool) {
        self.pm.write_u64(PmAddr(OFF_CKPT_VALID), valid as u64);
        self.pm.persist(PmAddr(OFF_CKPT_VALID), 8);
    }

    /// Reads core `core`'s checkpoint cursor.
    pub fn read_ckpt_cursor(&self, core: usize) -> PmAddr {
        PmAddr(self.pm.read_u64(Self::ckpt_cursor(core)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_load_round_trip() {
        let pm = PmRegion::new(8 << 20);
        let sb = Superblock::new(&pm);
        sb.format(7, 42);
        assert_eq!(sb.load().unwrap(), (7, 42));
        assert!(!sb.is_clean());
        sb.set_clean(true);
        assert!(sb.is_clean());
        sb.set_snapshot(PmAddr(0x40_0000), 123);
        assert_eq!(sb.snapshot(), Some((PmAddr(0x40_0000), 123)));
        sb.set_snapshot(PmAddr::NULL, 0);
        assert_eq!(sb.snapshot(), None);
        assert!(!sb.ckpt_valid());
        sb.set_ckpt_valid(true);
        assert!(sb.ckpt_valid());
        sb.set_ckpt_valid(false);
        assert!(!sb.ckpt_valid());
    }

    #[test]
    fn load_rejects_garbage() {
        let pm = PmRegion::new(1 << 20);
        assert!(matches!(
            Superblock::new(&pm).load(),
            Err(StoreError::BadImage(_))
        ));
    }

    #[test]
    fn descriptors_have_private_cachelines() {
        let a = Superblock::log_desc(0);
        let b = Superblock::log_desc(1);
        assert_ne!(a.cacheline(), b.cacheline());
        assert!(a.is_aligned(64) && b.is_aligned(64));
        // They stay below the chunk pool for any realistic core count.
        assert!(Superblock::log_desc(60).offset() < CKPT_BASE);
        assert!(Superblock::ckpt_cursor(1024).offset() < POOL_BASE);
        assert_ne!(
            Superblock::log_desc(0).cacheline(),
            Superblock::ckpt_cursor(0).cacheline()
        );
    }
}
