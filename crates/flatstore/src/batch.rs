//! Horizontal-batching machinery and engine-shared state (paper §3.3).

use racecheck::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use racecheck::sync::Arc;
use std::collections::HashMap;
use std::time::Instant;

use oplog::ChunkUsage;
use parking_lot::Mutex;
use pmalloc::ChunkManager;
use pmem::PmAddr;

use oplog::LogEntry;

/// Sentinel meaning "batch append failed" in a [`Completion`].
const FAILED: u64 = u64::MAX;

/// The durable-address hand-off between the leader that persisted a log
/// entry and the core that posted it.
#[derive(Debug, Default)]
pub(crate) struct Completion {
    /// 0 = pending; `u64::MAX` = failed; otherwise the entry's PM address
    /// (entry addresses are always ≥ the first chunk's entry area, never 0).
    addr: AtomicU64,
    /// Replication watermark gating the client ack: `(core << 48) | seq`
    /// of the ship batch that carried this op, 0 = not replicated. Written
    /// by the leader *before* [`fulfil`](Self::fulfil) (whose `Release`
    /// store publishes it) and read by the owner core's ack gate.
    repl: AtomicU64,
    /// Traced ops only — leader-side stage stamps (ns, 0 = unset),
    /// written before [`fulfil`](Self::fulfil) like `repl` so the owner
    /// core reads them race-free after a successful `poll`: when the
    /// leader collected the posted entry, when the batched append
    /// returned, and when the replication sink accepted the batch.
    collected_ns: AtomicU64,
    persisted_ns: AtomicU64,
    shipped_ns: AtomicU64,
}

impl Completion {
    pub fn new() -> Arc<Completion> {
        Arc::new(Completion::default())
    }

    pub fn fulfil(&self, addr: PmAddr) {
        self.addr.store(addr.offset(), Ordering::Release);
    }

    pub fn fail(&self) {
        self.addr.store(FAILED, Ordering::Release);
    }

    /// `None` while pending; `Some(Ok(addr))` once persisted.
    pub fn poll(&self) -> Option<Result<PmAddr, ()>> {
        match self.addr.load(Ordering::Acquire) {
            0 => None,
            FAILED => Some(Err(())),
            a => Some(Ok(PmAddr(a))),
        }
    }

    /// Records the ship-batch watermark this op's ack must wait for.
    pub fn set_repl(&self, core: usize, seq: u64) {
        debug_assert!(core < 1 << 16 && seq >> 48 == 0);
        let watermark = ((core as u64) << 48) | seq;
        // pmlint: allow(relaxed-ordering) — written by the leader before
        // `fulfil`'s Release store on `addr`, read only after `poll`'s
        // Acquire observed it (racecheck `completion_model`).
        self.repl.store(watermark, Ordering::Relaxed);
    }

    /// The `(leader core, ship seq)` watermark, if this op was replicated.
    pub fn repl(&self) -> Option<(usize, u64)> {
        // pmlint: allow(relaxed-ordering) — ordered after the leader's
        // stores by `poll`'s Acquire on `addr` (racecheck `completion_model`).
        match self.repl.load(Ordering::Relaxed) {
            0 => None,
            v => Some(((v >> 48) as usize, v & ((1 << 48) - 1))),
        }
    }

    /// Leader stamps for a traced op; call before [`fulfil`](Self::fulfil)
    /// (`shipped_ns` is 0 when the batch was not shipped).
    pub fn set_stage_stamps(&self, collected_ns: u64, persisted_ns: u64, shipped_ns: u64) {
        let stamps = [
            (&self.collected_ns, collected_ns),
            (&self.persisted_ns, persisted_ns),
            (&self.shipped_ns, shipped_ns),
        ];
        for (cell, ns) in stamps {
            // pmlint: allow(relaxed-ordering) — published to the owner core
            // by `fulfil`'s Release store on `addr` (racecheck
            // `completion_model`).
            cell.store(ns, Ordering::Relaxed);
        }
    }

    /// `(collected, persisted, shipped)` stamps (0 = unset), valid after
    /// [`poll`](Self::poll) returned `Some`.
    pub fn stage_stamps(&self) -> (u64, u64, u64) {
        // pmlint: allow(relaxed-ordering) — ordered after the leader's
        // stamp stores by `poll`'s Acquire on `addr` (racecheck
        // `completion_model`).
        let stamp = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        (
            stamp(&self.collected_ns),
            stamp(&self.persisted_ns),
            stamp(&self.shipped_ns),
        )
    }
}

/// A log entry posted to a request pool, awaiting a leader.
pub(crate) struct Posted {
    pub entry: LogEntry,
    pub completion: Arc<Completion>,
    /// Whether the posting core carries a span for this op — tells the
    /// leader to publish stage stamps through the completion.
    pub traced: bool,
}

/// One horizontal-batching group: the per-group "global lock" and the
/// per-core request pools the leader steals from (paper Figure 5).
pub(crate) struct Group {
    pub lock: Mutex<()>,
    pub pools: Vec<Mutex<Vec<Posted>>>,
    /// Entries posted but not yet collected (cheap emptiness check).
    pub pending: AtomicUsize,
}

impl Group {
    pub fn new(members: usize) -> Arc<Group> {
        let mut pools = Vec::with_capacity(members);
        pools.resize_with(members, || Mutex::new(Vec::new()));
        Arc::new(Group {
            lock: Mutex::new(()),
            pools,
            pending: AtomicUsize::new(0),
        })
    }

    /// Posts an entry to `slot`'s pool.
    pub fn post(&self, slot: usize, posted: Posted) {
        self.pools[slot].lock().push(posted);
        self.pending.fetch_add(1, Ordering::Release);
    }

    /// Drains every pool (the leader's "steal"); caller must hold the lock.
    pub fn collect(&self) -> Vec<Posted> {
        let mut all = Vec::new();
        for pool in &self.pools {
            all.append(&mut pool.lock());
        }
        self.pending.fetch_sub(all.len(), Ordering::Release);
        all
    }
}

/// Engine-wide per-chunk liveness accounting. Log entries of one core are
/// persisted into whichever group member led the batch, so dead-entry
/// notifications cross log boundaries; this shared table replaces the
/// per-log accounting for the engine.
#[derive(Debug, Default)]
pub(crate) struct UsageTable {
    map: Mutex<HashMap<u64, ChunkUsage>>,
}

impl UsageTable {
    pub fn new() -> Arc<UsageTable> {
        Arc::new(UsageTable::default())
    }

    pub fn note_appended(&self, chunk: PmAddr, n: u32) {
        self.map.lock().entry(chunk.offset()).or_default().total += n;
    }

    pub fn note_dead(&self, entry_addr: PmAddr) {
        let chunk = oplog::OpLog::chunk_of(entry_addr);
        if let Some(u) = self.map.lock().get_mut(&chunk.offset()) {
            u.dead = (u.dead + 1).min(u.total);
        }
    }

    pub fn usage(&self, chunk: PmAddr) -> ChunkUsage {
        self.map
            .lock()
            .get(&chunk.offset())
            .copied()
            .unwrap_or_default()
    }

    /// Replaces the record for a relocated-to chunk and drops the victim's.
    pub fn on_cleaned(&self, victim: PmAddr, target: Option<(PmAddr, u32)>) {
        let mut m = self.map.lock();
        m.remove(&victim.offset());
        if let Some((t, live)) = target {
            let u = m.entry(t.offset()).or_default();
            u.total += live;
        }
    }

    /// Visits every `(chunk_base, total, dead)` triple (snapshot
    /// serialization).
    pub fn for_each(&self, f: &mut dyn FnMut(u64, u32, u32)) {
        for (chunk, u) in self.map.lock().iter() {
            f(*chunk, u.total, u.dead);
        }
    }

    /// Restores one chunk's accounting (snapshot load).
    pub fn restore(&self, chunk: u64, total: u32, dead: u32) {
        self.map.lock().insert(chunk, ChunkUsage { total, dead });
    }
}

/// Guards the persistent checkpoint-valid flag: the log cleaner must
/// invalidate a checkpoint (durably) before relocating any entry, or the
/// checkpoint's entry addresses could go stale (paper §3.5 + §3.4
/// interaction).
pub(crate) struct CkptGuard {
    pm: Arc<pmem::PmRegion>,
    armed: std::sync::atomic::AtomicBool,
    lock: Mutex<()>,
}

impl CkptGuard {
    pub fn new(pm: Arc<pmem::PmRegion>) -> Arc<CkptGuard> {
        Arc::new(CkptGuard {
            pm,
            armed: std::sync::atomic::AtomicBool::new(false),
            lock: Mutex::new(()),
        })
    }

    /// A checkpoint just became valid.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Durably clears the checkpoint flag (idempotent, cheap when unarmed).
    pub fn invalidate(&self) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if self.armed.swap(false, Ordering::AcqRel) {
            crate::superblock::Superblock::new(&self.pm).set_ckpt_valid(false);
        }
    }
}

/// Per-owner-core tombstone tracking: key → (version, tombstone entry
/// address). Needed so a new Put to a deleted key continues the version
/// sequence and so the cleaner can judge tombstone liveness.
pub(crate) struct DeletedTable {
    shards: Vec<Mutex<HashMap<u64, (u32, PmAddr)>>>,
}

impl DeletedTable {
    pub fn new(ncores: usize) -> Arc<DeletedTable> {
        let mut shards = Vec::with_capacity(ncores);
        shards.resize_with(ncores, || Mutex::new(HashMap::new()));
        Arc::new(DeletedTable { shards })
    }

    pub fn get(&self, core: usize, key: u64) -> Option<(u32, PmAddr)> {
        self.shards[core].lock().get(&key).copied()
    }

    pub fn insert(&self, core: usize, key: u64, version: u32, addr: PmAddr) {
        self.shards[core].lock().insert(key, (version, addr));
    }

    pub fn remove(&self, core: usize, key: u64) -> Option<(u32, PmAddr)> {
        self.shards[core].lock().remove(&key)
    }

    /// The cleaner relocated a tombstone: repoint it if still current.
    pub fn cas_addr(&self, core: usize, key: u64, version: u32, old: PmAddr, new: PmAddr) -> bool {
        let mut m = self.shards[core].lock();
        match m.get_mut(&key) {
            Some(v) if *v == (version, old) => {
                v.1 = new;
                true
            }
            _ => false,
        }
    }

    pub fn for_each_of_core(&self, core: usize, f: &mut dyn FnMut(u64, u32, PmAddr)) {
        for (k, (ver, addr)) in self.shards[core].lock().iter() {
            f(*k, *ver, *addr);
        }
    }
}

/// Chunks reclaimed by the cleaner sit here for a grace period before
/// re-entering the pool, so concurrent readers holding pre-CAS entry
/// addresses never observe recycled memory (RAMCloud-style epoch
/// protection, simplified to a time-based grace window).
pub(crate) struct Quarantine {
    chunks: Mutex<Vec<(Instant, PmAddr)>>,
    grace_ms: u64,
}

impl Quarantine {
    pub fn new(grace_ms: u64) -> Arc<Quarantine> {
        Arc::new(Quarantine {
            chunks: Mutex::new(Vec::new()),
            grace_ms,
        })
    }

    pub fn push(&self, chunk: PmAddr) {
        self.chunks.lock().push((Instant::now(), chunk));
    }

    /// Returns matured chunks to the pool; call periodically.
    pub fn release(&self, mgr: &ChunkManager) -> u32 {
        let mut released = 0;
        let mut chunks = self.chunks.lock();
        chunks.retain(|(t, c)| {
            if t.elapsed().as_millis() as u64 >= self.grace_ms {
                let _ = mgr.return_raw_chunk(*c);
                released += 1;
                false
            } else {
                true
            }
        });
        released
    }

    /// Releases everything regardless of age (shutdown/quiesced paths).
    pub fn drain(&self, mgr: &ChunkManager) {
        for (_, c) in self.chunks.lock().drain(..) {
            let _ = mgr.return_raw_chunk(c);
        }
    }
}

/// Engine-wide activity counters (all monotonic) and latency/batch-size
/// histograms.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Completed Put operations.
    pub puts: AtomicU64,
    /// Completed Get operations.
    pub gets: AtomicU64,
    /// Completed Delete operations.
    pub deletes: AtomicU64,
    /// Batches persisted by leaders.
    pub batches: AtomicU64,
    /// Log entries persisted across all batches.
    pub batched_entries: AtomicU64,
    /// Requests deferred by the conflict queue.
    pub conflicts_deferred: AtomicU64,
    /// Chunks reclaimed by the cleaner.
    pub gc_chunks: AtomicU64,
    /// Entries relocated by the cleaner.
    pub gc_relocated: AtomicU64,
    /// Checkpoints taken (paper §3.5).
    pub checkpoints: AtomicU64,
    /// Client-observed Put latency (ns, recorded by [`StoreHandle`]).
    ///
    /// [`StoreHandle`]: crate::StoreHandle
    pub put_latency: obs::LogHistogram,
    /// Client-observed Get latency (ns).
    pub get_latency: obs::LogHistogram,
    /// Server-side Get service latency for read-cache hits (ns, recorded
    /// on the owner core; excludes fabric round-trip time).
    pub get_hit_latency: obs::LogHistogram,
    /// Server-side Get service latency for read-cache misses served from
    /// the log (ns).
    pub get_miss_latency: obs::LogHistogram,
    /// Client-observed Delete latency (ns).
    pub delete_latency: obs::LogHistogram,
    /// Client-observed Range latency (ns).
    pub range_latency: obs::LogHistogram,
    /// Entries per persisted batch, recorded by the group leader.
    pub batch_size: obs::LogHistogram,
    /// Session pipeline occupancy sampled at each submit (the blocking
    /// handle always records 1).
    pub inflight_depth: obs::LogHistogram,
    /// Submit-to-completion latency per pipelined operation (ns).
    pub completion_latency: obs::LogHistogram,
    /// Per-stage causal latency breakdown of sampled traces
    /// ([`Config::trace_sample`]), including the end-to-end distribution
    /// and the batch-amortized persist cost.
    ///
    /// [`Config::trace_sample`]: crate::Config::trace_sample
    pub breakdown: obs::StageSet,
}

impl EngineStats {
    /// Reads one monotone stat counter for reporting.
    fn stat(counter: &AtomicU64) -> u64 {
        // pmlint: allow(relaxed-ordering) — stat counter; reports tolerate
        // torn cross-counter snapshots.
        counter.load(Ordering::Relaxed)
    }

    /// Average entries per persisted batch so far.
    pub fn avg_batch(&self) -> f64 {
        let b = Self::stat(&self.batches);
        if b == 0 {
            0.0
        } else {
            Self::stat(&self.batched_entries) as f64 / b as f64
        }
    }

    /// Reduces the counters and histograms to the shared
    /// [`obs::StatsReport`] sections (the engine adds its PM section on
    /// top in [`FlatStore::stats_report`]).
    ///
    /// [`FlatStore::stats_report`]: crate::FlatStore::stats_report
    pub fn fill_report(&self, r: &mut obs::StatsReport) {
        r.section("ops")
            .row("puts", Self::stat(&self.puts))
            .row("gets", Self::stat(&self.gets))
            .row("deletes", Self::stat(&self.deletes))
            .row("conflicts_deferred", Self::stat(&self.conflicts_deferred));
        {
            let batch = self.batch_size.snapshot();
            let sec = r.section("batching");
            sec.row("batches", Self::stat(&self.batches))
                .row("batched_entries", Self::stat(&self.batched_entries))
                .row("avg_batch", self.avg_batch());
            if batch.count > 0 {
                sec.row("batch_p50_entries", batch.percentile(50.0))
                    .row("batch_p99_entries", batch.percentile(99.0))
                    .row("batch_max_entries", batch.max);
            }
        }
        {
            let sec = r.section("latency");
            sec.latency_rows("put", &self.put_latency.snapshot());
            sec.latency_rows("get", &self.get_latency.snapshot());
            sec.latency_rows("delete", &self.delete_latency.snapshot());
            sec.latency_rows("range", &self.range_latency.snapshot());
            // The hit/miss split only exists with the read cache enabled.
            let hit = self.get_hit_latency.snapshot();
            let miss = self.get_miss_latency.snapshot();
            if hit.count > 0 || miss.count > 0 {
                sec.latency_rows("get_hit", &hit);
                sec.latency_rows("get_miss", &miss);
            }
        }
        {
            let depth = self.inflight_depth.snapshot();
            let sec = r.section("session");
            sec.latency_rows("completion", &self.completion_latency.snapshot());
            if depth.count > 0 {
                sec.row("inflight_p50", depth.percentile(50.0))
                    .row("inflight_p99", depth.percentile(99.0))
                    .row("inflight_max", depth.max);
            }
        }
        if self.breakdown.spans() > 0 {
            self.breakdown.fill_section(r.section("latency_breakdown"));
        }
        r.section("maintenance")
            .row("gc_chunks", Self::stat(&self.gc_chunks))
            .row("gc_relocated", Self::stat(&self.gc_relocated))
            .row("checkpoints", Self::stat(&self.checkpoints));
    }
}
