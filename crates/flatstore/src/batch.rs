//! Horizontal-batching machinery and engine-shared state (paper §3.3).

use racecheck::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use racecheck::sync::Arc;
use std::cell::UnsafeCell;
use std::collections::HashMap;
use std::time::Instant;

use oplog::ChunkUsage;
use parking_lot::Mutex;
use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmem::PmAddr;

use oplog::LogEntry;

use crate::tuner::BatchTuner;

/// Sentinel meaning "batch append failed" in a [`Completion`].
const FAILED: u64 = u64::MAX;

/// The durable-address hand-off between the leader that persisted a log
/// entry and the core that posted it.
#[derive(Debug, Default)]
pub(crate) struct Completion {
    /// 0 = pending; `u64::MAX` = failed; otherwise the entry's PM address
    /// (entry addresses are always ≥ the first chunk's entry area, never 0).
    addr: AtomicU64,
    /// Replication watermark gating the client ack: `(core << 48) | seq`
    /// of the ship batch that carried this op, 0 = not replicated. Written
    /// by the leader *before* [`fulfil`](Self::fulfil) (whose `Release`
    /// store publishes it) and read by the owner core's ack gate.
    repl: AtomicU64,
    /// Traced ops only — leader-side stage stamps (ns, 0 = unset),
    /// written before [`fulfil`](Self::fulfil) like `repl` so the owner
    /// core reads them race-free after a successful `poll`: when the
    /// leader collected the posted entry, when the batched append
    /// returned, and when the replication sink accepted the batch.
    collected_ns: AtomicU64,
    persisted_ns: AtomicU64,
    shipped_ns: AtomicU64,
}

impl Completion {
    pub fn new() -> Arc<Completion> {
        Arc::new(Completion::default())
    }

    pub fn fulfil(&self, addr: PmAddr) {
        self.addr.store(addr.offset(), Ordering::Release);
    }

    pub fn fail(&self) {
        self.addr.store(FAILED, Ordering::Release);
    }

    /// `None` while pending; `Some(Ok(addr))` once persisted.
    pub fn poll(&self) -> Option<Result<PmAddr, ()>> {
        match self.addr.load(Ordering::Acquire) {
            0 => None,
            FAILED => Some(Err(())),
            a => Some(Ok(PmAddr(a))),
        }
    }

    /// Records the ship-batch watermark this op's ack must wait for.
    pub fn set_repl(&self, core: usize, seq: u64) {
        debug_assert!(core < 1 << 16 && seq >> 48 == 0);
        let watermark = ((core as u64) << 48) | seq;
        // pmlint: allow(relaxed-ordering) — written by the leader before
        // `fulfil`'s Release store on `addr`, read only after `poll`'s
        // Acquire observed it (racecheck `completion_model`).
        self.repl.store(watermark, Ordering::Relaxed);
    }

    /// The `(leader core, ship seq)` watermark, if this op was replicated.
    pub fn repl(&self) -> Option<(usize, u64)> {
        // pmlint: allow(relaxed-ordering) — ordered after the leader's
        // stores by `poll`'s Acquire on `addr` (racecheck `completion_model`).
        match self.repl.load(Ordering::Relaxed) {
            0 => None,
            v => Some(((v >> 48) as usize, v & ((1 << 48) - 1))),
        }
    }

    /// Leader stamps for a traced op; call before [`fulfil`](Self::fulfil)
    /// (`shipped_ns` is 0 when the batch was not shipped).
    pub fn set_stage_stamps(&self, collected_ns: u64, persisted_ns: u64, shipped_ns: u64) {
        let stamps = [
            (&self.collected_ns, collected_ns),
            (&self.persisted_ns, persisted_ns),
            (&self.shipped_ns, shipped_ns),
        ];
        for (cell, ns) in stamps {
            // pmlint: allow(relaxed-ordering) — published to the owner core
            // by `fulfil`'s Release store on `addr` (racecheck
            // `completion_model`).
            cell.store(ns, Ordering::Relaxed);
        }
    }

    /// `(collected, persisted, shipped)` stamps (0 = unset), valid after
    /// [`poll`](Self::poll) returned `Some`.
    pub fn stage_stamps(&self) -> (u64, u64, u64) {
        // pmlint: allow(relaxed-ordering) — ordered after the leader's
        // stamp stores by `poll`'s Acquire on `addr` (racecheck
        // `completion_model`).
        let stamp = |cell: &AtomicU64| cell.load(Ordering::Relaxed);
        (
            stamp(&self.collected_ns),
            stamp(&self.persisted_ns),
            stamp(&self.shipped_ns),
        )
    }
}

/// A log entry posted to a request pool, awaiting a leader.
pub(crate) struct Posted {
    pub entry: LogEntry,
    pub completion: Arc<Completion>,
    /// Whether the posting core carries a span for this op — tells the
    /// leader to publish stage stamps through the completion.
    pub traced: bool,
}

/// One member's bounded SPSC publish list: the owner core is the only
/// producer, and whichever leader holds this list's consumer token is
/// the only consumer. `head`/`tail` are monotonic cursors into a
/// power-of-two slot ring; occupancy is `tail - head`.
///
/// The happens-before protocol (racecheck `publish_list_model`):
/// * producer → consumer: the slot write is published by the `Release`
///   store on `tail` and observed through the consumer's `Acquire` load;
/// * consumer → producer: the slot vacate is published by the `Release`
///   store on `head`, so a producer that sees the freed capacity via its
///   `Acquire` load may reuse the slot;
/// * consumer → consumer: successive leaders hand the list over through
///   the token's `Acquire` CAS / `Release` clear in [`Group::collect`].
pub(crate) struct PublishList {
    slots: Box<[UnsafeCell<Option<Posted>>]>,
    mask: u64,
    head: AtomicU64,
    tail: AtomicU64,
}

// SAFETY: the slot cells are only touched under the SPSC protocol above —
// one producer (the owner core, structurally: `post` takes the poster's
// own slot) and one consumer at a time (guarded by the per-list token in
// `Group`), with every hand-off ordered by a Release/Acquire edge.
unsafe impl Send for PublishList {}
// SAFETY: as above.
unsafe impl Sync for PublishList {}

impl PublishList {
    fn new(capacity: usize) -> PublishList {
        let capacity = capacity.next_power_of_two();
        let mut slots = Vec::with_capacity(capacity);
        slots.resize_with(capacity, || UnsafeCell::new(None));
        PublishList {
            slots: slots.into_boxed_slice(),
            mask: capacity as u64 - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// Producer side: one slot store + one cursor publish. Returns the
    /// record back when the ring is full (the caller persists its own
    /// batch instead — bounded memory beats blocking on a leader).
    fn push(&self, posted: Posted) -> Result<(), Posted> {
        // pmlint: allow(relaxed-ordering) — producer-private cursor: only
        // this core ever stores `tail`, so its own last value is current.
        let t = self.tail.load(Ordering::Relaxed);
        // Acquire pairs with the consumer's Release on `head`: observing
        // the freed capacity also orders us after its slot `take`.
        if t.wrapping_sub(self.head.load(Ordering::Acquire)) > self.mask {
            return Err(posted);
        }
        // SAFETY: sole producer (own slot), and the capacity check above
        // proved index `t` is vacated — ordered by the Acquire on `head`.
        unsafe { *self.slots[(t & self.mask) as usize].get() = Some(posted) };
        self.tail.store(t.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Consumer side (caller must hold this list's token): takes every
    /// published record, returning how many. Wait-free — one Acquire
    /// load bounds the sweep.
    fn drain(&self, out: &mut Vec<Posted>) -> usize {
        // pmlint: allow(relaxed-ordering) — consumer cursor: only a token
        // holder stores `head`, and the token's Acquire CAS in
        // `Group::collect` ordered us after the previous holder's store.
        let h = self.head.load(Ordering::Relaxed);
        let t = self.tail.load(Ordering::Acquire);
        let mut i = h;
        while i != t {
            // SAFETY: `h..t` was published by the producer's Release on
            // `tail` before our Acquire read of it, and no other consumer
            // can run (token held).
            let taken = unsafe { (*self.slots[(i & self.mask) as usize].get()).take() };
            // pmlint: allow(no-unwrap) — SPSC invariant: every published
            // index holds the record stored before its tail publish.
            out.push(taken.expect("published slot filled"));
            i = i.wrapping_add(1);
        }
        self.head.store(t, Ordering::Release);
        t.wrapping_sub(h) as usize
    }

    /// Whether the list has published entries right now. Advisory (the
    /// caller need not hold the token): feeds the tuner's backlog signal.
    fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) == self.tail.load(Ordering::Acquire)
    }
}

/// One horizontal-batching group, rebuilt as a flat-combining publish
/// fabric (paper Figure 5, minus every mutex): per-member SPSC
/// [`PublishList`]s replace the locked pools, and the group lock shrinks
/// to per-list CAS-claimed consumer tokens, so leader election is
/// wait-free and two leaders can sweep disjoint lists concurrently.
pub(crate) struct Group {
    lists: Vec<PublishList>,
    /// Per-list consumer tokens: `true` while some leader owns the list.
    tokens: Vec<AtomicBool>,
    /// Entries posted but not yet collected (cheap emptiness check).
    pub pending: AtomicUsize,
    /// Adaptive controller ([`Config::adaptive`]); `None` keeps the
    /// static sweep (every leader spans the whole group).
    ///
    /// [`Config::adaptive`]: crate::Config::adaptive
    tuner: Option<Arc<BatchTuner>>,
}

impl Group {
    pub fn new(members: usize, list_capacity: usize) -> Arc<Group> {
        Self::with_tuner(members, list_capacity, None)
    }

    pub fn with_tuner(
        members: usize,
        list_capacity: usize,
        tuner: Option<Arc<BatchTuner>>,
    ) -> Arc<Group> {
        let mut lists = Vec::with_capacity(members);
        lists.resize_with(members, || PublishList::new(list_capacity));
        let mut tokens = Vec::with_capacity(members);
        tokens.resize_with(members, || AtomicBool::new(false));
        Arc::new(Group {
            lists,
            tokens,
            pending: AtomicUsize::new(0),
            tuner,
        })
    }

    /// The adaptive controller, when this group runs in adaptive mode.
    pub fn tuner(&self) -> Option<&Arc<BatchTuner>> {
        self.tuner.as_ref()
    }

    /// Posts an entry to `slot`'s publish list: one slot store, one
    /// cursor publish, one pending bump — no locks. `Err` returns the
    /// record when the list is full; the caller self-persists.
    pub fn post(&self, slot: usize, posted: Posted) -> Result<(), Posted> {
        self.lists[slot].push(posted)?;
        self.pending.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// The sweep span of a leader at `slot`: the whole group statically,
    /// or its current effective subgroup under the tuner.
    fn sweep_range(&self, slot: usize) -> std::ops::Range<usize> {
        match &self.tuner {
            None => 0..self.lists.len(),
            Some(t) => {
                let eff = t.eff().max(1);
                let base = slot - slot % eff;
                base..(base + eff).min(self.lists.len())
            }
        }
    }

    /// The leader's steal (wait-free): claims each list in the sweep
    /// range via its token CAS — skipping lists another leader holds —
    /// and drains what it wins. With `hold`, won tokens are kept (and
    /// returned) so the caller can pin followers out until after the
    /// flush (NaiveHb, Figure 4c); otherwise each token is released as
    /// soon as its list is drained (PipelinedHb's early release,
    /// Figure 4d). Also returns how many drained entries came off the
    /// leader's *own* list — the tuner's skew signal (`fill - own` is the
    /// batch's stolen count).
    pub fn collect(&self, slot: usize, hold: bool, out: &mut Vec<Posted>) -> (Vec<usize>, usize) {
        let mut held = Vec::new();
        let mut drained = 0;
        let mut own = 0;
        for s in self.sweep_range(slot) {
            // Acquire on success orders this sweep after the previous
            // holder's head store.
            if self.tokens[s]
                // pmlint: allow(relaxed-ordering) — failure load only: a
                // lost CAS skips the held list, touching nothing it guards
                // (racecheck: held_tokens_fence_out_other_leaders).
                .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
                .is_err()
            {
                continue;
            }
            let n = self.lists[s].drain(out);
            drained += n;
            if s == slot {
                own = n;
            }
            if hold {
                held.push(s);
            } else {
                self.tokens[s].store(false, Ordering::Release);
            }
        }
        if drained > 0 {
            self.pending.fetch_sub(drained, Ordering::Release);
        }
        (held, own)
    }

    /// Whether work is still published inside `slot`'s sweep range — the
    /// tuner's backlog signal. Scoped to the subgroup on purpose: under a
    /// narrowed sweep, other subgroups' lists are their own leaders'
    /// business, and counting them would read as permanent congestion.
    pub fn backlog(&self, slot: usize) -> bool {
        self.sweep_range(slot).any(|s| !self.lists[s].is_empty())
    }

    /// Releases tokens kept by a `hold` collect (the Release store is
    /// the hand-off edge to the next leader's Acquire CAS).
    pub fn release(&self, held: &[usize]) {
        for &s in held {
            self.tokens[s].store(false, Ordering::Release);
        }
    }
}

/// Stripes in the [`UsageTable`] (power of two).
const USAGE_STRIPES: usize = 16;

/// Engine-wide per-chunk liveness accounting. Log entries of one core are
/// persisted into whichever group member led the batch, so dead-entry
/// notifications cross log boundaries; this shared table replaces the
/// per-log accounting for the engine.
///
/// The map is striped by chunk index: every batch append and dead-entry
/// note from every core lands here, and one global lock was the last
/// shared mutex on the write path. A chunk's record lives in exactly one
/// stripe, so per-chunk reads and updates keep the single-map semantics;
/// only [`for_each`](Self::for_each)'s iteration order changes, which
/// was HashMap-arbitrary already (consumers sort or don't care).
#[derive(Debug)]
pub(crate) struct UsageTable {
    stripes: Box<[Mutex<HashMap<u64, ChunkUsage>>]>,
}

impl UsageTable {
    pub fn new() -> Arc<UsageTable> {
        let mut stripes = Vec::with_capacity(USAGE_STRIPES);
        stripes.resize_with(USAGE_STRIPES, || Mutex::new(HashMap::new()));
        Arc::new(UsageTable {
            stripes: stripes.into_boxed_slice(),
        })
    }

    /// The stripe owning `chunk` (a chunk-base offset).
    fn stripe(&self, chunk: u64) -> &Mutex<HashMap<u64, ChunkUsage>> {
        &self.stripes[(chunk / CHUNK_SIZE) as usize & (USAGE_STRIPES - 1)]
    }

    pub fn note_appended(&self, chunk: PmAddr, n: u32) {
        self.stripe(chunk.offset())
            .lock()
            .entry(chunk.offset())
            .or_default()
            .total += n;
    }

    pub fn note_dead(&self, entry_addr: PmAddr) {
        let chunk = oplog::OpLog::chunk_of(entry_addr);
        if let Some(u) = self.stripe(chunk.offset()).lock().get_mut(&chunk.offset()) {
            u.dead = (u.dead + 1).min(u.total);
        }
    }

    pub fn usage(&self, chunk: PmAddr) -> ChunkUsage {
        self.stripe(chunk.offset())
            .lock()
            .get(&chunk.offset())
            .copied()
            .unwrap_or_default()
    }

    /// Replaces the record for a relocated-to chunk and drops the victim's.
    /// The two chunks may live in different stripes; the locks are taken
    /// strictly one after the other (never nested), so stripe order can't
    /// deadlock.
    pub fn on_cleaned(&self, victim: PmAddr, target: Option<(PmAddr, u32)>) {
        self.stripe(victim.offset()).lock().remove(&victim.offset());
        if let Some((t, live)) = target {
            self.stripe(t.offset())
                .lock()
                .entry(t.offset())
                .or_default()
                .total += live;
        }
    }

    /// Visits every `(chunk_base, total, dead)` triple (snapshot
    /// serialization).
    pub fn for_each(&self, f: &mut dyn FnMut(u64, u32, u32)) {
        for stripe in self.stripes.iter() {
            for (chunk, u) in stripe.lock().iter() {
                f(*chunk, u.total, u.dead);
            }
        }
    }

    /// Restores one chunk's accounting (snapshot load).
    pub fn restore(&self, chunk: u64, total: u32, dead: u32) {
        self.stripe(chunk)
            .lock()
            .insert(chunk, ChunkUsage { total, dead });
    }
}

/// Guards the persistent checkpoint-valid flag: the log cleaner must
/// invalidate a checkpoint (durably) before relocating any entry, or the
/// checkpoint's entry addresses could go stale (paper §3.5 + §3.4
/// interaction).
pub(crate) struct CkptGuard {
    pm: Arc<pmem::PmRegion>,
    armed: std::sync::atomic::AtomicBool,
    lock: Mutex<()>,
}

impl CkptGuard {
    pub fn new(pm: Arc<pmem::PmRegion>) -> Arc<CkptGuard> {
        Arc::new(CkptGuard {
            pm,
            armed: std::sync::atomic::AtomicBool::new(false),
            lock: Mutex::new(()),
        })
    }

    /// A checkpoint just became valid.
    pub fn arm(&self) {
        self.armed.store(true, Ordering::Release);
    }

    /// Durably clears the checkpoint flag (idempotent, cheap when unarmed).
    pub fn invalidate(&self) {
        if !self.armed.load(Ordering::Acquire) {
            return;
        }
        let _g = self.lock.lock();
        if self.armed.swap(false, Ordering::AcqRel) {
            crate::superblock::Superblock::new(&self.pm).set_ckpt_valid(false);
        }
    }
}

/// Per-owner-core tombstone tracking: key → (version, tombstone entry
/// address). Needed so a new Put to a deleted key continues the version
/// sequence and so the cleaner can judge tombstone liveness.
pub(crate) struct DeletedTable {
    shards: Vec<Mutex<HashMap<u64, (u32, PmAddr)>>>,
}

impl DeletedTable {
    pub fn new(ncores: usize) -> Arc<DeletedTable> {
        let mut shards = Vec::with_capacity(ncores);
        shards.resize_with(ncores, || Mutex::new(HashMap::new()));
        Arc::new(DeletedTable { shards })
    }

    pub fn get(&self, core: usize, key: u64) -> Option<(u32, PmAddr)> {
        self.shards[core].lock().get(&key).copied()
    }

    pub fn insert(&self, core: usize, key: u64, version: u32, addr: PmAddr) {
        self.shards[core].lock().insert(key, (version, addr));
    }

    pub fn remove(&self, core: usize, key: u64) -> Option<(u32, PmAddr)> {
        self.shards[core].lock().remove(&key)
    }

    /// The cleaner relocated a tombstone: repoint it if still current.
    pub fn cas_addr(&self, core: usize, key: u64, version: u32, old: PmAddr, new: PmAddr) -> bool {
        let mut m = self.shards[core].lock();
        match m.get_mut(&key) {
            Some(v) if *v == (version, old) => {
                v.1 = new;
                true
            }
            _ => false,
        }
    }

    pub fn for_each_of_core(&self, core: usize, f: &mut dyn FnMut(u64, u32, PmAddr)) {
        for (k, (ver, addr)) in self.shards[core].lock().iter() {
            f(*k, *ver, *addr);
        }
    }
}

/// Chunks reclaimed by the cleaner sit here for a grace period before
/// re-entering the pool, so concurrent readers holding pre-CAS entry
/// addresses never observe recycled memory (RAMCloud-style epoch
/// protection, simplified to a time-based grace window).
pub(crate) struct Quarantine {
    chunks: Mutex<Vec<(Instant, PmAddr)>>,
    grace_ms: u64,
}

impl Quarantine {
    pub fn new(grace_ms: u64) -> Arc<Quarantine> {
        Arc::new(Quarantine {
            chunks: Mutex::new(Vec::new()),
            grace_ms,
        })
    }

    pub fn push(&self, chunk: PmAddr) {
        self.chunks.lock().push((Instant::now(), chunk));
    }

    /// Returns matured chunks to the pool; call periodically.
    pub fn release(&self, mgr: &ChunkManager) -> u32 {
        let mut released = 0;
        let mut chunks = self.chunks.lock();
        chunks.retain(|(t, c)| {
            if t.elapsed().as_millis() as u64 >= self.grace_ms {
                let _ = mgr.return_raw_chunk(*c);
                released += 1;
                false
            } else {
                true
            }
        });
        released
    }

    /// Releases everything regardless of age (shutdown/quiesced paths).
    pub fn drain(&self, mgr: &ChunkManager) {
        for (_, c) in self.chunks.lock().drain(..) {
            let _ = mgr.return_raw_chunk(c);
        }
    }
}

/// Engine-wide activity counters (all monotonic) and latency/batch-size
/// histograms.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Completed Put operations.
    pub puts: AtomicU64,
    /// Completed Get operations.
    pub gets: AtomicU64,
    /// Completed Delete operations.
    pub deletes: AtomicU64,
    /// Batches persisted by leaders.
    pub batches: AtomicU64,
    /// Log entries persisted across all batches.
    pub batched_entries: AtomicU64,
    /// Requests deferred by the conflict queue.
    pub conflicts_deferred: AtomicU64,
    /// Chunks reclaimed by the cleaner.
    pub gc_chunks: AtomicU64,
    /// Entries relocated by the cleaner.
    pub gc_relocated: AtomicU64,
    /// Checkpoints taken (paper §3.5).
    pub checkpoints: AtomicU64,
    /// Client-observed Put latency (ns, recorded by [`StoreHandle`]).
    ///
    /// [`StoreHandle`]: crate::StoreHandle
    pub put_latency: obs::LogHistogram,
    /// Client-observed Get latency (ns).
    pub get_latency: obs::LogHistogram,
    /// Server-side Get service latency for read-cache hits (ns, recorded
    /// on the owner core; excludes fabric round-trip time).
    pub get_hit_latency: obs::LogHistogram,
    /// Server-side Get service latency for read-cache misses served from
    /// the log (ns).
    pub get_miss_latency: obs::LogHistogram,
    /// Client-observed Delete latency (ns).
    pub delete_latency: obs::LogHistogram,
    /// Client-observed Range latency (ns).
    pub range_latency: obs::LogHistogram,
    /// Entries per persisted batch, recorded by the group leader.
    pub batch_size: obs::LogHistogram,
    /// Session pipeline occupancy sampled at each submit (the blocking
    /// handle always records 1).
    pub inflight_depth: obs::LogHistogram,
    /// Submit-to-completion latency per pipelined operation (ns).
    pub completion_latency: obs::LogHistogram,
    /// Per-stage causal latency breakdown of sampled traces
    /// ([`Config::trace_sample`]), including the end-to-end distribution
    /// and the batch-amortized persist cost.
    ///
    /// [`Config::trace_sample`]: crate::Config::trace_sample
    pub breakdown: obs::StageSet,
}

impl EngineStats {
    /// Reads one monotone stat counter for reporting.
    fn stat(counter: &AtomicU64) -> u64 {
        // pmlint: allow(relaxed-ordering) — stat counter; reports tolerate
        // torn cross-counter snapshots.
        counter.load(Ordering::Relaxed)
    }

    /// Average entries per persisted batch so far.
    pub fn avg_batch(&self) -> f64 {
        let b = Self::stat(&self.batches);
        if b == 0 {
            0.0
        } else {
            Self::stat(&self.batched_entries) as f64 / b as f64
        }
    }

    /// Reduces the counters and histograms to the shared
    /// [`obs::StatsReport`] sections (the engine adds its PM section on
    /// top in [`FlatStore::stats_report`]).
    ///
    /// [`FlatStore::stats_report`]: crate::FlatStore::stats_report
    pub fn fill_report(&self, r: &mut obs::StatsReport) {
        r.section("ops")
            .row("puts", Self::stat(&self.puts))
            .row("gets", Self::stat(&self.gets))
            .row("deletes", Self::stat(&self.deletes))
            .row("conflicts_deferred", Self::stat(&self.conflicts_deferred));
        {
            let batch = self.batch_size.snapshot();
            let sec = r.section("batching");
            sec.row("batches", Self::stat(&self.batches))
                .row("batched_entries", Self::stat(&self.batched_entries))
                .row("avg_batch", self.avg_batch());
            if batch.count > 0 {
                sec.row("batch_p50_entries", batch.percentile(50.0))
                    .row("batch_p99_entries", batch.percentile(99.0))
                    .row("batch_max_entries", batch.max);
            }
        }
        {
            let sec = r.section("latency");
            sec.latency_rows("put", &self.put_latency.snapshot());
            sec.latency_rows("get", &self.get_latency.snapshot());
            sec.latency_rows("delete", &self.delete_latency.snapshot());
            sec.latency_rows("range", &self.range_latency.snapshot());
            // The hit/miss split only exists with the read cache enabled.
            let hit = self.get_hit_latency.snapshot();
            let miss = self.get_miss_latency.snapshot();
            if hit.count > 0 || miss.count > 0 {
                sec.latency_rows("get_hit", &hit);
                sec.latency_rows("get_miss", &miss);
            }
        }
        {
            let depth = self.inflight_depth.snapshot();
            let sec = r.section("session");
            sec.latency_rows("completion", &self.completion_latency.snapshot());
            if depth.count > 0 {
                sec.row("inflight_p50", depth.percentile(50.0))
                    .row("inflight_p99", depth.percentile(99.0))
                    .row("inflight_max", depth.max);
            }
        }
        if self.breakdown.spans() > 0 {
            self.breakdown.fill_section(r.section("latency_breakdown"));
        }
        r.section("maintenance")
            .row("gc_chunks", Self::stat(&self.gc_chunks))
            .row("gc_relocated", Self::stat(&self.gc_relocated))
            .row("checkpoints", Self::stat(&self.checkpoints));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn posted(key: u64) -> Posted {
        Posted {
            // pmlint: allow(no-unwrap) — tiny inline value in a test.
            entry: LogEntry::put_inline(key, 1, vec![7]).expect("inline fits"),
            completion: Completion::new(),
            traced: false,
        }
    }

    #[test]
    fn publish_list_is_fifo_and_bounded() {
        let g = Group::new(1, 4);
        for k in 0..4 {
            assert!(g.post(0, posted(k)).is_ok());
        }
        // Ring full: the record comes back instead of blocking.
        let bounced = g.post(0, posted(99)).expect_err("ring full");
        assert_eq!(bounced.entry.key, 99);
        assert_eq!(g.pending.load(Ordering::Acquire), 4);

        let mut out = Vec::new();
        let (held, own) = g.collect(0, false, &mut out);
        assert!(held.is_empty());
        assert_eq!(own, 4, "everything drained came off the leader's list");
        let keys: Vec<u64> = out.iter().map(|p| p.entry.key).collect();
        assert_eq!(keys, vec![0, 1, 2, 3], "steal preserves post order");
        assert_eq!(g.pending.load(Ordering::Acquire), 0);

        // Freed capacity is visible to the producer again.
        assert!(g.post(0, posted(5)).is_ok());
    }

    #[test]
    fn held_tokens_fence_out_other_leaders() {
        let g = Group::new(2, 8);
        assert!(g.post(0, posted(1)).is_ok());
        assert!(g.post(1, posted(2)).is_ok());
        let mut first = Vec::new();
        let (held, own) = g.collect(0, true, &mut first);
        assert_eq!(held.len(), 2);
        assert_eq!(first.len(), 2);
        assert_eq!(own, 1, "one entry was the leader's own, one stolen");

        // While held, another leader's sweep wins nothing — even for
        // freshly posted work.
        assert!(g.post(0, posted(3)).is_ok());
        let mut second = Vec::new();
        assert!(g.collect(1, false, &mut second).0.is_empty());
        assert!(second.is_empty());

        g.release(&held);
        assert!(g.collect(1, false, &mut second).0.is_empty());
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].entry.key, 3);
    }

    #[test]
    fn adaptive_sweep_spans_only_the_effective_subgroup() {
        let tuner = BatchTuner::new(4, 2, 8);
        let g = Group::with_tuner(4, 8, Some(tuner));
        for slot in 0..4 {
            assert!(g.post(slot, posted(slot as u64)).is_ok());
        }
        // eff = 2: leader at slot 0 sweeps lists {0, 1}, slot 2 sweeps
        // {2, 3}.
        let mut low = Vec::new();
        g.collect(0, false, &mut low);
        let mut keys: Vec<u64> = low.iter().map(|p| p.entry.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![0, 1]);
        let mut high = Vec::new();
        g.collect(2, false, &mut high);
        let mut keys: Vec<u64> = high.iter().map(|p| p.entry.key).collect();
        keys.sort_unstable();
        assert_eq!(keys, vec![2, 3]);
    }

    /// The striped table must stay observation-equivalent to the single
    /// global map it replaced.
    #[test]
    fn usage_table_matches_unstriped_model() {
        let table = UsageTable::new();
        let mut model: HashMap<u64, ChunkUsage> = HashMap::new();
        let chunk = |i: u64| PmAddr(i * CHUNK_SIZE);
        // Spread over more chunks than stripes so every stripe is hit.
        for i in 0..64u64 {
            let n = (i % 5 + 1) as u32;
            table.note_appended(chunk(i), n);
            model.entry(chunk(i).offset()).or_default().total += n;
        }
        for i in (0..64u64).step_by(3) {
            // `note_dead` maps an entry address to its chunk base.
            let addr = PmAddr(chunk(i).offset() + 64);
            table.note_dead(addr);
            let u = model.get_mut(&chunk(i).offset()).expect("appended");
            u.dead = (u.dead + 1).min(u.total);
        }
        table.on_cleaned(chunk(9), Some((chunk(70), 2)));
        model.remove(&chunk(9).offset());
        model.entry(chunk(70).offset()).or_default().total += 2;
        table.restore(chunk(80).offset(), 10, 4);
        model.insert(chunk(80).offset(), ChunkUsage { total: 10, dead: 4 });

        for (&c, &u) in model.iter() {
            assert_eq!(table.usage(PmAddr(c)), u, "chunk {c:#x}");
        }
        assert_eq!(table.usage(chunk(9)), ChunkUsage::default());
        let mut dumped: Vec<(u64, u32, u32)> = Vec::new();
        table.for_each(&mut |c, t, d| dumped.push((c, t, d)));
        dumped.sort_unstable();
        let mut expect: Vec<(u64, u32, u32)> =
            model.iter().map(|(&c, u)| (c, u.total, u.dead)).collect();
        expect.sort_unstable();
        assert_eq!(dumped, expect);
    }
}
