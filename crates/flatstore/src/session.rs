//! Pipelined client sessions over the FlatRPC fabric.
//!
//! A [`Session`] is the paper's client view of FlatRPC: it owns a
//! `ClientPort` (one request ring into every server core plus one
//! response ring out of the agent core) and keeps up to
//! `pipeline_depth` operations in flight. Submitting returns a
//! [`Ticket`] immediately; completions are harvested out of order with
//! [`Session::poll_completions`] or awaited with [`Session::wait`].
//! Horizontal batching feeds on this concurrency: every in-flight
//! operation is a log entry a leader can steal into its batch.

use racecheck::sync::atomic::{AtomicBool, Ordering};
use racecheck::sync::Arc;
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::Instant;

use flatrpc::{clock, Envelope};
use obs::{Sampler, Span, SpanCtx, Stage};

use crate::batch::EngineStats;
use crate::error::StoreError;
use crate::flight::FlightRegistry;
use crate::request::{Op, OpReq, Reply, StoreClientPort, StoreFabric};

/// Engine state every session (and the blocking handle) hangs off.
pub(crate) struct EngineShared {
    pub fabric: Arc<StoreFabric>,
    pub ncores: usize,
    /// Max in-flight operations per session ([`Config::pipeline_depth`]).
    ///
    /// [`Config::pipeline_depth`]: crate::Config::pipeline_depth
    pub depth: usize,
    pub stats: Arc<EngineStats>,
    /// Causal-trace sampling rate each session seeds its [`Sampler`]
    /// with ([`Config::trace_sample`]).
    ///
    /// [`Config::trace_sample`]: crate::Config::trace_sample
    pub trace_sample: u64,
    /// Per-core flight recorder rings (always on; dumped on panic).
    pub flight: Arc<FlightRegistry>,
    /// Set once the workers have exited; sessions then fail fast instead
    /// of spinning on rings nobody drains.
    pub stop: AtomicBool,
}

impl EngineShared {
    pub fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// Bounded spin-then-yield-then-sleep backoff for the session's poll
/// loops.
///
/// A hot busy-poll burns a full client core while waiting and, on an
/// oversubscribed host, steals cycles from the very worker threads it is
/// waiting on; sleeping immediately would add wake-up latency to every
/// completion. The ladder escalates instead: a short `spin_loop` burst
/// (completions usually land within a batch flush), then scheduler
/// yields, then exponentially growing sleeps capped at
/// [`SLEEP_CAP_US`](Backoff::SLEEP_CAP_US) so even a long stall polls
/// frequently enough to keep tail latency bounded. Any progress resets
/// the ladder to fully responsive.
pub(crate) struct Backoff {
    step: u32,
}

impl Backoff {
    /// Steps spent in `spin_loop` before yielding.
    const SPIN: u32 = 64;
    /// Further steps spent in `yield_now` before sleeping.
    const YIELD: u32 = 192;
    /// First sleep duration; doubles each step.
    const SLEEP_BASE_US: u64 = 5;
    /// Longest sleep between polls.
    const SLEEP_CAP_US: u64 = 200;

    pub fn new() -> Backoff {
        Backoff { step: 0 }
    }

    /// Restores full responsiveness after progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// The sleep this step takes, in µs — 0 while still spinning or
    /// yielding.
    fn sleep_us(step: u32) -> u64 {
        let Some(exp) = step.checked_sub(Self::SPIN + Self::YIELD) else {
            return 0;
        };
        (Self::SLEEP_BASE_US << exp.min(16)).min(Self::SLEEP_CAP_US)
    }

    /// One step of waiting; escalates each call until [`reset`](Self::reset).
    pub fn wait(&mut self) {
        if self.step < Self::SPIN {
            std::hint::spin_loop();
        } else if self.step < Self::SPIN + Self::YIELD {
            std::thread::yield_now();
        } else {
            std::thread::sleep(std::time::Duration::from_micros(Self::sleep_us(self.step)));
        }
        self.step = self.step.saturating_add(1);
    }
}

/// Identifies one submitted operation within its [`Session`].
///
/// Tickets are session-local: a ticket from one session is meaningless to
/// another.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(u64);

/// A pipelined client connection to a running store.
///
/// Obtained from [`FlatStore::session`] or [`StoreHandle::session`]; each
/// session attaches its own `ClientPort` to the fabric and may move to any
/// thread. Submission never blocks on persistence — only on the pipeline
/// being full (`pipeline_depth` ops outstanding) or a request ring being
/// out of credits, and both stalls absorb completions while they wait.
///
/// Dropping a session with operations still in flight drains them first
/// (their effects are kept; their results are discarded).
///
/// [`FlatStore::session`]: crate::FlatStore::session
/// [`StoreHandle::session`]: crate::StoreHandle::session
///
/// # Example
///
/// ```
/// use flatstore::prelude::*;
/// use flatstore::FlatStore;
///
/// let store = FlatStore::create(
///     Config::builder().pm_bytes(64 << 20).ncores(2).group_size(2).build()?,
/// )?;
/// let mut session = store.session()?;
/// let tickets: Vec<_> = (0..32u64)
///     .map(|k| session.submit(Op::put(k, b"v")))
///     .collect::<Result<_, _>>()?;
/// for t in tickets {
///     assert_eq!(session.wait(t)?, Reply::Put(Ok(())));
/// }
/// # store.shutdown()?;
/// # Ok::<(), flatstore::StoreError>(())
/// ```
pub struct Session {
    shared: Arc<EngineShared>,
    port: StoreClientPort,
    next_seq: u64,
    /// Data operations in flight: seq → submission time.
    inflight: HashMap<u64, Instant>,
    /// Control requests (barrier/cursor) awaiting their ack.
    pending_control: HashSet<u64>,
    /// Completed but unharvested results.
    ready: VecDeque<(Ticket, Reply)>,
    /// Decides which submissions carry a causal span.
    sampler: Sampler,
    /// Completed spans awaiting [`drain_spans`](Session::drain_spans);
    /// bounded to [`SPAN_KEEP`](Session::SPAN_KEEP), oldest dropped.
    spans: VecDeque<Span>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("client", &self.port.id())
            .field("in_flight", &self.inflight.len())
            .finish()
    }
}

impl Session {
    /// Attaches a fresh client port to the live fabric.
    pub(crate) fn attach(shared: Arc<EngineShared>) -> Session {
        let port = shared.fabric.attach_client();
        Session::with_port(shared, port)
    }

    pub(crate) fn with_port(shared: Arc<EngineShared>, port: StoreClientPort) -> Session {
        let sampler = Sampler::new(shared.trace_sample);
        Session {
            shared,
            port,
            next_seq: 1,
            inflight: HashMap::new(),
            pending_control: HashSet::new(),
            ready: VecDeque::new(),
            sampler,
            spans: VecDeque::new(),
        }
    }

    /// Most completed spans kept for [`drain_spans`](Session::drain_spans)
    /// before the oldest are discarded.
    const SPAN_KEEP: usize = 4096;

    /// Operations submitted but not yet harvested as completions.
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }

    /// The pipeline depth this session submits up to.
    pub fn pipeline_depth(&self) -> usize {
        self.shared.depth
    }

    fn stopped(&self) -> bool {
        self.shared.stopped()
    }

    /// Drains the response ring into the ready queue; returns whether
    /// anything arrived.
    fn absorb(&mut self) -> bool {
        let mut progressed = false;
        while let Some(mut resp) = self.port.try_recv() {
            progressed = true;
            let span = resp.take_span();
            if self.pending_control.remove(&resp.seq) {
                continue;
            }
            if let Some(submitted) = self.inflight.remove(&resp.seq) {
                let ns = u64::try_from(submitted.elapsed().as_nanos()).unwrap_or(u64::MAX);
                self.shared.stats.completion_latency.record(ns);
                if let Some(mut span) = span {
                    span.stamp(Stage::Delivery, clock::now_ns());
                    self.shared.stats.breakdown.record_span(&span);
                    if self.spans.len() >= Self::SPAN_KEEP {
                        self.spans.pop_front();
                    }
                    self.spans.push_back(*span);
                }
                self.ready.push_back((Ticket(resp.seq), resp.body));
            }
        }
        progressed
    }

    /// Blocks (polling with bounded backoff) until at least one response
    /// arrives.
    fn absorb_blocking(&mut self) -> Result<(), StoreError> {
        let mut backoff = Backoff::new();
        loop {
            if self.absorb() {
                return Ok(());
            }
            if self.stopped() {
                return Err(StoreError::ShuttingDown);
            }
            backoff.wait();
        }
    }

    /// Sends one envelope to `core`, absorbing completions while the ring
    /// is out of credits.
    fn send(&mut self, core: usize, mut env: Envelope<OpReq>) -> Result<(), StoreError> {
        let mut backoff = Backoff::new();
        loop {
            if self.stopped() {
                return Err(StoreError::ShuttingDown);
            }
            if env.span.is_some() {
                // Re-stamped on every retry (same-stage stamps replace), so
                // the span records when the envelope actually entered the
                // ring, not the first refused attempt.
                env.stamp(Stage::ClientEnqueue, clock::now_ns());
            }
            match self.port.send(core, env) {
                Ok(()) => return Ok(()),
                Err(back) => env = back,
            }
            // Ring full: the core is behind — drain our completions so the
            // agent can make progress, then retry.
            if self.absorb() {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
    }

    fn submit_req(&mut self, core: usize, body: OpReq) -> Result<Ticket, StoreError> {
        while self.inflight.len() >= self.shared.depth {
            self.absorb_blocking()?;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        let env = if self.sampler.hit() {
            Envelope::traced(
                seq,
                body,
                SpanCtx {
                    trace_id: (self.port.id() as u64).rotate_left(40) ^ seq,
                    op_seq: seq,
                    origin_tsc: clock::now_ns(),
                },
            )
        } else {
            Envelope::new(seq, body)
        };
        self.send(core, env)?;
        self.inflight.insert(seq, Instant::now());
        self.shared
            .stats
            .inflight_depth
            .record(self.inflight.len() as u64);
        Ok(Ticket(seq))
    }

    fn submit_control(&mut self, core: usize, body: OpReq) -> Result<u64, StoreError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.send(core, Envelope::new(seq, body))?;
        self.pending_control.insert(seq);
        Ok(seq)
    }

    /// Submits one operation, routed to its owning core; the single entry
    /// point every verb goes through.
    ///
    /// Returns a [`Ticket`] immediately; the matching [`Reply`] variant
    /// (`Op::Get` → [`Reply::Get`], …) is harvested later with
    /// [`poll_completions`](Self::poll_completions) or
    /// [`wait`](Self::wait). Blocks only when the pipeline is full
    /// (`pipeline_depth` ops outstanding) or the target ring is out of
    /// credits, absorbing completions while it waits.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped. Per-operation
    /// failures ([`StoreError::EmptyValue`], …) surface in the completed
    /// [`Reply`], not here.
    pub fn submit(&mut self, op: Op) -> Result<Ticket, StoreError> {
        let core = op.home_core(self.shared.ncores);
        self.submit_req(core, op.into_req())
    }

    /// Submits a Put of `value` under `key`, copying the caller's buffer.
    ///
    /// Pre-redesign entry point; prefer
    /// `submit(Op::put(key, value))` ([`Session::submit`]). Kept as a
    /// thin wrapper for existing call sites.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped. Per-operation
    /// failures ([`StoreError::EmptyValue`], …) surface in the completed
    /// [`Reply`].
    pub fn submit_put(&mut self, key: u64, value: impl AsRef<[u8]>) -> Result<Ticket, StoreError> {
        self.submit(Op::put(key, value))
    }

    /// Submits a Get of `key`.
    ///
    /// Pre-redesign entry point; prefer `submit(Op::Get { key })`
    /// ([`Session::submit`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped.
    pub fn submit_get(&mut self, key: u64) -> Result<Ticket, StoreError> {
        self.submit(Op::Get { key })
    }

    /// Submits a Delete of `key`.
    ///
    /// Pre-redesign entry point; prefer `submit(Op::Delete { key })`
    /// ([`Session::submit`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped.
    pub fn submit_delete(&mut self, key: u64) -> Result<Ticket, StoreError> {
        self.submit(Op::Delete { key })
    }

    /// Submits a range scan over `lo..hi` with at most `limit` items
    /// (FlatStore-M/-FF only; FlatStore-H completes with
    /// [`StoreError::RangeUnsupported`]).
    ///
    /// Pre-redesign entry point; prefer
    /// `submit(Op::Range { lo, hi, limit })` ([`Session::submit`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stopped.
    pub fn submit_range(&mut self, lo: u64, hi: u64, limit: usize) -> Result<Ticket, StoreError> {
        self.submit(Op::Range { lo, hi, limit })
    }

    /// Harvests every completion that has arrived, in completion order
    /// (which may differ from submission order across keys).
    pub fn poll_completions(&mut self) -> Vec<(Ticket, Reply)> {
        self.absorb();
        self.ready.drain(..).collect()
    }

    /// Takes the causal spans of completed sampled operations
    /// ([`Config::trace_sample`]), each an ordered stage vector whose
    /// deltas sum to its end-to-end latency. At most the most recent 4096
    /// spans are kept between calls; older ones are dropped silently.
    /// Feed them to [`obs::chrome_trace`] via [`Span::chrome_events`] for
    /// a per-core timeline view.
    ///
    /// [`Config::trace_sample`]: crate::Config::trace_sample
    pub fn drain_spans(&mut self) -> Vec<Span> {
        self.spans.drain(..).collect()
    }

    /// Blocks until `ticket` completes and returns its result. Other
    /// completions harvested while waiting stay queued for
    /// [`poll_completions`](Self::poll_completions).
    ///
    /// # Errors
    ///
    /// [`StoreError::UnknownTicket`] if the ticket was already harvested
    /// (or belongs to another session); [`StoreError::ShuttingDown`] if
    /// the engine stops first.
    pub fn wait(&mut self, ticket: Ticket) -> Result<Reply, StoreError> {
        loop {
            if let Some(i) = self.ready.iter().position(|(t, _)| *t == ticket) {
                // pmlint: allow(no-unwrap) — `i` comes from position() on
                // the same vec two lines up; nothing mutates it in between.
                let (_, result) = self.ready.remove(i).expect("index in bounds");
                return Ok(result);
            }
            if !self.inflight.contains_key(&ticket.0) {
                return Err(StoreError::UnknownTicket);
            }
            self.absorb_blocking()?;
        }
    }

    /// Blocks until everything submitted has completed; returns the
    /// completions harvested (including any already queued).
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stops first.
    pub fn wait_all(&mut self) -> Result<Vec<(Ticket, Reply)>, StoreError> {
        while !self.inflight.is_empty() {
            self.absorb_blocking()?;
        }
        Ok(self.ready.drain(..).collect())
    }

    /// Blocks until every request sent to any core before this call has
    /// fully completed (all cores quiesce). Does not harvest this
    /// session's own completions — they stay queued.
    ///
    /// # Errors
    ///
    /// [`StoreError::ShuttingDown`] if the engine stops first.
    pub fn barrier(&mut self) -> Result<(), StoreError> {
        let mut seqs = Vec::with_capacity(self.shared.ncores);
        for core in 0..self.shared.ncores {
            seqs.push(self.submit_control(core, OpReq::Barrier)?);
        }
        self.await_control(&seqs)
    }

    /// Asks every core to persist its checkpoint cursor and waits for the
    /// acks (engine-internal; callers use `FlatStore::checkpoint`).
    pub(crate) fn ckpt_cursors(&mut self) -> Result<(), StoreError> {
        let mut seqs = Vec::with_capacity(self.shared.ncores);
        for core in 0..self.shared.ncores {
            seqs.push(self.submit_control(core, OpReq::CkptCursor)?);
        }
        self.await_control(&seqs)
    }

    fn await_control(&mut self, seqs: &[u64]) -> Result<(), StoreError> {
        while seqs.iter().any(|s| self.pending_control.contains(s)) {
            self.absorb_blocking()?;
        }
        Ok(())
    }

    /// Tells every core to begin draining and exit (engine-internal;
    /// workers never answer a Shutdown).
    pub(crate) fn send_shutdown_all(&mut self) {
        for core in 0..self.shared.ncores {
            let seq = self.next_seq;
            self.next_seq += 1;
            let mut env = Envelope::new(seq, OpReq::Shutdown);
            loop {
                match self.port.send(core, env) {
                    Ok(()) => break,
                    Err(back) => env = back,
                }
                self.absorb();
                std::thread::yield_now();
            }
        }
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // Drain in-flight work so the agent never blocks pushing into a
        // ring nobody reads. If the engine already stopped, the rings are
        // dead and there is nothing to wait for.
        let mut backoff = Backoff::new();
        while (!self.inflight.is_empty() || !self.pending_control.is_empty()) && !self.stopped() {
            if self.absorb() {
                backoff.reset();
            } else {
                backoff.wait();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Backoff;

    #[test]
    fn ladder_escalates_spin_yield_sleep() {
        // Spinning and yielding sleep nothing.
        assert_eq!(Backoff::sleep_us(0), 0);
        assert_eq!(Backoff::sleep_us(Backoff::SPIN), 0);
        assert_eq!(Backoff::sleep_us(Backoff::SPIN + Backoff::YIELD - 1), 0);
        // First sleep is the base, then doubles.
        let s0 = Backoff::SPIN + Backoff::YIELD;
        assert_eq!(Backoff::sleep_us(s0), Backoff::SLEEP_BASE_US);
        assert_eq!(Backoff::sleep_us(s0 + 1), 2 * Backoff::SLEEP_BASE_US);
        assert_eq!(Backoff::sleep_us(s0 + 2), 4 * Backoff::SLEEP_BASE_US);
    }

    #[test]
    fn sleep_is_capped_and_never_overflows() {
        let s0 = Backoff::SPIN + Backoff::YIELD;
        for step in [s0 + 6, s0 + 16, s0 + 63, s0 + 1000, u32::MAX] {
            assert_eq!(Backoff::sleep_us(step), Backoff::SLEEP_CAP_US);
        }
    }

    #[test]
    fn reset_restores_spinning() {
        let mut b = Backoff::new();
        for _ in 0..(Backoff::SPIN + Backoff::YIELD) {
            b.wait(); // never sleeps: all spin/yield steps
        }
        assert_eq!(Backoff::sleep_us(b.step), Backoff::SLEEP_BASE_US);
        b.reset();
        assert_eq!(b.step, 0);
        assert_eq!(Backoff::sleep_us(b.step), 0);
    }
}
