//! Operation payloads carried over the FlatRPC fabric.
//!
//! A client session wraps each [`OpReq`] in a [`flatrpc::Envelope`] whose
//! `seq` is the session-local ticket number; the server core echoes the
//! same `seq` back on the [`OpResult`] envelope so the session can match
//! completions to submissions in any order.

use flatrpc::Envelope;

use crate::error::StoreError;

/// A request written into a server core's message buffer.
pub(crate) enum OpReq {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: u64,
        /// The value (moved, not re-copied, into the log entry).
        value: Vec<u8>,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// The key.
        key: u64,
    },
    /// Range scan over `lo..hi`, at most `limit` items.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
        /// Max items returned.
        limit: usize,
    },
    /// Replies once every request this core received before it has fully
    /// completed (tests and benchmarks use this to quiesce).
    Barrier,
    /// Records this core's current log tail as its checkpoint cursor
    /// (persisted), then replies. Only sent by `FlatStore::checkpoint`.
    CkptCursor,
    /// Begin draining; the worker exits once quiet (never answered).
    Shutdown,
}

impl OpReq {
    /// The key a conflict-queue check applies to, if any.
    pub fn conflict_key(&self) -> Option<u64> {
        match self {
            OpReq::Put { key, .. } | OpReq::Get { key } | OpReq::Delete { key } => Some(*key),
            _ => None,
        }
    }
}

/// The outcome of one submitted operation, matched to its
/// [`Ticket`](crate::Ticket) by the session.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum OpResult {
    /// Outcome of a Put.
    Put(Result<(), StoreError>),
    /// Outcome of a Get: the value if present.
    Get(Result<Option<Vec<u8>>, StoreError>),
    /// Outcome of a Delete: whether the key existed.
    Delete(Result<bool, StoreError>),
    /// Outcome of a Range scan.
    Range(Result<Vec<(u64, Vec<u8>)>, StoreError>),
    /// Acknowledgement of a control request (barrier, checkpoint cursor);
    /// never surfaced through the public completion API.
    Control,
}

impl OpResult {
    /// Flattens this result to `Ok(())`/`Err`, for callers that only care
    /// whether the operation failed.
    pub fn status(&self) -> Result<(), StoreError> {
        match self {
            OpResult::Put(r) => r.clone(),
            OpResult::Get(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            OpResult::Delete(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            OpResult::Range(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            OpResult::Control => Ok(()),
        }
    }
}

/// Request envelope on the wire.
pub(crate) type FabReq = Envelope<OpReq>;
/// Response envelope on the wire.
pub(crate) type FabResp = Envelope<OpResult>;
/// The engine's fabric instantiation.
pub(crate) type StoreFabric = flatrpc::Fabric<FabReq, FabResp>;
/// One server core's fabric endpoint.
pub(crate) type StoreServerCore = flatrpc::ServerCore<FabReq, FabResp>;
/// One client's fabric endpoint.
pub(crate) type StoreClientPort = flatrpc::ClientPort<FabReq, FabResp>;
