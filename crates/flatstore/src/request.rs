//! Operation payloads carried over the FlatRPC fabric.
//!
//! The public surface is the [`Op`]/[`Reply`] pair: a client builds an
//! [`Op`] and hands it to [`Session::submit`](crate::Session::submit),
//! which routes it to the owning core and wraps the internal [`OpReq`] in
//! a [`flatrpc::Envelope`] whose `seq` is the session-local ticket
//! number; the server core echoes the same `seq` back on the [`Reply`]
//! envelope so the session can match completions to submissions in any
//! order. `OpReq` additionally carries the engine-internal control verbs
//! (barrier, checkpoint cursor, shutdown) that never appear in `Op`.

use flatrpc::Envelope;

use crate::error::StoreError;
use crate::shard::core_of;

/// One data operation, the single argument of
/// [`Session::submit`](crate::Session::submit).
///
/// Each variant mirrors a [`Reply`] variant: a submitted `Op::Get`
/// completes as `Reply::Get`, and so on. The enum is `#[non_exhaustive]`
/// so later PRs can add verbs (e.g. compare-and-swap) without a breaking
/// release; match with a wildcard arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Op {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: u64,
        /// The value (moved, not re-copied, into the log entry).
        value: Vec<u8>,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// The key.
        key: u64,
    },
    /// Range scan over `lo..hi`, at most `limit` items (FlatStore-M/-FF
    /// only; FlatStore-H completes with
    /// [`StoreError::RangeUnsupported`]).
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
        /// Max items returned.
        limit: usize,
    },
}

impl Op {
    /// Convenience constructor: a Put of `value` under `key`, copying the
    /// caller's buffer (the one copy on the write path).
    pub fn put(key: u64, value: impl AsRef<[u8]>) -> Op {
        Op::Put {
            key,
            value: value.as_ref().to_vec(),
        }
    }

    /// The key this operation routes by: the touched key for point ops,
    /// the inclusive lower bound for range scans. Cluster routers use
    /// this the way the engine's internal `home_core` shards cores — one
    /// routing rule for every verb (a Range additionally fans out across
    /// groups; its routing key only picks the coordinator).
    pub fn routing_key(&self) -> u64 {
        match self {
            Op::Put { key, .. } | Op::Get { key } | Op::Delete { key } => *key,
            Op::Range { lo, .. } => *lo,
        }
    }

    /// The server core this operation routes to (range scans route by
    /// their lower bound; the owning core walks the shared tree).
    pub(crate) fn home_core(&self, ncores: usize) -> usize {
        match self {
            Op::Put { key, .. } | Op::Get { key } | Op::Delete { key } => core_of(*key, ncores),
            Op::Range { lo, .. } => core_of(*lo, ncores),
        }
    }

    /// Lowers the public verb to the wire request.
    pub(crate) fn into_req(self) -> OpReq {
        match self {
            Op::Put { key, value } => OpReq::Put { key, value },
            Op::Get { key } => OpReq::Get { key },
            Op::Delete { key } => OpReq::Delete { key },
            Op::Range { lo, hi, limit } => OpReq::Range { lo, hi, limit },
        }
    }
}

/// A request written into a server core's message buffer.
pub(crate) enum OpReq {
    /// Store `value` under `key`.
    Put {
        /// The key.
        key: u64,
        /// The value (moved, not re-copied, into the log entry).
        value: Vec<u8>,
    },
    /// Read `key`.
    Get {
        /// The key.
        key: u64,
    },
    /// Delete `key`.
    Delete {
        /// The key.
        key: u64,
    },
    /// Range scan over `lo..hi`, at most `limit` items.
    Range {
        /// Inclusive lower bound.
        lo: u64,
        /// Exclusive upper bound.
        hi: u64,
        /// Max items returned.
        limit: usize,
    },
    /// Replies once every request this core received before it has fully
    /// completed (tests and benchmarks use this to quiesce).
    Barrier,
    /// Records this core's current log tail as its checkpoint cursor
    /// (persisted), then replies. Only sent by `FlatStore::checkpoint`.
    CkptCursor,
    /// Begin draining; the worker exits once quiet (never answered).
    Shutdown,
}

impl OpReq {
    /// The key a conflict-queue check applies to, if any.
    pub fn conflict_key(&self) -> Option<u64> {
        match self {
            OpReq::Put { key, .. } | OpReq::Get { key } | OpReq::Delete { key } => Some(*key),
            _ => None,
        }
    }
}

/// The outcome of one submitted [`Op`], matched to its
/// [`Ticket`](crate::Ticket) by the session.
///
/// Each variant mirrors an [`Op`] variant. Also reachable under its
/// pre-redesign name [`OpResult`], a plain type alias — existing matches
/// on `OpResult::Put(..)` keep compiling unchanged.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Reply {
    /// Outcome of a Put.
    Put(Result<(), StoreError>),
    /// Outcome of a Get: the value if present.
    Get(Result<Option<Vec<u8>>, StoreError>),
    /// Outcome of a Delete: whether the key existed.
    Delete(Result<bool, StoreError>),
    /// Outcome of a Range scan.
    Range(Result<Vec<(u64, Vec<u8>)>, StoreError>),
    /// Acknowledgement of a control request (barrier, checkpoint cursor);
    /// never surfaced through the public completion API.
    Control,
}

/// Pre-redesign name of [`Reply`], kept as an alias so existing call
/// sites (`OpResult::Get(..)` patterns included) compile unchanged.
pub type OpResult = Reply;

impl Reply {
    /// Flattens this result to `Ok(())`/`Err`, for callers that only care
    /// whether the operation failed.
    pub fn status(&self) -> Result<(), StoreError> {
        match self {
            Reply::Put(r) => r.clone(),
            Reply::Get(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            Reply::Delete(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            Reply::Range(r) => r.as_ref().map(|_| ()).map_err(Clone::clone),
            Reply::Control => Ok(()),
        }
    }
}

/// Request envelope on the wire.
pub(crate) type FabReq = Envelope<OpReq>;
/// Response envelope on the wire.
pub(crate) type FabResp = Envelope<OpResult>;
/// The engine's fabric instantiation.
pub(crate) type StoreFabric = flatrpc::Fabric<FabReq, FabResp>;
/// One server core's fabric endpoint.
pub(crate) type StoreServerCore = flatrpc::ServerCore<FabReq, FabResp>;
/// One client's fabric endpoint.
pub(crate) type StoreClientPort = flatrpc::ClientPort<FabReq, FabResp>;
