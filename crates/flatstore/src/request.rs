//! Client requests and the clonable store handle.

use crossbeam::channel::{bounded, Sender};

use crate::error::StoreError;

pub(crate) type PutResp = Sender<Result<(), StoreError>>;
pub(crate) type GetResp = Sender<Result<Option<Vec<u8>>, StoreError>>;
pub(crate) type DelResp = Sender<Result<bool, StoreError>>;
pub(crate) type RangeResp = Sender<Result<Vec<(u64, Vec<u8>)>, StoreError>>;
pub(crate) type BarrierResp = Sender<()>;

/// A request delivered to a server core's channel (standing in for the
/// paper's FlatRPC message buffers).
pub(crate) enum Request {
    Put {
        key: u64,
        value: Vec<u8>,
        resp: PutResp,
    },
    Get {
        key: u64,
        resp: GetResp,
    },
    Delete {
        key: u64,
        resp: DelResp,
    },
    Range {
        lo: u64,
        hi: u64,
        limit: usize,
        resp: RangeResp,
    },
    /// Replies once every request this core received before it has fully
    /// completed (tests and benchmarks use this to quiesce).
    Barrier {
        resp: BarrierResp,
    },
    /// Records this core's current log tail as its checkpoint cursor
    /// (persisted), then replies. Only sent by `FlatStore::checkpoint`.
    CkptCursor {
        resp: BarrierResp,
    },
    /// Begin draining; the worker exits once quiet.
    Shutdown,
}

impl Request {
    /// The key a conflict-queue check applies to, if any.
    pub fn conflict_key(&self) -> Option<u64> {
        match self {
            Request::Put { key, .. } | Request::Get { key, .. } | Request::Delete { key, .. } => {
                Some(*key)
            }
            _ => None,
        }
    }
}

/// Creates a response channel pair for a blocking client call.
pub(crate) fn resp_channel<T>() -> (Sender<T>, crossbeam::channel::Receiver<T>) {
    bounded(1)
}
