//! Index-value packing and the out-of-log record format.

use pmem::{PmAddr, PmRegion};

/// Bits of the packed value holding the entry address (1 TB of PM).
const ADDR_BITS: u32 = 42;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;

/// Packs a 20-bit version and a log-entry address into the opaque `u64`
/// stored in the volatile index ("an array of Keys and co-located Versions …
/// and an array of pointers pointing to the log entries", paper §4.1).
#[inline]
pub(crate) fn pack(version: u32, addr: PmAddr) -> u64 {
    debug_assert!(addr.offset() <= ADDR_MASK);
    ((version as u64 & 0xF_FFFF) << ADDR_BITS) | addr.offset()
}

/// Inverse of [`pack`].
#[inline]
pub(crate) fn unpack(v: u64) -> (u32, PmAddr) {
    (((v >> ADDR_BITS) & 0xF_FFFF) as u32, PmAddr(v & ADDR_MASK))
}

/// Writes an out-of-log record `(v_len, value)` into `block` (paper §3.2
/// step 1) and flushes it. The caller issues the fence.
pub(crate) fn write_record(pm: &PmRegion, block: PmAddr, value: &[u8]) {
    pm.write_u64(block, value.len() as u64);
    pm.write(block + 8, value);
    pm.flush(block, 8 + value.len());
}

/// Reads an out-of-log record back.
pub(crate) fn read_record(pm: &PmRegion, block: PmAddr) -> Vec<u8> {
    let len = pm.read_u64(block) as usize;
    pm.read_vec(block + 8, len)
}

/// Bytes a record of `value_len` occupies in an allocator block.
#[inline]
pub(crate) fn record_size(value_len: usize) -> u64 {
    8 + value_len as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_round_trips() {
        for (v, a) in [(0u32, 64u64), (1, 4096), (0xF_FFFF, ADDR_MASK)] {
            let packed = pack(v, PmAddr(a));
            assert_eq!(unpack(packed), (v, PmAddr(a)));
        }
    }

    #[test]
    fn version_is_masked() {
        let (v, _) = unpack(pack(0xABC_DEF0, PmAddr(64)));
        assert_eq!(v, 0xABC_DEF0 & 0xF_FFFF);
    }

    #[test]
    fn record_round_trips() {
        let pm = PmRegion::new(4096);
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        write_record(&pm, PmAddr(256), &data);
        pm.fence();
        assert_eq!(read_record(&pm, PmAddr(256)), data);
        assert_eq!(record_size(200), 208);
    }
}
