//! The pluggable volatile index (paper §3.1: "FlatStore can use any
//! existing index solutions").

use std::sync::Arc;

use indexes::{Cceh, FastFair, Index, Mode, OrderedIndex};
use masstree::Masstree;
use parking_lot::Mutex;
use pmem::{PmAddr, PmRegion};

use crate::config::IndexKind;
use crate::error::StoreError;

/// The DRAM-resident index shared by the server cores.
///
/// * `PerCoreHash` — FlatStore-H: one lock-free-by-partitioning CCEH
///   instance per core; core `i` only ever touches instance `i`, so the
///   mutexes are uncontended (they exist to satisfy the borrow checker, not
///   the paper's design, which has no locks here either).
/// * `SharedMasstree` — FlatStore-M: one concurrent Masstree.
/// * `SharedTree` — FlatStore-FF: one volatile FAST&FAIR behind a lock
///   (the original shares a single instance between cores; its internal
///   fine-grained locking is approximated by a structure-wide lock).
pub(crate) enum VolatileIndex {
    PerCoreHash(Vec<Mutex<Cceh>>),
    SharedMasstree(Masstree),
    SharedTree(Mutex<FastFair>),
}

impl VolatileIndex {
    /// Builds the index for `kind` with a DRAM arena of `dram_bytes`
    /// (per core for `Hash`).
    pub fn build(kind: IndexKind, ncores: usize, dram_bytes: usize) -> Result<Self, StoreError> {
        match kind {
            IndexKind::Hash => {
                let mut shards = Vec::with_capacity(ncores);
                for _ in 0..ncores {
                    // Each core gets its own DRAM region (PmRegion used as
                    // plain memory; Volatile mode elides every flush).
                    let dram = Arc::new(PmRegion::new(dram_bytes));
                    shards.push(Mutex::new(Cceh::new(
                        dram,
                        PmAddr(0),
                        dram_bytes as u64,
                        Mode::Volatile,
                        2,
                    )?));
                }
                Ok(VolatileIndex::PerCoreHash(shards))
            }
            IndexKind::Masstree => Ok(VolatileIndex::SharedMasstree(Masstree::new())),
            IndexKind::FastFair => {
                let dram = Arc::new(PmRegion::new(dram_bytes));
                Ok(VolatileIndex::SharedTree(Mutex::new(FastFair::new(
                    dram,
                    PmAddr(0),
                    dram_bytes as u64,
                    Mode::Volatile,
                )?)))
            }
        }
    }

    pub fn insert(&self, core: usize, key: u64, value: u64) -> Result<Option<u64>, StoreError> {
        match self {
            VolatileIndex::PerCoreHash(shards) => Ok(shards[core].lock().insert(key, value)?),
            VolatileIndex::SharedMasstree(t) => Ok(t.insert(key, value)),
            VolatileIndex::SharedTree(t) => Ok(t.lock().insert(key, value)?),
        }
    }

    pub fn get(&self, core: usize, key: u64) -> Option<u64> {
        match self {
            VolatileIndex::PerCoreHash(shards) => shards[core].lock().get(key),
            VolatileIndex::SharedMasstree(t) => t.get(key),
            VolatileIndex::SharedTree(t) => t.lock().get(key),
        }
    }

    pub fn remove(&self, core: usize, key: u64) -> Option<u64> {
        match self {
            VolatileIndex::PerCoreHash(shards) => shards[core].lock().remove(key),
            VolatileIndex::SharedMasstree(t) => t.remove(key),
            VolatileIndex::SharedTree(t) => t.lock().remove(key),
        }
    }

    /// The cleaner's pointer CAS (paper §3.4).
    pub fn cas(&self, core: usize, key: u64, old: u64, new: u64) -> bool {
        match self {
            VolatileIndex::PerCoreHash(shards) => shards[core].lock().cas(key, old, new),
            VolatileIndex::SharedMasstree(t) => t.cas(key, old, new),
            VolatileIndex::SharedTree(t) => t.lock().cas(key, old, new),
        }
    }

    /// Ordered scan; `None` for the hash index.
    pub fn range(
        &self,
        lo: u64,
        hi: u64,
        f: &mut dyn FnMut(u64, u64) -> bool,
    ) -> Result<(), StoreError> {
        match self {
            VolatileIndex::PerCoreHash(_) => Err(StoreError::RangeUnsupported),
            VolatileIndex::SharedMasstree(t) => {
                t.range(lo, hi, f);
                Ok(())
            }
            VolatileIndex::SharedTree(t) => {
                t.lock().range(lo, hi, f);
                Ok(())
            }
        }
    }

    /// Total keys across shards.
    pub fn len(&self) -> usize {
        match self {
            VolatileIndex::PerCoreHash(shards) => shards.iter().map(|s| s.lock().len()).sum(),
            VolatileIndex::SharedMasstree(t) => t.len(),
            VolatileIndex::SharedTree(t) => t.lock().len(),
        }
    }

    /// Visits every `(key, value)` pair owned by `core` (snapshot
    /// serialization). For the per-core hash this walks core `core`'s
    /// shard; for shared indexes core 0 walks everything and other cores
    /// contribute nothing.
    pub fn for_each_of_core(&self, core: usize, f: &mut dyn FnMut(u64, u64)) {
        match self {
            VolatileIndex::PerCoreHash(shards) => shards[core].lock().for_each(f),
            VolatileIndex::SharedMasstree(t) => {
                if core == 0 {
                    t.range(0, u64::MAX, &mut |k, v| {
                        f(k, v);
                        true
                    });
                }
            }
            VolatileIndex::SharedTree(t) => {
                if core == 0 {
                    t.lock().range(0, u64::MAX, &mut |k, v| {
                        f(k, v);
                        true
                    });
                }
            }
        }
    }
}
