//! Dynamic persistency-ordering checker for the simulated PM event stream.
//!
//! FlatStore's contribution lives in flush/fence placement: compacted log
//! entries, pointer-after-payload publication, batched `clwb`s. A missing
//! flush before a fence — or a log-tail pointer persisted before its entry —
//! silently passes functional tests and only (maybe) surfaces as a flaky
//! crash-sim failure. This crate catches that class of bug mechanically, the
//! way `pmemcheck`/XFDetector do on real hardware: it replays the
//! [`PmEvent`](pmem::PmEvent) trace a [`PmRegion`](pmem::PmRegion) records into a
//! per-cacheline state machine and reports every ordering violation with
//! the rule, cacheline and event index.
//!
//! # Rules
//!
//! | rule | fires when |
//! |------|------------|
//! | [`Rule::UnpersistedAtCommit`] | a [`PmEvent::CommitPoint`](pmem::PmEvent) passes a cacheline that is dirty, or flushed but not yet fenced |
//! | [`Rule::RedundantFlush`] | a flush targets a line with no store since its last flush (wasted `clwb`, repeat-flush stall on hardware) |
//! | [`Rule::WriteAfterFlush`] | a store lands on a line that was flushed but not yet fenced (the in-flight `clwb` races the new data) |
//! | [`Rule::UselessFence`] | a fence is issued with zero flushes outstanding since the previous fence |
//!
//! Commit points are placed by the durability owners themselves:
//! `oplog::OpLog` marks one after persisting its tail pointer, and the
//! `flatstore` engine after publishing a checkpoint or clean shutdown. The
//! checker then verifies the claim those markers make.
//!
//! # Example: catching a dropped flush
//!
//! ```
//! use pmem::PmAddr;
//! use pmcheck::{checked_region, Rule};
//!
//! // A correct put: payload persisted before the commit point.
//! let region = checked_region(4096);
//! let pm = region.pm();
//! pm.write(PmAddr(0), b"payload");
//! pm.persist(PmAddr(0), 7);
//! pm.commit_point();
//! region.assert_clean("correct put");
//!
//! // The bug class pmcheck exists for: flush dropped, tail still persisted.
//! let region = checked_region(4096);
//! let pm = region.pm();
//! pm.write(PmAddr(0), b"payload"); // never flushed!
//! pm.write(PmAddr(64), b"tail");
//! pm.persist(PmAddr(64), 4);
//! pm.commit_point();
//! let v = region.violations();
//! assert_eq!(v[0].rule, Rule::UnpersistedAtCommit);
//! ```

mod checker;
mod harness;
mod report;

pub use checker::{Checker, Rule, Violation};
pub use harness::{checked_region, CheckedRegion};
pub use report::RuleCounts;
