//! The per-cacheline persistency state machine.

use std::collections::HashMap;
use std::fmt;

use pmem::{PmEvent, CACHELINE};

/// The persistency-ordering rules the checker enforces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A [`PmEvent::CommitPoint`] passed a cacheline holding a store that
    /// was not yet flushed **and** fenced. The durability claim the commit
    /// point makes is false: a crash at that instant loses acknowledged
    /// data (the classic "log tail persisted before its entry" bug).
    UnpersistedAtCommit,
    /// A flush targeted a line with no store since its last flush. Wasted
    /// `clwb` bandwidth, and on Optane the repeat-flush stall (~800 ns).
    RedundantFlush,
    /// A store landed on a line that was flushed but not yet fenced. The
    /// in-flight `clwb` races the new data: what reaches the media is
    /// nondeterministic, so the earlier flush guarantees nothing.
    WriteAfterFlush,
    /// A fence was issued with zero flushes outstanding since the previous
    /// fence — it orders nothing and burns a pipeline drain.
    UselessFence,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 4] = [
        Rule::UnpersistedAtCommit,
        Rule::RedundantFlush,
        Rule::WriteAfterFlush,
        Rule::UselessFence,
    ];

    /// Stable kebab-case name (used in reports and by `pmlint` escapes).
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnpersistedAtCommit => "unpersisted-at-commit",
            Rule::RedundantFlush => "redundant-flush",
            Rule::WriteAfterFlush => "write-after-flush",
            Rule::UselessFence => "useless-fence",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One persistency-ordering violation found in an event stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The rule that fired.
    pub rule: Rule,
    /// Index of the offending event within the stream fed to the checker.
    pub index: usize,
    /// Cacheline index (byte offset / 64) the violation concerns, if any
    /// ([`Rule::UselessFence`] has no line).
    pub line: Option<u64>,
    /// The commit epoch in force, for [`Rule::UnpersistedAtCommit`].
    pub epoch: Option<u64>,
    /// Human-readable explanation with addresses and event indices.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] event #{}", self.rule, self.index)?;
        if let Some(line) = self.line {
            write!(f, " line {} (addr {:#x})", line, line * CACHELINE)?;
        }
        if let Some(epoch) = self.epoch {
            write!(f, " epoch {epoch}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Per-cacheline persistence state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LineState {
    /// No store since the last flush+fence cycle completed.
    Clean,
    /// Stored to, not yet flushed. Remembers the event index of the
    /// earliest unflushed store for the violation message.
    Dirty { since: usize },
    /// Flushed, fence still pending. Remembers the flush's event index.
    Flushed { at: usize },
}

/// Replays a [`PmEvent`] stream into per-cacheline state machines and
/// records [`Violation`]s.
///
/// The checker is incremental: [`feed`](Checker::feed) may be called many
/// times with successive drains of the same region's trace (the state
/// carries over), or the whole stream can be checked at once with the
/// associated function [`Checker::scan`].
#[derive(Debug, Default)]
pub struct Checker {
    lines: HashMap<u64, LineState>,
    /// Lines currently in `Flushed` state (for O(flushed) fence handling).
    unfenced: Vec<u64>,
    /// Flushes issued since the last fence.
    outstanding: u64,
    /// Events consumed so far (so indices stay global across `feed`s).
    consumed: usize,
    violations: Vec<Violation>,
}

impl Checker {
    /// A fresh checker: all lines clean, no events consumed.
    pub fn new() -> Checker {
        Checker::default()
    }

    /// One-shot scan of a complete event stream.
    pub fn scan(events: &[PmEvent]) -> Vec<Violation> {
        let mut c = Checker::new();
        c.feed(events);
        c.into_violations()
    }

    /// Replays `events`, accumulating state and violations. Event indices
    /// in violations are global: the n-th event ever fed is index n.
    pub fn feed(&mut self, events: &[PmEvent]) {
        for ev in events {
            let index = self.consumed;
            self.consumed += 1;
            match *ev {
                PmEvent::Write { addr, len } => self.on_write(index, addr, len),
                PmEvent::Flush { line } => self.on_flush(index, line),
                PmEvent::Fence => self.on_fence(index),
                PmEvent::Read { .. } => {}
                PmEvent::CommitPoint { epoch } => self.on_commit(index, epoch),
            }
        }
    }

    /// Violations recorded so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Consumes the checker, returning its violations.
    pub fn into_violations(self) -> Vec<Violation> {
        self.violations
    }

    /// Violation totals by rule (the obs/report vocabulary).
    pub fn counts(&self) -> crate::RuleCounts {
        let mut c = crate::RuleCounts::default();
        for v in &self.violations {
            c.add(v.rule);
        }
        c
    }

    fn on_write(&mut self, index: usize, addr: u64, len: u32) {
        if len == 0 {
            return;
        }
        let first = addr / CACHELINE;
        let last = (addr + len as u64 - 1) / CACHELINE;
        for line in first..=last {
            let state = self.lines.entry(line).or_insert(LineState::Clean);
            match *state {
                LineState::Flushed { at } => {
                    self.violations.push(Violation {
                        rule: Rule::WriteAfterFlush,
                        index,
                        line: Some(line),
                        epoch: None,
                        detail: format!(
                            "store at {addr:#x}+{len} overwrites a line flushed at event \
                             #{at} before any fence — the flush guarantees nothing"
                        ),
                    });
                    *state = LineState::Dirty { since: index };
                }
                LineState::Clean => *state = LineState::Dirty { since: index },
                LineState::Dirty { .. } => {} // keep the earliest store index
            }
        }
    }

    fn on_flush(&mut self, index: usize, line: u64) {
        let state = self.lines.entry(line).or_insert(LineState::Clean);
        match *state {
            LineState::Dirty { .. } => {}
            LineState::Clean => {
                self.violations.push(Violation {
                    rule: Rule::RedundantFlush,
                    index,
                    line: Some(line),
                    epoch: None,
                    detail: "flush of a line with no store since its last flush".to_string(),
                });
            }
            LineState::Flushed { at } => {
                self.violations.push(Violation {
                    rule: Rule::RedundantFlush,
                    index,
                    line: Some(line),
                    epoch: None,
                    detail: format!("line already flushed at event #{at}, no store since"),
                });
            }
        }
        if !matches!(*state, LineState::Flushed { .. }) {
            self.unfenced.push(line);
        }
        *state = LineState::Flushed { at: index };
        self.outstanding += 1;
    }

    fn on_fence(&mut self, index: usize) {
        if self.outstanding == 0 {
            self.violations.push(Violation {
                rule: Rule::UselessFence,
                index,
                line: None,
                epoch: None,
                detail: "fence with zero flushes outstanding since the previous fence".to_string(),
            });
        }
        for line in self.unfenced.drain(..) {
            if let Some(state) = self.lines.get_mut(&line) {
                if matches!(*state, LineState::Flushed { .. }) {
                    *state = LineState::Clean;
                }
            }
        }
        self.outstanding = 0;
    }

    fn on_commit(&mut self, index: usize, epoch: u64) {
        let mut offenders: Vec<(u64, LineState)> = self
            .lines
            .iter()
            .filter(|(_, s)| !matches!(s, LineState::Clean))
            .map(|(l, s)| (*l, *s))
            .collect();
        offenders.sort_by_key(|(l, _)| *l);
        for (line, state) in offenders {
            let detail = match state {
                LineState::Dirty { since } => {
                    format!("store at event #{since} reached commit point #{epoch} without a flush")
                }
                LineState::Flushed { at } => {
                    format!("flush at event #{at} reached commit point #{epoch} without a fence")
                }
                LineState::Clean => unreachable!("filtered above"),
            };
            self.violations.push(Violation {
                rule: Rule::UnpersistedAtCommit,
                index,
                line: Some(line),
                epoch: Some(epoch),
                detail,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: fn(u64, u32) -> PmEvent = |addr, len| PmEvent::Write { addr, len };
    const F: fn(u64) -> PmEvent = |line| PmEvent::Flush { line };
    const COMMIT: fn(u64) -> PmEvent = |epoch| PmEvent::CommitPoint { epoch };

    #[test]
    fn clean_protocol_passes() {
        let v = Checker::scan(&[W(0, 64), W(64, 16), F(0), F(1), PmEvent::Fence, COMMIT(1)]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn dirty_line_at_commit_fires() {
        let v = Checker::scan(&[W(0, 8), COMMIT(1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnpersistedAtCommit);
        assert_eq!(v[0].line, Some(0));
        assert_eq!(v[0].epoch, Some(1));
    }

    #[test]
    fn flushed_but_unfenced_at_commit_fires() {
        let v = Checker::scan(&[W(0, 8), F(0), COMMIT(1)]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnpersistedAtCommit);
        assert!(v[0].detail.contains("without a fence"), "{}", v[0].detail);
    }

    #[test]
    fn redundant_flush_fires_for_clean_and_double_flush() {
        let v = Checker::scan(&[F(3)]);
        assert_eq!(v[0].rule, Rule::RedundantFlush);

        let v = Checker::scan(&[W(0, 8), F(0), F(0), PmEvent::Fence]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RedundantFlush);
        assert_eq!(v[0].index, 2);
    }

    #[test]
    fn flush_after_fence_without_new_store_is_redundant() {
        let v = Checker::scan(&[W(0, 8), F(0), PmEvent::Fence, F(0), PmEvent::Fence]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::RedundantFlush);
    }

    #[test]
    fn write_after_flush_before_fence_fires() {
        let v = Checker::scan(&[W(0, 8), F(0), W(8, 8), PmEvent::Fence]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::WriteAfterFlush);
        // ... but re-writing after the fence is a fresh cycle:
        let v = Checker::scan(&[W(0, 8), F(0), PmEvent::Fence, W(8, 8), F(0), PmEvent::Fence]);
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn useless_fence_fires() {
        let v = Checker::scan(&[PmEvent::Fence]);
        assert_eq!(v[0].rule, Rule::UselessFence);
        let v = Checker::scan(&[W(0, 8), F(0), PmEvent::Fence, PmEvent::Fence]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UselessFence);
        assert_eq!(v[0].index, 3);
    }

    #[test]
    fn write_spanning_lines_tracks_both() {
        let v = Checker::scan(&[W(60, 8), F(0), PmEvent::Fence, COMMIT(1)]);
        // line 1 (bytes 64..) was stored to but only line 0 was flushed
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnpersistedAtCommit);
        assert_eq!(v[0].line, Some(1));
    }

    #[test]
    fn reads_are_ignored() {
        let v = Checker::scan(&[PmEvent::Read { addr: 0, len: 64 }]);
        assert!(v.is_empty());
    }

    #[test]
    fn feed_is_incremental_with_global_indices() {
        let mut c = Checker::new();
        c.feed(&[W(0, 8)]);
        c.feed(&[F(0)]);
        c.feed(&[PmEvent::Fence, COMMIT(1)]);
        assert!(c.violations().is_empty(), "{:?}", c.violations());

        let mut c = Checker::new();
        c.feed(&[W(0, 8)]);
        c.feed(&[COMMIT(1)]);
        assert_eq!(c.violations()[0].index, 1, "index global across feeds");
    }

    #[test]
    fn counts_group_by_rule() {
        let mut c = Checker::new();
        c.feed(&[W(0, 8), COMMIT(1), F(9), PmEvent::Fence, PmEvent::Fence]);
        let n = c.counts();
        assert_eq!(n.unpersisted_at_commit, 1);
        assert_eq!(n.redundant_flush, 1);
        assert_eq!(n.useless_fence, 1);
        assert_eq!(n.write_after_flush, 0);
        assert_eq!(n.total(), 3);
    }

    #[test]
    fn violations_render_with_context() {
        let v = Checker::scan(&[W(128, 8), COMMIT(7)]);
        let text = v[0].to_string();
        assert!(text.contains("unpersisted-at-commit"), "{text}");
        assert!(text.contains("line 2"), "{text}");
        assert!(text.contains("epoch 7"), "{text}");
    }
}
