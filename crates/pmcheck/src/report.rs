//! Reporting: violation totals in the shared `obs` report vocabulary.

use crate::checker::{Rule, Violation};

/// Violation totals by rule — the summary a metrics export carries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCounts {
    /// [`Rule::UnpersistedAtCommit`] count.
    pub unpersisted_at_commit: u64,
    /// [`Rule::RedundantFlush`] count.
    pub redundant_flush: u64,
    /// [`Rule::WriteAfterFlush`] count.
    pub write_after_flush: u64,
    /// [`Rule::UselessFence`] count.
    pub useless_fence: u64,
}

impl RuleCounts {
    /// Tallies a slice of violations.
    pub fn from_violations(violations: &[Violation]) -> RuleCounts {
        let mut c = RuleCounts::default();
        for v in violations {
            c.add(v.rule);
        }
        c
    }

    /// Bumps the counter for `rule`.
    pub fn add(&mut self, rule: Rule) {
        match rule {
            Rule::UnpersistedAtCommit => self.unpersisted_at_commit += 1,
            Rule::RedundantFlush => self.redundant_flush += 1,
            Rule::WriteAfterFlush => self.write_after_flush += 1,
            Rule::UselessFence => self.useless_fence += 1,
        }
    }

    /// Total violations across every rule.
    pub fn total(&self) -> u64 {
        self.unpersisted_at_commit
            + self.redundant_flush
            + self.write_after_flush
            + self.useless_fence
    }

    /// Whether no rule fired.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Appends the verdict as rows of `section` (the shared
    /// [`obs::StatsReport`] vocabulary): one row per rule, a total, and a
    /// `verdict` text row (`clean` / `violations`) so JSON/JSONL exports
    /// carry an unambiguous pass/fail signal.
    pub fn fill_section(&self, section: &mut obs::Section) {
        section
            .row(
                "verdict",
                if self.is_clean() {
                    "clean"
                } else {
                    "violations"
                },
            )
            .row("violations_total", self.total())
            .row(Rule::UnpersistedAtCommit.name(), self.unpersisted_at_commit)
            .row(Rule::RedundantFlush.name(), self.redundant_flush)
            .row(Rule::WriteAfterFlush.name(), self.write_after_flush)
            .row(Rule::UselessFence.name(), self.useless_fence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Checker;
    use pmem::PmEvent;

    #[test]
    fn fill_section_carries_the_verdict() {
        let clean = RuleCounts::default();
        let mut r = obs::StatsReport::new("t");
        clean.fill_section(r.section("pmcheck"));
        assert_eq!(
            r.get("pmcheck", "verdict"),
            Some(&obs::Value::Text("clean".into()))
        );
        assert_eq!(
            r.get("pmcheck", "violations_total"),
            Some(&obs::Value::U64(0))
        );

        let v = Checker::scan(&[
            PmEvent::Write { addr: 0, len: 8 },
            PmEvent::CommitPoint { epoch: 1 },
        ]);
        let counts = RuleCounts::from_violations(&v);
        assert!(!counts.is_clean());
        let mut r = obs::StatsReport::new("t");
        counts.fill_section(r.section("pmcheck"));
        assert_eq!(
            r.get("pmcheck", "verdict"),
            Some(&obs::Value::Text("violations".into()))
        );
        assert_eq!(
            r.get("pmcheck", "unpersisted-at-commit"),
            Some(&obs::Value::U64(1))
        );
        // the verdict survives the JSON export round-trip
        let json = r.to_json();
        assert!(json.contains("\"verdict\":\"violations\""), "{json}");
    }
}
