//! Test harness: a traced region paired with an incremental checker.

use std::sync::{Arc, Mutex};

use pmem::PmRegion;

use crate::checker::{Checker, Violation};

/// A crash-tracked, trace-enabled [`PmRegion`] paired with a [`Checker`]
/// that replays everything the region records.
///
/// Tests drive the *real* data-structure code against
/// [`CheckedRegion::pm`] and finish with
/// [`assert_clean`](CheckedRegion::assert_clean) (strict mode: zero
/// violations) or inspect [`violations`](CheckedRegion::violations) when a
/// deliberately buggy sequence is expected to fire.
pub struct CheckedRegion {
    pm: Arc<PmRegion>,
    checker: Mutex<Checker>,
}

/// Creates a [`CheckedRegion`] of `len` bytes: crash tracking on, event
/// tracing on from the very first write, so the checker observes the
/// region's entire life.
///
/// # Panics
///
/// Panics if `len` is zero or not a multiple of the cacheline size (64).
pub fn checked_region(len: usize) -> CheckedRegion {
    let pm = Arc::new(PmRegion::with_crash_tracking(len));
    pm.set_trace(true);
    CheckedRegion {
        pm,
        checker: Mutex::new(Checker::new()),
    }
}

impl CheckedRegion {
    /// The region under test. Hand clones of this `Arc` to the code being
    /// exercised (allocators, logs, engines).
    pub fn pm(&self) -> &Arc<PmRegion> {
        &self.pm
    }

    /// Drains the region's pending trace into the checker. Called
    /// automatically by [`violations`](Self::violations) and
    /// [`assert_clean`](Self::assert_clean); call it directly to bound
    /// trace memory in long runs.
    pub fn sync(&self) {
        let events = self.pm.take_events();
        self.checker
            .lock()
            .expect("checker mutex poisoned")
            .feed(&events);
    }

    /// All violations observed so far (drains pending events first).
    pub fn violations(&self) -> Vec<Violation> {
        self.sync();
        self.checker
            .lock()
            .expect("checker mutex poisoned")
            .violations()
            .to_vec()
    }

    /// Strict mode: panics with a full listing if any rule fired.
    ///
    /// # Panics
    ///
    /// Panics when at least one violation was recorded, printing every
    /// violation with its rule, event index and cacheline.
    pub fn assert_clean(&self, context: &str) {
        let v = self.violations();
        if !v.is_empty() {
            let mut msg = format!(
                "pmcheck: {} persistency violation(s) in `{}`:\n",
                v.len(),
                context
            );
            for violation in &v {
                msg.push_str(&format!("  {violation}\n"));
            }
            panic!("{msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::Rule;
    use pmem::PmAddr;

    #[test]
    fn clean_lifecycle_asserts_clean() {
        let region = checked_region(4096);
        let pm = region.pm();
        pm.write(PmAddr(0), b"hello");
        pm.persist(PmAddr(0), 5);
        pm.commit_point();
        region.assert_clean("clean lifecycle");
    }

    #[test]
    fn violations_survive_incremental_syncs() {
        let region = checked_region(4096);
        let pm = region.pm();
        pm.write(PmAddr(0), b"a");
        region.sync(); // split the stream mid-cycle
        pm.flush(PmAddr(0), 1);
        region.sync();
        pm.fence();
        pm.commit_point();
        region.assert_clean("state carries across syncs");
    }

    #[test]
    #[should_panic(expected = "unpersisted-at-commit")]
    fn assert_clean_panics_with_rule_name() {
        let region = checked_region(4096);
        region.pm().write(PmAddr(0), b"lost");
        region.pm().commit_point();
        region.assert_clean("buggy sequence");
    }

    #[test]
    fn buggy_sequence_reports_through_violations() {
        let region = checked_region(4096);
        region.pm().write(PmAddr(0), b"x");
        region.pm().flush(PmAddr(0), 1);
        region.pm().commit_point(); // fence missing
        let v = region.violations();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, Rule::UnpersistedAtCommit);
    }
}
