//! The checker's core soundness property, tested over random operation
//! sequences: **a checker-clean trace is crash-lossless**. Every sequence
//! whose events produce zero violations must survive `simulate_crash`
//! intact, and — contrapositive — any sequence that loses data at the
//! crash must have been flagged before it.

use std::sync::Arc;

use pmcheck::{Checker, Rule};
use pmem::{PmAddr, PmRegion};
use proptest::prelude::*;

const SLOTS: u64 = 32;
const SLOT_LEN: usize = 64;

/// How one random operation persists (or fails to persist) its write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// flush + fence: the full discipline.
    Persist,
    /// flush issued, fence dropped.
    FlushOnly,
    /// store left in the cache.
    Skip,
}

fn ops() -> impl Strategy<Value = Vec<(u64, u8, Mode)>> {
    let mode = prop_oneof![
        5 => Just(Mode::Persist),
        1 => Just(Mode::FlushOnly),
        1 => Just(Mode::Skip),
    ];
    prop::collection::vec((0u64..SLOTS, 0u8..255, mode), 1..80)
}

/// Applies `ops` to a fresh crash-tracked region, ending with a commit
/// point, and returns the region plus the final value written to each slot.
fn apply(ops: &[(u64, u8, Mode)]) -> (Arc<PmRegion>, Vec<Option<u8>>) {
    let pm = Arc::new(PmRegion::with_crash_tracking(SLOTS as usize * SLOT_LEN));
    pm.set_trace(true);
    let mut mirror = vec![None; SLOTS as usize];
    for &(slot, val, mode) in ops {
        let addr = PmAddr(slot * SLOT_LEN as u64);
        pm.write(addr, &[val; SLOT_LEN]);
        match mode {
            Mode::Persist => pm.persist(addr, SLOT_LEN),
            Mode::FlushOnly => pm.flush(addr, SLOT_LEN),
            Mode::Skip => {}
        }
        mirror[slot as usize] = Some(val);
    }
    pm.commit_point();
    (pm, mirror)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Sequences that follow the full discipline are always checker-clean
    /// and always crash-lossless.
    #[test]
    fn disciplined_sequences_are_clean_and_lossless(
        raw in prop::collection::vec((0u64..SLOTS, 0u8..255), 1..80)
    ) {
        let ops: Vec<_> = raw.iter().map(|&(s, v)| (s, v, Mode::Persist)).collect();
        let (pm, mirror) = apply(&ops);
        let violations = Checker::scan(&pm.take_events());
        prop_assert!(violations.is_empty(), "unexpected violations: {:?}", violations);
        pm.simulate_crash();
        for (slot, want) in mirror.iter().enumerate() {
            if let Some(val) = want {
                let got = pm.read_vec(PmAddr(slot as u64 * SLOT_LEN as u64), SLOT_LEN);
                prop_assert_eq!(&got, &vec![*val; SLOT_LEN], "slot {} lost", slot);
            }
        }
    }

    /// Arbitrary mixes of persisted / half-persisted / skipped writes: if
    /// the checker reports a clean trace the crash must lose nothing, and
    /// whenever the crash does lose acknowledged data, the checker must
    /// have flagged the sequence beforehand.
    #[test]
    fn clean_verdict_implies_crash_losslessness(ops in ops()) {
        let (pm, mirror) = apply(&ops);
        let violations = Checker::scan(&pm.take_events());
        pm.simulate_crash();
        let mut lost = Vec::new();
        for (slot, want) in mirror.iter().enumerate() {
            if let Some(val) = want {
                let got = pm.read_vec(PmAddr(slot as u64 * SLOT_LEN as u64), SLOT_LEN);
                if got != vec![*val; SLOT_LEN] {
                    lost.push(slot);
                }
            }
        }
        if violations.is_empty() {
            prop_assert!(lost.is_empty(), "clean verdict but slots {:?} lost", lost);
        }
        if !lost.is_empty() {
            prop_assert!(
                !violations.is_empty(),
                "slots {:?} lost data with no violation reported",
                lost
            );
        }
    }
}

/// The pinned counterexample from the failing direction: one skipped flush
/// is both flagged by the checker *and* genuinely lossy at the crash. If
/// the checker ever stops firing here, the property above would silently
/// weaken to vacuous truth.
#[test]
fn skipped_flush_counterexample_is_flagged_and_lossy() {
    let ops = [(3u64, 0x5A, Mode::Persist), (7u64, 0xC3, Mode::Skip)];
    let (pm, _) = apply(&ops);
    let violations = Checker::scan(&pm.take_events());
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::UnpersistedAtCommit);
    assert_eq!(violations[0].line, Some(7));

    pm.simulate_crash();
    // The persisted slot survives; the skipped one reverts.
    assert_eq!(pm.read_vec(PmAddr(3 * 64), 64), vec![0x5A; 64]);
    assert_ne!(pm.read_vec(PmAddr(7 * 64), 64), vec![0xC3; 64]);
}
