//! Strict-mode runs of the real persistence paths: the oplog and the full
//! FlatStore engine execute against a traced region and must produce
//! **zero** checker violations. A deliberately buggy fixture (an append
//! that drops the entry flush) proves the checker actually fires on the
//! class of bug these paths are being cleared of.

use std::collections::HashMap;
use std::sync::Arc;

use flatstore::{Config, FlatStore};
use oplog::{LogEntry, OpLog};
use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmcheck::{checked_region, Checker, Rule};
use pmem::{PmAddr, PmRegion};
use workloads::value_bytes;

/// Descriptor area in chunk 0, pool chunks after — the oplog tests' layout,
/// but on a checked (traced) region.
fn checked_log_setup(nchunks: u32) -> (pmcheck::CheckedRegion, Arc<ChunkManager>) {
    let region = checked_region((nchunks as usize + 1) * CHUNK_SIZE as usize);
    let mgr = Arc::new(ChunkManager::format(
        Arc::clone(region.pm()),
        PmAddr(CHUNK_SIZE),
        nchunks,
    ));
    (region, mgr)
}

#[test]
fn oplog_append_paths_are_checker_clean() {
    let (region, mgr) = checked_log_setup(4);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    // Mixed batches: inline payloads, pointer entries, tombstones, and the
    // degenerate single-entry batch.
    for round in 0..20u64 {
        let entries: Vec<_> = (0..64u64)
            .map(|k| match k % 3 {
                0 => LogEntry::put_inline(round * 100 + k, round as u32 + 1, vec![k as u8; 40])
                    .unwrap(),
                1 => LogEntry::put_ptr(round * 100 + k, round as u32 + 1, PmAddr(0x100 * (k + 1))),
                _ => LogEntry::tombstone(round * 100 + k, round as u32 + 1),
            })
            .collect();
        log.append_batch(&entries).unwrap();
        log.append_batch(&entries[..1]).unwrap();
        region.sync(); // bound trace memory; checker state carries over
    }
    region.assert_clean("oplog append_batch");
}

#[test]
fn oplog_recovery_and_cleaning_are_checker_clean() {
    let (region, mgr) = checked_log_setup(6);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();

    // Fill past one chunk so cleaning has a victim; odd keys are
    // overwritten every round so the first chunk accumulates garbage.
    let mut index: HashMap<u64, (u32, PmAddr)> = HashMap::new();
    let mut version = 1u32;
    let mut round = 0u64;
    while log.chunks().len() < 2 {
        let entries: Vec<_> = (0..512u64)
            .map(|k| {
                let key = if k % 2 == 0 { round * 10_000 + k } else { k };
                LogEntry::put_inline(key, version, vec![k as u8; 40]).unwrap()
            })
            .collect();
        let addrs = log.append_batch(&entries).unwrap();
        for (e, a) in entries.iter().zip(&addrs) {
            if let Some((_, old)) = index.insert(e.key, (version, *a)) {
                log.note_dead(old);
            }
        }
        version += 1;
        round += 1;
        region.sync();
    }

    let victim = log.chunks()[0];
    let index_ref = index.clone();
    let relocs = log
        .clean_chunk(victim, |e, addr| {
            index_ref
                .get(&e.key)
                .is_some_and(|(v, a)| *v == e.version && *a == addr)
        })
        .unwrap();
    assert!(!relocs.is_empty(), "cleaning should relocate live entries");
    mgr.return_raw_chunk(victim).unwrap();
    region.assert_clean("oplog clean_chunk");

    // Recovery replays the surviving chain; it must neither trip the
    // checker itself nor lose anything the appends committed.
    let desc = log.desc();
    drop(log);
    let mut recovered = 0usize;
    let _log = OpLog::recover_with(mgr, desc, |_, _| recovered += 1).unwrap();
    assert!(recovered > 0, "recovery should surface surviving entries");
    region.assert_clean("oplog recover_with");
}

#[test]
fn flatstore_lifecycle_is_checker_clean() {
    let cfg = Config::builder()
        .pm_bytes(64 << 20)
        .dram_bytes(8 << 20)
        .ncores(1)
        .group_size(1)
        .crash_tracking(true)
        .build()
        .expect("valid test config");

    // `create` owns its region, so tracing starts at the reopen: the whole
    // open → put/delete → checkpoint → shutdown lifecycle is checked.
    let store = FlatStore::create(cfg.clone()).unwrap();
    for k in 0..64u64 {
        store.put(k, value_bytes(k, 30)).unwrap();
    }
    let pm = store.shutdown().unwrap();

    pm.set_trace(true);
    let store = FlatStore::open(pm, cfg).unwrap();
    for k in 0..256u64 {
        // Inline values and out-of-place (allocator-backed) values both
        // exercise their durability protocols.
        let len = if k % 4 == 0 {
            2048
        } else {
            30 + (k % 40) as usize
        };
        store.put(k, value_bytes(k * 7, len)).unwrap();
    }
    for k in 0..40u64 {
        store.delete(k * 5).unwrap();
    }
    store.barrier();
    store.checkpoint().unwrap();
    for k in 0..256u64 {
        store.get(k).unwrap();
    }
    let pm = store.shutdown().unwrap();

    let violations = Checker::scan(&pm.take_events());
    assert!(
        violations.is_empty(),
        "flatstore lifecycle produced {} violation(s):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  {v}\n"))
            .collect::<String>()
    );
}

/// The seeded-bug fixture: a hand-rolled append that persists the tail
/// pointer *without flushing the entry it publishes* — exactly the
/// pointer-before-payload bug the real `append_batch` is designed to avoid.
/// The checker must flag the entry's cacheline at the commit point.
#[test]
fn dropped_entry_flush_fixture_fires() {
    let pm = Arc::new(PmRegion::with_crash_tracking(4096));
    pm.set_trace(true);

    let entry_at = PmAddr(0x100);
    let tail_at = PmAddr(0);
    // The "log entry" payload.
    pm.write(entry_at, &[0xAB; 48]);
    // BUG: the entry flush is dropped here. Correct code would
    // `pm.flush(entry_at, 48)` before publishing the tail.
    pm.write_u64(tail_at, entry_at.offset() + 48);
    pm.persist(tail_at, 8); // tail pointer flushed + fenced
    pm.commit_point(); // "the batch is durable" — it is not

    let violations = Checker::scan(&pm.take_events());
    assert_eq!(violations.len(), 1, "{violations:?}");
    assert_eq!(violations[0].rule, Rule::UnpersistedAtCommit);
    assert_eq!(violations[0].line, Some(entry_at.offset() / 64));

    // And the claim is real: a crash actually loses the unflushed entry
    // while the tail pointer survives.
    pm.simulate_crash();
    assert_eq!(pm.read_u64(tail_at), entry_at.offset() + 48);
    let mut entry = vec![0u8; 48];
    pm.read(entry_at, &mut entry);
    assert_ne!(entry, vec![0xAB; 48], "unflushed entry must not survive");
}
