//! Bounded rings of trace events.

use std::collections::VecDeque;

/// What a recorded [`Event`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// An interval: `ts_ns .. ts_ns + dur_ns`.
    Span { dur_ns: u64 },
    /// A point in time.
    Instant,
}

/// One trace event. Names are `&'static str` so recording never
/// allocates for the common case; `args` carries small numeric payloads
/// (batch size, entry count, …) into the exported trace.
#[derive(Debug, Clone)]
pub struct Event {
    pub name: &'static str,
    /// Trace category (used for filtering in the viewer).
    pub cat: &'static str,
    /// Start (spans) or occurrence (instants) time in nanoseconds.
    pub ts_ns: u64,
    /// Track the event renders on — the (simulated) core id.
    pub tid: u32,
    pub kind: EventKind,
    pub args: Vec<(&'static str, u64)>,
}

impl Event {
    pub fn span(
        name: &'static str,
        cat: &'static str,
        tid: u32,
        start_ns: u64,
        end_ns: u64,
    ) -> Event {
        Event {
            name,
            cat,
            ts_ns: start_ns,
            tid,
            kind: EventKind::Span {
                dur_ns: end_ns.saturating_sub(start_ns),
            },
            args: Vec::new(),
        }
    }

    pub fn instant(name: &'static str, cat: &'static str, tid: u32, ts_ns: u64) -> Event {
        Event {
            name,
            cat,
            ts_ns,
            tid,
            kind: EventKind::Instant,
            args: Vec::new(),
        }
    }

    /// Attaches a numeric argument (builder-style).
    pub fn arg(mut self, key: &'static str, value: u64) -> Event {
        self.args.push((key, value));
        self
    }
}

/// A bounded event buffer: pushing past capacity drops the *oldest*
/// event and counts the drop, so a long run keeps its most recent
/// window instead of aborting collection.
#[derive(Debug)]
pub struct EventRing {
    buf: VecDeque<Event>,
    cap: usize,
    dropped: u64,
}

impl EventRing {
    /// `cap` is clamped to at least 1.
    pub fn new(cap: usize) -> EventRing {
        let cap = cap.max(1);
        EventRing {
            buf: VecDeque::with_capacity(cap),
            cap,
            dropped: 0,
        }
    }

    pub fn push(&mut self, ev: Event) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Oldest-to-newest iteration.
    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    pub fn into_events(self) -> Vec<Event> {
        self.buf.into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = EventRing::new(3);
        for i in 0..5u64 {
            ring.push(Event::instant("tick", "test", 0, i));
        }
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2);
        let ts: Vec<u64> = ring.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![2, 3, 4], "oldest events evicted first");
    }

    #[test]
    fn span_duration_saturates() {
        let s = Event::span("s", "test", 1, 100, 40);
        assert_eq!(s.kind, EventKind::Span { dur_ns: 0 });
        let s = Event::span("s", "test", 1, 40, 100).arg("n", 7);
        assert_eq!(s.kind, EventKind::Span { dur_ns: 60 });
        assert_eq!(s.args, vec![("n", 7)]);
    }
}
