//! Observability primitives shared by every layer of the repository.
//!
//! The crate is deliberately `std`-only (no external dependencies) and
//! split along the pipeline an observation travels:
//!
//! * [`counter`] / [`hist`] — lock-free accumulation: monotonic
//!   [`Counter`]s and power-of-two-bucketed [`LogHistogram`]s whose
//!   snapshots answer p50/p95/p99/p999/max queries.
//! * [`ring`] — a bounded [`EventRing`] of typed spans and instants,
//!   drop-oldest on overflow, used by the simulator to record
//!   virtual-time activity per core.
//! * [`trace`] — renders events as Chrome trace-event JSON, loadable in
//!   `chrome://tracing` or Perfetto, one track per `tid`.
//! * [`report`] — [`StatsReport`], a sectioned name/value table with an
//!   aligned `Display` form and JSON / JSONL serialisers, so every crate
//!   prints statistics the same way.
//! * [`json`] — a minimal JSON value model and parser, used by tests to
//!   validate exporter output without external crates.
//! * [`span`] — causal request tracing: per-op [`SpanCtx`] + stage
//!   stamps, the 1-in-N [`Sampler`], per-stage breakdown histograms
//!   ([`StageSet`]) and the per-core [`FlightRing`] flight recorder.
//!
//! Virtual time and host time both fit: everything takes plain `u64`
//! nanoseconds and never reads a clock itself.

pub mod counter;
pub mod hist;
pub mod json;
pub mod report;
pub mod ring;
pub mod span;
pub mod trace;

pub use counter::Counter;
pub use hist::{HistSnapshot, LogHistogram};
pub use json::Json;
pub use report::{Section, StatsReport, Value, STATS_SCHEMA_VERSION};
pub use ring::{Event, EventKind, EventRing};
pub use span::{FlightRecord, FlightRing, Sampler, Span, SpanCtx, Stage, StageSet};
pub use trace::chrome_trace;
