//! Causal request spans: per-operation stage stamps and breakdowns.
//!
//! A sampled operation carries a [`SpanCtx`] from the moment a session
//! submits it; every layer it crosses stamps the current clock against a
//! [`Stage`], so a completed op yields an ordered stage vector whose
//! consecutive deltas attribute the op's end-to-end latency to the exact
//! place it was spent (batch formation, leader persist, replication ack,
//! …). The module is pure bookkeeping: **it never reads a clock** —
//! callers pass timestamps in, which is what lets the engine stamp host
//! nanoseconds and the simulator stamp virtual nanoseconds through the
//! same types (and keeps this file inside pmlint's no-wall-clock scope).
//!
//! * [`Span`] — one op's ordered `(Stage, t_ns)` stamps.
//! * [`Sampler`] — the 1-in-N per-trace sampling rule (`0` = off).
//! * [`StageSet`] — concurrent per-stage [`LogHistogram`]s plus the
//!   end-to-end and batch-amortized persist distributions; renders the
//!   `latency_breakdown` report section shared by engine and simulator.
//! * [`FlightRing`] / [`FlightRecord`] — the fixed-size per-core flight
//!   recorder ring of recent completed/errored ops and stage events,
//!   dumpable as JSON for post-mortem triage.

use crate::hist::{HistSnapshot, LogHistogram};
use crate::json::{escape_into, quote};
use crate::report::Section;
use crate::ring::{Event, EventKind, EventRing};
use std::fmt::Write as _;

/// A causal stage of the request pipeline, in pipeline order.
///
/// Each stamp records when its stage *ended*; the stage's duration is
/// the delta from the previous stamp (or from [`SpanCtx::origin_tsc`]
/// for the first). The glossary:
///
/// | stage | ends when |
/// |---|---|
/// | `client_enqueue` | the request ring accepted the envelope (includes ring-full retries) |
/// | `ring_transit` | the server core's poll popped it from the message buffer |
/// | `shard_poll` | the shard's drain loop handed it to dispatch |
/// | `key_gate` | the op passed the per-key conflict gate (includes deferred-FIFO wait) |
/// | `execute` | inline execution finished (Get/Range; batched ops skip this) |
/// | `batch_join` | a leader collected the op's posted entry under the group lock |
/// | `leader_persist` | the leader's batched log append (l-persist) returned |
/// | `repl_ship` | the replication sink accepted the batch for shipping |
/// | `repl_ack_wait` | the backup acknowledgment watermark covered the op |
/// | `cache_invalidate` | the read-cache invalidation + response post finished |
/// | `delivery` | the session absorbed the response client-side |
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Stage {
    ClientEnqueue = 0,
    RingTransit = 1,
    ShardPoll = 2,
    KeyGate = 3,
    Execute = 4,
    BatchJoin = 5,
    LeaderPersist = 6,
    ReplShip = 7,
    ReplAckWait = 8,
    CacheInvalidate = 9,
    Delivery = 10,
}

impl Stage {
    /// Number of distinct stages.
    pub const COUNT: usize = 11;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::ClientEnqueue,
        Stage::RingTransit,
        Stage::ShardPoll,
        Stage::KeyGate,
        Stage::Execute,
        Stage::BatchJoin,
        Stage::LeaderPersist,
        Stage::ReplShip,
        Stage::ReplAckWait,
        Stage::CacheInvalidate,
        Stage::Delivery,
    ];

    /// Stable snake_case name, used as report-row prefix and trace-event
    /// name.
    pub fn name(self) -> &'static str {
        match self {
            Stage::ClientEnqueue => "client_enqueue",
            Stage::RingTransit => "ring_transit",
            Stage::ShardPoll => "shard_poll",
            Stage::KeyGate => "key_gate",
            Stage::Execute => "execute",
            Stage::BatchJoin => "batch_join",
            Stage::LeaderPersist => "leader_persist",
            Stage::ReplShip => "repl_ship",
            Stage::ReplAckWait => "repl_ack_wait",
            Stage::CacheInvalidate => "cache_invalidate",
            Stage::Delivery => "delivery",
        }
    }
}

/// The sampled-trace context allocated at submission and carried in the
/// request envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanCtx {
    /// Globally unique trace id (session id ⊕ ticket, in the engine).
    pub trace_id: u64,
    /// The client-side operation sequence number (the envelope `seq`).
    pub op_seq: u64,
    /// Submission timestamp — the origin every stage delta is relative
    /// to. Host or virtual nanoseconds; the producer picks the clock.
    pub origin_tsc: u64,
}

/// One operation's ordered stage vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// The carried context.
    pub ctx: SpanCtx,
    /// Owning server core, stamped when the shard first sees the op
    /// (`u32::MAX` until then).
    pub core: u32,
    /// `(stage, end_ns)` in stamp order.
    pub stamps: Vec<(Stage, u64)>,
}

impl Span {
    /// A fresh span with no stamps.
    pub fn new(ctx: SpanCtx) -> Span {
        Span {
            ctx,
            core: u32::MAX,
            stamps: Vec::with_capacity(Stage::COUNT),
        }
    }

    /// Records that `stage` ended at `at_ns`. Re-stamping the stage that
    /// was stamped last *replaces* it (a retry loop keeps only its final
    /// attempt); anything else appends.
    pub fn stamp(&mut self, stage: Stage, at_ns: u64) {
        if let Some(last) = self.stamps.last_mut() {
            if last.0 == stage {
                last.1 = at_ns;
                return;
            }
        }
        self.stamps.push((stage, at_ns));
    }

    /// The time `stage` ended, if stamped.
    pub fn stamp_at(&self, stage: Stage) -> Option<u64> {
        self.stamps
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|&(_, t)| t)
    }

    /// The last stamped time (the origin if nothing is stamped yet).
    pub fn end_ns(&self) -> u64 {
        self.stamps
            .last()
            .map(|&(_, t)| t)
            .unwrap_or(self.ctx.origin_tsc)
    }

    /// End-to-end span so far: last stamp − origin.
    pub fn total_ns(&self) -> u64 {
        self.end_ns().saturating_sub(self.ctx.origin_tsc)
    }

    /// Per-stage durations: each stamp minus its predecessor (the first
    /// minus the origin). The deltas sum exactly to [`Span::total_ns`].
    pub fn deltas(&self) -> Vec<(Stage, u64)> {
        let mut prev = self.ctx.origin_tsc;
        self.stamps
            .iter()
            .map(|&(stage, at)| {
                let d = at.saturating_sub(prev);
                prev = prev.max(at);
                (stage, d)
            })
            .collect()
    }

    /// Renders the span as one trace event per stage delta, all on lane
    /// `tid`, tagged with the trace id so member ops can be correlated
    /// with their batch span in a viewer.
    pub fn chrome_events(&self, tid: u32) -> Vec<Event> {
        let mut prev = self.ctx.origin_tsc;
        self.stamps
            .iter()
            .map(|&(stage, at)| {
                let start = prev.min(at);
                prev = prev.max(at);
                Event::span(stage.name(), "span", tid, start, at)
                    .arg("trace", self.ctx.trace_id)
                    .arg("op_seq", self.ctx.op_seq)
            })
            .collect()
    }
}

/// The 1-in-N per-trace sampling rule: `every == 0` disables sampling,
/// `every == 1` samples every operation, `every == n` samples one in
/// `n`. Deciding costs one branch and one increment.
#[derive(Debug, Clone)]
pub struct Sampler {
    every: u64,
    tick: u64,
}

impl Sampler {
    pub fn new(every: u64) -> Sampler {
        Sampler { every, tick: 0 }
    }

    /// Whether sampling is enabled at all.
    pub fn enabled(&self) -> bool {
        self.every > 0
    }

    /// Decides the next operation; `true` means "trace it".
    pub fn hit(&mut self) -> bool {
        if self.every == 0 {
            return false;
        }
        self.tick += 1;
        self.tick.is_multiple_of(self.every)
    }
}

/// Concurrent per-stage latency histograms — the accumulation side of
/// the `latency_breakdown` report section. One [`LogHistogram`] per
/// [`Stage`], plus the end-to-end distribution and the batch-amortized
/// persist cost (leader persist time ÷ batch size), which is the
/// paper's horizontal-batching arithmetic made observable.
#[derive(Debug)]
pub struct StageSet {
    stages: [LogHistogram; Stage::COUNT],
    end_to_end: LogHistogram,
    persist_per_entry: LogHistogram,
}

impl Default for StageSet {
    fn default() -> StageSet {
        StageSet::new()
    }
}

impl StageSet {
    pub fn new() -> StageSet {
        StageSet {
            stages: std::array::from_fn(|_| LogHistogram::new()),
            end_to_end: LogHistogram::new(),
            persist_per_entry: LogHistogram::new(),
        }
    }

    /// Records one stage duration.
    pub fn record(&self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// Records a whole completed span: every stage delta plus the
    /// end-to-end total.
    pub fn record_span(&self, span: &Span) {
        for (stage, d) in span.deltas() {
            self.record(stage, d);
        }
        self.end_to_end.record(span.total_ns());
    }

    /// Records one persisted batch: `persist_ns / entries` per entry —
    /// the amortization view that shows batching paying for itself.
    pub fn record_batch(&self, persist_ns: u64, entries: u64) {
        self.persist_per_entry.record(persist_ns / entries.max(1));
    }

    /// Spans recorded so far (end-to-end sample count).
    pub fn spans(&self) -> u64 {
        self.end_to_end.count()
    }

    /// Snapshot of one stage's distribution.
    pub fn stage_snapshot(&self, stage: Stage) -> HistSnapshot {
        self.stages[stage as usize].snapshot()
    }

    /// Snapshot of the end-to-end distribution.
    pub fn end_to_end_snapshot(&self) -> HistSnapshot {
        self.end_to_end.snapshot()
    }

    /// Snapshot of the batch-amortized persist cost (`persist_ns ÷
    /// entries`) distribution.
    pub fn persist_per_entry_snapshot(&self) -> HistSnapshot {
        self.persist_per_entry.snapshot()
    }

    /// Fills the shared `latency_breakdown` section schema: standard
    /// latency rows per non-empty stage (prefixed by the stage name), the
    /// end-to-end rows, and the `persist_per_entry` amortization rows.
    /// The engine and the simulator both report through this method, so
    /// hardware and virtual-time breakdowns stay field-compatible.
    pub fn fill_section(&self, sec: &mut Section) {
        sec.row("spans", self.spans());
        for stage in Stage::ALL {
            sec.latency_rows(stage.name(), &self.stage_snapshot(stage));
        }
        sec.latency_rows("end_to_end", &self.end_to_end.snapshot());
        sec.latency_rows("persist_per_entry", &self.persist_per_entry.snapshot());
    }
}

/// One completed (or errored, or in-flight-at-crash) operation in the
/// flight recorder.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Trace id (0 when the op was unsampled — errored unsampled ops
    /// still leave a record).
    pub trace_id: u64,
    /// The envelope sequence number.
    pub op_seq: u64,
    /// Submission origin (ns), 0 when unsampled.
    pub origin_ns: u64,
    /// Owning server core.
    pub core: u32,
    /// Fabric client id.
    pub client: u64,
    /// Operation kind (`"put"`, `"get"`, …).
    pub kind: &'static str,
    /// Whether the op completed successfully.
    pub ok: bool,
    /// Error detail for failed ops, empty otherwise.
    pub detail: String,
    /// The stage vector captured so far (partial for in-flight ops).
    pub stamps: Vec<(Stage, u64)>,
}

/// The per-core flight recorder: a bounded ring of the last N op
/// records plus a bounded ring of recent stage/batch [`Event`]s.
/// Single-writer (the owning core); wrap in a lock to read from a
/// panic hook.
#[derive(Debug)]
pub struct FlightRing {
    records: std::collections::VecDeque<FlightRecord>,
    cap: usize,
    records_dropped: u64,
    events: EventRing,
}

impl FlightRing {
    /// `cap` bounds the op-record ring; the event ring gets `4 × cap`
    /// slots (several stage events per op).
    pub fn new(cap: usize) -> FlightRing {
        let cap = cap.max(1);
        FlightRing {
            records: std::collections::VecDeque::with_capacity(cap),
            cap,
            records_dropped: 0,
            events: EventRing::new(cap * 4),
        }
    }

    /// Appends an op record, evicting the oldest at capacity.
    pub fn push_record(&mut self, r: FlightRecord) {
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.records_dropped += 1;
        }
        self.records.push_back(r);
    }

    /// Appends a stage/batch event.
    pub fn push_event(&mut self, ev: Event) {
        self.events.push(ev);
    }

    pub fn records(&self) -> impl Iterator<Item = &FlightRecord> {
        self.records.iter()
    }

    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.events.iter()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty() && self.events.is_empty()
    }

    /// Serialises this ring as one JSON object:
    /// `{"core":c,"records_dropped":d,"records":[…],"events":[…]}`.
    pub fn dump_json(&self, core: usize) -> String {
        let mut out = String::with_capacity(1024);
        let _ = write!(
            out,
            "{{\"core\":{core},\"records_dropped\":{},\"records\":[",
            self.records_dropped
        );
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace_id\":{},\"op_seq\":{},\"origin_ns\":{},\"core\":{},\
                 \"client\":{},\"kind\":{},\"ok\":{},\"detail\":",
                r.trace_id,
                r.op_seq,
                r.origin_ns,
                r.core,
                r.client,
                quote(r.kind),
                r.ok
            );
            out.push('"');
            escape_into(&mut out, &r.detail);
            out.push_str("\",\"stamps\":[");
            for (j, (stage, at)) in r.stamps.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "[{},{at}]", quote(stage.name()));
            }
            out.push_str("]}");
        }
        out.push_str("],\"events\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let dur = match ev.kind {
                EventKind::Span { dur_ns } => dur_ns,
                EventKind::Instant => 0,
            };
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"tid\":{},\"ts_ns\":{},\"dur_ns\":{dur}",
                quote(ev.name),
                quote(ev.cat),
                ev.tid,
                ev.ts_ns
            );
            if !ev.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in ev.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{v}", quote(k));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn ctx(origin: u64) -> SpanCtx {
        SpanCtx {
            trace_id: 42,
            op_seq: 7,
            origin_tsc: origin,
        }
    }

    #[test]
    fn deltas_sum_to_total() {
        let mut s = Span::new(ctx(100));
        s.stamp(Stage::ClientEnqueue, 110);
        s.stamp(Stage::RingTransit, 150);
        s.stamp(Stage::ShardPoll, 151);
        s.stamp(Stage::KeyGate, 180);
        s.stamp(Stage::Delivery, 400);
        let d = s.deltas();
        assert_eq!(d.len(), 5);
        let sum: u64 = d.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(sum, s.total_ns());
        assert_eq!(s.total_ns(), 300);
        assert_eq!(d[1], (Stage::RingTransit, 40));
    }

    #[test]
    fn restamping_last_stage_replaces() {
        // A send-retry loop stamps ClientEnqueue once per attempt; only
        // the final (successful) attempt must survive.
        let mut s = Span::new(ctx(0));
        s.stamp(Stage::ClientEnqueue, 10);
        s.stamp(Stage::ClientEnqueue, 25);
        assert_eq!(s.stamps, vec![(Stage::ClientEnqueue, 25)]);
        s.stamp(Stage::RingTransit, 30);
        s.stamp(Stage::ClientEnqueue, 40);
        assert_eq!(s.stamps.len(), 3, "non-adjacent re-stamp appends");
    }

    #[test]
    fn sampler_rates() {
        assert!(!Sampler::new(0).hit());
        let mut every = Sampler::new(1);
        assert!((0..10).all(|_| every.hit()));
        let mut one_in_4 = Sampler::new(4);
        let hits = (0..100).filter(|_| one_in_4.hit()).count();
        assert_eq!(hits, 25);
    }

    #[test]
    fn stage_set_records_and_reports() {
        let set = StageSet::new();
        let mut s = Span::new(ctx(0));
        s.stamp(Stage::ClientEnqueue, 10);
        s.stamp(Stage::RingTransit, 30);
        s.stamp(Stage::Delivery, 100);
        set.record_span(&s);
        set.record_batch(800, 8);
        assert_eq!(set.spans(), 1);
        assert_eq!(set.stage_snapshot(Stage::RingTransit).max, 20);
        assert_eq!(set.end_to_end_snapshot().max, 100);

        let mut report = crate::StatsReport::new("t");
        set.fill_section(report.section("latency_breakdown"));
        assert_eq!(
            report.get("latency_breakdown", "spans"),
            Some(&crate::Value::U64(1))
        );
        assert!(report
            .get("latency_breakdown", "ring_transit_max_ns")
            .is_some());
        assert!(report
            .get("latency_breakdown", "end_to_end_count")
            .is_some());
        assert_eq!(
            report.get("latency_breakdown", "persist_per_entry_max_ns"),
            Some(&crate::Value::U64(100))
        );
        // Stages with no samples contribute no rows.
        assert!(report.get("latency_breakdown", "repl_ship_count").is_none());
    }

    #[test]
    fn flight_ring_bounds_and_dumps_json() {
        let mut ring = FlightRing::new(2);
        for i in 0..3u64 {
            ring.push_record(FlightRecord {
                trace_id: i,
                op_seq: i,
                origin_ns: 100 * i,
                core: 1,
                client: 0,
                kind: "put",
                ok: i != 2,
                detail: if i == 2 {
                    "boom \"quoted\"".into()
                } else {
                    String::new()
                },
                stamps: vec![(Stage::ClientEnqueue, 100 * i + 5)],
            });
        }
        ring.push_event(
            Event::span("batch_persist", "batch", 1, 10, 40)
                .arg("entries", 4)
                .arg("batch", 9),
        );
        let doc = ring.dump_json(1);
        let v = Json::parse(&doc).expect("flight dump must be valid JSON");
        assert_eq!(v.get("core").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("records_dropped").unwrap().as_f64(), Some(1.0));
        let recs = v.get("records").unwrap().as_arr().unwrap();
        assert_eq!(recs.len(), 2, "oldest record evicted");
        let last = &recs[1];
        assert_eq!(last.get("kind").unwrap().as_str(), Some("put"));
        assert_eq!(
            last.get("detail").unwrap().as_str(),
            Some("boom \"quoted\"")
        );
        let stamps = last.get("stamps").unwrap().as_arr().unwrap();
        assert_eq!(
            stamps[0].as_arr().unwrap()[0].as_str(),
            Some("client_enqueue")
        );
        let evs = v.get("events").unwrap().as_arr().unwrap();
        assert_eq!(evs[0].get("dur_ns").unwrap().as_f64(), Some(30.0));
        assert_eq!(
            evs[0].get("args").unwrap().get("entries").unwrap().as_f64(),
            Some(4.0)
        );
    }

    #[test]
    fn chrome_events_cover_the_span() {
        let mut s = Span::new(ctx(1_000));
        s.stamp(Stage::ClientEnqueue, 1_010);
        s.stamp(Stage::RingTransit, 1_050);
        s.stamp(Stage::Delivery, 1_200);
        let evs = s.chrome_events(3);
        assert_eq!(evs.len(), 3);
        let total: u64 = evs
            .iter()
            .map(|e| match e.kind {
                EventKind::Span { dur_ns } => dur_ns,
                EventKind::Instant => 0,
            })
            .sum();
        assert_eq!(total, s.total_ns());
        assert!(evs.iter().all(|e| e.tid == 3));
        assert!(evs.iter().all(|e| e.args.contains(&("trace", 42))));
    }
}
