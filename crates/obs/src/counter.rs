//! Monotonic event counters.

use racecheck::sync::atomic::{AtomicU64, Ordering};

/// A lock-free monotonic counter.
///
/// All operations are `Relaxed`: counters are statistics, not
/// synchronisation, and readers tolerate slightly stale values.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one; returns the previous value.
    pub fn inc(&self) -> u64 {
        self.0.fetch_add(1, Ordering::Relaxed)
    }

    /// Adds `n`; returns the previous value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed)
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Zeroes the counter (between measurement windows).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}
