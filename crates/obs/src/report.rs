//! Sectioned statistics reports.
//!
//! Every layer of the repository reduces its counters and histograms to
//! a [`StatsReport`]: named sections of name/value rows. One type, three
//! renderings — an aligned human table (`Display`), a JSON object
//! ([`StatsReport::to_json`]), and JSON-lines ([`StatsReport::to_jsonl`])
//! for appending runs to a metrics log.

use crate::hist::HistSnapshot;
use crate::json::{escape_into, number, quote};
use std::fmt;
use std::fmt::Write as _;

/// A single metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    F64(f64),
    Text(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Value {
        Value::U64(u64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Text(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.3}"),
            Value::Text(v) => f.write_str(v),
        }
    }
}

impl Value {
    fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::F64(v) => number(*v),
            Value::Text(v) => quote(v),
        }
    }
}

/// A titled group of rows within a [`StatsReport`].
#[derive(Debug, Clone, Default)]
pub struct Section {
    pub title: String,
    pub rows: Vec<(String, Value)>,
}

impl Section {
    /// Appends one row (builder-style, chainable).
    pub fn row(&mut self, name: impl Into<String>, value: impl Into<Value>) -> &mut Section {
        self.rows.push((name.into(), value.into()));
        self
    }

    /// Appends the standard latency rows for a histogram snapshot:
    /// count, mean, p50/p95/p99/p999, max. No rows for an empty
    /// histogram — absent beats all-zeros in a report.
    pub fn latency_rows(&mut self, prefix: &str, h: &HistSnapshot) -> &mut Section {
        if h.count == 0 {
            return self;
        }
        self.row(format!("{prefix}_count"), h.count)
            .row(format!("{prefix}_mean_ns"), h.mean())
            .row(format!("{prefix}_p50_ns"), h.p50())
            .row(format!("{prefix}_p95_ns"), h.p95())
            .row(format!("{prefix}_p99_ns"), h.p99())
            .row(format!("{prefix}_p999_ns"), h.p999())
            .row(format!("{prefix}_max_ns"), h.max)
    }
}

/// Version of the JSON document [`StatsReport::to_json`] emits.
///
/// * **1** (implicit — documents without a `"schema"` key): `{"title",
///   "sections"}` only.
/// * **2**: adds the explicit top-level `"schema"` key and the
///   `latency_breakdown` section vocabulary filled by
///   [`StageSet::fill_section`](crate::span::StageSet::fill_section).
pub const STATS_SCHEMA_VERSION: u32 = 2;

/// A titled collection of [`Section`]s.
#[derive(Debug, Clone)]
pub struct StatsReport {
    pub title: String,
    pub sections: Vec<Section>,
}

impl StatsReport {
    pub fn new(title: impl Into<String>) -> StatsReport {
        StatsReport {
            title: title.into(),
            sections: Vec::new(),
        }
    }

    /// Adds an (initially empty) section and returns it for filling.
    pub fn section(&mut self, title: impl Into<String>) -> &mut Section {
        self.sections.push(Section {
            title: title.into(),
            rows: Vec::new(),
        });
        self.sections.last_mut().unwrap()
    }

    /// Looks a value up as `"section.row"`, mainly for tests.
    pub fn get(&self, section: &str, row: &str) -> Option<&Value> {
        self.sections
            .iter()
            .find(|s| s.title == section)?
            .rows
            .iter()
            .find(|(n, _)| n == row)
            .map(|(_, v)| v)
    }

    /// One JSON object: `{"schema": 2, "title": ..., "sections": {sec:
    /// {row: val}}}` ([`STATS_SCHEMA_VERSION`]). Section and row order
    /// is preserved, and the document is canonical compact JSON: a
    /// [`Json::parse`](crate::Json::parse) →
    /// [`Json::dump`](crate::Json::dump) round trip reproduces it byte
    /// for byte (the schema gate in `scripts/check.sh`).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\"schema\":");
        let _ = write!(out, "{STATS_SCHEMA_VERSION}");
        out.push_str(",\"title\":");
        out.push_str(&quote(&self.title));
        out.push_str(",\"sections\":{");
        for (si, sec) in self.sections.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            out.push_str(&quote(&sec.title));
            out.push_str(":{");
            for (ri, (name, value)) in sec.rows.iter().enumerate() {
                if ri > 0 {
                    out.push(',');
                }
                out.push_str(&quote(name));
                out.push(':');
                out.push_str(&value.to_json());
            }
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// One JSON object per line, one line per row:
    /// `{"report":T,"section":S,"name":N,"value":V}`.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::with_capacity(1024);
        for sec in &self.sections {
            for (name, value) in &sec.rows {
                out.push_str("{\"report\":\"");
                escape_into(&mut out, &self.title);
                out.push_str("\",\"section\":\"");
                escape_into(&mut out, &sec.title);
                out.push_str("\",\"name\":\"");
                escape_into(&mut out, name);
                out.push_str("\",\"value\":");
                out.push_str(&value.to_json());
                out.push_str("}\n");
            }
        }
        out
    }
}

impl fmt::Display for StatsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name_width = self
            .sections
            .iter()
            .flat_map(|s| s.rows.iter())
            .map(|(n, _)| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        writeln!(f, "=== {} ===", self.title)?;
        for sec in &self.sections {
            writeln!(f, "[{}]", sec.title)?;
            for (name, value) in &sec.rows {
                let mut rendered = String::new();
                let _ = write!(rendered, "{value}");
                writeln!(f, "  {name:<name_width$}  {rendered:>14}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::LogHistogram;
    use crate::json::Json;

    fn sample_report() -> StatsReport {
        let mut r = StatsReport::new("engine");
        r.section("ops").row("puts", 10u64).row("mops", 1.25);
        r.section("device").row("model", "optane");
        r
    }

    #[test]
    fn display_is_aligned_and_complete() {
        let text = sample_report().to_string();
        assert!(text.contains("=== engine ==="));
        assert!(text.contains("[ops]"));
        assert!(text.contains("puts"));
        assert!(text.contains("1.250"));
        assert!(text.contains("optane"));
        // fixed name column + right-aligned value column → every row line
        // has the same width
        let widths: Vec<usize> = text
            .lines()
            .filter(|l| l.starts_with("  "))
            .map(|l| l.chars().count())
            .collect();
        assert!(
            widths.windows(2).all(|w| w[0] == w[1]),
            "ragged table: {text}"
        );
    }

    #[test]
    fn json_roundtrips_through_parser() {
        let r = sample_report();
        let v = Json::parse(&r.to_json()).unwrap();
        assert_eq!(
            v.get("schema").unwrap().as_f64(),
            Some(f64::from(STATS_SCHEMA_VERSION))
        );
        assert_eq!(v.get("title").unwrap().as_str(), Some("engine"));
        let ops = v.get("sections").unwrap().get("ops").unwrap();
        assert_eq!(ops.get("puts").unwrap().as_f64(), Some(10.0));
        assert_eq!(ops.get("mops").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn json_reemits_byte_identical() {
        // The schema round-trip gate: emit → parse → dump must be a
        // byte-level fixed point.
        let json = sample_report().to_json();
        assert_eq!(Json::parse(&json).unwrap().dump(), json);
    }

    #[test]
    fn jsonl_is_one_valid_object_per_row() {
        let r = sample_report();
        let jsonl = r.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in lines {
            let v = Json::parse(line).unwrap();
            assert!(v.get("section").is_some());
            assert!(v.get("name").is_some());
            assert!(v.get("value").is_some());
        }
    }

    #[test]
    fn latency_rows_come_from_snapshot() {
        let h = LogHistogram::new();
        for v in [100u64, 200, 300, 400] {
            h.record(v);
        }
        let mut r = StatsReport::new("t");
        r.section("lat").latency_rows("put", &h.snapshot());
        assert_eq!(r.get("lat", "put_count"), Some(&Value::U64(4)));
        assert_eq!(r.get("lat", "put_max_ns"), Some(&Value::U64(400)));
        assert!(r.get("lat", "put_p50_ns").is_some());

        let empty = LogHistogram::new();
        let mut r2 = StatsReport::new("t2");
        r2.section("lat").latency_rows("get", &empty.snapshot());
        assert!(r2.get("lat", "get_count").is_none());
    }
}
