//! Log-bucketed latency histograms.
//!
//! A [`LogHistogram`] has 64 power-of-two buckets: bucket 0 holds the
//! value 0 and bucket `b ≥ 1` holds values in `[2^(b-1), 2^b - 1]`
//! (the last bucket additionally absorbs everything above `2^62`).
//! Recording is a single relaxed `fetch_add`, so histograms can sit on
//! hot paths; querying goes through an immutable [`HistSnapshot`].
//!
//! Percentiles interpolate linearly inside the owning bucket, which
//! bounds the error of any reported quantile by the bucket width — a
//! factor of two worst case, a few percent for latencies in the
//! hundreds-of-nanoseconds range this repository cares about.

use racecheck::sync::atomic::{AtomicU64, Ordering};

pub const NUM_BUCKETS: usize = 64;

/// Index of the bucket that stores `v`.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    ((64 - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive `[lo, hi]` value range of bucket `idx`.
pub fn bucket_bounds(idx: usize) -> (u64, u64) {
    match idx {
        0 => (0, 0),
        _ if idx < NUM_BUCKETS - 1 => (1 << (idx - 1), (1 << idx) - 1),
        _ => (1 << (NUM_BUCKETS - 2), u64::MAX),
    }
}

/// A concurrent histogram over `u64` samples (typically nanoseconds).
#[derive(Debug)]
pub struct LogHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for LogHistogram {
    fn default() -> LogHistogram {
        LogHistogram::new()
    }
}

impl LogHistogram {
    pub fn new() -> LogHistogram {
        LogHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    ///
    /// The running sum **saturates** at `u64::MAX` instead of wrapping,
    /// so a stream of near-`u64::MAX` samples degrades the mean to a
    /// documented ceiling rather than a silently wrong small number.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let prev = self.sum.fetch_add(v, Ordering::Relaxed);
        if prev.checked_add(v).is_none() {
            // The cheap add wrapped; pin the sum at its saturation
            // sentinel (racy repairs all land on the same value).
            self.sum.store(u64::MAX, Ordering::Relaxed);
        }
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// A coherent-enough copy for reporting (individual loads are
    /// relaxed; concurrent recording may skew a snapshot by a sample).
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Convenience for one-shot queries; prefer [`LogHistogram::snapshot`]
    /// when reading several quantiles.
    pub fn percentile(&self, q: f64) -> u64 {
        self.snapshot().percentile(q)
    }
}

/// Immutable view of a [`LogHistogram`] at one point in time.
#[derive(Debug, Clone)]
pub struct HistSnapshot {
    pub buckets: [u64; NUM_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub max: u64,
}

impl HistSnapshot {
    /// Arithmetic mean of the recorded samples; `0` when empty. If the
    /// running sum saturated (see [`LogHistogram::record`]) the mean is
    /// an underestimate pinned at `u64::MAX / count`.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The value at quantile `q` (percent, e.g. `99.9`), linearly
    /// interpolated inside the owning bucket.
    ///
    /// Documented sentinels (never panics, in debug builds included):
    ///
    /// * empty histogram → `0` for every `q`;
    /// * single sample → the sample's bucket clamped by the true max,
    ///   i.e. the exact value for any `q`;
    /// * top-bucket saturation (samples ≥ 2^62, up to `u64::MAX`) → a
    ///   value clamped into `[bucket lo, max]`. The interpolation offset
    ///   is clamped to the bucket width before the add, because a 63-bit
    ///   width rounds *up* through `f64` and the raw `lo + offset` would
    ///   overflow `u64` for quantiles near 100.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        // Rank of the sample we are after, 1-based, ceil convention:
        // p50 of 10 samples is the 5th smallest.
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if rank <= cum + n {
                let (lo, mut hi) = bucket_bounds(idx);
                hi = hi.min(self.max);
                let width = hi.saturating_sub(lo);
                let frac = (rank - cum) as f64 / n as f64;
                let offset = ((frac * width as f64) as u64).min(width);
                return lo + offset;
            }
            cum += n;
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_domain() {
        assert_eq!(bucket_bounds(0), (0, 0));
        for idx in 1..NUM_BUCKETS {
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= hi);
            assert_eq!(bucket_index(lo), idx);
            assert_eq!(bucket_index(hi), idx);
            let (prev_lo, prev_hi) = bucket_bounds(idx - 1);
            assert!(prev_lo <= prev_hi);
            assert_eq!(
                prev_hi + 1,
                lo,
                "gap between buckets {} and {}",
                idx - 1,
                idx
            );
        }
    }

    #[test]
    fn exact_stats_survive() {
        let h = LogHistogram::new();
        for v in [3u64, 3, 3, 900] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4);
        assert_eq!(s.sum, 909);
        assert_eq!(s.max, 900);
        assert!((s.mean() - 227.25).abs() < 1e-9);
    }

    #[test]
    fn percentiles_track_known_distribution_within_bucket_error() {
        let h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // A log histogram can be off by at most its bucket width: the
        // reported quantile must live in the same bucket as the truth.
        for (q, truth) in [(50.0, 500u64), (95.0, 950), (99.0, 990), (99.9, 999)] {
            let got = s.percentile(q);
            assert_eq!(
                bucket_index(got),
                bucket_index(truth),
                "p{q} reported {got}, truth {truth}"
            );
        }
        assert_eq!(s.percentile(100.0), 1000);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn single_value_distribution_is_tight() {
        let h = LogHistogram::new();
        for _ in 0..100 {
            h.record(7);
        }
        let s = h.snapshot();
        // All mass in bucket [4, 7], capped by max == 7.
        for q in [1.0, 50.0, 99.0, 99.9, 100.0] {
            let v = s.percentile(q);
            assert!((4..=7).contains(&v), "p{q} = {v}");
        }
        assert_eq!(s.percentile(100.0), 7);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LogHistogram::new();
        assert!(h.is_empty());
        // Sentinel: every quantile of an empty histogram is 0.
        for q in [0.0, 1.0, 50.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(q), 0, "p{q}");
        }
        assert_eq!(h.snapshot().mean(), 0.0);
        assert_eq!(h.snapshot().max, 0);
    }

    #[test]
    fn single_sample_is_exact_at_every_quantile() {
        // Sentinel: with one sample, interpolation collapses to the
        // sample itself (bucket lo..hi clamped by max == the sample).
        for v in [0u64, 1, 7, 1 << 40, u64::MAX] {
            let h = LogHistogram::new();
            h.record(v);
            let s = h.snapshot();
            for q in [0.0, 50.0, 99.9, 100.0] {
                let got = s.percentile(q);
                let (lo, _) = bucket_bounds(bucket_index(v));
                assert!(
                    got >= lo && got <= v.max(lo),
                    "single sample {v}, p{q} = {got}"
                );
            }
            assert_eq!(s.percentile(100.0), v);
        }
    }

    #[test]
    fn top_bucket_saturation_never_panics() {
        // Samples at and above 2^63 all land in the top bucket, whose
        // 63-bit width rounds up through f64: the unclamped `lo + offset`
        // would overflow u64 (a debug-build panic). The clamp keeps every
        // quantile inside [bucket lo, max].
        let h = LogHistogram::new();
        for v in [
            1u64 << 62,
            1 << 63,
            (1 << 63) + 12345,
            u64::MAX - 1,
            u64::MAX,
        ] {
            h.record(v);
        }
        let s = h.snapshot();
        let (lo, _) = bucket_bounds(NUM_BUCKETS - 1);
        for q in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            let got = s.percentile(q);
            assert!(got >= lo && got <= s.max, "p{q} = {got}");
        }
        assert_eq!(s.percentile(100.0), u64::MAX);
        assert_eq!(s.max, u64::MAX);
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = LogHistogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        h.record(1);
        let s = h.snapshot();
        assert_eq!(s.sum, u64::MAX, "sum pins at its saturation sentinel");
        assert_eq!(s.count, 3);
        // The mean stays a large finite underestimate, not a tiny
        // wrapped value.
        assert!(s.mean() > (u64::MAX / 4) as f64);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(LogHistogram::new());
        std::thread::scope(|s| {
            for t in 0..4 {
                let h = std::sync::Arc::clone(&h);
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 10_000 + i);
                    }
                });
            }
        });
        assert_eq!(h.count(), 40_000);
    }
}
