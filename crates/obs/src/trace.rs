//! Chrome trace-event exporter.
//!
//! Renders [`Event`]s as the JSON object format understood by
//! `chrome://tracing` and Perfetto: spans become `ph: "X"` complete
//! events, instants become `ph: "i"`, and per-tid `thread_name`
//! metadata turns each simulated core into its own named track.
//! Timestamps are microseconds (the format's unit) with nanosecond
//! precision preserved in the fraction.

use crate::json::{number, quote};
use crate::ring::{Event, EventKind};
use std::fmt::Write as _;

/// Process id used for all exported events; the trace models one
/// engine/simulator instance.
pub const TRACE_PID: u32 = 1;

fn ts_us(ts_ns: u64) -> String {
    number(ts_ns as f64 / 1000.0)
}

fn write_args(out: &mut String, args: &[(&str, u64)]) {
    out.push('{');
    for (i, (k, v)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", quote(k), v);
    }
    out.push('}');
}

/// Serialises `events` (plus track-naming metadata) into a complete
/// Chrome trace JSON document.
///
/// `thread_names` maps a `tid` to the label shown on its track, e.g.
/// `(2, "core 2")`. Unnamed tids still render, labelled by number.
pub fn chrome_trace<'a>(
    process_name: &str,
    thread_names: impl IntoIterator<Item = (u32, String)>,
    events: impl IntoIterator<Item = &'a Event>,
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut emit = |out: &mut String, body: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&body);
    };

    emit(
        &mut out,
        format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            quote(process_name)
        ),
    );
    for (tid, name) in thread_names {
        emit(
            &mut out,
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{tid},\
                 \"args\":{{\"name\":{}}}}}",
                quote(&name)
            ),
        );
    }

    for ev in events {
        let mut body = String::with_capacity(128);
        let _ = write!(
            body,
            "{{\"name\":{},\"cat\":{},\"pid\":{TRACE_PID},\"tid\":{},\"ts\":{}",
            quote(ev.name),
            quote(ev.cat),
            ev.tid,
            ts_us(ev.ts_ns)
        );
        match ev.kind {
            EventKind::Span { dur_ns } => {
                let _ = write!(body, ",\"ph\":\"X\",\"dur\":{}", ts_us(dur_ns));
            }
            EventKind::Instant => {
                // Thread-scoped instant.
                body.push_str(",\"ph\":\"i\",\"s\":\"t\"");
            }
        }
        if !ev.args.is_empty() {
            body.push_str(",\"args\":");
            write_args(&mut body, &ev.args);
        }
        body.push('}');
        emit(&mut out, body);
    }

    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn exporter_emits_valid_chrome_trace() {
        let events = vec![
            Event::span("batch_flush", "engine", 2, 1_500, 4_500).arg("entries", 9),
            Event::instant("steal", "engine", 3, 2_000),
        ];
        let doc = chrome_trace(
            "simkv",
            [(2, "core 2".to_string()), (3, "core 3".to_string())],
            &events,
        );
        let parsed = Json::parse(&doc).expect("exporter must emit valid JSON");
        let list = parsed
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        // 1 process_name + 2 thread_name + 2 events
        assert_eq!(list.len(), 5);
        for ev in list {
            for field in ["ph", "pid", "tid", "name"] {
                assert!(ev.get(field).is_some(), "missing {field} in {ev:?}");
            }
        }
        let span = &list[3];
        assert_eq!(span.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(3.0));
        assert_eq!(
            span.get("args").unwrap().get("entries").unwrap().as_f64(),
            Some(9.0)
        );
        let inst = &list[4];
        assert_eq!(inst.get("ph").unwrap().as_str(), Some("i"));
        assert_eq!(inst.get("tid").unwrap().as_f64(), Some(3.0));
    }
}
