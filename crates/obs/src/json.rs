//! A minimal JSON model: enough writer support for the exporters and a
//! recursive-descent parser so tests can validate exporter output
//! without external crates. Not a general-purpose JSON library — no
//! streaming, no `\uXXXX` surrogate-pair pedantry beyond what the
//! exporters themselves emit.

use std::fmt::Write as _;

/// Escapes `s` into `out` as the *contents* of a JSON string literal.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders `s` as a quoted JSON string literal.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` the way JSON expects: no NaN/Inf (mapped to 0),
/// integral values without a fractional part.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// A parsed JSON value. Objects keep their **source key order** (a
/// `Vec` of pairs, not a map), so a parse → [`Json::dump`] round trip
/// reproduces a canonically emitted document byte for byte — the
/// property the `stats_report` schema gate in `scripts/check.sh` rests
/// on. [`Json::get`] is a linear scan; documents here are small.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document (trailing whitespace allowed,
    /// trailing garbage rejected).
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Re-emits this value as compact canonical JSON: no whitespace,
    /// object keys in stored order, strings via [`quote`], numbers via
    /// [`number`]. Emitters in this repository produce exactly this
    /// form, so `Json::parse(doc).dump() == doc` for any document they
    /// wrote (integers above 2^53 excepted — `f64` cannot hold them).
    pub fn dump(&self) -> String {
        let mut out = String::with_capacity(256);
        self.dump_into(&mut out);
        out
    }

    fn dump_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => out.push_str(&number(*n)),
            Json::Str(s) => out.push_str(&quote(s)),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.dump_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&quote(k));
                    out.push(':');
                    v.dump_into(out);
                }
                out.push('}');
            }
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            // Last duplicate wins, as in the map-based model.
            if let Some(slot) = pairs.iter_mut().find(|(k, _)| *k == key) {
                slot.1 = val;
            } else {
                pairs.push((key, val));
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar, not one byte.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_escapes() {
        let s = "he said \"hi\"\n\tπ";
        let parsed = Json::parse(&quote(s)).unwrap();
        assert_eq!(parsed, Json::Str(s.to_string()));
    }

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": ""}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some(""));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn dump_round_trips_canonical_documents() {
        // Key order is preserved (NOT sorted): "z" stays before "a".
        let doc = r#"{"z":1,"a":{"nested":[true,null,"s\n"],"x":2.5},"m":-3}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.dump(), doc);
        assert_eq!(Json::parse(&v.dump()).unwrap(), v);
        assert_eq!(Json::parse("[]").unwrap().dump(), "[]");
        assert_eq!(Json::parse("{}").unwrap().dump(), "{}");
    }

    #[test]
    fn number_formatting() {
        assert_eq!(number(42.0), "42");
        assert_eq!(number(2.5), "2.5");
        assert_eq!(number(f64::NAN), "0");
    }
}
