//! The FlatStore discrete-event simulation: N simulated server cores run
//! the *real* OpLog/allocator/index code; every PM event the code emits is
//! charged to virtual time through the Optane device model, and the
//! horizontal-batching protocol (lock, stealing, pipelining — paper §3.3)
//! is modeled at event granularity.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

use indexes::{Cceh, FastFair, Index, Mode};
use masstree::Masstree;
use obs::{Event, EventRing, Sampler, Span, SpanCtx, Stage, StageSet};
use oplog::{LogEntry, LogOp, OpLog, Payload, INLINE_MAX};
use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::cost::Device;
use pmem::{PmAddr, PmRegion};
use workloads::{EtcWorkload, Op};

use crate::common::{route, Charger, ClientPool, Gen, Mailbox, Nic, SimReq};
use crate::metrics::{Metrics, Summary};
use crate::params::{ExecModel, SimConfig, SimIndex, WorkloadSpec};

const ADDR_BITS: u32 = 42;
const ADDR_MASK: u64 = (1 << ADDR_BITS) - 1;
const VERSION_MASK: u32 = 0xF_FFFF;
/// Core stall before retrying when the PM pool is momentarily exhausted.
const RETRY_NS: f64 = 20_000.0;
/// Cleaner poll interval.
const CLEANER_POLL_NS: f64 = 20_000.0;
/// Cheap per-read charge for the cleaner's sequential scans.
const GC_SCAN_READ_NS: f64 = 4.0;

// ---- Adaptive-batching controller (DES twin of `flatstore::tuner`) ----
// These constants and the state machine in `TunerSim` must match the
// engine's `BatchTuner` exactly, so sweeps over this simulation predict
// the real adaptive operating point.
/// Batches per tuning epoch.
const EPOCH_BATCHES: u64 = 32;
/// Epochs in one measurement phase (baseline hold or probe).
const PROBE_EPOCHS: u64 = 6;
/// Shortest hold between probes (epochs).
const HOLD_MIN: u64 = 6;
/// Longest hold between probes (failed probes double toward this).
const HOLD_MAX: u64 = 48;
/// Relative throughput gain a probe must show to be adopted.
const DEADBAND: f64 = 0.02;
/// Relative throughput shift that re-arms a settled tuner's probing.
const REARM_FRACTION: f64 = 0.15;
/// Upper bound on the leader linger window.
const MAX_LINGER_NS: f64 = 20_000.0;
/// Additive linger increase per congested epoch.
const LINGER_STEP_NS: f64 = 2_000.0;
/// Mean fill at or below which the group counts as starved.
const STARVED_FILL: f64 = 1.25;
/// Fraction of the target fill at which batches count as full enough.
const FULL_FRACTION: f64 = 0.75;

#[inline]
fn pack(version: u32, addr: u64) -> u64 {
    ((version as u64 & VERSION_MASK as u64) << ADDR_BITS) | addr
}

#[inline]
fn unpack(v: u64) -> (u32, u64) {
    (
        ((v >> ADDR_BITS) & VERSION_MASK as u64) as u32,
        v & ADDR_MASK,
    )
}

/// FlatStore's volatile index inside the simulation.
enum VIndex {
    Hash(Vec<Cceh>),
    Mass(Masstree),
    Ff(FastFair),
}

impl VIndex {
    fn build(kind: SimIndex, ncores: usize) -> VIndex {
        match kind {
            SimIndex::Hash => {
                let mut v = Vec::with_capacity(ncores);
                for _ in 0..ncores {
                    let dram = Arc::new(PmRegion::new(64 << 20));
                    v.push(
                        Cceh::new(dram, PmAddr(0), 64 << 20, Mode::Volatile, 2)
                            .expect("dram index"),
                    );
                }
                VIndex::Hash(v)
            }
            SimIndex::Masstree => VIndex::Mass(Masstree::new()),
            SimIndex::FastFair => {
                let dram = Arc::new(PmRegion::new(512 << 20));
                VIndex::Ff(
                    FastFair::new(dram, PmAddr(0), 512 << 20, Mode::Volatile).expect("dram tree"),
                )
            }
        }
    }

    fn get(&self, owner: usize, key: u64) -> Option<u64> {
        match self {
            VIndex::Hash(v) => v[owner].get(key),
            VIndex::Mass(t) => t.get(key),
            VIndex::Ff(t) => t.get(key),
        }
    }

    fn insert(&mut self, owner: usize, key: u64, val: u64) -> Option<u64> {
        match self {
            VIndex::Hash(v) => v[owner].insert(key, val).expect("index space"),
            VIndex::Mass(t) => t.insert(key, val),
            VIndex::Ff(t) => t.insert(key, val).expect("index space"),
        }
    }

    fn cas(&mut self, owner: usize, key: u64, old: u64, new: u64) -> bool {
        match self {
            VIndex::Hash(v) => v[owner].cas(key, old, new),
            VIndex::Mass(t) => t.cas(key, old, new),
            VIndex::Ff(t) => t.cas(key, old, new),
        }
    }

    fn op_ns(&self, cpu: &crate::params::CpuParams) -> f64 {
        match self {
            VIndex::Hash(_) => cpu.hash_op_ns,
            VIndex::Mass(_) => cpu.tree_op_ns,
            // A volatile FAST&FAIR is less multicore-tuned than Masstree
            // (paper §5.1: FlatStore-M > FlatStore-FF).
            VIndex::Ff(_) => cpu.tree_op_ns * 1.3,
        }
    }
}

struct PostSlot {
    core: usize,
    req: SimReq,
    version: u32,
    entry: LogEntry,
    post_time: f64,
    done: Option<(f64, u64)>,
}

struct GroupSim {
    pool: Vec<usize>,
    lock_free_at: f64,
    /// Adaptive runs only: per-subgroup-base early-release times (each
    /// effective subgroup has its own leader token, exactly the per-list
    /// consumer tokens in `flatstore::batch::Group`). Empty when static —
    /// the static path keeps using `lock_free_at`, bit-identically.
    base_free: Vec<f64>,
}

/// Deterministic mirror of `flatstore::tuner::BatchTuner`: plain fields
/// instead of atomics (the DES is single-threaded), same epoch length,
/// bounds, linger ladder and hold→probe→confirm→adopt-or-settle state
/// machine.
/// Throughput phases are measured against the simulation's virtual clock
/// (the engine uses the wall clock), and integer linger halving is
/// mirrored with `floor` so both controllers walk the identical ladder.
struct TunerSim {
    members: usize,
    target_fill: u64,
    linger_ns: f64,
    eff: usize,
    epoch_batches: u64,
    epoch_entries: u64,
    epoch_backlog: u64,
    phase_entries: u64,
    /// Virtual time at the phase start; 0 = measurement not yet armed.
    phase_start_ns: f64,
    phase_left: u64,
    probing: bool,
    /// Post-probe baseline re-measurement (the A2 of an A/B/A cycle).
    confirming: bool,
    /// Converged: probing stopped until epoch throughput leaves the
    /// re-arm band around the settled baseline.
    settled: bool,
    hold_len: u64,
    dir_down: bool,
    base_eff: usize,
    base_tput: f64,
    /// Probe candidate width and its measured throughput, pending confirm.
    cand_eff: usize,
    probe_tput: f64,
}

impl TunerSim {
    fn new(members: usize, eff0: usize, target_fill: u64) -> TunerSim {
        TunerSim {
            members,
            target_fill: target_fill.max(1),
            linger_ns: 0.0,
            eff: eff0.clamp(1, members),
            epoch_batches: 0,
            epoch_entries: 0,
            epoch_backlog: 0,
            phase_entries: 0,
            phase_start_ns: 0.0,
            phase_left: HOLD_MIN,
            probing: false,
            confirming: false,
            settled: false,
            hold_len: HOLD_MIN,
            dir_down: true,
            base_eff: eff0.clamp(1, members),
            base_tput: 0.0,
            cand_eff: eff0.clamp(1, members),
            probe_tput: 0.0,
        }
    }

    fn observe(&mut self, fill: u64, backlog: bool, now_ns: f64) {
        self.epoch_entries += fill;
        self.epoch_backlog += u64::from(backlog);
        self.epoch_batches += 1;
        if self.epoch_batches.is_multiple_of(EPOCH_BATCHES) {
            self.retune(now_ns);
        }
    }

    fn retune(&mut self, now_ns: f64) {
        let entries = self.epoch_entries;
        let backlog = self.epoch_backlog;
        self.epoch_entries = 0;
        self.epoch_backlog = 0;
        // Signal-driven linger law (engine's `retune_linger`).
        let mean_fill = entries as f64 / EPOCH_BATCHES as f64;
        let congested = backlog >= EPOCH_BATCHES / 4;
        if mean_fill >= self.target_fill as f64 * FULL_FRACTION || mean_fill <= STARVED_FILL {
            self.linger_ns = (self.linger_ns / 2.0).floor();
        } else if congested {
            self.linger_ns = (self.linger_ns + LINGER_STEP_NS).min(MAX_LINGER_NS);
        }
        // Measured sweep-width law (engine's `retune_eff`).
        if self.phase_start_ns == 0.0 || now_ns <= self.phase_start_ns {
            self.phase_start_ns = now_ns.max(f64::MIN_POSITIVE);
            self.phase_entries = 0;
            return;
        }
        self.phase_entries += entries;
        self.phase_left = self.phase_left.saturating_sub(1);
        if self.phase_left > 0 {
            return;
        }
        let tput = self.phase_entries as f64 / (now_ns - self.phase_start_ns);
        self.phase_entries = 0;
        self.phase_start_ns = now_ns;
        if self.probing {
            self.finish_probe(tput);
        } else if self.confirming {
            self.decide(tput);
        } else if self.settled {
            // Zero-churn watch: stay at the settled width, re-arm the
            // probe ladder only when measured load genuinely moves.
            if (tput / self.base_tput - 1.0).abs() > REARM_FRACTION {
                self.settled = false;
                self.hold_len = HOLD_MIN;
                self.phase_left = HOLD_MIN;
            } else {
                self.phase_left = PROBE_EPOCHS;
            }
        } else {
            self.start_probe(tput);
        }
    }

    fn start_probe(&mut self, base_tput: f64) {
        self.base_tput = base_tput;
        self.base_eff = self.eff;
        let mut cand = Self::step(self.eff, self.dir_down, self.members);
        if cand == self.eff {
            self.dir_down = !self.dir_down;
            cand = Self::step(self.eff, self.dir_down, self.members);
        }
        if cand == self.eff {
            self.phase_left = self.hold_len;
            return;
        }
        self.eff = cand;
        self.probing = true;
        self.phase_left = PROBE_EPOCHS;
    }

    fn finish_probe(&mut self, probe_tput: f64) {
        self.probing = false;
        self.confirming = true;
        self.cand_eff = self.eff;
        self.probe_tput = probe_tput;
        self.eff = self.base_eff;
        self.phase_left = PROBE_EPOCHS;
    }

    fn decide(&mut self, confirm_tput: f64) {
        self.confirming = false;
        let bar = self.base_tput.max(confirm_tput) * (1.0 + DEADBAND);
        if self.probe_tput > bar {
            self.eff = self.cand_eff;
            self.hold_len = HOLD_MIN;
        } else {
            self.dir_down = !self.dir_down;
            self.hold_len = (self.hold_len * 2).min(HOLD_MAX);
            self.settled = self.hold_len == HOLD_MAX;
        }
        self.phase_left = self.hold_len;
    }

    fn step(cur: usize, down: bool, members: usize) -> usize {
        if down {
            (cur / 2).max(1)
        } else {
            (cur * 2).min(members)
        }
    }
}

struct CoreSim {
    clock: f64,
    mailbox: Mailbox<SimReq>,
    log: OpLog,
    alloc: CoreAllocator,
    /// Keys with in-flight Puts: latest assigned version + in-flight count.
    /// Later Puts to the same key pipeline (versions order them); only
    /// reads are delayed by the conflict queue (paper §3.3 "Discussion").
    pending: HashMap<u64, (u32, u32)>,
    deferred: VecDeque<SimReq>,
    inflight: Vec<usize>,
    group: usize,
    /// Per-core DRAM read cache (mirrors the engine's `cache.rs`): a hit
    /// skips the cold PM value read(s); a completed Put invalidates its
    /// key before the response is scheduled.
    cache: SimCache,
}

/// Key-only CLOCK cache for the DES: the engine caches value bytes, but
/// virtual time only needs membership — what matters is whether the Get
/// pays `pm_read_cold_ns` or `cache_hit_ns`.
struct SimCache {
    /// Capacity in entries; 0 disables the cache entirely.
    cap: usize,
    hand: usize,
    /// `(key, referenced)` CLOCK ring.
    slots: Vec<(u64, bool)>,
    map: HashMap<u64, usize>,
}

impl SimCache {
    fn new(cap: usize) -> SimCache {
        SimCache {
            cap,
            hand: 0,
            slots: Vec::new(),
            map: HashMap::new(),
        }
    }

    fn get(&mut self, key: u64) -> bool {
        match self.map.get(&key) {
            Some(&i) => {
                self.slots[i].1 = true;
                true
            }
            None => false,
        }
    }

    fn insert(&mut self, key: u64) {
        if self.cap == 0 || self.map.contains_key(&key) {
            return;
        }
        while self.slots.len() >= self.cap {
            if self.hand >= self.slots.len() {
                self.hand = 0;
            }
            if self.slots[self.hand].1 {
                self.slots[self.hand].1 = false;
                self.hand += 1;
            } else {
                let victim = self.slots[self.hand].0;
                self.remove(victim);
            }
        }
        self.slots.push((key, true));
        self.map.insert(key, self.slots.len() - 1);
    }

    fn remove(&mut self, key: u64) {
        let Some(i) = self.map.remove(&key) else {
            return;
        };
        self.slots.swap_remove(i);
        if let Some(&(moved, _)) = self.slots.get(i) {
            self.map.insert(moved, i);
        }
        if self.hand >= self.slots.len() {
            self.hand = 0;
        }
    }
}

struct CleanerSim {
    clock: f64,
}

/// Per-chunk liveness accounting (shared across the cores' logs, since the
/// leader persists other cores' entries into its own log).
#[derive(Default)]
struct Usage {
    map: HashMap<u64, (u32, u32)>, // chunk base -> (total, dead)
}

impl Usage {
    fn appended(&mut self, chunk: PmAddr, n: u32) {
        self.map.entry(chunk.offset()).or_default().0 += n;
    }

    fn dead(&mut self, entry_addr: u64) {
        let chunk = OpLog::chunk_of(PmAddr(entry_addr));
        if let Some(e) = self.map.get_mut(&chunk.offset()) {
            e.1 = (e.1 + 1).min(e.0);
        }
    }

    fn live_ratio(&self, chunk: PmAddr) -> Option<f64> {
        self.map
            .get(&chunk.offset())
            .and_then(|&(total, dead)| (total > 0).then(|| (total - dead) as f64 / total as f64))
    }

    fn cleaned(&mut self, victim: PmAddr, target: Option<(PmAddr, u32)>) {
        self.map.remove(&victim.offset());
        if let Some((t, live)) = target {
            self.map.entry(t.offset()).or_default().0 += live;
        }
    }
}

/// The FlatStore simulation (built by [`run_flatstore`](crate::run_flatstore)).
pub(crate) struct FlatSim {
    cfg: SimConfig,
    model: ExecModel,
    pm: Arc<PmRegion>,
    mgr: Arc<ChunkManager>,
    charger: Charger,
    index: VIndex,
    cores: Vec<CoreSim>,
    groups: Vec<GroupSim>,
    /// Adaptive-batching controller; `Some` only for adaptive
    /// `PipelinedHb` runs (one tuner — the whole fabric is one group).
    tuner: Option<TunerSim>,
    cleaners: Vec<CleanerSim>,
    posts: Vec<PostSlot>,
    clients: ClientPool,
    usage: Usage,
    nic: Nic,
    batches: u64,
    batched_entries: u64,
    ship_batches: u64,
    ship_msgs: u64,
    /// Cold PM media reads issued on the Get path (entry fetch, plus one
    /// more for pointer payloads). Counted whether or not the cache model
    /// is on, so cache-on vs cache-off runs compare like for like.
    pm_value_reads: u64,
    cache_hits: u64,
    cache_misses: u64,
    /// Virtual-time trace events, on when `cfg.trace_events > 0`. The
    /// simulated core id doubles as the trace `tid`; cleaners render on
    /// tracks `ncores + group`.
    events: Option<EventRing>,
    /// 1-in-N causal-trace sampling (`cfg.trace_sample`); decided when a
    /// request is first polled from its core's mailbox.
    sampler: Sampler,
    /// In-flight sampled spans, keyed by `SimReq::trace`. Stamps are
    /// virtual nanoseconds; observation only, never charged to a clock.
    spans: HashMap<u64, Span>,
    /// Trace-id allocator (deterministic: DES poll order).
    next_trace: u64,
    /// Virtual-time stage breakdown, same schema as the engine's.
    breakdown: StageSet,
}

impl FlatSim {
    pub fn new(cfg: SimConfig, model: ExecModel, kind: SimIndex) -> FlatSim {
        let pool_bytes = cfg.pool_chunks as usize * CHUNK_SIZE as usize;
        // First chunk-sized slab holds the per-core log descriptors.
        let pm = Arc::new(PmRegion::new(pool_bytes + CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(
            Arc::clone(&pm),
            PmAddr(CHUNK_SIZE),
            cfg.pool_chunks,
        ));
        let ngroups = cfg.ncores.div_ceil(cfg.group_size);
        // Adaptive batching only reshapes `PipelinedHb` (the flag is
        // inert otherwise): one batching group spans every core, while
        // cleaners and device streams keep the physical partitioning.
        let adaptive = cfg.adaptive && model == ExecModel::PipelinedHb;
        let mut cores = Vec::with_capacity(cfg.ncores);
        if cfg.ablate.eager_alloc {
            mgr.set_eager_persist(true);
        }
        for c in 0..cfg.ncores {
            let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(c as u64 * 64))
                .expect("pool too small for per-core logs");
            if cfg.ablate.no_padding {
                log.set_batch_padding(false);
            }
            cores.push(CoreSim {
                clock: f64::INFINITY,
                mailbox: Mailbox::new(),
                log,
                alloc: CoreAllocator::new(Arc::clone(&mgr), c as u32),
                pending: HashMap::new(),
                deferred: VecDeque::new(),
                inflight: Vec::new(),
                group: if adaptive { 0 } else { c / cfg.group_size },
                cache: SimCache::new(cfg.read_cache_entries),
            });
        }
        let nbatch = if adaptive { 1 } else { ngroups };
        let groups = (0..nbatch)
            .map(|_| GroupSim {
                pool: Vec::new(),
                lock_free_at: 0.0,
                base_free: if adaptive {
                    vec![0.0; cfg.ncores]
                } else {
                    Vec::new()
                },
            })
            .collect();
        // `group_size` is the initial sweep width; `client_batch` is the
        // target fill (the engine uses `pipeline_depth`: one client's
        // whole pipeline amortized by one flush).
        let tuner =
            adaptive.then(|| TunerSim::new(cfg.ncores, cfg.group_size, cfg.client_batch as u64));
        let cleaners = (0..ngroups)
            .map(|_| CleanerSim {
                clock: if cfg.gc {
                    CLEANER_POLL_NS
                } else {
                    f64::INFINITY
                },
            })
            .collect();
        let device = Device::new(cfg.cost.clone());
        let charger = Charger::new(device, cfg.cpu.clone(), cfg.ncores + ngroups);
        let index = VIndex::build(kind, cfg.ncores);
        let gen = Gen::new(cfg.workload, cfg.keyspace, cfg.seed);
        let metrics = Metrics::new(cfg.warmup, cfg.window_ns);
        let clients = ClientPool::new(
            cfg.clients,
            cfg.client_batch,
            cfg.ncores,
            gen,
            cfg.net.clone(),
            metrics,
            cfg.warmup + cfg.ops,
        );
        FlatSim {
            model,
            pm,
            mgr,
            charger,
            index,
            cores,
            groups,
            tuner,
            cleaners,
            posts: Vec::new(),
            clients,
            usage: Usage::default(),
            nic: Nic::new(cfg.net.nic_ns_per_msg),
            batches: 0,
            batched_entries: 0,
            ship_batches: 0,
            ship_msgs: 0,
            pm_value_reads: 0,
            cache_hits: 0,
            cache_misses: 0,
            events: (cfg.trace_events > 0).then(|| EventRing::new(cfg.trace_events)),
            sampler: Sampler::new(cfg.trace_sample),
            spans: HashMap::new(),
            next_trace: 0,
            breakdown: StageSet::new(),
            cfg,
        }
    }

    fn value_len(&self, key: u64) -> usize {
        match self.cfg.workload {
            WorkloadSpec::Ycsb { value_len, .. } => value_len,
            WorkloadSpec::Etc { .. } => EtcWorkload::value_len(key, self.cfg.keyspace),
        }
    }

    /// Loads every key once, without charging simulated time.
    fn prefill(&mut self) {
        let ncores = self.cfg.ncores;
        let mut batches: Vec<Vec<LogEntry>> = vec![Vec::new(); ncores];
        for key in 0..self.cfg.keyspace {
            let len = self.value_len(key);
            let owner = route(key, ncores);
            let entry = if len <= INLINE_MAX {
                LogEntry::put_inline(key, 1, vec![0xAB; len.max(1)]).expect("inline")
            } else {
                let block = self.cores[owner]
                    .alloc
                    .alloc(8 + len as u64)
                    .expect("prefill space");
                self.pm.write_u64(block, len as u64);
                self.pm.fill(block + 8, len, 0xAB);
                self.pm.persist(block, 8 + len);
                LogEntry::put_ptr(key, 1, block)
            };
            batches[owner].push(entry);
            if batches[owner].len() >= 128 {
                self.flush_prefill(owner, &mut batches[owner]);
            }
        }
        for (owner, batch) in batches.iter_mut().enumerate() {
            let mut b = std::mem::take(batch);
            self.flush_prefill(owner, &mut b);
        }
    }

    fn flush_prefill(&mut self, owner: usize, batch: &mut Vec<LogEntry>) {
        if batch.is_empty() {
            return;
        }
        let addrs = self.cores[owner]
            .log
            .append_batch(batch)
            .expect("prefill log space");
        self.usage
            .appended(OpLog::chunk_of(addrs[0]), addrs.len() as u32);
        for (e, a) in batch.iter().zip(&addrs) {
            self.index.insert(owner, e.key, pack(1, a.offset()));
        }
        batch.clear();
    }

    /// Runs the simulation to completion and returns the summary.
    pub fn run(mut self) -> Summary {
        if self.cfg.prefill {
            self.prefill();
        }
        self.pm.set_trace(true);
        let _ = self.pm.take_events();

        {
            let (clients, cores) = (&mut self.clients, &mut self.cores);
            clients.start(|c, at, req| {
                if cores[c].clock.is_infinite() {
                    cores[c].clock = at;
                }
                cores[c].mailbox.push(at, req);
            });
        }

        while !self.clients.done() {
            // Pick the actor with the smallest virtual clock.
            let mut best = f64::INFINITY;
            let mut who = usize::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                if c.clock < best {
                    best = c.clock;
                    who = i;
                }
            }
            let mut cleaner = usize::MAX;
            for (g, cl) in self.cleaners.iter().enumerate() {
                if cl.clock < best {
                    best = cl.clock;
                    cleaner = g;
                    who = usize::MAX;
                }
            }
            if best.is_infinite() {
                panic!(
                    "simulation stalled: {} completed of {}",
                    self.clients.metrics.completed,
                    self.cfg.warmup + self.cfg.ops
                );
            }
            if who != usize::MAX {
                self.step_core(who);
            } else {
                self.step_cleaner(cleaner);
            }
        }
        let device = self.charger.device.stats();
        let avg_batch = if self.batches == 0 {
            0.0
        } else {
            self.batched_entries as f64 / self.batches as f64
        };
        let ring = self.events.take();
        let mut summary = self.clients.metrics.summary(device, avg_batch);
        summary.persistency = self.charger.persistency();
        summary.ship_batches = self.ship_batches;
        summary.ship_msgs = self.ship_msgs;
        summary.pm_value_reads = self.pm_value_reads;
        summary.cache_hits = self.cache_hits;
        summary.cache_misses = self.cache_misses;
        if let Some(ring) = ring {
            summary.events_dropped = ring.dropped();
            summary.events = ring.into_events();
        }
        if self.cfg.trace_sample > 0 {
            summary.breakdown = Some(Arc::new(self.breakdown));
        }
        summary
    }

    #[allow(clippy::too_many_lines)]
    fn step_core(&mut self, i: usize) {
        let mut t = self.cores[i].clock;
        let mut staged: Vec<usize> = Vec::new();
        let mut pending_fence = false;

        // Naive HB strictly orders the phases: a core with in-flight posts
        // does not poll new requests (Figure 4c).
        let blocked = self.model == ExecModel::NaiveHb && !self.cores[i].inflight.is_empty();

        // ---- Poll the message buffer (FlatRPC) ----
        if !blocked {
            // Small per-step drain budget keeps virtual clocks close
            // together (device causality) and phase interleaving fine-
            // grained, as in the real engine loop.
            let budget = if self.model == ExecModel::NonBatch {
                1
            } else {
                4
            };
            let mut taken = 0;
            // Deferred requests whose conflicts cleared go first.
            let deferred: Vec<SimReq> = {
                let core = &mut self.cores[i];
                let n = core.deferred.len();
                let mut ready = Vec::new();
                for _ in 0..n {
                    let req = core.deferred.pop_front().expect("len");
                    if core.pending.contains_key(&req.op.key()) {
                        core.deferred.push_back(req);
                    } else {
                        ready.push(req);
                    }
                }
                ready
            };
            for req in deferred {
                t = self.admit(i, t, req, &mut staged, &mut pending_fence);
            }
            while taken < budget {
                let Some((_, mut req)) = self.cores[i].mailbox.pop_arrived(t) else {
                    break;
                };
                taken += 1;
                let polled_at = t;
                t += self.cfg.cpu.per_msg_ns;
                // Causal tracing (mirrors the engine's Envelope spans):
                // sampled on first poll; retries keep their span. Stamps
                // are pure observations of the virtual clock.
                if req.trace == 0 && self.sampler.hit() {
                    self.next_trace += 1;
                    req.trace = self.next_trace;
                    let mut span = Span::new(SpanCtx {
                        trace_id: req.trace,
                        op_seq: req.trace,
                        origin_tsc: req.send as u64,
                    });
                    span.core = i as u32;
                    span.stamp(Stage::ClientEnqueue, req.send as u64);
                    span.stamp(Stage::RingTransit, polled_at as u64);
                    span.stamp(Stage::ShardPoll, t as u64);
                    self.spans.insert(req.trace, span);
                }
                // Only reads must wait for in-flight writes of their key;
                // writes pipeline through versioning.
                if !matches!(req.op, Op::Put { .. })
                    && self.cores[i].pending.contains_key(&req.op.key())
                {
                    self.cores[i].deferred.push_back(req);
                    continue;
                }
                t = self.admit(i, t, req, &mut staged, &mut pending_fence);
            }
        }

        // ---- Close the l-persist phase: one fence for all large records ----
        if pending_fence {
            self.pm.fence();
            let ev = self.pm.take_events();
            t = self
                .charger
                .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
        }

        // ---- Publish the staged entries ----
        let posted = !staged.is_empty();
        match self.model {
            ExecModel::PipelinedHb | ExecModel::NaiveHb => {
                let g = self.cores[i].group;
                for id in staged {
                    t += self.cfg.cpu.post_ns;
                    self.posts[id].post_time = t;
                    self.groups[g].pool.push(id);
                    self.cores[i].inflight.push(id);
                }
            }
            ExecModel::Vertical | ExecModel::NonBatch => {
                for &id in &staged {
                    self.posts[id].post_time = t;
                    self.cores[i].inflight.push(id);
                }
                if !staged.is_empty() {
                    t = self.persist_ids(i, t, staged);
                }
            }
        }

        // ---- Leader election + g-persist ----
        // A core competes for the lock right after posting (paper Fig. 5
        // step 3); otherwise it only steps in as a fallback when its own
        // entries sit uncollected — this keeps leadership with the cores
        // that produce work instead of convoying on the slowest one.
        let must_lead = posted
            || self.cores[i]
                .inflight
                .iter()
                .any(|&id| self.posts[id].done.is_none());
        if must_lead {
            t = self.try_lead(i, t);
        }

        // ---- Volatile phase for completed posts ----
        t = self.complete(i, t);

        // ---- Schedule the next wake-up ----
        self.cores[i].clock = self.next_wake(i, t);
    }

    /// Admits one request at time `t`: Gets are served inline; Puts run
    /// their l-persist phase and are staged for posting.
    fn admit(
        &mut self,
        i: usize,
        mut t: f64,
        req: SimReq,
        staged: &mut Vec<usize>,
        pending_fence: &mut bool,
    ) -> f64 {
        // KeyGate closes at admission: for a request that sat in the
        // deferred FIFO the delta is the whole per-key conflict wait.
        self.stamp(req.trace, Stage::KeyGate, t);
        match req.op {
            Op::Get { key } => {
                t += self.index.op_ns(&self.cfg.cpu);
                if let Some(packed) = self.index.get(i, key) {
                    if self.cores[i].cache.get(key) {
                        // DRAM hit: the value never touches PM media.
                        self.cache_hits += 1;
                        t += self.cfg.cpu.cache_hit_ns;
                    } else {
                        if self.cfg.read_cache_entries > 0 {
                            self.cache_misses += 1;
                        }
                        let (_, addr) = unpack(packed);
                        // One cold PM read fetches the entry (inline values
                        // ride in the same lines); pointer payloads cost a
                        // second cold read for the record block.
                        let decoded = LogEntry::decode(&self.pm, PmAddr(addr));
                        let ev = self.pm.take_events();
                        t = self.charger.charge(i, t, &ev, 0.0);
                        t += self.cfg.cpu.pm_read_cold_ns;
                        self.pm_value_reads += 1;
                        if let Ok(Some((e, _))) = decoded {
                            if matches!(e.payload, Payload::Ptr(_)) {
                                t += self.cfg.cpu.pm_read_cold_ns;
                                self.pm_value_reads += 1;
                            }
                        }
                        self.cores[i].cache.insert(key);
                    }
                }
                self.stamp(req.trace, Stage::Execute, t);
                self.respond(&req, t);
                t
            }
            Op::Put { key, value_len } => {
                t += self.index.op_ns(&self.cfg.cpu);
                let version = match self.cores[i].pending.get(&key) {
                    Some(&(latest, _)) => latest.wrapping_add(1) & VERSION_MASK,
                    None => match self.index.get(i, key) {
                        Some(p) => unpack(p).0.wrapping_add(1) & VERSION_MASK,
                        None => 1,
                    },
                };
                // Fat-entry ablation: emulate logging raw index updates by
                // inflating every entry to a 64-byte record.
                let inline_len = if self.cfg.ablate.fat_entries {
                    value_len.clamp(52, INLINE_MAX)
                } else {
                    value_len
                };
                let entry = if value_len <= INLINE_MAX {
                    LogEntry::put_inline(key, version, vec![0xAB; inline_len.max(1)])
                        .expect("inline size")
                } else {
                    t += self.cfg.cpu.alloc_ns;
                    let block = match self.cores[i].alloc.alloc(8 + value_len as u64) {
                        Ok(b) => b,
                        Err(_) => {
                            // Pool exhausted: retry once the cleaner makes
                            // space.
                            assert!(
                                self.cfg.gc,
                                "PM pool exhausted; enlarge pool_chunks or enable gc"
                            );
                            self.cores[i].mailbox.push(t + RETRY_NS, req);
                            return t;
                        }
                    };
                    self.pm.write_u64(block, value_len as u64);
                    self.pm.fill(block + 8, value_len, 0xAB);
                    self.pm.flush(block, 8 + value_len);
                    let ev = self.pm.take_events();
                    t = self
                        .charger
                        .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
                    *pending_fence = true;
                    LogEntry::put_ptr(key, version, block)
                };
                t += self.cfg.cpu.entry_build_ns;
                self.stamp(req.trace, Stage::Execute, t);
                let slot = self.cores[i].pending.entry(key).or_insert((0, 0));
                slot.0 = version;
                slot.1 += 1;
                let id = self.posts.len();
                self.posts.push(PostSlot {
                    core: i,
                    req,
                    version,
                    entry,
                    post_time: t,
                    done: None,
                });
                staged.push(id);
                t
            }
            Op::Delete { key } => {
                // The paper's evaluation workloads have no deletes; treat
                // as a Get miss (kept for API completeness).
                let _ = key;
                self.stamp(req.trace, Stage::Execute, t);
                self.respond(&req, t);
                t
            }
        }
    }

    /// Appends the posts in `ids` to core `i`'s log and marks them done.
    fn persist_ids(&mut self, i: usize, mut t: f64, ids: Vec<usize>) -> f64 {
        let flush_start = t;
        let entries: Vec<LogEntry> = ids.iter().map(|&id| self.posts[id].entry.clone()).collect();
        match self.cores[i].log.append_batch(&entries) {
            Ok(addrs) => {
                let ev = self.pm.take_events();
                t = self
                    .charger
                    .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
                self.usage
                    .appended(OpLog::chunk_of(addrs[0]), addrs.len() as u32);
                // Log shipping (flatrepl): the whole batch travels to each
                // replica as ONE envelope, and the ops only become
                // completable once the slowest replica's durable-apply ack
                // returns. The leader does NOT wait — shipping pipelines
                // like the early lock release — so only the *completion*
                // time moves, by one NIC hop pair per replica plus the
                // backup's own persist.
                let acked_t = if self.cfg.replicas > 0 {
                    let msgs = 2.0 * self.cfg.replicas as f64;
                    let nic = self.nic.delay(t, msgs);
                    self.ship_batches += 1;
                    self.ship_msgs += msgs as u64;
                    if let Some(events) = self.events.as_mut() {
                        events.push(
                            Event::instant("ship", "repl", i as u32, t as u64)
                                .arg("entries", ids.len() as u64),
                        );
                    }
                    t + nic + 2.0 * self.cfg.net.one_way_ns + self.cfg.repl_persist_ns
                } else {
                    t
                };
                for (&id, a) in ids.iter().zip(&addrs) {
                    self.posts[id].done = Some((acked_t, a.offset()));
                    let owner = self.posts[id].core;
                    if self.cores[owner].clock.is_infinite() {
                        self.cores[owner].clock = t;
                    }
                    let trace = self.posts[id].req.trace;
                    if trace != 0 {
                        // Leader-side stamps, exactly the engine's hand-off:
                        // collect → persist → ship → (later) ack gate.
                        self.stamp(trace, Stage::BatchJoin, flush_start);
                        self.stamp(trace, Stage::LeaderPersist, t);
                        if self.cfg.replicas > 0 {
                            self.stamp(trace, Stage::ReplShip, t);
                            self.stamp(trace, Stage::ReplAckWait, acked_t);
                        }
                    }
                }
                if ids.iter().any(|&id| self.posts[id].req.trace != 0) {
                    self.breakdown
                        .record_batch((t - flush_start).max(0.0) as u64, ids.len() as u64);
                }
                self.batches += 1;
                self.batched_entries += ids.len() as u64;
                let stolen = ids.iter().filter(|&&id| self.posts[id].core != i).count();
                if let Some(events) = self.events.as_mut() {
                    events.push(
                        Event::span("batch_flush", "hb", i as u32, flush_start as u64, t as u64)
                            .arg("entries", ids.len() as u64)
                            .arg("stolen", stolen as u64),
                    );
                }
            }
            Err(_) => {
                // Out of chunks: return the posts to the pool and retry
                // after the cleaner runs.
                assert!(
                    self.cfg.gc,
                    "PM pool exhausted; enlarge pool_chunks or enable gc"
                );
                let g = self.cores[i].group;
                match self.model {
                    ExecModel::PipelinedHb | ExecModel::NaiveHb => {
                        self.groups[g].pool.extend(ids);
                    }
                    _ => {
                        // Vertical/NonBatch retry from the same core.
                        for id in ids {
                            self.cores[i].inflight.retain(|&x| x != id);
                            let req = self.posts[id].req;
                            let key = req.op.key();
                            if let Some(slot) = self.cores[i].pending.get_mut(&key) {
                                slot.1 -= 1;
                                if slot.1 == 0 {
                                    self.cores[i].pending.remove(&key);
                                }
                            }
                            self.cores[i].mailbox.push(t + RETRY_NS, req);
                        }
                    }
                }
                t += RETRY_NS;
            }
        }
        t
    }

    fn try_lead(&mut self, i: usize, mut t: f64) -> f64 {
        if !matches!(self.model, ExecModel::PipelinedHb | ExecModel::NaiveHb) {
            return t;
        }
        let g = self.cores[i].group;
        if self.groups[g].pool.is_empty() {
            return t;
        }
        // Adaptive runs sweep only the effective subgroup around this
        // core, and each subgroup base carries its own leader token (the
        // per-list consumer tokens of the real publish fabric).
        let (base, hi, linger_ns, target) = match &self.tuner {
            Some(tu) => {
                let base = i - i % tu.eff;
                (
                    base,
                    (base + tu.eff).min(self.cfg.ncores),
                    tu.linger_ns,
                    tu.target_fill,
                )
            }
            None => (0, self.cfg.ncores, 0.0, 0),
        };
        let free_at = if self.tuner.is_some() {
            self.groups[g].base_free[base]
        } else {
            self.groups[g].lock_free_at
        };
        if free_at > t {
            return t;
        }
        let lock_start = t;
        t += self.cfg.cpu.lock_ns;
        let mut ids = Vec::new();
        {
            let posts = &self.posts;
            self.groups[g].pool.retain(|&id| {
                let p = &posts[id];
                if p.core >= base && p.core < hi && p.post_time <= t {
                    ids.push(id);
                    false
                } else {
                    true
                }
            });
        }
        t += ids.len() as f64 * self.cfg.cpu.collect_per_entry_ns;
        // Linger: an under-filled adaptive leader keeps re-sweeping its
        // subgroup until the window closes or the batch reaches the
        // target fill, absorbing posts as they land in virtual time.
        if self.model == ExecModel::PipelinedHb
            && !ids.is_empty()
            && linger_ns > 0.0
            && (ids.len() as u64) < target
        {
            let deadline = t + linger_ns;
            while (ids.len() as u64) < target {
                let mut pick: Option<(usize, f64)> = None;
                for (pos, &id) in self.groups[g].pool.iter().enumerate() {
                    let p = &self.posts[id];
                    if p.core >= base
                        && p.core < hi
                        && p.post_time <= deadline
                        && pick.is_none_or(|(_, pt)| p.post_time < pt)
                    {
                        pick = Some((pos, p.post_time));
                    }
                }
                let Some((pos, post_time)) = pick else {
                    // Nothing else lands inside the window: wait it out.
                    t = deadline;
                    break;
                };
                let id = self.groups[g].pool.swap_remove(pos);
                t = t.max(post_time) + self.cfg.cpu.collect_per_entry_ns;
                ids.push(id);
            }
        }
        let stolen = ids.iter().filter(|&&id| self.posts[id].core != i).count();
        if stolen > 0 {
            if let Some(events) = self.events.as_mut() {
                events.push(
                    Event::instant("steal", "hb", i as u32, t as u64)
                        .arg("stolen", stolen as u64)
                        .arg("collected", ids.len() as u64),
                );
            }
        }
        if self.model == ExecModel::PipelinedHb {
            // Early release: the next leader can collect while we flush.
            if self.tuner.is_some() {
                self.groups[g].base_free[base] = t;
            } else {
                self.groups[g].lock_free_at = t;
            }
            if let Some(ring) = self.events.as_mut() {
                ring.push(
                    Event::span("group_lock", "hb", i as u32, lock_start as u64, t as u64)
                        .arg("collected", ids.len() as u64),
                );
            }
        }
        if !ids.is_empty() {
            let fill = ids.len() as u64;
            t = self.persist_ids(i, t, ids);
            // Leader-side tuner report, exactly the engine's: the batch's
            // fill, whether the *subgroup* still had posted work afterwards
            // (other subgroups' lists are their own leaders' business), and
            // the (virtual) clock for throughput-phase accounting.
            if self.tuner.is_some() {
                let posts = &self.posts;
                let backlog = self.groups[g].pool.iter().any(|&id| {
                    let p = &posts[id];
                    p.core >= base && p.core < hi && p.post_time <= t
                });
                if let Some(tu) = self.tuner.as_mut() {
                    tu.observe(fill, backlog, t);
                }
            }
        }
        if self.model == ExecModel::NaiveHb {
            self.groups[g].lock_free_at = t;
            if let Some(ring) = self.events.as_mut() {
                ring.push(Event::span(
                    "group_lock",
                    "hb",
                    i as u32,
                    lock_start as u64,
                    t as u64,
                ));
            }
        }
        t
    }

    /// Volatile phase: index update, old-state reclamation, response.
    fn complete(&mut self, i: usize, mut t: f64) -> f64 {
        let mut j = 0;
        while j < self.cores[i].inflight.len() {
            let id = self.cores[i].inflight[j];
            let Some((done_t, addr)) = self.posts[id].done else {
                j += 1;
                continue;
            };
            // Replicated runs: a persisted-but-unacked op stays in flight —
            // the core keeps serving other requests (shipping is pipelined)
            // and `next_wake` re-arms at the ack time.
            if self.cfg.replicas > 0 && done_t > t {
                j += 1;
                continue;
            }
            self.cores[i].inflight.swap_remove(j);
            t = t.max(done_t);
            t += self.index.op_ns(&self.cfg.cpu);
            let key = self.posts[id].req.op.key();
            let version = self.posts[id].version;
            // Write-through invalidation, mirroring the engine: the cached
            // key is dropped before the response is scheduled, even for
            // superseded Puts (one extra miss, never staleness).
            self.cores[i].cache.remove(key);
            // Pipelined same-key Puts may complete out of order across
            // batches; the newest version wins (exactly the rule recovery
            // and the cleaner apply).
            let newest = self
                .index
                .get(i, key)
                .is_none_or(|cur| unpack(cur).0 < version);
            if newest {
                let old = self.index.insert(i, key, pack(version, addr));
                if let Some(old) = old {
                    let (_, old_addr) = unpack(old);
                    self.usage.dead(old_addr);
                    if let Ok(Some((e, _))) = LogEntry::decode(&self.pm, PmAddr(old_addr)) {
                        if let Payload::Ptr(b) = e.payload {
                            t += self.cfg.cpu.alloc_ns;
                            let _ = self.cores[i].alloc.free(b);
                        }
                    }
                    let ev = self.pm.take_events();
                    t = self
                        .charger
                        .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
                }
            } else {
                // Superseded before it was applied: dead on arrival.
                self.usage.dead(addr);
                if let Payload::Ptr(b) = &self.posts[id].entry.payload {
                    let _ = self.cores[i].alloc.free(*b);
                }
            }
            if let Some(slot) = self.cores[i].pending.get_mut(&key) {
                slot.1 -= 1;
                if slot.1 == 0 {
                    self.cores[i].pending.remove(&key);
                }
            }
            let req = self.posts[id].req;
            if self.cfg.read_cache_entries > 0 {
                self.stamp(req.trace, Stage::CacheInvalidate, t);
            }
            self.respond(&req, t);
        }
        t
    }

    /// Stamps `stage` on the span of trace `trace` (no-op for trace 0 —
    /// one map probe per stage on sampled ops, one branch otherwise).
    fn stamp(&mut self, trace: u64, stage: Stage, at: f64) {
        if trace != 0 {
            if let Some(s) = self.spans.get_mut(&trace) {
                s.stamp(stage, at as u64);
            }
        }
    }

    fn respond(&mut self, req: &SimReq, t: f64) {
        let nic = self.nic.delay(t, 2.0); // request + response messages
        let resp = t + self.cfg.cpu.respond_ns + nic + self.cfg.net.one_way_ns;
        if req.trace != 0 {
            if let Some(mut span) = self.spans.remove(&req.trace) {
                span.stamp(Stage::Delivery, resp as u64);
                self.breakdown.record_span(&span);
            }
        }
        let (clients, cores) = (&mut self.clients, &mut self.cores);
        clients.deliver(req, resp, &mut |c, at, r| {
            if cores[c].clock.is_infinite() {
                cores[c].clock = at;
            }
            cores[c].mailbox.push(at, r);
        });
    }

    /// Earliest future time at which core `i` has something to do.
    fn next_wake(&self, i: usize, t: f64) -> f64 {
        let core = &self.cores[i];
        let mut next = f64::INFINITY;
        if let Some(a) = core.mailbox.next_time() {
            next = next.min(a.max(t));
        }
        for &id in &core.inflight {
            if let Some((dt, _)) = self.posts[id].done {
                next = next.min(dt.max(t));
            }
        }
        let g = core.group;
        if !self.groups[g].pool.is_empty() {
            // Adaptive: this core can only lead its own effective
            // subgroup, so posts outside it never wake it (their owners
            // are always lead-eligible for them).
            let (base, hi, free_at) = match &self.tuner {
                Some(tu) => {
                    let base = i - i % tu.eff;
                    (
                        base,
                        (base + tu.eff).min(self.cfg.ncores),
                        self.groups[g].base_free[base],
                    )
                }
                None => (0, self.cfg.ncores, self.groups[g].lock_free_at),
            };
            let earliest_post = self.groups[g]
                .pool
                .iter()
                .map(|&id| &self.posts[id])
                .filter(|p| p.core >= base && p.core < hi)
                .map(|p| p.post_time)
                .fold(f64::INFINITY, f64::min);
            if earliest_post.is_finite() {
                next = next.min(earliest_post.max(free_at).max(t));
            }
        }
        // Something to do *right now* (deferred retries resolved by the
        // above wake conditions anyway).
        if next <= t {
            // Nudge forward to guarantee progress even in degenerate cases.
            return t.max(next) + 1.0;
        }
        next
    }

    fn step_cleaner(&mut self, g: usize) {
        let mut t = self.cleaners[g].clock;
        if self.mgr.free_chunks() >= self.cfg.gc_min_free {
            self.cleaners[g].clock = t + CLEANER_POLL_NS;
            return;
        }
        // Victim: the group's chunk with the lowest live ratio.
        let lo = g * self.cfg.group_size;
        let hi = ((g + 1) * self.cfg.group_size).min(self.cfg.ncores);
        let mut best: Option<(usize, PmAddr, f64)> = None;
        for c in lo..hi {
            let tail = OpLog::chunk_of(self.cores[c].log.tail());
            for &chunk in self.cores[c].log.chunks() {
                if chunk == tail {
                    continue;
                }
                if let Some(r) = self.usage.live_ratio(chunk) {
                    if best.is_none_or(|(_, _, br)| r < br) {
                        best = Some((c, chunk, r));
                    }
                }
            }
        }
        let Some((victim_core, victim, _)) = best else {
            self.cleaners[g].clock = t + CLEANER_POLL_NS;
            return;
        };
        let stream = self.cfg.ncores + g;
        let index = &self.index;
        let ncores = self.cfg.ncores;
        let relocs = match self.cores[victim_core].log.clean_chunk(victim, |e, addr| {
            e.op == LogOp::Put
                && index.get(route(e.key, ncores), e.key) == Some(pack(e.version, addr.offset()))
        }) {
            Ok(r) => r,
            Err(_) => {
                self.cleaners[g].clock = t + CLEANER_POLL_NS;
                return;
            }
        };
        let clean_start = t;
        let ev = self.pm.take_events();
        t = self.charger.charge(stream, t, &ev, GC_SCAN_READ_NS);
        let target = relocs
            .first()
            .map(|r| (OpLog::chunk_of(r.new), relocs.len() as u32));
        self.usage.cleaned(victim, target);
        for r in &relocs {
            t += self.cfg.cpu.gc_cas_ns;
            let owner = route(r.entry.key, ncores);
            let ok = self.index.cas(
                owner,
                r.entry.key,
                pack(r.entry.version, r.old.offset()),
                pack(r.entry.version, r.new.offset()),
            );
            if !ok {
                self.usage.dead(r.new.offset());
            }
        }
        self.mgr
            .return_raw_chunk(victim)
            .expect("victim was reserved");
        if let Some(ring) = self.events.as_mut() {
            ring.push(
                Event::span(
                    "gc_clean",
                    "gc",
                    stream as u32,
                    clean_start as u64,
                    t as u64,
                )
                .arg("relocated", relocs.len() as u64),
            );
        }
        self.clients.metrics.record_gc(t, 1);
        self.cleaners[g].clock = t;
    }
}
