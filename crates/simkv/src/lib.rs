//! Discrete-event evaluation testbed for the FlatStore reproduction.
//!
//! The paper's testbed — 36 Xeon cores, 4 Optane DIMMs, a 100 Gbps
//! InfiniBand cluster — is replaced by a deterministic discrete-event
//! simulation that runs on a single host core:
//!
//! * **Simulated server cores** execute the *real* data-structure code
//!   (the `oplog`, `pmalloc`, `indexes` and `masstree` crates). Every PM
//!   event that code emits (store, cacheline flush, fence, load) is traced
//!   by the `pmem` crate and charged to the core's virtual clock through
//!   the Optane-calibrated [`pmem::cost::Device`] model, so flush counts,
//!   batching arithmetic, chunk rollovers and GC behave exactly as in the
//!   library.
//! * **The HB protocol** (group lock, request pools, stealing, early lock
//!   release, pipelining — paper §3.3/Figure 4) is modeled at event
//!   granularity, with all four execution models selectable.
//! * **FlatRPC** is a message-level network model: one-way latency,
//!   per-message server CPU and closed-loop clients with configurable
//!   batch size (paper §4.3/§5).
//!
//! [`run`] simulates one configuration and returns a [`Summary`]
//! (throughput, latency percentiles, device counters, optional timeline);
//! [`probe`] reproduces the raw-device measurements of Figure 1.
//!
//! # Example
//!
//! ```
//! use simkv::{run, SimConfig, Engine, ExecModel, SimIndex};
//!
//! let cfg = SimConfig {
//!     engine: Engine::FlatStore { model: ExecModel::PipelinedHb, index: SimIndex::Hash },
//!     ncores: 4,
//!     group_size: 4,
//!     clients: 16,
//!     keyspace: 10_000,
//!     ops: 5_000,
//!     warmup: 500,
//!     ..SimConfig::default()
//! };
//! let summary = run(&cfg);
//! assert!(summary.mops > 0.0);
//! ```

mod basesim;
pub mod clussim;
mod common;
mod flatsim;
mod metrics;
mod params;
pub mod probe;

pub use clussim::{run_cluster, ClusterSimConfig, ClusterSummary, MigrationModel};
pub use metrics::{Summary, WindowStat};
pub use params::{
    Ablation, BaselineKind, CostParams, CpuParams, Engine, ExecModel, NetParams, SimConfig,
    SimIndex, WorkloadSpec,
};

/// Runs one simulation to completion.
///
/// # Panics
///
/// Panics if the configuration starves the simulation (PM pool exhausted
/// with GC disabled, zero clients, …) — configuration errors, not runtime
/// conditions.
pub fn run(cfg: &SimConfig) -> Summary {
    match cfg.engine {
        Engine::FlatStore { model, index } => {
            flatsim::FlatSim::new(cfg.clone(), model, index).run()
        }
        Engine::Baseline(kind) => basesim::BaseSim::new(cfg.clone(), kind).run(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::KeyDist;

    fn quick(engine: Engine) -> SimConfig {
        SimConfig {
            engine,
            ncores: 4,
            group_size: 4,
            clients: 32,
            client_batch: 4,
            keyspace: 20_000,
            pool_chunks: 64,
            ops: 20_000,
            warmup: 2_000,
            ..SimConfig::default()
        }
    }

    #[test]
    fn flatstore_sim_runs_and_batches() {
        let cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        let s = run(&cfg);
        assert!(s.mops > 0.0);
        assert!(s.avg_latency_ns > 0.0);
        assert!(s.avg_batch >= 1.0, "avg batch {}", s.avg_batch);
        assert!(s.device.media_writes > 0);
    }

    #[test]
    fn all_exec_models_complete() {
        for model in [
            ExecModel::NonBatch,
            ExecModel::Vertical,
            ExecModel::NaiveHb,
            ExecModel::PipelinedHb,
        ] {
            let cfg = quick(Engine::FlatStore {
                model,
                index: SimIndex::Hash,
            });
            let s = run(&cfg);
            assert!(s.ops >= cfg.ops, "{model:?} measured {}", s.ops);
        }
    }

    #[test]
    fn all_baselines_complete() {
        for kind in [
            BaselineKind::Cceh,
            BaselineKind::LevelHashing,
            BaselineKind::FastFair,
            BaselineKind::FpTree,
        ] {
            let mut cfg = quick(Engine::Baseline(kind));
            cfg.keyspace = 5_000;
            cfg.ops = 5_000;
            cfg.warmup = 500;
            let s = run(&cfg);
            assert!(s.mops > 0.0, "{kind:?}");
        }
    }

    #[test]
    fn flatstore_beats_cceh_on_small_puts() {
        // The paper's headline: ≥2× on 8 B values, 100 % Put.
        let mut f = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        f.workload = WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len: 8,
            put_ratio: 1.0,
        };
        f.ncores = 8;
        f.group_size = 8;
        f.clients = 128;
        let mut b = f.clone();
        b.engine = Engine::Baseline(BaselineKind::Cceh);
        let fs = run(&f);
        let cc = run(&b);
        // The simulated gap plateaus around 1.5× for this configuration;
        // assert safely below the plateau so workload-stream changes
        // (e.g. a different RNG) cannot flip the verdict.
        assert!(
            fs.mops > cc.mops * 1.4,
            "FlatStore {} vs CCEH {}",
            fs.mops,
            cc.mops
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.mops, b.mops);
        assert_eq!(a.p99_ns, b.p99_ns);
    }

    #[test]
    fn masstree_index_variant_runs() {
        let cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Masstree,
        });
        let s = run(&cfg);
        assert!(s.mops > 0.0);
    }

    #[test]
    fn pipelined_hb_writes_less_media_than_nonbatch() {
        // Horizontal batching coalesces per-entry flushes into cacheline
        // batches; at the device level that must show up as fewer 256 B
        // media writes for the same op stream.
        let hb = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        let mut nb = hb.clone();
        nb.engine = Engine::FlatStore {
            model: ExecModel::NonBatch,
            index: SimIndex::Hash,
        };
        let hb_run = run(&hb);
        let nb_run = run(&nb);
        assert!(
            hb_run.device.media_writes < nb_run.device.media_writes,
            "PipelinedHb {} media writes vs NonBatch {}",
            hb_run.device.media_writes,
            nb_run.device.media_writes
        );
    }

    #[test]
    fn trace_ring_captures_per_core_batch_flushes() {
        let mut cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        cfg.trace_events = 1 << 16;
        let s = run(&cfg);
        assert!(!s.events.is_empty(), "trace ring stayed empty");
        let flush_tids: std::collections::BTreeSet<u32> = s
            .events
            .iter()
            .filter(|e| e.name == "batch_flush")
            .map(|e| e.tid)
            .collect();
        assert!(
            flush_tids.len() >= 4,
            "expected batch_flush spans on all 4 cores, saw tids {flush_tids:?}"
        );
        assert!(
            s.events.iter().any(|e| e.name == "group_lock"),
            "no group_lock spans recorded"
        );
        // Disabled by default: the same config without the knob records
        // nothing, so the ring costs nothing unless asked for.
        let mut off = cfg.clone();
        off.trace_events = 0;
        let s_off = run(&off);
        assert!(s_off.events.is_empty());
        assert_eq!(s_off.events_dropped, 0);
    }

    #[test]
    fn trace_sample_mirrors_breakdown_without_perturbing_time() {
        let mut cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        cfg.replicas = 1;
        cfg.read_cache_entries = 64;
        let off = run(&cfg);
        let mut traced = cfg.clone();
        traced.trace_sample = 4;
        let on = run(&traced);
        // Tracing only observes the virtual clock: every performance
        // number must be bit-identical with sampling on or off.
        assert_eq!(off.mops, on.mops);
        assert_eq!(off.p99_ns, on.p99_ns);
        assert_eq!(off.device.media_writes, on.device.media_writes);
        assert!(off.breakdown.is_none());
        let b = on.breakdown.as_ref().expect("sampled run has a breakdown");
        assert!(b.spans() > 0, "no spans recorded");
        // Same report schema as the engine's latency_breakdown section,
        // including the replication and cache stages this config exercises.
        let r = on.report("sim");
        assert_eq!(
            r.get("latency_breakdown", "spans"),
            Some(&obs::Value::U64(b.spans()))
        );
        for row in [
            "ring_transit_p50_ns",
            "leader_persist_p50_ns",
            "repl_ship_p50_ns",
            "repl_ack_wait_p50_ns",
            "cache_invalidate_p50_ns",
            "end_to_end_p50_ns",
            "persist_per_entry_p50_ns",
        ] {
            assert!(
                r.get("latency_breakdown", row).is_some(),
                "missing breakdown row {row}"
            );
        }
    }

    #[test]
    fn gc_timeline_records_cleaning() {
        let mut cfg = quick(Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        });
        cfg.ncores = 2;
        cfg.group_size = 2;
        cfg.clients = 16;
        cfg.pool_chunks = 12;
        cfg.keyspace = 3_000;
        cfg.ops = 120_000;
        cfg.warmup = 1_000;
        cfg.gc = true;
        cfg.gc_min_free = 9;
        cfg.window_ns = 1e6;
        cfg.workload = WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len: 128,
            put_ratio: 1.0,
        };
        let s = run(&cfg);
        let cleaned: u64 = s.timeline.iter().map(|w| w.gc_chunks).sum();
        assert!(cleaned > 0, "cleaner never ran");
        assert!(s.ops >= cfg.ops, "puts must keep completing under GC");
    }
}
