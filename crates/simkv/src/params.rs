//! Simulation parameters: CPU costs, network model and experiment
//! configuration.

pub use pmem::cost::CostParams;
use workloads::KeyDist;

/// Per-operation CPU costs in nanoseconds, charged to the simulated core's
//  clock alongside the device model's persistence costs.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuParams {
    /// Parsing/dispatching one request from the message buffer.
    pub per_msg_ns: f64,
    /// Volatile hash-index operation (DRAM CCEH probe/insert).
    pub hash_op_ns: f64,
    /// Volatile tree operation (Masstree / volatile FAST&FAIR traversal).
    pub tree_op_ns: f64,
    /// Building one compacted log entry.
    pub entry_build_ns: f64,
    /// Posting an entry descriptor to the request pool.
    pub post_ns: f64,
    /// Acquiring the group lock.
    pub lock_ns: f64,
    /// Collecting one stolen entry while leading.
    pub collect_per_entry_ns: f64,
    /// Allocator fast path.
    pub alloc_ns: f64,
    /// Writing one byte into PM (store bandwidth, before flushing).
    pub store_ns_per_byte: f64,
    /// A PM load that mostly hits the CPU cache (index probes on PM).
    pub pm_read_cached_ns: f64,
    /// A cold PM load (reading a value record on the Get path).
    pub pm_read_cold_ns: f64,
    /// Serving a Get from the DRAM read cache (hash probe + copy-out);
    /// replaces the cold PM load(s) on a hit.
    pub cache_hit_ns: f64,
    /// Preparing and posting the response (incl. agent-core delegation).
    pub respond_ns: f64,
    /// The cleaner's per-relocation index CAS.
    pub gc_cas_ns: f64,
}

impl Default for CpuParams {
    fn default() -> Self {
        CpuParams {
            per_msg_ns: 150.0,
            hash_op_ns: 90.0,
            tree_op_ns: 700.0,
            entry_build_ns: 35.0,
            post_ns: 40.0,
            lock_ns: 30.0,
            collect_per_entry_ns: 15.0,
            alloc_ns: 60.0,
            store_ns_per_byte: 0.05,
            pm_read_cached_ns: 25.0,
            pm_read_cold_ns: 170.0,
            cache_hit_ns: 30.0,
            respond_ns: 150.0,
            gc_cas_ns: 120.0,
        }
    }
}

/// The FlatRPC network model (paper §4.3): 100 Gbps InfiniBand with
/// RDMA-written message buffers and agent-core response delegation.
#[derive(Debug, Clone, PartialEq)]
pub struct NetParams {
    /// One-way client↔server latency.
    pub one_way_ns: f64,
    /// Client-side think/processing time between completed batch and next.
    pub client_think_ns: f64,
    /// Shared NIC/agent-core service time per message (a request-response
    /// pair costs two messages). FlatRPC measures 52.7 M msg/s on the
    /// paper's platform (§4.3); this shared resource — not per-core CPU —
    /// is what caps FlatStore's small-value throughput, and why skewed
    /// loads barely hurt it.
    pub nic_ns_per_msg: f64,
}

impl Default for NetParams {
    fn default() -> Self {
        NetParams {
            one_way_ns: 900.0,
            client_think_ns: 300.0,
            nic_ns_per_msg: 14.0,
        }
    }
}

/// Which engine a simulation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// FlatStore with the given execution model and index.
    FlatStore {
        /// The batching model (Figure 4).
        model: ExecModel,
        /// The volatile index flavor.
        index: SimIndex,
    },
    /// A compared persistent-index system (Table 1).
    Baseline(BaselineKind),
}

/// FlatStore batching models (paper Figure 4 / §5.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecModel {
    /// One request at a time ("Base").
    NonBatch,
    /// Per-core batching only.
    Vertical,
    /// Horizontal batching, lock held through the flush.
    NaiveHb,
    /// Pipelined horizontal batching (the paper's design).
    PipelinedHb,
}

/// FlatStore volatile index flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimIndex {
    /// Per-core volatile CCEH (FlatStore-H).
    Hash,
    /// Shared Masstree (FlatStore-M).
    Masstree,
    /// Shared volatile FAST&FAIR (FlatStore-FF).
    FastFair,
}

/// The compared systems (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaselineKind {
    /// CCEH, per-core instance, persistent mode.
    Cceh,
    /// Level-Hashing, per-core instance, persistent mode.
    LevelHashing,
    /// FAST&FAIR, one shared persistent instance.
    FastFair,
    /// FPTree, one shared instance (DRAM inner, PM leaves).
    FpTree,
}

impl BaselineKind {
    /// Display name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            BaselineKind::Cceh => "CCEH",
            BaselineKind::LevelHashing => "Level-Hashing",
            BaselineKind::FastFair => "FAST&FAIR",
            BaselineKind::FpTree => "FPTree",
        }
    }
}

/// Workload specification for a simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WorkloadSpec {
    /// §5.1 YCSB microbenchmark: fixed value size, uniform/zipfian keys.
    Ycsb {
        /// Key popularity.
        dist: KeyDist,
        /// Value size in bytes.
        value_len: usize,
        /// Put fraction in [0, 1].
        put_ratio: f64,
    },
    /// §5.2 Facebook ETC trimodal mix.
    Etc {
        /// Put fraction in [0, 1].
        put_ratio: f64,
    },
}

/// Design-choice ablation switches (all off = the paper's design).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ablation {
    /// Disable cacheline padding between log batches (§3.2 "Padding"):
    /// adjacent batches share cachelines and hit the repeat-flush stall.
    pub no_padding: bool,
    /// Persist allocator bitmaps eagerly on every alloc/free instead of
    /// lazily (§3.2 "Lazy-persist Allocator").
    pub eager_alloc: bool,
    /// Replace the 16-byte compacted entries with 64-byte "fat" entries
    /// (what logging raw index updates costs, §3.2 "Log Entry Compaction").
    pub fat_entries: bool,
}

/// One simulation run's configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The engine under test.
    pub engine: Engine,
    /// Simulated server cores.
    pub ncores: usize,
    /// Cores per horizontal-batching group.
    pub group_size: usize,
    /// Adaptive horizontal batching, mirroring the engine's
    /// `Config::adaptive`: one publish fabric spans every core and the
    /// DES twin of the engine's `BatchTuner` (same epoch length, bounds
    /// and ladder moves) retunes the effective sweep width and the
    /// leader linger window each epoch. `group_size` becomes the initial
    /// sweep width; cleaners and device streams keep the physical
    /// `group_size` partitioning. Only meaningful with
    /// [`ExecModel::PipelinedHb`] — for every other model the flag is
    /// inert and the simulation stays bit-identical to `adaptive: false`.
    pub adaptive: bool,
    /// Closed-loop client threads.
    pub clients: usize,
    /// Requests per client batch (paper's default is 8).
    pub client_batch: usize,
    /// Key-space size (paper: 192 M; scaled down by default to fit RAM).
    pub keyspace: u64,
    /// The workload.
    pub workload: WorkloadSpec,
    /// PM pool chunks (4 MB each).
    pub pool_chunks: u32,
    /// Insert every key before measuring.
    pub prefill: bool,
    /// Operations to simulate after warm-up.
    pub ops: u64,
    /// Operations discarded as warm-up.
    pub warmup: u64,
    /// Enable the per-group log cleaner.
    pub gc: bool,
    /// Cleaner pressure threshold (free chunks).
    pub gc_min_free: u32,
    /// CPU cost calibration.
    pub cpu: CpuParams,
    /// Device cost calibration.
    pub cost: CostParams,
    /// Network calibration.
    pub net: NetParams,
    /// Passive backups each persisted batch is shipped to (0 = standalone,
    /// no replication). Shipping is batched exactly like the paper's
    /// horizontal batching: ONE request/ack message pair per replica per
    /// *batch*, so the per-operation NIC cost of replication shrinks as
    /// batches grow.
    pub replicas: usize,
    /// Backup-side durability time for one shipped batch (its own log
    /// append — flush plus fence — before the ack comes back).
    pub repl_persist_ns: f64,
    /// Design-choice ablations (benchmarks only).
    pub ablate: Ablation,
    /// Per-core DRAM read-cache capacity in *entries* (the engine's
    /// `read_cache_bytes`, divided by core count and mean entry cost);
    /// 0 disables the cache model and leaves every Get charging the full
    /// cold PM read — bit-identical to the pre-cache simulation.
    pub read_cache_entries: usize,
    /// RNG seed.
    pub seed: u64,
    /// Throughput-timeline window (ns); 0 disables the timeline.
    pub window_ns: f64,
    /// Capacity of the virtual-time trace-event ring (batch flushes, group
    /// locking, stealing, cleaning); 0 disables event collection. When the
    /// ring overflows the oldest events are dropped, so a long run keeps
    /// its most recent window.
    pub trace_events: usize,
    /// Causal-tracing sample rate, mirroring the engine's
    /// `Config::trace_sample`: every Nth polled request gets a
    /// virtual-time stage vector recorded into the summary's
    /// `latency_breakdown` section (same schema as the engine's). 1
    /// traces every request, 0 disables tracing. Sampling only
    /// *observes* the simulation — virtual timing is bit-identical with
    /// tracing on or off.
    pub trace_sample: u64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            engine: Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
            ncores: 36,
            group_size: 18,
            adaptive: false,
            clients: 288,
            client_batch: 8,
            keyspace: 200_000,
            workload: WorkloadSpec::Ycsb {
                dist: KeyDist::Uniform,
                value_len: 64,
                put_ratio: 1.0,
            },
            pool_chunks: 256,
            prefill: true,
            ops: 200_000,
            warmup: 20_000,
            gc: false,
            gc_min_free: 16,
            cpu: CpuParams::default(),
            cost: CostParams::default(),
            net: NetParams::default(),
            replicas: 0,
            repl_persist_ns: 500.0,
            ablate: Ablation::default(),
            read_cache_entries: 0,
            seed: 42,
            window_ns: 0.0,
            trace_events: 0,
            trace_sample: 0,
        }
    }
}
