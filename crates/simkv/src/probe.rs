//! Raw-device probes reproducing the paper's Figure 1 measurements
//! (§2.3's empirical study of Optane DCPMM).

use pmem::cost::{CostParams, Device};

/// Access pattern for [`write_latency`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Consecutive addresses.
    Seq,
    /// Random addresses.
    Rnd,
    /// Repeated write+flush of the same cacheline (Fig. 1c "In-place").
    InPlace,
}

fn lcg(state: &mut u64) -> u64 {
    *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
    *state >> 17
}

/// Simulates `threads` concurrent writers each issuing `ops_per_thread`
/// writes of `io_size` bytes (flush + fence per write, as §2.3 measures),
/// sequential or random. Returns aggregate bandwidth in GB/s.
pub fn write_bandwidth(
    params: &CostParams,
    threads: usize,
    io_size: u64,
    seq: bool,
    ops_per_thread: u64,
) -> f64 {
    let mut dev = Device::new(params.clone());
    let mut clocks = vec![0.0f64; threads];
    let mut cursors: Vec<u64> = (0..threads as u64).map(|t| t * (1 << 30)).collect();
    let mut rng = 0x243F_6A88_85A3_08D3u64;
    let lines_per_io = io_size.div_ceil(64);
    for _ in 0..ops_per_thread {
        for (t, clock) in clocks.iter_mut().enumerate() {
            let addr = if seq {
                let a = cursors[t];
                cursors[t] += io_size;
                a
            } else {
                (lcg(&mut rng) % (1 << 34)) & !(io_size - 1)
            };
            let mut tt = *clock;
            let mut done = tt;
            for l in 0..lines_per_io {
                tt += params.flush_issue_ns;
                done = done.max(dev.flush(tt, t as u64, addr / 64 + l));
            }
            *clock = tt.max(done); // fence
        }
    }
    let end = clocks.iter().copied().fold(0.0, f64::max);
    let bytes = threads as u64 * ops_per_thread * io_size;
    bytes as f64 / end // B/ns == GB/s
}

/// Aggregate random-write throughput in Mops/s for `io_size`-byte writes —
/// the "Optane 64B Writes" series of Fig. 1(a).
pub fn write_throughput_mops(
    params: &CostParams,
    threads: usize,
    io_size: u64,
    ops_per_thread: u64,
) -> f64 {
    let gbps = write_bandwidth(params, threads, io_size, false, ops_per_thread);
    gbps * 1e9 / io_size as f64 / 1e6
}

/// Mean single-thread write+flush+fence latency for the pattern (Fig. 1c).
pub fn write_latency(params: &CostParams, pattern: Pattern, ops: u64) -> f64 {
    let mut dev = Device::new(params.clone());
    let mut clock = 0.0f64;
    let mut rng = 0x13198A2E_03707344u64;
    let mut cursor = 0u64;
    for _ in 0..ops {
        let line = match pattern {
            Pattern::Seq => {
                cursor += 1;
                cursor
            }
            Pattern::Rnd => lcg(&mut rng) % (1 << 28),
            Pattern::InPlace => 42,
        };
        clock += params.flush_issue_ns;
        let done = dev.flush(clock, 0, line);
        clock = clock.max(done);
    }
    clock / ops as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn seq_beats_rnd_at_low_concurrency() {
        let seq = write_bandwidth(&p(), 4, 256, true, 2000);
        let rnd = write_bandwidth(&p(), 4, 256, false, 2000);
        assert!(
            seq > rnd * 1.3,
            "sequential should be clearly faster: {seq} vs {rnd}"
        );
    }

    #[test]
    fn seq_and_rnd_converge_at_high_concurrency() {
        let seq = write_bandwidth(&p(), 40, 256, true, 1000);
        let rnd = write_bandwidth(&p(), 40, 256, false, 1000);
        let ratio = seq / rnd;
        assert!(
            (0.8..1.3).contains(&ratio),
            "at 40 threads seq/rnd should converge, got {ratio}"
        );
    }

    #[test]
    fn bandwidth_is_not_scalable() {
        let a = write_bandwidth(&p(), 8, 256, false, 2000);
        let b = write_bandwidth(&p(), 40, 256, false, 2000);
        assert!(
            b < a * 1.5,
            "write bandwidth must saturate: 8 thr {a} GB/s vs 40 thr {b} GB/s"
        );
    }

    #[test]
    fn in_place_latency_is_hundreds_of_ns_larger() {
        let inplace = write_latency(&p(), Pattern::InPlace, 5000);
        let seq = write_latency(&p(), Pattern::Seq, 5000);
        let rnd = write_latency(&p(), Pattern::Rnd, 5000);
        assert!(inplace > 700.0, "in-place {inplace} ns");
        assert!(seq < rnd, "seq {seq} < rnd {rnd}");
        assert!(inplace > rnd * 2.0);
    }

    #[test]
    fn throughput_grows_then_plateaus() {
        let t1 = write_throughput_mops(&p(), 1, 64, 4000);
        let t8 = write_throughput_mops(&p(), 8, 64, 4000);
        let t20 = write_throughput_mops(&p(), 20, 64, 4000);
        assert!(t8 > t1 * 2.0, "scaling: {t1} -> {t8}");
        assert!(t20 <= t8 * 2.0, "plateau: {t8} -> {t20}");
    }
}
