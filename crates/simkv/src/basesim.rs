//! Discrete-event simulation of the compared systems (paper Table 1):
//! a persistent index in PM plus the lazy-persist allocator for records.
//! Each simulated core runs the *real* index structure in persistent mode;
//! every flush/fence/read the structure emits is charged to virtual time.

use std::sync::Arc;

use indexes::{Cceh, FastFair, FpTree, Index, LevelHash, Mode};
use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::cost::Device;
use pmem::{PmAddr, PmRegion};
use workloads::{EtcWorkload, Op};

use crate::common::{route, Charger, ClientPool, Gen, Mailbox, Nic, SimReq};
use crate::metrics::{Metrics, Summary};
use crate::params::{BaselineKind, SimConfig, WorkloadSpec};

/// The persistent index under test.
enum PIndex {
    /// Per-core instances, locks removed (paper §5 "we create a
    /// Level-Hashing/CCEH instance for each server core").
    Cceh(Vec<Cceh>),
    Level(Vec<LevelHash>),
    /// One shared instance for range support (paper: "a single
    /// FPTree/FAST-FAIR instance is shared by all the server cores").
    Ff(FastFair),
    Fp(FpTree),
}

impl PIndex {
    fn insert(&mut self, core: usize, key: u64, val: u64) {
        let r = match self {
            PIndex::Cceh(v) => v[core].insert(key, val),
            PIndex::Level(v) => v[core].insert(key, val),
            PIndex::Ff(t) => t.insert(key, val),
            PIndex::Fp(t) => t.insert(key, val),
        };
        r.map(|_| ()).expect("index arena exhausted — enlarge pool")
    }

    fn get(&self, core: usize, key: u64) -> Option<u64> {
        match self {
            PIndex::Cceh(v) => v[core].get(key),
            PIndex::Level(v) => v[core].get(key),
            PIndex::Ff(t) => t.get(key),
            PIndex::Fp(t) => t.get(key),
        }
    }

    fn op_ns(&self, cpu: &crate::params::CpuParams) -> f64 {
        match self {
            PIndex::Cceh(_) | PIndex::Level(_) => cpu.hash_op_ns,
            _ => cpu.tree_op_ns,
        }
    }
}

struct CoreSim {
    clock: f64,
    mailbox: Mailbox<SimReq>,
    alloc: CoreAllocator,
}

/// Extra per-op costs of a shared persistent tree: pointer-chasing loads
/// from PM during traversal, and a serialized update section (the paper's
/// shared FPTree/FAST&FAIR instances synchronize their structural updates;
/// this horizon is what keeps them from scaling with cores).
#[derive(Debug, Clone, Copy)]
struct TreeCosts {
    /// PM levels traversed per operation (charged at cold-read latency).
    pm_levels: f64,
    /// Whether structural updates serialize on the shared instance.
    serialized: bool,
}

/// The baseline simulation (built by [`run_baseline`](crate::run_baseline)).
pub(crate) struct BaseSim {
    cfg: SimConfig,
    pm: Arc<PmRegion>,
    charger: Charger,
    index: PIndex,
    cores: Vec<CoreSim>,
    clients: ClientPool,
    /// key -> record block (so overwrites free the old block, as the
    /// paper's setup does through the shared lazy-persist allocator).
    blocks: std::collections::HashMap<u64, (PmAddr, u32)>,
    tree: Option<TreeCosts>,
    /// The shared tree's update-section horizon.
    tree_free_at: f64,
    nic: Nic,
}

impl BaseSim {
    pub fn new(cfg: SimConfig, kind: BaselineKind) -> BaseSim {
        // Layout: index arenas first (4 MB-aligned), then the chunk pool.
        let ncores = cfg.ncores;
        let per_core_arena: u64 = 192 << 20; // hash indexes, per core
        let shared_arena: u64 = 4 << 30; // trees, single instance
        let arena_total = match kind {
            BaselineKind::Cceh | BaselineKind::LevelHashing => per_core_arena * ncores as u64,
            _ => shared_arena,
        };
        let arena_total = arena_total.next_multiple_of(CHUNK_SIZE);
        let pool_bytes = cfg.pool_chunks as u64 * CHUNK_SIZE;
        let pm = Arc::new(PmRegion::new((arena_total + pool_bytes) as usize));
        let mgr = Arc::new(ChunkManager::format(
            Arc::clone(&pm),
            PmAddr(arena_total),
            cfg.pool_chunks,
        ));
        let index = match kind {
            BaselineKind::Cceh => PIndex::Cceh(
                (0..ncores)
                    .map(|c| {
                        Cceh::new(
                            Arc::clone(&pm),
                            PmAddr(c as u64 * per_core_arena),
                            per_core_arena,
                            Mode::Persistent,
                            6,
                        )
                        .expect("arena")
                    })
                    .collect(),
            ),
            BaselineKind::LevelHashing => PIndex::Level(
                (0..ncores)
                    .map(|c| {
                        LevelHash::new(
                            Arc::clone(&pm),
                            PmAddr(c as u64 * per_core_arena),
                            per_core_arena,
                            Mode::Persistent,
                            // Pre-sized "big enough" (paper §5): avoid
                            // resizes during measurement.
                            (cfg.keyspace.div_ceil(ncores as u64) / 2).next_power_of_two(),
                        )
                        .expect("arena")
                    })
                    .collect(),
            ),
            BaselineKind::FastFair => PIndex::Ff(
                FastFair::new(Arc::clone(&pm), PmAddr(0), shared_arena, Mode::Persistent)
                    .expect("arena"),
            ),
            BaselineKind::FpTree => PIndex::Fp(
                FpTree::new(Arc::clone(&pm), PmAddr(0), shared_arena, Mode::Persistent)
                    .expect("arena"),
            ),
        };
        let cores = (0..ncores)
            .map(|c| CoreSim {
                clock: f64::INFINITY,
                mailbox: Mailbox::new(),
                alloc: CoreAllocator::new(Arc::clone(&mgr), c as u32),
            })
            .collect();
        let device = Device::new(cfg.cost.clone());
        let charger = Charger::new(device, cfg.cpu.clone(), ncores);
        let gen = Gen::new(cfg.workload, cfg.keyspace, cfg.seed);
        let metrics = Metrics::new(cfg.warmup, cfg.window_ns);
        let clients = ClientPool::new(
            cfg.clients,
            cfg.client_batch,
            ncores,
            gen,
            cfg.net.clone(),
            metrics,
            cfg.warmup + cfg.ops,
        );
        let nic = Nic::new(cfg.net.nic_ns_per_msg);
        let tree = match kind {
            BaselineKind::FastFair => Some(TreeCosts {
                pm_levels: 4.0, // all nodes in PM
                serialized: true,
            }),
            BaselineKind::FpTree => Some(TreeCosts {
                pm_levels: 1.0, // leaves only; inner nodes are DRAM
                serialized: true,
            }),
            _ => None,
        };
        BaseSim {
            cfg,
            pm,
            charger,
            index,
            cores,
            clients,
            blocks: std::collections::HashMap::new(),
            tree,
            tree_free_at: 0.0,
            nic,
        }
    }

    fn value_len(&self, key: u64) -> usize {
        match self.cfg.workload {
            WorkloadSpec::Ycsb { value_len, .. } => value_len,
            WorkloadSpec::Etc { .. } => EtcWorkload::value_len(key, self.cfg.keyspace),
        }
    }

    fn prefill(&mut self) {
        for key in 0..self.cfg.keyspace {
            let owner = route(key, self.cfg.ncores);
            let len = self.value_len(key);
            let block = self.cores[owner]
                .alloc
                .alloc(8 + len as u64)
                .expect("prefill space");
            self.pm.write_u64(block, len as u64);
            self.pm.fill(block + 8, len, 0xCD);
            self.pm.persist(block, 8 + len);
            self.index.insert(owner, key, block.offset());
            self.blocks.insert(key, (block, len as u32));
        }
    }

    pub fn run(mut self) -> Summary {
        if self.cfg.prefill {
            self.prefill();
        }
        self.pm.set_trace(true);
        let _ = self.pm.take_events();
        {
            let (clients, cores) = (&mut self.clients, &mut self.cores);
            clients.start(|c, at, req| {
                if cores[c].clock.is_infinite() {
                    cores[c].clock = at;
                }
                cores[c].mailbox.push(at, req);
            });
        }
        while !self.clients.done() {
            let mut best = f64::INFINITY;
            let mut who = usize::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                if c.clock < best {
                    best = c.clock;
                    who = i;
                }
            }
            if best.is_infinite() {
                panic!(
                    "baseline simulation stalled at {} of {}",
                    self.clients.metrics.completed,
                    self.cfg.warmup + self.cfg.ops
                );
            }
            self.step_core(who);
        }
        let device = self.charger.device.stats();
        let mut summary = self.clients.metrics.summary(device, 1.0);
        summary.persistency = self.charger.persistency();
        summary
    }

    fn step_core(&mut self, i: usize) {
        // One request per step: fine-grained stepping keeps the cores'
        // virtual clocks close together, so the shared media horizon stays
        // causally consistent (min-clock conservative DES).
        let mut t = self.cores[i].clock;
        {
            let Some((_, req)) = self.cores[i].mailbox.pop_arrived(t) else {
                self.cores[i].clock = match self.cores[i].mailbox.next_time() {
                    Some(a) => a.max(t),
                    None => f64::INFINITY,
                };
                return;
            };
            t += self.cfg.cpu.per_msg_ns;
            match req.op {
                Op::Put { key, value_len } => {
                    // Record write + persist through the lazy-persist
                    // allocator (paper: all compared systems store records
                    // this way and keep only a pointer in the index).
                    t += self.cfg.cpu.alloc_ns;
                    let block = self.cores[i]
                        .alloc
                        .alloc(8 + value_len as u64)
                        .expect("pool exhausted — enlarge pool_chunks");
                    self.pm.write_u64(block, value_len as u64);
                    self.pm.fill(block + 8, value_len, 0xCD);
                    self.pm.persist(block, 8 + value_len);
                    // Record persist is core-local: charge it outside any
                    // shared-tree section.
                    let ev = self.pm.take_events();
                    t = self
                        .charger
                        .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
                    t += self.index.op_ns(&self.cfg.cpu);
                    if let Some(tree) = self.tree {
                        t += tree.pm_levels * self.cfg.cpu.pm_read_cold_ns;
                        if tree.serialized {
                            // Shared-instance update section: wait for the
                            // previous structural update to finish.
                            t = t.max(self.tree_free_at);
                        }
                    }
                    self.index.insert(i, key, block.offset());
                    let ev = self.pm.take_events();
                    // Traversal loads were already priced by `pm_levels`
                    // above (outside the section); inside the section only
                    // the structural stores/flushes/fences count.
                    let read_ns = if self.tree.is_some() {
                        0.0
                    } else {
                        self.cfg.cpu.pm_read_cached_ns
                    };
                    t = self.charger.charge(i, t, &ev, read_ns);
                    if self.tree.is_some_and(|tr| tr.serialized) {
                        self.tree_free_at = t;
                    }
                    if let Some((old, _)) = self.blocks.insert(key, (block, value_len as u32)) {
                        let _ = self.cores[i].alloc.free(old);
                    }
                }
                Op::Get { key } => {
                    t += self.index.op_ns(&self.cfg.cpu);
                    if let Some(tree) = self.tree {
                        t += tree.pm_levels * self.cfg.cpu.pm_read_cold_ns;
                    }
                    if self.index.get(i, key).is_some() {
                        t += self.cfg.cpu.pm_read_cold_ns;
                    }
                    let ev = self.pm.take_events();
                    t = self
                        .charger
                        .charge(i, t, &ev, self.cfg.cpu.pm_read_cached_ns);
                }
                Op::Delete { .. } => {}
            }
            let nic = self.nic.delay(t, 2.0);
            let resp = t + self.cfg.cpu.respond_ns + nic + self.cfg.net.one_way_ns;
            let (clients, cores) = (&mut self.clients, &mut self.cores);
            clients.deliver(&req, resp, &mut |c, at, r| {
                if cores[c].clock.is_infinite() {
                    cores[c].clock = at;
                }
                cores[c].mailbox.push(at, r);
            });
        }
        self.cores[i].clock = match self.cores[i].mailbox.next_time() {
            Some(a) => a.max(t),
            None => f64::INFINITY,
        };
    }
}
