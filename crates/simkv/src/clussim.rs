//! Multi-group cluster model: composes per-group discrete-event runs
//! through the real slot-routing arithmetic, plus a first-order analytic
//! model of one live slot migration.
//!
//! A `flatclus` cluster is N independent engine groups behind a
//! slot-routing table; groups share nothing, so the cluster DES runs one
//! ordinary [`run`] per group with that group's *share* of the offered
//! load and takes the wall clock of the slowest group. The shares come
//! from the exact production arithmetic — [`workloads::slot_of_key`]
//! over a sampled key stream, owners from
//! [`workloads::rendezvous_assign`] — so skew effects (a zipfian hot
//! slot pinning one group while others idle) emerge from the same
//! routing the engine uses rather than from an assumed split.
//!
//! The migration model estimates the two acceptance metrics of live
//! shard migration analytically from the calibrated cost parameters:
//! the **suffix-ship window** (bulk rounds streaming `keyspace/nslots`
//! keys in `MIG_BATCH`-op ring batches while writes keep flowing) and
//! the **client-visible pause** (the final round: only the writes that
//! arrived during the last delta round, shipped under the slot gate).
//! The pause shrinks geometrically with each un-paused round, which is
//! exactly why the protocol's stall is bounded by the slot's write rate
//! and not by its size.

use workloads::{rendezvous_assign, slot_of_key};

use crate::common::Gen;
use crate::metrics::Summary;
use crate::params::{SimConfig, WorkloadSpec};
use crate::run;

/// Operations per migration ring batch — mirrors `flatclus`'s
/// `MIG_BATCH` (which mirrors `flatrepl`'s catch-up batching).
pub const MIG_BATCH: usize = 64;

/// Keys sampled from the workload generator to estimate per-group and
/// per-slot traffic shares.
const SHARE_SAMPLE: u64 = 32_768;

/// A cluster simulation: the whole-cluster offered load in `base`,
/// sliced across `groups` engine groups by slot routing.
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// Engine groups (each is one full `base.ncores`-core engine).
    pub groups: usize,
    /// Virtual slots for the routing table.
    pub nslots: usize,
    /// The cluster-wide workload and calibration. `ops`, `warmup`,
    /// `clients` and `keyspace` describe the whole cluster and are
    /// scaled down to each group's share.
    pub base: SimConfig,
}

impl Default for ClusterSimConfig {
    fn default() -> Self {
        ClusterSimConfig {
            groups: 1,
            nslots: workloads::NSLOTS,
            base: SimConfig::default(),
        }
    }
}

/// Analytic estimate of one live migration of the hottest slot.
#[derive(Debug, Clone, Copy)]
pub struct MigrationModel {
    /// Keys resident in the migrating slot (`keyspace / nslots`).
    pub slot_keys: u64,
    /// Writes per nanosecond landing on the migrating slot while it
    /// ships (cluster rate × hot-slot traffic share × put ratio).
    pub slot_write_rate: f64,
    /// The un-paused suffix-ship window: bulk round plus one delta
    /// round, in nanoseconds.
    pub window_ns: f64,
    /// Writes expected in the final (paused) round.
    pub final_ops: f64,
    /// The client-visible pause: final-round ship + ring drain + flip,
    /// in nanoseconds.
    pub pause_ns: f64,
}

/// What a cluster run measured.
#[derive(Debug, Clone)]
pub struct ClusterSummary {
    /// Groups simulated.
    pub groups: usize,
    /// Measured operations across all groups.
    pub ops: u64,
    /// Cluster wall clock: the slowest group's simulated span (groups
    /// run concurrently).
    pub sim_ns: f64,
    /// Cluster throughput in million operations per second.
    pub mops: f64,
    /// Ops-weighted mean latency (ns).
    pub avg_latency_ns: f64,
    /// Worst per-group p99 (ns) — the straggler bounds the cluster tail.
    pub p99_ns: f64,
    /// Traffic share each group served (sums to ~1).
    pub shares: Vec<f64>,
    /// Traffic share of the single hottest slot — what a rebalance
    /// would migrate first, and the write rate behind the pause model.
    pub hot_slot_share: f64,
    /// Each group's full single-engine summary.
    pub per_group: Vec<Summary>,
    /// The hot-slot migration estimate.
    pub migration: MigrationModel,
}

/// Runs the cluster model.
///
/// With `groups == 1` the base configuration runs verbatim — the
/// cluster wrapper adds nothing, so the summary is bit-identical to
/// [`run`]`(&cfg.base)`.
///
/// # Panics
///
/// As [`run`]; additionally if `groups == 0` or `nslots == 0`.
pub fn run_cluster(cfg: &ClusterSimConfig) -> ClusterSummary {
    assert!(cfg.groups > 0, "cluster needs at least one group");
    assert!(cfg.nslots > 0, "cluster needs at least one slot");

    let (group_traffic, slot_traffic, owners) = traffic_shares(cfg);

    let mut per_group = Vec::with_capacity(cfg.groups);
    if cfg.groups == 1 {
        per_group.push(run(&cfg.base));
    } else {
        let slot_share = {
            let mut counts = vec![0usize; cfg.groups];
            for &g in &owners {
                counts[usize::from(g)] += 1;
            }
            counts
        };
        for g in 0..cfg.groups {
            let share = group_traffic[g];
            let mut sub = cfg.base.clone();
            // Each group sees its traffic share of the ops and its slot
            // share of the keyspace. Clients split *evenly*: connections
            // land round-robin while ops route by key, so a hot group
            // serves more operations with the same client concurrency —
            // which is exactly how a skewed slot turns into the
            // cluster's straggler.
            sub.ops = ((cfg.base.ops as f64 * share).round() as u64).max(1);
            sub.warmup = (cfg.base.warmup as f64 * share).round() as u64;
            sub.clients = (cfg.base.clients / cfg.groups).max(1);
            let kshare = slot_share[g] as f64 / cfg.nslots as f64;
            sub.keyspace = ((cfg.base.keyspace as f64 * kshare).round() as u64).max(64);
            sub.seed = cfg
                .base
                .seed
                .wrapping_add(g as u64)
                .wrapping_mul(0x9e37_79b9);
            per_group.push(run(&sub));
        }
    }

    let ops: u64 = per_group.iter().map(|s| s.ops).sum();
    let sim_ns = per_group.iter().map(|s| s.sim_ns).fold(0.0f64, f64::max);
    let mops = if sim_ns > 0.0 {
        ops as f64 / sim_ns * 1e3
    } else {
        0.0
    };
    let avg_latency_ns = if ops > 0 {
        per_group
            .iter()
            .map(|s| s.avg_latency_ns * s.ops as f64)
            .sum::<f64>()
            / ops as f64
    } else {
        0.0
    };
    let p99_ns = per_group.iter().map(|s| s.p99_ns).fold(0.0f64, f64::max);

    let hot_share = slot_traffic.iter().copied().fold(0.0f64, f64::max);
    let cluster_rate = if sim_ns > 0.0 {
        ops as f64 / sim_ns
    } else {
        0.0
    };
    let migration = migration_model(cfg, cluster_rate, hot_share);

    ClusterSummary {
        groups: cfg.groups,
        ops,
        sim_ns,
        mops,
        avg_latency_ns,
        p99_ns,
        shares: group_traffic,
        hot_slot_share: hot_share,
        per_group,
        migration,
    }
}

/// Samples the workload's key stream and routes it exactly as the
/// cluster would: per-group traffic shares, per-slot traffic shares,
/// and the slot owners.
fn traffic_shares(cfg: &ClusterSimConfig) -> (Vec<f64>, Vec<f64>, Vec<u16>) {
    let ids: Vec<u16> = (0..cfg.groups as u16).collect();
    let owners = rendezvous_assign(cfg.nslots, &ids);
    let mut group_hits = vec![0u64; cfg.groups];
    let mut slot_hits = vec![0u64; cfg.nslots];
    let mut gen = Gen::new(
        cfg.base.workload,
        cfg.base.keyspace,
        cfg.base.seed ^ 0x5107_5a3e,
    );
    for _ in 0..SHARE_SAMPLE {
        let key = match gen.next_op() {
            workloads::Op::Put { key, .. }
            | workloads::Op::Get { key }
            | workloads::Op::Delete { key } => key,
        };
        let slot = slot_of_key(key, cfg.nslots);
        slot_hits[slot] += 1;
        group_hits[usize::from(owners[slot])] += 1;
    }
    let n = SHARE_SAMPLE as f64;
    (
        group_hits.iter().map(|&h| h as f64 / n).collect(),
        slot_hits.iter().map(|&h| h as f64 / n).collect(),
        owners,
    )
}

/// First-order migration estimate. One ring batch costs the wire round
/// trip plus `MIG_BATCH` destination applies (hash insert, entry build,
/// allocation, post, value stores) plus — on a replicated destination —
/// the backup persist; ring pipelining overlaps the wire latency of
/// interior batches, so the window is the serial apply work plus one
/// round trip at each end.
fn migration_model(cfg: &ClusterSimConfig, cluster_rate: f64, hot_share: f64) -> MigrationModel {
    let base = &cfg.base;
    let value_len = match base.workload {
        WorkloadSpec::Ycsb { value_len, .. } => value_len as f64,
        // The ETC mix is trimodal; its mean sits near 150 B.
        WorkloadSpec::Etc { .. } => 150.0,
    };
    let apply_ns = base.cpu.hash_op_ns
        + base.cpu.entry_build_ns
        + base.cpu.alloc_ns
        + base.cpu.post_ns
        + value_len * base.cpu.store_ns_per_byte;
    let repl_ns = if base.replicas > 0 {
        base.repl_persist_ns + 2.0 * base.net.one_way_ns
    } else {
        0.0
    };
    let batch_ns = MIG_BATCH as f64 * apply_ns + repl_ns + 2.0 * base.net.nic_ns_per_msg;

    let slot_keys = (base.keyspace / cfg.nslots as u64).max(1);
    let bulk_batches = (slot_keys as f64 / MIG_BATCH as f64).ceil();
    let bulk_ns = bulk_batches * batch_ns + 2.0 * base.net.one_way_ns;

    let put_ratio = match base.workload {
        WorkloadSpec::Ycsb { put_ratio, .. } | WorkloadSpec::Etc { put_ratio } => put_ratio,
    };
    let slot_write_rate = cluster_rate * hot_share * put_ratio;

    // Delta round: writes that landed during the bulk ship. Final
    // (paused) round: writes that landed during the delta — the second
    // step of a geometric series whose ratio is the slot write rate
    // times the per-op ship cost.
    let delta_ops = bulk_ns * slot_write_rate;
    let delta_ns = (delta_ops / MIG_BATCH as f64).ceil().max(1.0) * batch_ns;
    let window_ns = bulk_ns + delta_ns;
    let final_ops = delta_ns * slot_write_rate;
    let pause_ns = final_ops * apply_ns
        + (final_ops / MIG_BATCH as f64).ceil().max(1.0)
            * (repl_ns + 2.0 * base.net.nic_ns_per_msg)
        + 2.0 * base.net.one_way_ns
        + base.cpu.lock_ns;

    MigrationModel {
        slot_keys,
        slot_write_rate,
        window_ns,
        final_ops,
        pause_ns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{Engine, ExecModel, SimIndex};
    use workloads::KeyDist;

    fn quick_base(dist: KeyDist) -> SimConfig {
        SimConfig {
            engine: Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
            ncores: 2,
            group_size: 2,
            clients: 16,
            keyspace: 4_000,
            ops: 6_000,
            warmup: 500,
            workload: WorkloadSpec::Ycsb {
                dist,
                value_len: 64,
                put_ratio: 0.5,
            },
            ..SimConfig::default()
        }
    }

    fn cluster(groups: usize, dist: KeyDist) -> ClusterSummary {
        run_cluster(&ClusterSimConfig {
            groups,
            nslots: 64,
            base: quick_base(dist),
        })
    }

    #[test]
    fn one_group_matches_plain_run() {
        let base = quick_base(KeyDist::Uniform);
        let plain = run(&base);
        let clustered = run_cluster(&ClusterSimConfig {
            groups: 1,
            nslots: 64,
            base,
        });
        assert_eq!(clustered.ops, plain.ops);
        assert_eq!(clustered.sim_ns, plain.sim_ns);
        assert_eq!(clustered.mops, plain.mops);
        assert_eq!(clustered.p99_ns, plain.p99_ns);
    }

    #[test]
    fn throughput_scales_with_groups() {
        let one = cluster(1, KeyDist::Uniform);
        let two = cluster(2, KeyDist::Uniform);
        let four = cluster(4, KeyDist::Uniform);
        assert!(
            two.mops > one.mops,
            "2 groups ({:.3}) not faster than 1 ({:.3})",
            two.mops,
            one.mops
        );
        assert!(
            four.mops > two.mops,
            "4 groups ({:.3}) not faster than 2 ({:.3})",
            four.mops,
            two.mops
        );
    }

    #[test]
    fn zipf_concentrates_traffic_on_a_hot_slot() {
        let zipf = cluster(4, KeyDist::Zipfian { theta: 0.99 });
        let uniform = cluster(4, KeyDist::Uniform);
        // Uniform traffic spreads ≈1/nslots per slot; zipf's scrambled
        // hot keys stack a multiple of that onto one slot — the slot a
        // rebalance migrates, and the write rate the pause model sees.
        assert!(
            zipf.hot_slot_share > 2.0 * uniform.hot_slot_share,
            "zipf hot slot {:.4} not clearly hotter than uniform {:.4}",
            zipf.hot_slot_share,
            uniform.hot_slot_share
        );
        let zm = zipf.migration;
        let um = uniform.migration;
        assert!(
            zm.slot_write_rate > um.slot_write_rate,
            "hotter slot must mean a higher modeled write rate"
        );
        assert!(
            zm.final_ops >= um.final_ops,
            "a hotter slot cannot shrink the paused final round"
        );
    }

    #[test]
    fn migration_pause_is_far_below_ship_window() {
        let s = cluster(4, KeyDist::Zipfian { theta: 0.99 });
        let m = s.migration;
        assert!(m.window_ns > 0.0);
        assert!(
            m.pause_ns < m.window_ns / 5.0,
            "pause {:.0} ns not well under window {:.0} ns",
            m.pause_ns,
            m.window_ns
        );
        // The pause is set by the slot's write rate, not its size.
        assert!(m.slot_keys >= 1);
        assert!(m.final_ops < m.slot_keys as f64);
    }

    #[test]
    fn shares_sum_to_one_and_follow_ownership() {
        let s = cluster(4, KeyDist::Uniform);
        let total: f64 = s.shares.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "shares sum to {total}");
        for (g, &share) in s.shares.iter().enumerate() {
            assert!(share > 0.0, "group {g} got no traffic");
        }
    }
}
