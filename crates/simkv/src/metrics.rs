//! Measurement collection: throughput, latency percentiles, timelines.

use pmem::cost::DeviceStats;

/// Latency/throughput collector.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub completed: u64,
    pub measured: u64,
    pub warmup: u64,
    pub measure_start_ns: f64,
    pub last_completion_ns: f64,
    pub latencies: Vec<f64>,
    pub window_ns: f64,
    pub windows: Vec<WindowStat>,
}

/// One timeline window (Figure 13's x-axis).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStat {
    /// Window start, in simulated seconds.
    pub start_s: f64,
    /// Operations completed in the window.
    pub ops: u64,
    /// Chunks cleaned in the window.
    pub gc_chunks: u64,
}

impl Metrics {
    pub fn new(warmup: u64, window_ns: f64) -> Metrics {
        Metrics {
            warmup,
            window_ns,
            ..Metrics::default()
        }
    }

    pub fn record(&mut self, send_ns: f64, resp_ns: f64) {
        self.completed += 1;
        if self.completed == self.warmup {
            self.measure_start_ns = resp_ns;
        }
        if self.completed > self.warmup {
            self.measured += 1;
            self.latencies.push(resp_ns - send_ns);
            self.last_completion_ns = self.last_completion_ns.max(resp_ns);
        }
        if self.window_ns > 0.0 {
            let w = (resp_ns / self.window_ns) as usize;
            if self.windows.len() <= w {
                self.windows.resize(w + 1, WindowStat::default());
            }
            self.windows[w].ops += 1;
        }
    }

    pub fn record_gc(&mut self, at_ns: f64, chunks: u64) {
        if self.window_ns > 0.0 {
            let w = (at_ns / self.window_ns) as usize;
            if self.windows.len() <= w {
                self.windows.resize(w + 1, WindowStat::default());
            }
            self.windows[w].gc_chunks += chunks;
        }
    }

    pub fn summary(mut self, device: DeviceStats, avg_batch: f64) -> Summary {
        self.latencies
            .sort_unstable_by(|a, b| a.total_cmp(b));
        let n = self.latencies.len();
        let pct = |p: f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                self.latencies[((n as f64 * p) as usize).min(n - 1)]
            }
        };
        let span = (self.last_completion_ns - self.measure_start_ns).max(1.0);
        let window_ns = self.window_ns;
        Summary {
            ops: self.measured,
            sim_ns: span,
            mops: self.measured as f64 * 1e3 / span,
            avg_latency_ns: if n == 0 {
                0.0
            } else {
                self.latencies.iter().sum::<f64>() / n as f64
            },
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            avg_batch,
            device,
            timeline: self
                .windows
                .iter()
                .enumerate()
                .map(|(i, w)| WindowStat {
                    start_s: i as f64 * window_ns / 1e9,
                    ..*w
                })
                .collect(),
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Measured operations (after warm-up).
    pub ops: u64,
    /// Simulated nanoseconds spanned by the measured operations.
    pub sim_ns: f64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Mean request latency (ns).
    pub avg_latency_ns: f64,
    /// Median request latency (ns).
    pub p50_ns: f64,
    /// 99th-percentile latency (ns).
    pub p99_ns: f64,
    /// Mean log entries per persisted batch (FlatStore engines).
    pub avg_batch: f64,
    /// Device activity counters.
    pub device: DeviceStats,
    /// Optional throughput/GC timeline.
    pub timeline: Vec<WindowStat>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_math() {
        let mut m = Metrics::new(1, 0.0);
        m.record(0.0, 100.0); // warm-up
        m.record(100.0, 300.0);
        m.record(200.0, 500.0);
        let s = m.summary(DeviceStats::default(), 1.0);
        assert_eq!(s.ops, 2);
        assert!((s.avg_latency_ns - 250.0).abs() < 1e-9);
        assert!(s.p99_ns >= s.p50_ns);
        assert!(s.mops > 0.0);
    }

    #[test]
    fn windows_accumulate() {
        let mut m = Metrics::new(0, 100.0);
        m.record(0.0, 50.0);
        m.record(0.0, 150.0);
        m.record(0.0, 160.0);
        m.record_gc(120.0, 2);
        let s = m.summary(DeviceStats::default(), 0.0);
        assert_eq!(s.timeline.len(), 2);
        assert_eq!(s.timeline[0].ops, 1);
        assert_eq!(s.timeline[1].ops, 2);
        assert_eq!(s.timeline[1].gc_chunks, 2);
    }
}
