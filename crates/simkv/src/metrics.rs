//! Measurement collection: throughput, latency percentiles, timelines.

use obs::{Event, HistSnapshot, LogHistogram, StatsReport};
use pmem::cost::DeviceStats;

/// Latency/throughput collector.
#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub completed: u64,
    pub measured: u64,
    pub warmup: u64,
    pub measure_start_ns: f64,
    pub last_completion_ns: f64,
    pub latencies: Vec<f64>,
    pub hist: LogHistogram,
    pub window_ns: f64,
    pub windows: Vec<WindowStat>,
}

/// One timeline window (Figure 13's x-axis).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStat {
    /// Window start, in simulated seconds.
    pub start_s: f64,
    /// Operations completed in the window.
    pub ops: u64,
    /// Chunks cleaned in the window.
    pub gc_chunks: u64,
}

impl Metrics {
    pub fn new(warmup: u64, window_ns: f64) -> Metrics {
        Metrics {
            warmup,
            window_ns,
            ..Metrics::default()
        }
    }

    pub fn record(&mut self, send_ns: f64, resp_ns: f64) {
        // With no warm-up, measurement starts when the first measured
        // request was *sent*; otherwise `measure_start_ns` would keep its
        // default of 0 and the throughput span would silently include the
        // idle ramp before the first request.
        if self.warmup == 0 && self.completed == 0 {
            self.measure_start_ns = send_ns;
        }
        self.completed += 1;
        if self.completed == self.warmup {
            self.measure_start_ns = resp_ns;
        }
        if self.completed > self.warmup {
            self.measured += 1;
            let lat = resp_ns - send_ns;
            self.latencies.push(lat);
            self.hist.record(lat.max(0.0) as u64);
            self.last_completion_ns = self.last_completion_ns.max(resp_ns);
        }
        if self.window_ns > 0.0 {
            let w = (resp_ns / self.window_ns) as usize;
            if self.windows.len() <= w {
                self.windows.resize(w + 1, WindowStat::default());
            }
            self.windows[w].ops += 1;
        }
    }

    pub fn record_gc(&mut self, at_ns: f64, chunks: u64) {
        if self.window_ns > 0.0 {
            let w = (at_ns / self.window_ns) as usize;
            if self.windows.len() <= w {
                self.windows.resize(w + 1, WindowStat::default());
            }
            self.windows[w].gc_chunks += chunks;
        }
    }

    pub fn summary(mut self, device: DeviceStats, avg_batch: f64) -> Summary {
        self.latencies.sort_unstable_by(|a, b| a.total_cmp(b));
        let n = self.latencies.len();
        let pct = |p: f64| -> f64 {
            if n == 0 {
                0.0
            } else {
                self.latencies[((n as f64 * p) as usize).min(n - 1)]
            }
        };
        let span = (self.last_completion_ns - self.measure_start_ns).max(1.0);
        let window_ns = self.window_ns;
        let hist = self.hist.snapshot();
        Summary {
            ops: self.measured,
            sim_ns: span,
            mops: self.measured as f64 * 1e3 / span,
            avg_latency_ns: if n == 0 {
                0.0
            } else {
                self.latencies.iter().sum::<f64>() / n as f64
            },
            p50_ns: pct(0.50),
            p99_ns: pct(0.99),
            p95_ns: hist.p95() as f64,
            p999_ns: hist.p999() as f64,
            max_ns: hist.max as f64,
            latency_hist: hist,
            avg_batch,
            device,
            timeline: self
                .windows
                .iter()
                .enumerate()
                .map(|(i, w)| WindowStat {
                    start_s: i as f64 * window_ns / 1e9,
                    ..*w
                })
                .collect(),
            events: Vec::new(),
            events_dropped: 0,
            persistency: pmcheck::RuleCounts::default(),
            ship_batches: 0,
            ship_msgs: 0,
            pm_value_reads: 0,
            cache_hits: 0,
            cache_misses: 0,
            breakdown: None,
        }
    }
}

/// The result of one simulation run.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Measured operations (after warm-up).
    pub ops: u64,
    /// Simulated nanoseconds spanned by the measured operations.
    pub sim_ns: f64,
    /// Throughput in million operations per second.
    pub mops: f64,
    /// Mean request latency (ns).
    pub avg_latency_ns: f64,
    /// Median request latency (ns, exact — from the sorted sample list).
    pub p50_ns: f64,
    /// 99th-percentile latency (ns, exact).
    pub p99_ns: f64,
    /// 95th-percentile latency (ns, histogram-interpolated).
    pub p95_ns: f64,
    /// 99.9th-percentile latency (ns, histogram-interpolated).
    pub p999_ns: f64,
    /// Worst observed latency (ns).
    pub max_ns: f64,
    /// The full log-bucketed latency distribution of the measured ops.
    pub latency_hist: HistSnapshot,
    /// Mean log entries per persisted batch (FlatStore engines).
    pub avg_batch: f64,
    /// Device activity counters.
    pub device: DeviceStats,
    /// Optional throughput/GC timeline.
    pub timeline: Vec<WindowStat>,
    /// Virtual-time trace events ([`SimConfig::trace_events`] > 0),
    /// exportable with [`obs::chrome_trace`].
    ///
    /// [`SimConfig::trace_events`]: crate::SimConfig::trace_events
    pub events: Vec<Event>,
    /// Events evicted from the trace ring by overflow.
    pub events_dropped: u64,
    /// Persistency-ordering verdict: every PM event the run charged was
    /// also replayed through a [`pmcheck::Checker`]; a non-clean verdict
    /// means the simulated engine violated its own flush/fence discipline.
    pub persistency: pmcheck::RuleCounts,
    /// Batches shipped to replicas ([`SimConfig::replicas`] > 0).
    ///
    /// [`SimConfig::replicas`]: crate::SimConfig::replicas
    pub ship_batches: u64,
    /// Replication messages (request + ack per replica per batch) charged
    /// to the shared NIC.
    pub ship_msgs: u64,
    /// Cold PM media reads issued on the Get path (one per entry fetch,
    /// plus one per pointer-payload record). Counted with the cache model
    /// on *or* off, so runs compare like for like.
    pub pm_value_reads: u64,
    /// Gets served from the DRAM read cache
    /// ([`SimConfig::read_cache_entries`] > 0).
    ///
    /// [`SimConfig::read_cache_entries`]: crate::SimConfig::read_cache_entries
    pub cache_hits: u64,
    /// Gets that probed the enabled cache and fell through to PM.
    pub cache_misses: u64,
    /// Per-stage virtual-time latency breakdown of the sampled requests
    /// ([`SimConfig::trace_sample`] > 0) — the DES mirror of the engine's
    /// causal tracing, reported under the same `latency_breakdown`
    /// schema. Stage deltas are in *virtual* nanoseconds.
    ///
    /// [`SimConfig::trace_sample`]: crate::SimConfig::trace_sample
    pub breakdown: Option<std::sync::Arc<obs::StageSet>>,
}

impl Summary {
    /// Reduces the run to the shared [`StatsReport`] vocabulary. The
    /// latency rows quote exactly the `Summary` fields, so an exported
    /// metrics file always agrees with the struct a test asserts on.
    pub fn report(&self, title: impl Into<String>) -> StatsReport {
        let mut r = StatsReport::new(title);
        r.section("throughput")
            .row("ops", self.ops)
            .row("sim_ns", self.sim_ns)
            .row("mops", self.mops)
            .row("avg_batch", self.avg_batch);
        r.section("latency")
            .row("avg_ns", self.avg_latency_ns)
            .row("p50_ns", self.p50_ns)
            .row("p95_ns", self.p95_ns)
            .row("p99_ns", self.p99_ns)
            .row("p999_ns", self.p999_ns)
            .row("max_ns", self.max_ns);
        {
            let sec = r.section("device");
            self.device.fill_section(&mut *sec);
            sec.row("pm_value_reads", self.pm_value_reads);
        }
        self.persistency.fill_section(r.section("pmcheck"));
        if self.cache_hits + self.cache_misses > 0 {
            let probes = (self.cache_hits + self.cache_misses) as f64;
            r.section("read_cache")
                .row("hits", self.cache_hits)
                .row("misses", self.cache_misses)
                .row("hit_rate", self.cache_hits as f64 / probes);
        }
        if self.ship_batches > 0 {
            r.section("replication")
                .row("ship_batches", self.ship_batches)
                .row("ship_msgs", self.ship_msgs)
                .row("ship_msgs_per_op", self.ship_msgs as f64 / self.ops as f64);
        }
        if let Some(b) = &self.breakdown {
            if b.spans() > 0 {
                b.fill_section(r.section("latency_breakdown"));
            }
        }
        if !self.events.is_empty() || self.events_dropped > 0 {
            r.section("trace")
                .row("events", self.events.len())
                .row("events_dropped", self.events_dropped);
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_math() {
        let mut m = Metrics::new(1, 0.0);
        m.record(0.0, 100.0); // warm-up
        m.record(100.0, 300.0);
        m.record(200.0, 500.0);
        let s = m.summary(DeviceStats::default(), 1.0);
        assert_eq!(s.ops, 2);
        assert!((s.avg_latency_ns - 250.0).abs() < 1e-9);
        assert!(s.p99_ns >= s.p50_ns);
        assert!(s.mops > 0.0);
        assert_eq!(s.latency_hist.count, 2);
        assert_eq!(s.max_ns, 300.0);
    }

    #[test]
    fn windows_accumulate() {
        let mut m = Metrics::new(0, 100.0);
        m.record(0.0, 50.0);
        m.record(0.0, 150.0);
        m.record(0.0, 160.0);
        m.record_gc(120.0, 2);
        let s = m.summary(DeviceStats::default(), 0.0);
        assert_eq!(s.timeline.len(), 2);
        assert_eq!(s.timeline[0].ops, 1);
        assert_eq!(s.timeline[1].ops, 2);
        assert_eq!(s.timeline[1].gc_chunks, 2);
    }

    #[test]
    fn zero_warmup_measures_from_first_send() {
        // Regression: with warmup == 0 `measure_start_ns` was never
        // assigned, so the throughput span stretched back to t = 0 and
        // understated mops for runs that start late in virtual time.
        let mut m = Metrics::new(0, 0.0);
        m.record(1_000_000.0, 1_000_100.0);
        m.record(1_000_100.0, 1_000_200.0);
        let s = m.summary(DeviceStats::default(), 1.0);
        assert_eq!(s.ops, 2);
        assert!((s.sim_ns - 200.0).abs() < 1e-9, "span {}", s.sim_ns);
        assert!((s.mops - 2.0 * 1e3 / 200.0).abs() < 1e-9);
    }

    #[test]
    fn report_quotes_summary_fields() {
        let mut m = Metrics::new(0, 0.0);
        for i in 0..100u64 {
            let t = i as f64 * 1_000.0;
            m.record(t, t + 100.0 + i as f64);
        }
        let s = m.summary(DeviceStats::default(), 4.0);
        let r = s.report("sim");
        assert_eq!(r.get("latency", "p50_ns"), Some(&obs::Value::F64(s.p50_ns)));
        assert_eq!(r.get("latency", "p99_ns"), Some(&obs::Value::F64(s.p99_ns)));
        assert_eq!(r.get("throughput", "ops"), Some(&obs::Value::U64(s.ops)));
        // Histogram-backed percentiles bracket the exact ones within a
        // power-of-two bucket.
        assert!(s.p95_ns >= s.p50_ns);
        assert!(s.p999_ns <= s.max_ns);
    }
}
