//! Shared simulation plumbing: time-ordered mailboxes, the event charger
//! that converts real PM traces into simulated time, and the closed-loop
//! client pool.

use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;

use pmem::cost::Device;
use pmem::PmEvent;
use workloads::{core_of, EtcWorkload, Op, Workload};

use crate::metrics::Metrics;
use crate::params::{CpuParams, NetParams, WorkloadSpec};

/// A min-heap of `(time, payload)` items.
#[derive(Debug)]
pub(crate) struct Mailbox<T> {
    heap: BinaryHeap<Item<T>>,
    seq: u64,
}

#[derive(Debug)]
struct Item<T> {
    time: f64,
    seq: u64,
    val: T,
}

impl<T> PartialEq for Item<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Item<T> {}
impl<T> PartialOrd for Item<T> {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Item<T> {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        other
            .time
            .total_cmp(&self.time)
            .then(other.seq.cmp(&self.seq))
    }
}

impl<T> Mailbox<T> {
    pub fn new() -> Self {
        Mailbox {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    pub fn push(&mut self, time: f64, val: T) {
        self.seq += 1;
        self.heap.push(Item {
            time,
            seq: self.seq,
            val,
        });
    }

    pub fn next_time(&self) -> Option<f64> {
        self.heap.peek().map(|i| i.time)
    }

    /// Pops the earliest item if it has arrived by `now`.
    pub fn pop_arrived(&mut self, now: f64) -> Option<(f64, T)> {
        if self.next_time()? <= now {
            self.heap.pop().map(|i| (i.time, i.val))
        } else {
            None
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Converts the [`PmEvent`] traces emitted by the real data-structure code
/// into simulated time on a core's clock, via the shared device model.
///
/// Every drained event batch is also fed to a [`pmcheck::Checker`]: the
/// DES executes the real persistence code sequentially, so the drain order
/// is a faithful single stream and the run's `Summary` can carry a
/// persistency verdict alongside its performance numbers.
pub(crate) struct Charger {
    pub device: Device,
    pub cpu: CpuParams,
    /// Per-stream outstanding flush completions (waited on at fences).
    outstanding: Vec<Vec<f64>>,
    /// Persistency-ordering checker fed with every charged event.
    checker: pmcheck::Checker,
}

impl Charger {
    pub fn new(device: Device, cpu: CpuParams, streams: usize) -> Charger {
        Charger {
            device,
            cpu,
            checker: pmcheck::Checker::new(),
            outstanding: vec![Vec::new(); streams],
        }
    }

    /// Charges `events` to stream `stream` starting at time `t`; returns
    /// the stream's new clock. `read_ns` prices one *newly touched
    /// cacheline* of traced reads (repeat loads of the same line within one
    /// charge call are cache hits and free). Use
    /// [`CpuParams::pm_read_cached_ns`] for front-line code, a smaller
    /// value for the cleaner's sequential scans.
    pub fn charge(&mut self, stream: usize, mut t: f64, events: &[PmEvent], read_ns: f64) -> f64 {
        self.checker.feed(events);
        let mut read_lines: std::collections::HashSet<u64> = std::collections::HashSet::new();
        for ev in events {
            match ev {
                PmEvent::Write { len, .. } => {
                    t += *len as f64 * self.cpu.store_ns_per_byte;
                }
                PmEvent::Flush { line } => {
                    t += self.device.params().flush_issue_ns;
                    let done = self.device.flush(t, stream as u64, *line);
                    self.outstanding[stream].push(done);
                }
                PmEvent::Fence => {
                    for done in self.outstanding[stream].drain(..) {
                        t = t.max(done);
                    }
                }
                PmEvent::Read { addr, len } => {
                    let first = addr / 64;
                    let last = (addr + (*len as u64).max(1) - 1) / 64;
                    for line in first..=last {
                        if read_lines.insert(line) {
                            t += read_ns;
                        }
                    }
                }
                // Commit points are checker markers, not hardware work.
                PmEvent::CommitPoint { .. } => {}
            }
        }
        t
    }

    /// The persistency verdict accumulated across every charged event.
    pub fn persistency(&self) -> pmcheck::RuleCounts {
        self.checker.counts()
    }
}

/// The shared NIC / agent-core: a leaky-bucket server over messages
/// (paper §4.3 — all responses funnel through the socket close to the
/// NIC).
#[derive(Debug, Default)]
pub(crate) struct Nic {
    backlog_ns: f64,
    last_ns: f64,
    pub per_msg_ns: f64,
}

impl Nic {
    pub fn new(per_msg_ns: f64) -> Nic {
        Nic {
            per_msg_ns,
            ..Nic::default()
        }
    }

    /// Queue + service delay for `msgs` messages issued at `now`.
    pub fn delay(&mut self, now: f64, msgs: f64) -> f64 {
        let elapsed = (now - self.last_ns).max(0.0);
        self.last_ns = self.last_ns.max(now);
        self.backlog_ns = (self.backlog_ns - elapsed).max(0.0) + msgs * self.per_msg_ns;
        self.backlog_ns
    }
}

/// Generates requests for the client pool.
pub(crate) enum Gen {
    Ycsb(Workload),
    Etc(EtcWorkload),
}

impl Gen {
    pub fn new(spec: WorkloadSpec, keyspace: u64, seed: u64) -> Gen {
        match spec {
            WorkloadSpec::Ycsb {
                dist,
                value_len,
                put_ratio,
            } => Gen::Ycsb(Workload::new(keyspace, dist, value_len, put_ratio, seed)),
            WorkloadSpec::Etc { put_ratio } => {
                Gen::Etc(EtcWorkload::new(keyspace, put_ratio, seed))
            }
        }
    }

    pub fn next_op(&mut self) -> Op {
        match self {
            Gen::Ycsb(w) => w.next_op(),
            Gen::Etc(w) => w.next_op(),
        }
    }
}

/// A request travelling through the simulated network.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SimReq {
    pub client: u32,
    pub send: f64,
    pub op: Op,
    /// Causal-trace id assigned when a sampled request is first polled;
    /// 0 = unsampled. Rides every copy of the request (deferred queue,
    /// post slots, retries) so stage stamps land on one span.
    pub trace: u64,
}

struct Client {
    outstanding: u32,
    last_resp: f64,
}

/// Closed-loop clients: each keeps `batch` requests outstanding, sends the
/// next batch once all responses arrived (paper §5: "clients post multiple
/// requests asynchronously and poll the completion in a batch manner").
pub(crate) struct ClientPool {
    clients: Vec<Client>,
    gen: Gen,
    batch: usize,
    ncores: usize,
    net: NetParams,
    pub metrics: Metrics,
    target: u64,
}

impl ClientPool {
    pub fn new(
        nclients: usize,
        batch: usize,
        ncores: usize,
        gen: Gen,
        net: NetParams,
        metrics: Metrics,
        target: u64,
    ) -> ClientPool {
        let mut clients = Vec::with_capacity(nclients);
        clients.resize_with(nclients, || Client {
            outstanding: 0,
            last_resp: 0.0,
        });
        ClientPool {
            clients,
            gen,
            batch,
            ncores,
            net,
            metrics,
            target,
        }
    }

    pub fn done(&self) -> bool {
        self.metrics.completed >= self.target
    }

    /// Sends the initial batch of every client at time 0.
    pub fn start(&mut self, mut push: impl FnMut(usize, f64, SimReq)) {
        for c in 0..self.clients.len() {
            self.send_batch(c as u32, 0.0, &mut push);
        }
    }

    fn send_batch(&mut self, client: u32, now: f64, push: &mut impl FnMut(usize, f64, SimReq)) {
        for _ in 0..self.batch {
            let op = self.gen.next_op();
            let core = core_of(op.key(), self.ncores);
            let req = SimReq {
                client,
                send: now,
                op,
                trace: 0,
            };
            push(core, now + self.net.one_way_ns, req);
        }
        self.clients[client as usize].outstanding = self.batch as u32;
    }

    /// A server finished `req`; the response reaches the client at
    /// `resp_ns`. May trigger the client's next batch.
    pub fn deliver(
        &mut self,
        req: &SimReq,
        resp_ns: f64,
        push: &mut impl FnMut(usize, f64, SimReq),
    ) {
        self.metrics.record(req.send, resp_ns);
        let (outstanding, last_resp) = {
            let c = &mut self.clients[req.client as usize];
            c.outstanding -= 1;
            c.last_resp = c.last_resp.max(resp_ns);
            (c.outstanding, c.last_resp)
        };
        if outstanding == 0 && !self.done() {
            let next = last_resp + self.net.client_think_ns;
            self.send_batch(req.client, next, push);
        }
    }
}

/// Stable key → core routing shared with the engine crate's convention.
pub(crate) fn route(key: u64, ncores: usize) -> usize {
    core_of(key, ncores)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mailbox_orders_by_time() {
        let mut m = Mailbox::new();
        m.push(5.0, "b");
        m.push(1.0, "a");
        m.push(9.0, "c");
        assert_eq!(m.next_time(), Some(1.0));
        assert_eq!(m.pop_arrived(0.5), None);
        assert_eq!(m.pop_arrived(6.0).map(|x| x.1), Some("a"));
        assert_eq!(m.pop_arrived(6.0).map(|x| x.1), Some("b"));
        assert_eq!(m.pop_arrived(6.0), None);
        assert!(!m.is_empty());
    }

    #[test]
    fn charger_fence_waits_for_flushes() {
        let device = Device::new(pmem::cost::CostParams::default());
        let mut ch = Charger::new(device, CpuParams::default(), 1);
        let t = ch.charge(
            0,
            0.0,
            &[
                PmEvent::Write { addr: 0, len: 64 },
                PmEvent::Flush { line: 0 },
                PmEvent::Fence,
            ],
            25.0,
        );
        // Must include flush latency + media service, not just CPU costs.
        assert!(t > 80.0, "fence returned too early: {t}");
    }
}
