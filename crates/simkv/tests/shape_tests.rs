//! Paper-claim shape tests: quick, reduced-scale versions of the
//! evaluation's qualitative results, so regressions in the models or the
//! engine logic fail CI rather than silently bending the figures.

use simkv::{BaselineKind, Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

fn base(engine: Engine, value_len: usize, put_ratio: f64) -> SimConfig {
    SimConfig {
        engine,
        ncores: 8,
        group_size: 4,
        clients: 64,
        client_batch: 8,
        keyspace: 30_000,
        pool_chunks: 128,
        ops: 30_000,
        warmup: 3_000,
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len,
            put_ratio,
        },
        ..SimConfig::default()
    }
}

fn flat(index: SimIndex) -> Engine {
    Engine::FlatStore {
        model: ExecModel::PipelinedHb,
        index,
    }
}

#[test]
fn tree_family_ordering_matches_paper() {
    // Fig. 8 at 8 B: FlatStore-M > FlatStore-FF >> FPTree/FAST&FAIR. The
    // shared trees' serialized update section only binds once enough cores
    // compete, so this runs at a larger scale than the other shape tests.
    let wide = |engine| {
        let mut c = base(engine, 8, 1.0);
        c.ncores = 24;
        c.group_size = 12;
        c.clients = 192;
        c
    };
    let fm = simkv::run(&wide(flat(SimIndex::Masstree))).mops;
    let ff = simkv::run(&wide(flat(SimIndex::FastFair))).mops;
    let fp = simkv::run(&wide(Engine::Baseline(BaselineKind::FpTree))).mops;
    let faf = simkv::run(&wide(Engine::Baseline(BaselineKind::FastFair))).mops;
    assert!(fm >= ff, "FlatStore-M {fm} >= FlatStore-FF {ff}");
    assert!(ff > fp * 1.5, "FlatStore-FF {ff} >> FPTree {fp}");
    assert!(ff > faf * 1.5, "FlatStore-FF {ff} >> FAST&FAIR {faf}");
}

#[test]
fn batching_models_order_correctly() {
    // Fig. 11 ordering: NonBatch < NaiveHb <= PipelinedHb at small values.
    let mk = |model| {
        let mut c = base(
            Engine::FlatStore {
                model,
                index: SimIndex::Hash,
            },
            8,
            1.0,
        );
        c.net.nic_ns_per_msg = 5.0; // expose the engine, not the NIC
        c
    };
    let non = simkv::run(&mk(ExecModel::NonBatch)).mops;
    let naive = simkv::run(&mk(ExecModel::NaiveHb)).mops;
    let pipe = simkv::run(&mk(ExecModel::PipelinedHb)).mops;
    assert!(naive > non, "NaiveHb {naive} > NonBatch {non}");
    assert!(pipe > naive, "Pipelined {pipe} > Naive {naive}");
}

#[test]
fn large_values_converge_to_bandwidth_bound() {
    // Fig. 7: at 1 KB everyone is bound by the record writes; FlatStore's
    // advantage shrinks. The media wall CCEH hits needs enough cores to
    // show, so this runs at 16.
    let wide = |engine, len| {
        let mut c = base(engine, len, 1.0);
        c.ncores = 16;
        c.group_size = 8;
        c.clients = 128;
        c
    };
    let f8 = simkv::run(&wide(flat(SimIndex::Hash), 8)).mops;
    let c8 = simkv::run(&wide(Engine::Baseline(BaselineKind::Cceh), 8)).mops;
    let f1k = simkv::run(&wide(flat(SimIndex::Hash), 1024)).mops;
    let c1k = simkv::run(&wide(Engine::Baseline(BaselineKind::Cceh), 1024)).mops;
    let small_ratio = f8 / c8;
    let large_ratio = f1k / c1k;
    assert!(small_ratio > 1.5, "small-value ratio {small_ratio}");
    assert!(
        large_ratio < small_ratio,
        "advantage must shrink with size: {large_ratio} !< {small_ratio}"
    );
    assert!(
        f1k < f8,
        "1 KB values must be slower than 8 B: {f1k} vs {f8}"
    );
}

#[test]
fn read_heavy_mixes_converge_for_hash_systems() {
    // Fig. 9: at 5:95 FlatStore-H ≈ CCEH (FlatStore optimizes writes).
    let f = simkv::run(&base(flat(SimIndex::Hash), 64, 0.05)).mops;
    let c = simkv::run(&base(Engine::Baseline(BaselineKind::Cceh), 64, 0.05)).mops;
    let ratio = f / c;
    assert!(
        (0.7..1.6).contains(&ratio),
        "5:95 hash systems should converge: ratio {ratio}"
    );
}

#[test]
fn skew_hurts_baselines_more_than_flatstore() {
    // Fig. 7(b): the in-place baselines lose more to zipf than FlatStore.
    let skewed = |engine| {
        let mut c = base(engine, 8, 1.0);
        c.workload = WorkloadSpec::Ycsb {
            dist: KeyDist::Zipfian { theta: 0.99 },
            value_len: 8,
            put_ratio: 1.0,
        };
        c
    };
    let f_uni = simkv::run(&base(flat(SimIndex::Hash), 8, 1.0));
    let f_skew = simkv::run(&skewed(flat(SimIndex::Hash)));
    let c_uni = simkv::run(&base(Engine::Baseline(BaselineKind::Cceh), 8, 1.0));
    let c_skew = simkv::run(&skewed(Engine::Baseline(BaselineKind::Cceh)));
    assert!(
        f_skew.mops / f_uni.mops >= c_skew.mops / c_uni.mops * 0.9,
        "FlatStore must retain at least as much of its throughput under skew: \
         FS {:.2}->{:.2}, CCEH {:.2}->{:.2}",
        f_uni.mops,
        f_skew.mops,
        c_uni.mops,
        c_skew.mops
    );
    assert!(
        c_skew.device.repeat_stalls > f_skew.device.repeat_stalls,
        "in-place baselines must hit more repeat-flush stalls"
    );
}
