//! Adaptive-batching gate over the DES: across key skew × static group
//! sizes, the self-tuning configuration must land within 5% of the best
//! static operating point and strictly beat the worst one — the claim
//! BENCH_10 sweeps at full scale, pinned here at test scale.

use simkv::{run, Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

fn base(dist: KeyDist) -> SimConfig {
    SimConfig {
        engine: Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        },
        ncores: 8,
        group_size: 8,
        clients: 64,
        client_batch: 8,
        keyspace: 20_000,
        ops: 40_000,
        warmup: 4_000,
        workload: WorkloadSpec::Ycsb {
            dist,
            value_len: 64,
            put_ratio: 1.0,
        },
        ..SimConfig::default()
    }
}

/// The tentpole's acceptance claim: at every swept (skew, scale) point,
/// adaptive ≥ 0.95 × best-static and > worst-static. Group size 1 is in
/// the static sweep on purpose — it degenerates to vertical-ish batching
/// and anchors "worst" somewhere a fixed config really does land.
#[test]
fn adaptive_tracks_best_static_across_skew() {
    let dists = [
        ("uniform", KeyDist::Uniform),
        ("zipf-0.9", KeyDist::Zipfian { theta: 0.9 }),
        ("zipf-0.99", KeyDist::Zipfian { theta: 0.99 }),
    ];
    for (name, dist) in dists {
        let statics: Vec<(usize, f64)> = [1usize, 4, 8]
            .iter()
            .map(|&gs| {
                let mut c = base(dist);
                c.group_size = gs;
                (gs, run(&c).mops)
            })
            .collect();
        let best = statics.iter().map(|&(_, m)| m).fold(0.0, f64::max);
        let worst = statics
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min);
        let mut c = base(dist);
        c.adaptive = true;
        let adaptive = run(&c).mops;
        println!("{name}: statics={statics:?} adaptive={adaptive:.4}");
        assert!(
            adaptive >= 0.95 * best,
            "{name}: adaptive {adaptive:.4} Mops below 95% of best static \
             {best:.4} (statics {statics:?})"
        );
        assert!(
            adaptive > worst,
            "{name}: adaptive {adaptive:.4} Mops not above worst static \
             {worst:.4} (statics {statics:?})"
        );
    }
}

/// `adaptive` is only defined for `PipelinedHb`; on every other model the
/// flag must be inert — the run stays bit-identical to `adaptive: false`
/// (same virtual clocks, not just close throughput).
#[test]
fn adaptive_flag_is_inert_outside_pipelined_hb() {
    for model in [ExecModel::NonBatch, ExecModel::Vertical, ExecModel::NaiveHb] {
        let mut plain = base(KeyDist::Uniform);
        plain.engine = Engine::FlatStore {
            model,
            index: SimIndex::Hash,
        };
        plain.ops = 10_000;
        plain.warmup = 1_000;
        let mut flagged = plain.clone();
        flagged.adaptive = true;
        let a = run(&plain);
        let b = run(&flagged);
        assert_eq!(
            a.mops.to_bits(),
            b.mops.to_bits(),
            "{model:?}: adaptive flag must be inert"
        );
        assert_eq!(a.avg_batch.to_bits(), b.avg_batch.to_bits());
    }
}
