//! Ablation knobs behave as designed: each disabled mechanism costs
//! measurable simulated performance.

use simkv::{Ablation, Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

fn base(ablate: Ablation) -> SimConfig {
    SimConfig {
        engine: Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        },
        ncores: 8,
        group_size: 8,
        clients: 64,
        client_batch: 4,
        keyspace: 30_000,
        pool_chunks: 96,
        ops: 40_000,
        warmup: 4_000,
        ablate,
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len: 8,
            put_ratio: 1.0,
        },
        ..SimConfig::default()
    }
}

#[test]
fn fat_entries_cost_throughput() {
    let normal = simkv::run(&base(Ablation::default()));
    let fat = simkv::run(&base(Ablation {
        fat_entries: true,
        ..Ablation::default()
    }));
    assert!(
        fat.device.media_writes > normal.device.media_writes * 2,
        "64 B entries must write far more media: {} vs {}",
        fat.device.media_writes,
        normal.device.media_writes
    );
    assert!(
        fat.mops <= normal.mops,
        "fat {} should not beat compacted {}",
        fat.mops,
        normal.mops
    );
}

#[test]
fn missing_padding_triggers_repeat_flush_stalls() {
    // Mechanism-level check (deterministic): drive the real OpLog's flush
    // traces through the device model at a fixed 400 ns batch cadence.
    // Padded batches never re-flush an entry cacheline; unpadded ones
    // share lines across batches and hit the ~800 ns repeat stall.
    use oplog::{LogEntry, OpLog};
    use pmalloc::{ChunkManager, CHUNK_SIZE};
    use pmem::cost::{CostParams, Device};
    use pmem::{PmAddr, PmEvent, PmRegion};
    use std::sync::Arc;

    let run = |padded: bool| -> (u64, f64) {
        let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(CHUNK_SIZE), 7));
        let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
        log.set_batch_padding(padded);
        pm.set_trace(true);
        let _ = pm.take_events();
        let mut dev = Device::new(CostParams::default());
        let mut now = 0.0f64;
        let mut done = now;
        for k in 0..400u64 {
            log.append_batch(&[LogEntry::put_ptr(k, 1, PmAddr(0x100))])
                .unwrap();
            for ev in pm.take_events() {
                if let PmEvent::Flush { line } = ev {
                    done = done.max(dev.flush(now, 0, line));
                }
            }
            // Fixed open-loop cadence inside the repeat window, so the
            // padding effect is isolated from the tail pointer's own stall.
            now += 400.0;
        }
        (dev.stats().repeat_stalls, done)
    };

    let (padded_stalls, padded_done) = run(true);
    let (unpadded_stalls, unpadded_done) = run(false);
    assert!(
        unpadded_stalls as f64 > padded_stalls as f64 * 1.5,
        "unpadded entry lines must stall: {unpadded_stalls} vs {padded_stalls}"
    );
    assert!(
        unpadded_done >= padded_done,
        "stalls must not finish earlier: {unpadded_done} vs {padded_done}"
    );
}

#[test]
fn eager_allocator_pays_extra_persists_on_large_values() {
    let mut cfg = base(Ablation::default());
    cfg.workload = WorkloadSpec::Ycsb {
        dist: KeyDist::Uniform,
        value_len: 512, // allocator path
        put_ratio: 1.0,
    };
    cfg.pool_chunks = 256;
    let lazy = simkv::run(&cfg);
    let mut cfg_eager = cfg.clone();
    cfg_eager.ablate = Ablation {
        eager_alloc: true,
        ..Ablation::default()
    };
    let eager = simkv::run(&cfg_eager);
    assert!(
        eager.device.media_writes > lazy.device.media_writes,
        "eager bitmap persistence must add media writes: {} vs {}",
        eager.device.media_writes,
        lazy.device.media_writes
    );
    assert!(eager.mops <= lazy.mops * 1.02);
}
