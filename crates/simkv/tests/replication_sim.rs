//! Replication-overhead shape tests: shipping one envelope per persisted
//! batch means horizontal batching amortizes the replication messages the
//! same way it amortizes flushes — the per-operation cost of a backup
//! strictly shrinks as batches grow.

use simkv::{Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

fn replicated(client_batch: usize, group_size: usize, replicas: usize) -> SimConfig {
    SimConfig {
        engine: Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        },
        ncores: 8,
        group_size,
        clients: 64,
        client_batch,
        keyspace: 30_000,
        pool_chunks: 128,
        ops: 30_000,
        warmup: 3_000,
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len: 64,
            put_ratio: 1.0,
        },
        replicas,
        ..SimConfig::default()
    }
}

#[test]
fn per_op_replication_overhead_shrinks_with_batch_size() {
    // The tentpole claim: one ship message pair per HB batch, so the NIC
    // time replication charges per operation strictly decreases as the
    // measured batch size grows. The knobs (client batching and group
    // width) only exist to produce runs whose *measured* average batch
    // sizes differ; the assertion is on the measured relationship.
    let mut runs: Vec<(f64, f64)> = [(1, 1), (4, 4), (16, 8)]
        .into_iter()
        .map(|(client_batch, group_size)| {
            let cfg = replicated(client_batch, group_size, 1);
            let s = simkv::run(&cfg);
            assert!(s.ship_batches > 0, "replicated run shipped nothing");
            assert_eq!(s.ship_msgs, 2 * s.ship_batches);
            let per_op_ns = s.ship_msgs as f64 * cfg.net.nic_ns_per_msg / s.ops as f64;
            println!(
                "client_batch={client_batch} group={group_size}: avg_batch={:.2} \
                 ship_batches={} per_op_overhead={:.3}ns mops={:.2}",
                s.avg_batch, s.ship_batches, per_op_ns, s.mops
            );
            (s.avg_batch, per_op_ns)
        })
        .collect();
    runs.sort_by(|a, b| a.0.total_cmp(&b.0));
    assert!(
        runs[2].0 > 2.0 * runs[0].0,
        "configs failed to spread the batch size: {runs:?}"
    );
    assert!(
        runs[0].1 > runs[1].1 && runs[1].1 > runs[2].1,
        "per-op replication overhead must strictly decrease with batch size: {runs:?}"
    );
}

#[test]
fn batching_shrinks_the_replication_toll() {
    // A backup is not free — the ack round-trip gates completions — but
    // shipping per batch keeps the toll proportional to messages, so wide
    // batching shrinks the relative throughput loss until it disappears
    // into measurement noise.
    let loss = |client_batch, group_size| {
        let alone = simkv::run(&replicated(client_batch, group_size, 0));
        let paired = simkv::run(&replicated(client_batch, group_size, 1));
        assert_eq!(alone.ship_batches, 0);
        assert!(paired.ops >= 30_000);
        assert!(paired.mops > 0.0);
        println!(
            "client_batch={client_batch} group={group_size}: alone={:.2} paired={:.2} Mops",
            alone.mops, paired.mops
        );
        (alone.mops - paired.mops) / alone.mops
    };
    let narrow = loss(1, 1);
    let wide = loss(16, 8);
    assert!(
        narrow > 0.0,
        "unbatched replication must cost throughput: loss {narrow}"
    );
    assert!(
        wide < narrow,
        "batching must shrink the relative replication toll: {wide} !< {narrow}"
    );
}

#[test]
fn more_replicas_cost_more_messages() {
    let one = simkv::run(&replicated(8, 4, 1));
    let two = simkv::run(&replicated(8, 4, 2));
    assert_eq!(one.ship_msgs, 2 * one.ship_batches);
    assert_eq!(two.ship_msgs, 4 * two.ship_batches);
    // The report carries the replication section only when it applies.
    assert!(two
        .report("sim")
        .get("replication", "ship_msgs_per_op")
        .is_some());
    assert!(one
        .report("sim")
        .get("replication", "ship_batches")
        .is_some());
    assert!(simkv::run(&replicated(8, 4, 0))
        .report("sim")
        .get("replication", "ship_batches")
        .is_none());
}
