//! DES read-cache model: the regression the cache PR is judged on. Under
//! a zipf θ=0.99 read-heavy load the cache-enabled run must issue at most
//! half the cold PM value reads of the cache-disabled run, and disabling
//! the cache must leave the simulation exactly as it was before the cache
//! existed.

use simkv::{Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

fn read_heavy(theta: f64, read_cache_entries: usize) -> SimConfig {
    SimConfig {
        engine: Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        },
        ncores: 8,
        group_size: 4,
        clients: 64,
        client_batch: 8,
        keyspace: 30_000,
        pool_chunks: 128,
        ops: 30_000,
        warmup: 3_000,
        workload: WorkloadSpec::Ycsb {
            dist: if theta > 0.0 {
                KeyDist::Zipfian { theta }
            } else {
                KeyDist::Uniform
            },
            value_len: 64,
            put_ratio: 0.05,
        },
        read_cache_entries,
        ..SimConfig::default()
    }
}

#[test]
fn zipf_hot_reads_halve_pm_value_reads() {
    // The ISSUE's acceptance bar: at zipf θ=0.99 the cache-enabled run's
    // cold PM value reads are ≤ 50% of the cache-disabled run's.
    let off = simkv::run(&read_heavy(0.99, 0));
    let on = simkv::run(&read_heavy(0.99, 2048));
    assert_eq!(off.cache_hits, 0, "disabled cache must never hit");
    assert_eq!(off.cache_misses, 0, "disabled cache must never probe");
    assert!(off.pm_value_reads > 0, "baseline must read PM values");
    assert!(
        on.pm_value_reads * 2 <= off.pm_value_reads,
        "cache-enabled PM value reads {} must be <= 50% of disabled {}",
        on.pm_value_reads,
        off.pm_value_reads
    );
    let probes = on.cache_hits + on.cache_misses;
    assert!(probes > 0);
    let hit_rate = on.cache_hits as f64 / probes as f64;
    assert!(
        hit_rate > 0.5,
        "zipf 0.99 hit rate {hit_rate} should exceed 50%"
    );
}

#[test]
fn cache_never_slows_the_skewed_read_path() {
    // A hit replaces ≥ 1 cold PM read (170 ns default) with a 30 ns DRAM
    // probe; mean latency must not regress.
    let off = simkv::run(&read_heavy(0.99, 0));
    let on = simkv::run(&read_heavy(0.99, 2048));
    assert!(
        on.avg_latency_ns <= off.avg_latency_ns,
        "cache-on mean latency {} must not exceed cache-off {}",
        on.avg_latency_ns,
        off.avg_latency_ns
    );
    assert!(
        on.mops >= off.mops * 0.98,
        "cache-on throughput {} must not regress vs {}",
        on.mops,
        off.mops
    );
}

#[test]
fn uniform_reads_gain_little_but_stay_correct() {
    // Uniform keys defeat a small cache: hit rate stays low, yet every
    // request still completes and accounting stays consistent.
    let s = simkv::run(&read_heavy(0.0, 256));
    assert!(s.ops >= 30_000);
    let probes = s.cache_hits + s.cache_misses;
    assert!(probes > 0);
    let hit_rate = s.cache_hits as f64 / probes as f64;
    assert!(
        hit_rate < 0.5,
        "uniform hit rate {hit_rate} should stay low"
    );
    assert!(s.pm_value_reads > 0);
}

#[test]
fn disabled_cache_runs_are_bit_identical() {
    // `read_cache_entries: 0` must leave the simulation untouched: two
    // runs agree exactly, and the report carries no read_cache section.
    let a = simkv::run(&read_heavy(0.99, 0));
    let b = simkv::run(&read_heavy(0.99, 0));
    assert_eq!(a.ops, b.ops);
    assert_eq!(a.pm_value_reads, b.pm_value_reads);
    assert!((a.mops - b.mops).abs() < f64::EPSILON * a.mops.abs());
    assert!((a.avg_latency_ns - b.avg_latency_ns).abs() < 1e-9);
    let r = a.report("off");
    assert!(r.get("read_cache", "hits").is_none());
    assert_eq!(
        r.get("device", "pm_value_reads"),
        Some(&obs::Value::U64(a.pm_value_reads))
    );
}

#[test]
fn report_quotes_cache_counters() {
    let s = simkv::run(&read_heavy(0.99, 2048));
    let r = s.report("on");
    assert_eq!(
        r.get("read_cache", "hits"),
        Some(&obs::Value::U64(s.cache_hits))
    );
    assert_eq!(
        r.get("read_cache", "misses"),
        Some(&obs::Value::U64(s.cache_misses))
    );
    let expect = s.cache_hits as f64 / (s.cache_hits + s.cache_misses) as f64;
    assert_eq!(
        r.get("read_cache", "hit_rate"),
        Some(&obs::Value::F64(expect))
    );
}

#[test]
fn write_heavy_skew_keeps_invalidation_coherent() {
    // Half the ops are Puts to the same hot keys: every applied Put drops
    // the key from the owning core's cache, so hits can only re-arm after
    // a fresh miss. The run must complete and hit at a lower rate than the
    // read-heavy case.
    let mut cfg = read_heavy(0.99, 2048);
    cfg.workload = WorkloadSpec::Ycsb {
        dist: KeyDist::Zipfian { theta: 0.99 },
        value_len: 64,
        put_ratio: 0.5,
    };
    let s = simkv::run(&cfg);
    assert!(s.ops >= 30_000);
    let read_heavy_run = simkv::run(&read_heavy(0.99, 2048));
    let rate = |x: &simkv::Summary| {
        let p = x.cache_hits + x.cache_misses;
        if p == 0 {
            0.0
        } else {
            x.cache_hits as f64 / p as f64
        }
    };
    assert!(
        rate(&s) < rate(&read_heavy_run),
        "write-heavy hit rate {} should trail read-heavy {}",
        rate(&s),
        rate(&read_heavy_run)
    );
}
