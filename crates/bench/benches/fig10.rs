//! Figure 10 — multicore scalability: throughput with 4–36 server cores,
//! 100 % Put, 64 B values, uniform and skewed keys. Cores are spread over
//! two sockets; the HB group size grows with the per-socket core count.

use flatstore_bench::{print_header, print_row, ycsb_put, Scale};
use simkv::{Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let max = scale.ncores;
    let steps: Vec<usize> = [4usize, 8, 12, 16, 20, 26, 30, 36]
        .into_iter()
        .filter(|&c| c <= max)
        .collect();

    println!("== Figure 10: throughput with varying server cores (Mops/s) ==");
    print_header("cores", &["FS-H uni", "FS-H skew", "FS-M uni", "FS-M skew"]);
    for &cores in &steps {
        let mut cells = Vec::new();
        // Header order: hash-uni, hash-skew, mass-uni, mass-skew.
        for index in [SimIndex::Hash, SimIndex::Masstree] {
            for skew in [false, true] {
                let mut cfg = scale.config();
                cfg.engine = Engine::FlatStore {
                    model: ExecModel::PipelinedHb,
                    index,
                };
                cfg.ncores = cores;
                cfg.group_size = cores.div_ceil(2).max(1);
                cfg.clients = (cores * 8).max(16);
                cfg.workload = ycsb_put(64, skew);
                cells.push(("", flatstore_bench::mops(&cfg)));
            }
        }
        print_row(&format!("{cores}"), &cells);
    }
}
