//! BENCH trajectory — the hot-read DRAM cache across key skew.
//!
//! Runs the read-heavy YCSB point (Put:Get = 5:95, 64 B values) at
//! zipf θ ∈ {uniform, 0.9, 0.99} with the read-cache model off and on,
//! and emits a machine-readable `BENCH_5.json` (path from
//! `FLATBENCH_OUT`, default `BENCH_5.json` in the working directory)
//! recording ns/op, tail latency, cold PM value reads, PM media writes
//! and cache hit rates. `scripts/bench.sh` pins the scale and commits
//! the result; `FLATBENCH_QUICK=1` shrinks it to a CI smoke run.

use flatstore_bench::{print_header, print_row, run, Scale};
use simkv::{Engine, ExecModel, SimConfig, SimIndex, Summary, WorkloadSpec};
use workloads::KeyDist;

/// One measured point of the trajectory.
struct Point {
    theta: f64,
    entries: usize,
    s: Summary,
}

fn config(scale: &Scale, theta: f64, entries: usize) -> SimConfig {
    let mut cfg = scale.config();
    cfg.engine = Engine::FlatStore {
        model: ExecModel::PipelinedHb,
        index: SimIndex::Hash,
    };
    cfg.workload = WorkloadSpec::Ycsb {
        // Zipfian::new panics at θ = 0; uniform IS the θ → 0 limit.
        dist: if theta > 0.0 {
            KeyDist::Zipfian { theta }
        } else {
            KeyDist::Uniform
        },
        value_len: 64,
        put_ratio: 0.05,
    };
    cfg.read_cache_entries = entries;
    cfg
}

fn hit_rate(s: &Summary) -> f64 {
    let probes = s.cache_hits + s.cache_misses;
    if probes == 0 {
        0.0
    } else {
        s.cache_hits as f64 / probes as f64
    }
}

fn json_point(p: &Point) -> String {
    let ns_per_op = if p.s.mops > 0.0 { 1e3 / p.s.mops } else { 0.0 };
    format!(
        concat!(
            "    {{\"theta\": {}, \"cache_entries_per_core\": {}, ",
            "\"mops\": {:.4}, \"ns_per_op\": {:.2}, \"avg_ns\": {:.1}, ",
            "\"p50_ns\": {:.1}, \"p99_ns\": {:.1}, ",
            "\"pm_value_reads\": {}, \"pm_media_writes\": {}, ",
            "\"cache_hits\": {}, \"cache_misses\": {}, \"hit_rate\": {:.4}}}"
        ),
        p.theta,
        p.entries,
        p.s.mops,
        ns_per_op,
        p.s.avg_latency_ns,
        p.s.p50_ns,
        p.s.p99_ns,
        p.s.pm_value_reads,
        p.s.device.media_writes,
        p.s.cache_hits,
        p.s.cache_misses,
        hit_rate(&p.s),
    )
}

fn main() {
    let scale = Scale::from_env();
    let quick = std::env::var("FLATBENCH_QUICK").is_ok_and(|v| v != "0");
    // Mirror the engine default: 8 MiB of DRAM budget split across cores,
    // each 64 B value costing value + SLOT_OVERHEAD (64 B) in the budget.
    let entries = ((8usize << 20) / scale.ncores / 128).max(1);
    let thetas = [0.0, 0.9, 0.99];

    let mut points: Vec<Point> = Vec::new();
    for theta in thetas {
        for e in [0, entries] {
            let s = run(&config(&scale, theta, e));
            points.push(Point {
                theta,
                entries: e,
                s,
            });
        }
    }

    println!("== BENCH trajectory: hot-read cache, Put:Get 5:95, 64 B ==");
    print_header(
        "zipf theta",
        &["off ns/op", "on ns/op", "off p99", "on p99", "hit rate"],
    );
    for pair in points.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        print_row(
            &format!("{:.2}", off.theta),
            &[
                ("", 1e3 / off.s.mops),
                ("", 1e3 / on.s.mops),
                ("", off.s.p99_ns),
                ("", on.s.p99_ns),
                ("", hit_rate(&on.s) * 100.0),
            ],
        );
    }
    println!();
    for pair in points.chunks(2) {
        let (off, on) = (&pair[0], &pair[1]);
        let reduction = if off.s.pm_value_reads == 0 {
            0.0
        } else {
            1.0 - on.s.pm_value_reads as f64 / off.s.pm_value_reads as f64
        };
        println!(
            "theta {:.2}: PM value reads {} -> {} ({:.1}% fewer)",
            off.theta,
            off.s.pm_value_reads,
            on.s.pm_value_reads,
            reduction * 100.0
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"hot_read_cache_trajectory\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        concat!(
            "  \"scale\": {{\"keyspace\": {}, \"ops\": {}, \"warmup\": {}, ",
            "\"ncores\": {}, \"clients\": {}, \"cache_entries_per_core\": {}}},\n"
        ),
        scale.keyspace, scale.ops, scale.warmup, scale.ncores, scale.clients, entries
    ));
    json.push_str("  \"workload\": {\"value_len\": 64, \"put_ratio\": 0.05},\n");
    json.push_str("  \"runs\": [\n");
    let rows: Vec<String> = points.iter().map(json_point).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = std::env::var("FLATBENCH_OUT").unwrap_or_else(|_| "BENCH_5.json".into());
    std::fs::write(&out, &json).expect("write BENCH_5.json");
    println!("\nwrote {out}");
}
