//! BENCH trajectory — causal-tracing overhead and stage breakdown.
//!
//! Runs the replicated read-heavy YCSB point (Put:Get = 5:95, 64 B
//! values, one backup, engine-default read cache) at zipf θ ∈ {uniform,
//! 0.9, 0.99}, once with `trace_sample = 0` (the untraced baseline) and
//! once with `trace_sample = 32`, and emits a machine-readable
//! `BENCH_6.json` (path from `FLATBENCH_OUT`, default `BENCH_6.json` in
//! the working directory). Each point pairs the two runs and records the
//! throughput delta plus the traced run's stage-latency breakdown
//! (end-to-end, leader persist, replication ack wait, and the
//! batch-amortized persist cost).
//!
//! Span stamps only *observe* the virtual clock — they never charge it —
//! so the committed file doubles as the zero-overhead proof: the traced
//! column is bit-identical to the untraced baseline, comfortably inside
//! the ≤ 2 % budget the engine promises for `trace_sample = 0`.
//! `scripts/bench.sh` pins the scale and commits the result;
//! `FLATBENCH_QUICK=1` shrinks it to a CI smoke run.

use flatstore_bench::{print_header, print_row, run, Scale};
use obs::Stage;
use simkv::{Engine, ExecModel, SimConfig, SimIndex, Summary, WorkloadSpec};
use workloads::KeyDist;

/// Sampling rate for the traced run: 1-in-32, the rate DESIGN.md
/// recommends for always-on production tracing.
const TRACE_SAMPLE: u64 = 32;

/// One measured point: the same workload with tracing off and on.
struct Point {
    theta: f64,
    off: Summary,
    on: Summary,
}

fn config(scale: &Scale, theta: f64, entries: usize, trace_sample: u64) -> SimConfig {
    let mut cfg = scale.config();
    cfg.engine = Engine::FlatStore {
        model: ExecModel::PipelinedHb,
        index: SimIndex::Hash,
    };
    cfg.workload = WorkloadSpec::Ycsb {
        // Zipfian::new panics at θ = 0; uniform IS the θ → 0 limit.
        dist: if theta > 0.0 {
            KeyDist::Zipfian { theta }
        } else {
            KeyDist::Uniform
        },
        value_len: 64,
        put_ratio: 0.05,
    };
    cfg.read_cache_entries = entries;
    // One backup so traced puts pass through the full causal chain
    // (repl_ship / repl_ack_wait show up in the breakdown).
    cfg.replicas = 1;
    cfg.trace_sample = trace_sample;
    cfg
}

fn ns_per_op(s: &Summary) -> f64 {
    if s.mops > 0.0 {
        1e3 / s.mops
    } else {
        0.0
    }
}

/// Throughput overhead of tracing relative to the untraced baseline, in
/// percent (positive = traced run is slower).
fn overhead_pct(p: &Point) -> f64 {
    if p.off.mops > 0.0 {
        (p.off.mops - p.on.mops) / p.off.mops * 100.0
    } else {
        0.0
    }
}

fn stage_p50(s: &Summary, stage: Stage) -> u64 {
    s.breakdown
        .as_ref()
        .map_or(0, |b| b.stage_snapshot(stage).p50())
}

fn json_point(p: &Point) -> String {
    let b = p.on.breakdown.as_ref();
    format!(
        concat!(
            "    {{\"theta\": {}, \"trace_sample\": {}, ",
            "\"mops_untraced\": {:.4}, \"mops_traced\": {:.4}, ",
            "\"trace_overhead_pct\": {:.4}, ",
            "\"ns_per_op_untraced\": {:.2}, \"ns_per_op_traced\": {:.2}, ",
            "\"p99_ns_untraced\": {:.1}, \"p99_ns_traced\": {:.1}, ",
            "\"pm_media_writes_untraced\": {}, \"pm_media_writes_traced\": {}, ",
            "\"spans\": {}, \"end_to_end_p50_ns\": {}, ",
            "\"leader_persist_p50_ns\": {}, \"repl_ack_wait_p50_ns\": {}, ",
            "\"persist_per_entry_p50_ns\": {}}}"
        ),
        p.theta,
        TRACE_SAMPLE,
        p.off.mops,
        p.on.mops,
        overhead_pct(p),
        ns_per_op(&p.off),
        ns_per_op(&p.on),
        p.off.p99_ns,
        p.on.p99_ns,
        p.off.device.media_writes,
        p.on.device.media_writes,
        b.map_or(0, |b| b.spans()),
        b.map_or(0, |b| b.end_to_end_snapshot().p50()),
        stage_p50(&p.on, Stage::LeaderPersist),
        stage_p50(&p.on, Stage::ReplAckWait),
        b.map_or(0, |b| b.persist_per_entry_snapshot().p50()),
    )
}

fn main() {
    let scale = Scale::from_env();
    let quick = std::env::var("FLATBENCH_QUICK").is_ok_and(|v| v != "0");
    // Mirror the engine default: 8 MiB of DRAM budget split across cores,
    // each 64 B value costing value + SLOT_OVERHEAD (64 B) in the budget.
    let entries = ((8usize << 20) / scale.ncores / 128).max(1);
    let thetas = [0.0, 0.9, 0.99];

    let points: Vec<Point> = thetas
        .iter()
        .map(|&theta| Point {
            theta,
            off: run(&config(&scale, theta, entries, 0)),
            on: run(&config(&scale, theta, entries, TRACE_SAMPLE)),
        })
        .collect();

    println!("== BENCH trajectory: tracing overhead, Put:Get 5:95, 64 B, 1 backup ==");
    print_header(
        "zipf theta",
        &["off ns/op", "on ns/op", "ovhd %", "e2e p50", "persist p50"],
    );
    for p in &points {
        print_row(
            &format!("{:.2}", p.theta),
            &[
                ("", ns_per_op(&p.off)),
                ("", ns_per_op(&p.on)),
                ("", overhead_pct(p)),
                (
                    "",
                    p.on.breakdown
                        .as_ref()
                        .map_or(0, |b| b.end_to_end_snapshot().p50()) as f64,
                ),
                ("", stage_p50(&p.on, Stage::LeaderPersist) as f64),
            ],
        );
    }
    println!();
    for p in &points {
        println!(
            "theta {:.2}: {} spans sampled (1-in-{TRACE_SAMPLE}), overhead {:+.4}%",
            p.theta,
            p.on.breakdown.as_ref().map_or(0, |b| b.spans()),
            overhead_pct(p),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"tracing_overhead_trajectory\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        concat!(
            "  \"scale\": {{\"keyspace\": {}, \"ops\": {}, \"warmup\": {}, ",
            "\"ncores\": {}, \"clients\": {}, \"cache_entries_per_core\": {}, ",
            "\"replicas\": 1}},\n"
        ),
        scale.keyspace, scale.ops, scale.warmup, scale.ncores, scale.clients, entries
    ));
    json.push_str("  \"workload\": {\"value_len\": 64, \"put_ratio\": 0.05},\n");
    json.push_str("  \"runs\": [\n");
    let rows: Vec<String> = points.iter().map(json_point).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = std::env::var("FLATBENCH_OUT").unwrap_or_else(|_| "BENCH_6.json".into());
    std::fs::write(&out, &json).expect("write BENCH_6.json");
    println!("\nwrote {out}");
}
