//! Recovery-speed measurement (paper §3.5: "it only takes 40 seconds to
//! recover 1 billion KV items").
//!
//! Runs the *real engine* (host time, not simulated): load N keys, pull
//! the plug, time `FlatStore::open`'s crash path (full log scan, index
//! rebuild, allocator-bitmap reconstruction) and extrapolate to 10⁹ items.
//! Also measures the clean-shutdown reopen for contrast.

use std::time::Instant;

use flatstore::{Config, FlatStore};
use workloads::value_bytes;

fn main() {
    let quick = std::env::var("FLATBENCH_QUICK").is_ok_and(|v| v != "0");
    let keys: u64 = if quick { 100_000 } else { 400_000 };
    let cfg = Config::builder()
        .pm_bytes(1 << 30)
        .dram_bytes(64 << 20)
        .ncores(4)
        .group_size(4)
        .crash_tracking(true)
        .build()
        .expect("bench config");

    println!("== Recovery speed (paper §3.5) ==");
    let store = FlatStore::create(cfg.clone()).expect("create");
    let t = Instant::now();
    for k in 0..keys {
        // ETC-ish mix: mostly small inline values, occasional large ones.
        let len = if k % 20 == 0 {
            700
        } else {
            8 + (k % 120) as usize
        };
        store.put(k, value_bytes(k, len)).expect("put");
    }
    store.barrier();
    println!("loaded {keys} keys in {:?}", t.elapsed());

    // Crash path.
    let pm = store.kill();
    pm.simulate_crash();
    let t = Instant::now();
    let store = FlatStore::open(pm, cfg.clone()).expect("recover");
    let crash_dt = t.elapsed();
    assert_eq!(store.len() as u64, keys);
    let rate = keys as f64 / crash_dt.as_secs_f64();
    println!(
        "crash recovery: {keys} keys in {:?}  ({:.2} M keys/s; 1e9 keys ≈ {:.0} s)",
        crash_dt,
        rate / 1e6,
        1e9 / rate
    );

    // Clean path.
    let pm = store.shutdown().expect("shutdown");
    let t = Instant::now();
    let store = FlatStore::open(pm, cfg).expect("reopen");
    let clean_dt = t.elapsed();
    assert_eq!(store.len() as u64, keys);
    println!(
        "clean reopen:   {keys} keys in {:?}  ({:.1}x faster than the crash path)",
        clean_dt,
        crash_dt.as_secs_f64() / clean_dt.as_secs_f64().max(1e-9)
    );
}
