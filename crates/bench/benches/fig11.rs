//! Figure 11 — ablation of each optimization (paper §5.4): CCEH vs Base
//! (compacted log, no batching) vs +Naive HB vs +Pipelined HB, 100 % Put,
//! uniform keys, 8/64/128 B values.

use flatstore_bench::{mops, print_header, print_row, ycsb_put, Scale};
use simkv::{BaselineKind, Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let systems: [(&str, Engine); 4] = [
        ("CCEH", Engine::Baseline(BaselineKind::Cceh)),
        (
            "Base",
            Engine::FlatStore {
                model: ExecModel::NonBatch,
                index: SimIndex::Hash,
            },
        ),
        (
            "+Naive HB",
            Engine::FlatStore {
                model: ExecModel::NaiveHb,
                index: SimIndex::Hash,
            },
        ),
        (
            "+Pipelined HB",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
        ),
    ];

    println!("== Figure 11: benefit of each optimization (Put Mops/s, uniform) ==");
    println!("(RPC ceiling relaxed so the storage-engine differences are visible)");
    print_header("value (B)", &systems.map(|(n, _)| n));
    for len in [8usize, 64, 128] {
        let mut cells = Vec::new();
        for (name, engine) in systems {
            let mut cfg = scale.config();
            cfg.engine = engine;
            // Isolate the persistence engine from the shared NIC cap.
            cfg.net.nic_ns_per_msg = 5.0;
            cfg.workload = ycsb_put(len, false);
            cells.push((name, mops(&cfg)));
        }
        print_row(&format!("{len}"), &cells);
    }
}
