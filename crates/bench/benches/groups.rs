//! Horizontal-batching group-size sweep (paper §3.3 "Pipelined HB with
//! Grouping"): "smaller group size incurs low locking overhead, with the
//! cost of decreased size of each batch, or conversely. … arranging all
//! the cores from the same socket into one group provides the optimal
//! performance." The paper states this without a figure; this harness
//! regenerates the trade-off curve.

use flatstore_bench::{run, ycsb_put, Scale};
use simkv::{Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let cores = scale.ncores;
    println!(
        "== HB group-size sweep: {cores} cores, 64 B values, 100 % Put (RPC ceiling relaxed) =="
    );
    println!(
        "{:<12} {:>12} {:>12} {:>12}",
        "group size", "Mops/s", "avg batch", "p99 (us)"
    );
    let mut sizes: Vec<usize> = vec![1, 2, 4];
    let mut g = 8;
    while g < cores {
        sizes.push(g);
        g *= 2;
    }
    sizes.push(cores.div_ceil(2)); // one socket (the paper's optimum)
    sizes.push(cores); // whole machine in one group
    sizes.sort_unstable();
    sizes.dedup();

    for group in sizes {
        let mut cfg = scale.config();
        cfg.engine = Engine::FlatStore {
            model: ExecModel::PipelinedHb,
            index: SimIndex::Hash,
        };
        cfg.group_size = group;
        cfg.net.nic_ns_per_msg = 5.0;
        cfg.workload = ycsb_put(64, false);
        let s = run(&cfg);
        println!(
            "{:<12} {:>12.2} {:>12.1} {:>12.1}",
            group,
            s.mops,
            s.avg_batch,
            s.p99_ns / 1e3
        );
    }
    println!("(group size 1 degenerates to vertical batching)");
}
