//! Table 1 — description of the compared index schemes, augmented with a
//! structural self-check: measured flushes and fences per Put on each
//! freshly loaded persistent index (the write-amplification the paper's
//! §2.2 analysis predicts).

use std::sync::Arc;

use indexes::{Cceh, FastFair, FpTree, Index, LevelHash, Mode};
use pmem::{PmAddr, PmRegion};

fn profile(name: &str, desc: &str, idx: &mut dyn Index, pm: &PmRegion) {
    // Load phase.
    for k in 0..20_000u64 {
        idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k).unwrap();
    }
    let before = pm.stats().snapshot();
    let ops = 5_000u64;
    for k in 0..ops {
        idx.insert(k.wrapping_mul(0xD1B54A32D192ED03), k).unwrap();
    }
    let d = pm.stats().snapshot().delta(&before);
    println!(
        "{name:<14} {:>11.2} {:>11.2}   {desc}",
        d.flushes as f64 / ops as f64,
        d.fences as f64 / ops as f64,
    );
}

fn main() {
    println!("== Table 1: compared index schemes ==");
    println!(
        "{:<14} {:>11} {:>11}   structure",
        "scheme", "flushes/Put", "fences/Put"
    );
    println!("{}", "-".repeat(100));

    let pm = Arc::new(PmRegion::new(512 << 20));
    let mut cceh = Cceh::new(Arc::clone(&pm), PmAddr(0), 128 << 20, Mode::Persistent, 4).unwrap();
    profile(
        "CCEH",
        "three level (directory, segments, buckets), 4 slots in a bucket",
        &mut cceh,
        &pm,
    );

    let pm = Arc::new(PmRegion::new(512 << 20));
    let mut level = LevelHash::new(
        Arc::clone(&pm),
        PmAddr(0),
        256 << 20,
        Mode::Persistent,
        16_384,
    )
    .unwrap();
    profile(
        "Level-Hashing",
        "two-level (top/bottom level), 4 slots in a bucket",
        &mut level,
        &pm,
    );

    let pm = Arc::new(PmRegion::new(512 << 20));
    let mut ff = FastFair::new(Arc::clone(&pm), PmAddr(0), 256 << 20, Mode::Persistent).unwrap();
    profile(
        "FAST&FAIR",
        "B+-tree, all nodes are placed in PM",
        &mut ff,
        &pm,
    );

    let pm = Arc::new(PmRegion::new(512 << 20));
    let mut fp = FpTree::new(Arc::clone(&pm), PmAddr(0), 256 << 20, Mode::Persistent).unwrap();
    profile(
        "FPTree",
        "B+-tree, inner nodes are placed in DRAM, leaves in PM",
        &mut fp,
        &pm,
    );

    println!();
    println!("(FlatStore's compacted log costs 5 flushes / 2 fences for a batch of");
    println!(" SIXTEEN 16-byte entries — see oplog::tests and Figure 11.)");
}
