//! Figure 13 — garbage-collection efficiency: ETC workload (50 % Get) in a
//! constrained PM pool; throughput and cleaning rate over time once the
//! cleaner engages.

use flatstore_bench::Scale;
use simkv::{Engine, ExecModel, SimIndex, WorkloadSpec};

fn main() {
    let scale = Scale::from_env();
    let mut cfg = scale.config();
    cfg.engine = Engine::FlatStore {
        model: ExecModel::PipelinedHb,
        index: SimIndex::Hash,
    };
    cfg.workload = WorkloadSpec::Etc { put_ratio: 0.5 };
    // A small core count keeps the per-core/per-class chunk footprint low
    // and concentrates log churn so per-core logs actually roll (and seal)
    // 4 MB chunks — sealed chunks are what the cleaner reclaims, and this
    // figure studies that reclamation.
    cfg.ncores = 2;
    cfg.group_size = 2;
    cfg.clients = cfg.clients.min(48);
    // Few hot keys => overwrites quickly deaden sealed chunks.
    cfg.keyspace = scale.keyspace.min(6_000);
    // Room for the two per-core logs, the allocator's per-(core, class)
    // chunks and the prefill, plus bounded headroom the cleaner must
    // maintain: small enough that the pool constraint bites on log churn.
    cfg.pool_chunks = 30;
    cfg.gc = true;
    cfg.gc_min_free = 14;
    cfg.ops = scale.ops * 16;
    cfg.warmup = scale.ops / 10;
    cfg.window_ns = 2e6; // 2 ms windows

    println!("== Figure 13: GC efficiency (ETC, 50% Get, constrained pool) ==");
    let s = simkv::run(&cfg);
    println!("{}", s.report("fig13 FlatStore-H (ETC, GC)"));
    println!(
        "{:<12} {:>14} {:>16}",
        "t (ms)", "Mops/s", "chunks cleaned/s"
    );
    let window_s = 2e-3;
    for w in &s.timeline {
        println!(
            "{:<12.1} {:>14.2} {:>16.0}",
            w.start_s * 1e3,
            w.ops as f64 / window_s / 1e6,
            w.gc_chunks as f64 / window_s
        );
    }
    let total_cleaned: u64 = s.timeline.iter().map(|w| w.gc_chunks).sum();
    println!("total chunks cleaned: {total_cleaned}");
    assert!(total_cleaned > 0, "GC never engaged — shrink the pool");
}
