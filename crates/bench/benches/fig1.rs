//! Figure 1 — Performance evaluation of (simulated) Optane DCPMM.
//!
//! (a) Raw 64 B random-write throughput vs. FAST&FAIR Put throughput as the
//!     thread count grows; (b) sequential vs. random 256 B write bandwidth;
//! (c) write latency for Seq / Rnd / In-place patterns.

use flatstore_bench::Scale;
use simkv::probe::{write_bandwidth, write_latency, write_throughput_mops, Pattern};
use simkv::{BaselineKind, CostParams, Engine, SimConfig, WorkloadSpec};
use workloads::KeyDist;

fn fastfair_put_mops(threads: usize, scale: &Scale) -> f64 {
    let cfg = SimConfig {
        engine: Engine::Baseline(BaselineKind::FastFair),
        ncores: threads,
        group_size: threads,
        clients: (threads * 8).max(8),
        keyspace: scale.keyspace.min(100_000),
        ops: (scale.ops / 3).max(10_000),
        warmup: (scale.ops / 30).max(1_000),
        workload: WorkloadSpec::Ycsb {
            dist: KeyDist::Uniform,
            value_len: 8,
            put_ratio: 1.0,
        },
        ..SimConfig::default()
    };
    simkv::run(&cfg).mops
}

fn main() {
    let scale = Scale::from_env();
    let p = CostParams::default();
    let ops = 20_000;

    println!("== Figure 1(a): Optane 64B random writes vs FAST&FAIR Put (Mops/s) ==");
    println!(
        "{:<10} {:>14} {:>14} {:>8}",
        "threads", "Optane-64B", "FAST&FAIR", "ratio"
    );
    for threads in [1usize, 2, 4, 8, 12, 16, 20] {
        let raw = write_throughput_mops(&p, threads, 64, ops);
        let ff = fastfair_put_mops(threads, &scale);
        println!(
            "{threads:<10} {raw:>14.2} {ff:>14.2} {:>7.1}x",
            raw / ff.max(1e-9)
        );
    }

    println!();
    println!("== Figure 1(b): 256B write bandwidth (GB/s) ==");
    println!("{:<10} {:>12} {:>12}", "threads", "Write-Seq", "Write-Rnd");
    for threads in [1usize, 2, 4, 8, 12, 16, 20, 24, 32, 40] {
        let seq = write_bandwidth(&p, threads, 256, true, ops);
        let rnd = write_bandwidth(&p, threads, 256, false, ops);
        println!("{threads:<10} {seq:>12.2} {rnd:>12.2}");
    }

    println!();
    println!("== Figure 1(c): write latency (ns) ==");
    for (name, pat) in [
        ("Seq", Pattern::Seq),
        ("Rnd", Pattern::Rnd),
        ("In-place", Pattern::InPlace),
    ] {
        println!("{name:<10} {:>10.0}", write_latency(&p, pat, 50_000));
    }
}
