//! Figure 7 — Put performance of FlatStore-H vs CCEH vs Level-Hashing,
//! uniform and zipfian(0.99) key popularity, value sizes 8 B – 1 KB.

use flatstore_bench::{mops, print_header, print_row, ycsb_put, Scale};
use simkv::{BaselineKind, Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let sizes = [8usize, 64, 128, 256, 512, 1024];
    let systems: [(&str, Engine); 3] = [
        (
            "FlatStore-H",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
        ),
        ("CCEH", Engine::Baseline(BaselineKind::Cceh)),
        (
            "Level-Hashing",
            Engine::Baseline(BaselineKind::LevelHashing),
        ),
    ];

    for (title, skew) in [("(a) Uniform", false), ("(b) Skew (zipf 0.99)", true)] {
        println!("== Figure 7{title}: Put throughput (Mops/s) ==");
        print_header("value (B)", &systems.map(|(n, _)| n));
        for &len in &sizes {
            let mut cells = Vec::new();
            for (name, engine) in systems {
                let mut cfg = scale.config();
                cfg.engine = engine;
                cfg.workload = ycsb_put(len, skew);
                cells.push((name, mops(&cfg)));
            }
            print_row(&format!("{len}"), &cells);
        }
        println!();
    }
}
