//! PR 10 — self-tuning horizontal batching vs static group sizes
//! (`BENCH_10.json`).
//!
//! The paper picks a group size once ("all the cores from the same
//! socket into one group", §3.3) and lives with it; the adaptive
//! controller ([`Config::adaptive`]'s DES twin) is supposed to make that
//! choice obsolete. This harness sweeps key skew × static group sizes
//! and runs the adaptive configuration against each sweep: the claim —
//! gated at test scale by `simkv/tests/adaptive_sim.rs` and re-measured
//! here at the pinned full scale — is that the adaptive point lands
//! within 5 % of the *best* static size at every skew and strictly above
//! the *worst*, without anyone telling it the skew in advance.
//!
//! Deterministic DES: the JSON reproduces bit-for-bit anywhere. Writes
//! `FLATBENCH_OUT` (default `BENCH_10.json`).
//!
//! [`Config::adaptive`]: flatstore::Config

use flatstore_bench::{print_header, print_row, Scale};
use simkv::{run, Engine, ExecModel, SimConfig, SimIndex, WorkloadSpec};
use workloads::KeyDist;

const VALUE_LEN: usize = 64;

struct StaticPoint {
    group_size: usize,
    mops: f64,
    avg_batch: f64,
}

struct SkewSweep {
    name: &'static str,
    theta: Option<f64>,
    statics: Vec<StaticPoint>,
    adaptive_mops: f64,
    adaptive_avg_batch: f64,
}

fn cfg(scale: &Scale, dist: KeyDist) -> SimConfig {
    let mut c = scale.config();
    // Steady-state comparison: the controller converges and settles
    // within ~150 epochs, so every config — static and adaptive alike —
    // runs 3× the pinned op count with half the pinned count as warmup,
    // measuring the converged operating point rather than the transient.
    c.ops = scale.ops * 3;
    c.warmup = scale.ops / 2;
    c.engine = Engine::FlatStore {
        model: ExecModel::PipelinedHb,
        index: SimIndex::Hash,
    };
    c.workload = WorkloadSpec::Ycsb {
        dist,
        value_len: VALUE_LEN,
        put_ratio: 1.0,
    };
    c
}

fn sweep_sizes(ncores: usize) -> Vec<usize> {
    let mut sizes = vec![1, 4, ncores.div_ceil(2).max(1), ncores];
    sizes.sort_unstable();
    sizes.dedup();
    sizes
}

fn main() {
    let scale = Scale::from_env();
    let sizes = sweep_sizes(scale.ncores);
    println!(
        "== BENCH adaptive batching: static group sizes {:?} vs self-tuning, {} cores, 64 B Put ==",
        sizes, scale.ncores
    );

    let dists: [(&'static str, Option<f64>, KeyDist); 3] = [
        ("uniform", None, KeyDist::Uniform),
        ("zipf-0.9", Some(0.9), KeyDist::Zipfian { theta: 0.9 }),
        ("zipf-0.99", Some(0.99), KeyDist::Zipfian { theta: 0.99 }),
    ];

    let mut sweeps = Vec::new();
    for (name, theta, dist) in dists {
        let statics: Vec<StaticPoint> = sizes
            .iter()
            .map(|&gs| {
                let mut c = cfg(&scale, dist);
                c.group_size = gs;
                let s = run(&c);
                StaticPoint {
                    group_size: gs,
                    mops: s.mops,
                    avg_batch: s.avg_batch,
                }
            })
            .collect();
        let mut c = cfg(&scale, dist);
        c.group_size = scale.ncores;
        c.adaptive = true;
        let a = run(&c);
        sweeps.push(SkewSweep {
            name,
            theta,
            statics,
            adaptive_mops: a.mops,
            adaptive_avg_batch: a.avg_batch,
        });
    }

    let headers: Vec<String> = sizes.iter().map(|g| format!("static-{g}")).collect();
    let mut cols: Vec<&str> = headers.iter().map(String::as_str).collect();
    cols.push("adaptive");
    print_header("skew \\ Mops", &cols);
    for s in &sweeps {
        let mut cells: Vec<(&str, f64)> = s.statics.iter().map(|p| ("", p.mops)).collect();
        cells.push(("", s.adaptive_mops));
        print_row(s.name, &cells);
    }
    println!();
    for s in &sweeps {
        let best = s.statics.iter().map(|p| p.mops).fold(0.0, f64::max);
        let worst = s
            .statics
            .iter()
            .map(|p| p.mops)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{}: adaptive at {:.1} % of best static, {} worst ({:.4} vs [{:.4}, {:.4}])",
            s.name,
            s.adaptive_mops / best * 100.0,
            if s.adaptive_mops > worst {
                "above"
            } else {
                "NOT above"
            },
            s.adaptive_mops,
            worst,
            best,
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"adaptive_batching_sweep\",\n");
    json.push_str(&format!(
        concat!(
            "  \"scale\": {{\"keyspace\": {}, \"ops\": {}, \"warmup\": {}, ",
            "\"ncores\": {}, \"clients\": {}, \"client_batch\": 8}},\n"
        ),
        scale.keyspace,
        scale.ops * 3,
        scale.ops / 2,
        scale.ncores,
        scale.clients
    ));
    json.push_str("  \"workload\": {\"value_len\": 64, \"put_ratio\": 1.0},\n");
    json.push_str("  \"sweeps\": [\n");
    let rows: Vec<String> = sweeps
        .iter()
        .map(|s| {
            let statics: Vec<String> = s
                .statics
                .iter()
                .map(|p| {
                    format!(
                        "        {{\"group_size\": {}, \"mops\": {:.6}, \"avg_batch\": {:.3}}}",
                        p.group_size, p.mops, p.avg_batch
                    )
                })
                .collect();
            let best = s.statics.iter().map(|p| p.mops).fold(0.0, f64::max);
            let worst = s
                .statics
                .iter()
                .map(|p| p.mops)
                .fold(f64::INFINITY, f64::min);
            format!(
                concat!(
                    "    {{\"dist\": \"{}\", \"theta\": {}, \"static\": [\n{}\n      ],\n",
                    "      \"adaptive\": {{\"mops\": {:.6}, \"avg_batch\": {:.3}}},\n",
                    "      \"best_static_mops\": {:.6}, \"worst_static_mops\": {:.6},\n",
                    "      \"adaptive_frac_of_best\": {:.6}}}"
                ),
                s.name,
                s.theta.map_or("null".into(), |t| format!("{t}")),
                statics.join(",\n"),
                s.adaptive_mops,
                s.adaptive_avg_batch,
                best,
                worst,
                s.adaptive_mops / best,
            )
        })
        .collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ]\n}\n");

    let out = std::env::var("FLATBENCH_OUT").unwrap_or_else(|_| "BENCH_10.json".into());
    std::fs::write(&out, &json).expect("write BENCH_10.json");
    println!("\nwrote {out}");
}
