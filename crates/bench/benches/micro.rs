//! Criterion microbenchmarks of the core building blocks (host-time, not
//! simulated-time): entry codec, batched log appends, allocator fast path
//! and the index structures.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use indexes::{Cceh, Index, Mode};
use masstree::Masstree;
use oplog::{LogEntry, OpLog};
use pmalloc::{ChunkManager, CoreAllocator, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};

fn entry_codec(c: &mut Criterion) {
    let pm = PmRegion::new(4096);
    let e = LogEntry::put_ptr(0xDEAD_BEEF, 7, PmAddr(0x4000));
    c.bench_function("entry/encode_ptr", |b| {
        let mut buf = Vec::with_capacity(16);
        b.iter(|| {
            buf.clear();
            e.encode_into(&mut buf);
            std::hint::black_box(&buf);
        });
    });
    let mut buf = Vec::new();
    e.encode_into(&mut buf);
    pm.write(PmAddr(64), &buf);
    c.bench_function("entry/decode_ptr", |b| {
        b.iter(|| std::hint::black_box(LogEntry::decode(&pm, PmAddr(64)).unwrap()));
    });
}

fn log_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("oplog");
    for batch in [1usize, 16, 64] {
        group.bench_function(format!("append_batch_{batch}x16B"), |b| {
            let pm = Arc::new(PmRegion::new(64 * CHUNK_SIZE as usize));
            let mgr = Arc::new(ChunkManager::format(pm, PmAddr(CHUNK_SIZE), 63));
            let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
            let entries: Vec<_> = (0..batch as u64)
                .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100)))
                .collect();
            b.iter(|| std::hint::black_box(log.append_batch(&entries).unwrap()));
        });
    }
    group.finish();
}

fn allocator(c: &mut Criterion) {
    c.bench_function("pmalloc/alloc_free_1k", |b| {
        let pm = Arc::new(PmRegion::new(64 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(pm, PmAddr(0), 64));
        let mut a = CoreAllocator::new(mgr, 0);
        b.iter(|| {
            let x = a.alloc(1000).unwrap();
            a.free(x).unwrap();
        });
    });
}

fn index_ops(c: &mut Criterion) {
    c.bench_function("cceh/insert_volatile", |b| {
        let pm = Arc::new(PmRegion::new(256 << 20));
        let mut idx = Cceh::new(pm, PmAddr(0), 256 << 20, Mode::Volatile, 4).unwrap();
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            idx.insert(k, k).unwrap();
        });
    });
    c.bench_function("masstree/insert", |b| {
        let t = Masstree::new();
        let mut k = 0u64;
        b.iter(|| {
            k = k.wrapping_add(0x9E3779B97F4A7C15);
            t.insert(k, k);
        });
    });
    c.bench_function("masstree/get_hit", |b| {
        let t = Masstree::new();
        for k in 0..100_000u64 {
            t.insert(k, k);
        }
        let mut k = 0u64;
        b.iter_batched(
            || {
                k = (k + 7919) % 100_000;
                k
            },
            |k| std::hint::black_box(t.get(k)),
            BatchSize::SmallInput,
        );
    });
}

fn engine_ops(c: &mut Criterion) {
    use flatstore::{Config, FlatStore};

    let store = FlatStore::create(
        Config::builder()
            .pm_bytes(512 << 20)
            .ncores(2)
            .group_size(2)
            .build()
            .expect("engine config"),
    )
    .expect("engine");
    for k in 0..10_000u64 {
        store.put(k, [0xAB; 64]).expect("prefill");
    }

    let mut k = 0u64;
    c.bench_function("engine/put_inline_64B", |b| {
        b.iter(|| {
            k = (k + 1) % 10_000;
            store.put(k, [0xCD; 64]).expect("put");
        });
    });
    c.bench_function("engine/put_allocator_1KB", |b| {
        let big = vec![0xEF; 1024];
        b.iter(|| {
            k = (k + 1) % 10_000;
            store.put(k, &big).expect("put");
        });
    });
    c.bench_function("engine/get_hit", |b| {
        b.iter(|| {
            k = (k + 7919) % 10_000;
            std::hint::black_box(store.get(k).expect("get"));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800));
    targets = entry_codec, log_append, allocator, index_ops, engine_ops
}
criterion_main!(benches);
