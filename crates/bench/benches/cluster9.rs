//! PR 9 — cluster scaling and live-migration pause (`BENCH_9.json`).
//!
//! Two measurements side by side:
//!
//! * **DES scaling** — `simkv::run_cluster` sweeps 1/2/4 replica groups
//!   under a zipf-skewed mixed workload and reports aggregate Mops plus
//!   the analytic hot-slot migration model (suffix-ship window vs. flip
//!   pause). Groups run concurrently in virtual time, so this is the
//!   throughput-vs-group-count plot the hardware testbed would produce.
//! * **Real engine** — an actual `flatclus::Cluster` (in-process groups
//!   over the full FlatStore stack) serves closed-loop client threads
//!   while a hot slot migrates round-robin between groups; the
//!   `pause_ns` histogram (the only client-visible stall, one slot's
//!   write gate during the final suffix sliver) is checked against
//!   `migration_ns` (the whole ship window). Wall-clock throughput per
//!   group count is reported for completeness under a fixed shard-core
//!   budget split across the groups (so every point runs the same number
//!   of engine threads and the sweep is not an oversubscription sweep) —
//!   scaling *shape* is still the DES's job, the real engine's job is
//!   the pause bound.
//!
//! Writes `FLATBENCH_OUT` (default `BENCH_9.json`).

use std::time::Instant;

use flatclus::{Cluster, ClusterConfig};
use flatstore::{Config, KvApi};
use flatstore_bench::{print_header, print_row, Scale};
use simkv::{run_cluster, ClusterSimConfig, ClusterSummary, SimConfig, WorkloadSpec};
use workloads::{KeyDist, Op, Workload};

const GROUP_COUNTS: [usize; 3] = [1, 2, 4];
const VALUE_LEN: usize = 64;
const PUT_RATIO: f64 = 0.5;

/// Real-engine run sizes: (keyspace, ops per client thread, client
/// threads, migrations under load). Client threads are capped by the
/// host's parallelism for the same reason as [`cores_per_group`]: extra
/// threads on a small host only add scheduler noise to the pause
/// percentiles.
fn real_scale(quick: bool) -> (u64, u64, usize, usize) {
    let host = std::thread::available_parallelism().map_or(2, |n| n.get());
    if quick {
        (3_000, 1_500, 2, 3)
    } else {
        (8_000, 6_000, 3.min(host.max(2)), 6)
    }
}

struct RealPoint {
    groups: usize,
    ncores_per_group: usize,
    ops: u64,
    elapsed_ns: u64,
    mops: f64,
}

struct RealMigration {
    groups: usize,
    completed: u64,
    aborted: u64,
    mig_ops: u64,
    double_writes: u64,
    redirects: u64,
    pause_p50_ns: u64,
    pause_p99_ns: u64,
    window_p50_ns: u64,
    window_p99_ns: u64,
}

/// Engine cores per group, sized so the whole cluster's shard threads fit
/// the host: half the physical cores (clamped to [2, 4]) are the shard
/// budget — the other half serves client threads — and the budget is
/// split across groups. A fixed per-group core count instead makes the
/// group sweep an oversubscription sweep: 4 groups × 2 cores time-share a
/// small host and lose to 1 × 2, which says nothing about the cluster.
fn cores_per_group(groups: usize) -> usize {
    let host = std::thread::available_parallelism().map_or(2, |n| n.get());
    let budget = (host / 2).clamp(2, 4);
    (budget / groups).max(1)
}

fn engine_cfg(groups: usize) -> Config {
    let ncores = cores_per_group(groups);
    Config::builder()
        .pm_bytes(48 << 20)
        .dram_bytes(8 << 20)
        .ncores(ncores)
        .group_size(ncores)
        .build()
        .expect("valid engine config")
}

fn cluster_cfg(groups: usize) -> ClusterConfig {
    ClusterConfig {
        groups,
        nslots: 64,
        replicated: false,
        engine: engine_cfg(groups),
    }
}

fn drive(client: &mut flatclus::ClusterClient, w: &mut Workload, n: u64) -> u64 {
    let mut done = 0;
    for _ in 0..n {
        match w.next_op() {
            Op::Put { key, value_len } => {
                let v = workloads::value_bytes(key, value_len);
                client.put(key, &v).expect("cluster put");
            }
            Op::Get { key } => {
                client.get(key).expect("cluster get");
            }
            Op::Delete { key } => {
                client.delete(key).expect("cluster delete");
            }
        }
        done += 1;
    }
    done
}

fn workload(keyspace: u64, seed: u64) -> Workload {
    Workload::new(
        keyspace,
        KeyDist::Zipfian { theta: 0.99 },
        VALUE_LEN,
        PUT_RATIO,
        seed,
    )
}

/// Closed-loop throughput of a real cluster at `groups` groups.
fn run_real(groups: usize, keyspace: u64, ops_per_thread: u64, threads: usize) -> RealPoint {
    let cluster = Cluster::create(cluster_cfg(groups)).expect("cluster create");
    // Preload so Gets hit data and the logs have suffix to ship.
    {
        let mut c = cluster.client().expect("client");
        for key in 0..keyspace.min(2_000) {
            let v = workloads::value_bytes(key, VALUE_LEN);
            c.put(key, &v).expect("preload put");
        }
    }
    let start = Instant::now();
    let ops: u64 = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let cluster = &cluster;
                s.spawn(move || {
                    let mut client = cluster.client().expect("client");
                    let mut w = workload(keyspace, 0x9000 + t as u64);
                    drive(&mut client, &mut w, ops_per_thread)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker")).sum()
    });
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    cluster.shutdown().expect("shutdown");
    RealPoint {
        groups,
        ncores_per_group: cores_per_group(groups),
        ops,
        elapsed_ns,
        mops: ops as f64 / elapsed_ns as f64 * 1e3,
    }
}

/// Migrates a hot slot round-robin between groups while client threads
/// keep the cluster under load; returns the pause/window histograms.
fn run_real_migration(
    groups: usize,
    keyspace: u64,
    ops_per_thread: u64,
    threads: usize,
    migrations: usize,
) -> RealMigration {
    use std::sync::atomic::{AtomicBool, Ordering};

    let cluster = Cluster::create(cluster_cfg(groups)).expect("cluster create");
    {
        let mut c = cluster.client().expect("client");
        for key in 0..keyspace.min(2_000) {
            let v = workloads::value_bytes(key, VALUE_LEN);
            c.put(key, &v).expect("preload put");
        }
    }
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        for t in 0..threads {
            let cluster = &cluster;
            let stop = &stop;
            s.spawn(move || {
                let mut client = cluster.client().expect("client");
                let mut w = workload(keyspace, 0xa000 + t as u64);
                let mut done = 0;
                // Minimum work keeps the run meaningful even if the
                // migrations finish instantly; then drain on `stop`.
                while done < ops_per_thread || !stop.load(Ordering::Acquire) {
                    done += drive(&mut client, &mut w, 64);
                }
            });
        }
        // The hottest scrambled-zipf key is arbitrary; any busy slot
        // demonstrates the bound. Use key 0's slot and chase it.
        let slot = cluster.slot_of(0);
        for _ in 0..migrations {
            let to = (cluster.owner_of(slot) + 1) % groups as u16;
            cluster.migrate(slot, to).expect("migrate under load");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);
    });
    let st = cluster.stats();
    let out = RealMigration {
        groups,
        completed: st.migrations_completed.get(),
        aborted: st.migrations_aborted.get(),
        mig_ops: st.mig_ops.get(),
        double_writes: st.double_writes.get(),
        redirects: st.redirects.get(),
        pause_p50_ns: st.pause_ns.percentile(0.50),
        pause_p99_ns: st.pause_ns.percentile(0.99),
        window_p50_ns: st.migration_ns.percentile(0.50),
        window_p99_ns: st.migration_ns.percentile(0.99),
    };
    cluster.shutdown().expect("shutdown");
    out
}

fn sim_base(scale: &Scale) -> SimConfig {
    let mut base = scale.config();
    base.workload = WorkloadSpec::Ycsb {
        dist: KeyDist::Zipfian { theta: 0.99 },
        value_len: VALUE_LEN,
        put_ratio: PUT_RATIO,
    };
    base
}

fn json_real(p: &RealPoint) -> String {
    format!(
        concat!(
            "    {{\"groups\": {}, \"ncores_per_group\": {}, \"ops\": {}, ",
            "\"elapsed_ns\": {}, \"mops\": {:.6}}}"
        ),
        p.groups, p.ncores_per_group, p.ops, p.elapsed_ns, p.mops
    )
}

fn json_sim(s: &ClusterSummary) -> String {
    format!(
        concat!(
            "    {{\"groups\": {}, \"ops\": {}, \"mops\": {:.6}, ",
            "\"p99_ns\": {:.0}, \"hot_slot_share\": {:.6}, ",
            "\"migration\": {{\"slot_keys\": {}, \"window_ns\": {:.0}, ",
            "\"pause_ns\": {:.0}, \"final_ops\": {:.1}}}}}"
        ),
        s.groups,
        s.ops,
        s.mops,
        s.p99_ns,
        s.hot_slot_share,
        s.migration.slot_keys,
        s.migration.window_ns,
        s.migration.pause_ns,
        s.migration.final_ops,
    )
}

fn main() {
    let scale = Scale::from_env();
    let quick = std::env::var("FLATBENCH_QUICK").is_ok_and(|v| v != "0");
    let (keyspace, ops_per_thread, threads, migrations) = real_scale(quick);

    println!(
        "== BENCH cluster: throughput vs groups + migration pause, zipf 0.99, 64 B, 50 % Put =="
    );

    // DES sweep: the scaling plot.
    let base = sim_base(&scale);
    let sims: Vec<ClusterSummary> = GROUP_COUNTS
        .iter()
        .map(|&groups| {
            run_cluster(&ClusterSimConfig {
                groups,
                nslots: workloads::NSLOTS,
                base: base.clone(),
            })
        })
        .collect();
    print_header(
        "sim groups",
        &["Mops", "p99 us", "hot share", "window ms", "pause us"],
    );
    for s in &sims {
        print_row(
            &format!("{}", s.groups),
            &[
                ("", s.mops),
                ("", s.p99_ns / 1e3),
                ("", s.hot_slot_share),
                ("", s.migration.window_ns / 1e6),
                ("", s.migration.pause_ns / 1e3),
            ],
        );
    }
    println!();

    // Real engine: throughput per group count (informational on a
    // time-shared host) and the pause-vs-window bound under load.
    let reals: Vec<RealPoint> = GROUP_COUNTS
        .iter()
        .map(|&g| run_real(g, keyspace, ops_per_thread, threads))
        .collect();
    print_header("real groups", &["Mops", "ops", "elapsed ms"]);
    for p in &reals {
        print_row(
            &format!("{}", p.groups),
            &[
                ("", p.mops),
                ("", p.ops as f64),
                ("", p.elapsed_ns as f64 / 1e6),
            ],
        );
    }
    println!();

    let mig = run_real_migration(
        *GROUP_COUNTS.last().expect("non-empty sweep"),
        keyspace,
        ops_per_thread,
        threads,
        migrations,
    );
    println!(
        "real migration x{} over {} groups: pause p50 {} us / p99 {} us, window p50 {} us / p99 {} us",
        mig.completed,
        mig.groups,
        mig.pause_p50_ns / 1_000,
        mig.pause_p99_ns / 1_000,
        mig.window_p50_ns / 1_000,
        mig.window_p99_ns / 1_000,
    );
    println!(
        "  shipped {} ops in-stream, {} double-writes, {} redirects, {} aborted",
        mig.mig_ops, mig.double_writes, mig.redirects, mig.aborted,
    );
    let bounded = mig.pause_p99_ns < mig.window_p50_ns.max(1);
    println!(
        "  pause p99 {} window p50: migration {} stop-the-world",
        if bounded { "<" } else { ">=" },
        if bounded { "is not" } else { "LOOKS LIKE" },
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"cluster_scaling_and_migration\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        concat!(
            "  \"workload\": {{\"dist\": \"zipfian\", \"theta\": 0.99, ",
            "\"value_len\": {}, \"put_ratio\": {}}},\n"
        ),
        VALUE_LEN, PUT_RATIO
    ));
    json.push_str(&format!(
        concat!(
            "  \"sim_scale\": {{\"keyspace\": {}, \"ops\": {}, \"warmup\": {}, ",
            "\"ncores_per_group\": {}, \"clients\": {}, \"nslots\": {}}},\n"
        ),
        scale.keyspace,
        scale.ops,
        scale.warmup,
        scale.ncores,
        scale.clients,
        workloads::NSLOTS
    ));
    json.push_str("  \"sim\": [\n");
    let rows: Vec<String> = sims.iter().map(json_sim).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        concat!(
            "  \"real_scale\": {{\"keyspace\": {}, \"ops_per_thread\": {}, ",
            "\"threads\": {}, \"shard_core_budget\": {}, \"nslots\": 64, ",
            "\"replicated\": false}},\n"
        ),
        keyspace,
        ops_per_thread,
        threads,
        cores_per_group(1)
    ));
    json.push_str("  \"real\": [\n");
    let rows: Vec<String> = reals.iter().map(json_real).collect();
    json.push_str(&rows.join(",\n"));
    json.push_str("\n  ],\n");
    json.push_str(&format!(
        concat!(
            "  \"real_migration\": {{\"groups\": {}, \"completed\": {}, ",
            "\"aborted\": {}, \"mig_ops\": {}, \"double_writes\": {}, ",
            "\"redirects\": {}, \"pause_p50_ns\": {}, \"pause_p99_ns\": {}, ",
            "\"window_p50_ns\": {}, \"window_p99_ns\": {}, ",
            "\"pause_p99_below_window_p50\": {}}}\n"
        ),
        mig.groups,
        mig.completed,
        mig.aborted,
        mig.mig_ops,
        mig.double_writes,
        mig.redirects,
        mig.pause_p50_ns,
        mig.pause_p99_ns,
        mig.window_p50_ns,
        mig.window_p99_ns,
        bounded
    ));
    json.push_str("}\n");

    let out = std::env::var("FLATBENCH_OUT").unwrap_or_else(|_| "BENCH_9.json".into());
    std::fs::write(&out, &json).expect("write BENCH_9.json");
    println!("\nwrote {out}");
}
