//! Figure 12 — latency vs throughput of Pipelined HB against Vertical
//! batching for client batch sizes 1, 4 and 8, sweeping the client count.

use flatstore_bench::{run, ycsb_put, Scale};
use simkv::{Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let client_counts = [2usize, 4, 8, 16, 32, 64, 128, 256, 512];

    for batch in [1usize, 4, 8] {
        println!("== Figure 12: client batchsize = {batch} ==");
        println!(
            "{:<9} {:>14} {:>14} {:>14} {:>14}",
            "clients", "Vert Mops", "Vert lat(us)", "Pipe Mops", "Pipe lat(us)"
        );
        for &clients in &client_counts {
            if clients > scale.clients * 2 {
                break;
            }
            let mut row = Vec::new();
            for model in [ExecModel::Vertical, ExecModel::PipelinedHb] {
                let mut cfg = scale.config();
                cfg.engine = Engine::FlatStore {
                    model,
                    index: SimIndex::Hash,
                };
                cfg.clients = clients;
                cfg.client_batch = batch;
                cfg.workload = ycsb_put(64, false);
                cfg.ops = (scale.ops / 2).max(10_000);
                cfg.warmup = cfg.ops / 10;
                let s = run(&cfg);
                row.push((s.mops, s.avg_latency_ns / 1000.0));
            }
            println!(
                "{clients:<9} {:>14.2} {:>14.2} {:>14.2} {:>14.2}",
                row[0].0, row[0].1, row[1].0, row[1].1
            );
        }
        println!();
    }
}
