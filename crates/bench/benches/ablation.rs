//! Design-choice ablations beyond the paper's Figure 11: each row turns
//! one of FlatStore's §3.2 mechanisms off and measures what it was buying.
//!
//! * **no padding** — adjacent batches share cachelines, exposing the
//!   repeat-flush stall the padding avoids (Fig. 3 bottom).
//! * **eager allocator** — the allocator persists its bitmap on every
//!   alloc/free like a conventional PM allocator, instead of relying on
//!   the log-pointer redundancy.
//! * **fat entries** — 64-byte log entries (what logging raw index updates
//!   would cost) instead of the 16-byte compacted operation records.

use flatstore_bench::{print_header, print_row, ycsb_put, Scale};
use simkv::{Ablation, Engine, ExecModel, SimIndex};

fn main() {
    let scale = Scale::from_env();
    let variants: [(&str, Ablation); 4] = [
        ("FlatStore", Ablation::default()),
        (
            "-padding",
            Ablation {
                no_padding: true,
                ..Ablation::default()
            },
        ),
        (
            "+eager alloc",
            Ablation {
                eager_alloc: true,
                ..Ablation::default()
            },
        ),
        (
            "fat entries",
            Ablation {
                fat_entries: true,
                ..Ablation::default()
            },
        ),
    ];

    println!("== Ablation: what each §3.2 mechanism buys (Put Mops/s, uniform) ==");
    println!("(RPC ceiling relaxed so the engine differences are visible)");
    print_header("value (B)", &variants.map(|(n, _)| n));
    // 8 B stresses entry compaction/padding; 512 B stresses the allocator.
    for len in [8usize, 64, 512] {
        let mut cells = Vec::new();
        for (name, ablate) in variants {
            let mut cfg = scale.config();
            cfg.engine = Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            };
            cfg.net.nic_ns_per_msg = 5.0;
            cfg.ablate = ablate;
            cfg.workload = ycsb_put(len, false);
            cells.push((name, flatstore_bench::mops(&cfg)));
        }
        print_row(&format!("{len}"), &cells);
    }
}
