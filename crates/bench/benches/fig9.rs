//! Figure 9 — Facebook ETC pool (trimodal sizes, zipfian tiny/small keys)
//! at Put:Get ratios 100:0, 50:50 and 5:95.

use flatstore_bench::{mops, print_header, print_row, Scale};
use simkv::{BaselineKind, Engine, ExecModel, SimIndex, WorkloadSpec};

fn main() {
    let scale = Scale::from_env();
    let ratios = [("100:0", 1.0f64), ("50:50", 0.5), ("5:95", 0.05)];

    let tree: [(&str, Engine); 3] = [
        (
            "FlatStore-M",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Masstree,
            },
        ),
        ("FAST&FAIR", Engine::Baseline(BaselineKind::FastFair)),
        ("FPTree", Engine::Baseline(BaselineKind::FpTree)),
    ];
    let hash: [(&str, Engine); 3] = [
        (
            "FlatStore-H",
            Engine::FlatStore {
                model: ExecModel::PipelinedHb,
                index: SimIndex::Hash,
            },
        ),
        (
            "Level-Hashing",
            Engine::Baseline(BaselineKind::LevelHashing),
        ),
        ("CCEH", Engine::Baseline(BaselineKind::Cceh)),
    ];

    println!("== Figure 9(a): ETC, tree-based systems (Mops/s) ==");
    print_header("Put:Get", &tree.map(|(n, _)| n));
    for (label, put_ratio) in ratios {
        let mut cells = Vec::new();
        for (name, engine) in tree {
            let mut cfg = scale.config();
            cfg.engine = engine;
            cfg.workload = WorkloadSpec::Etc { put_ratio };
            cells.push((name, mops(&cfg)));
        }
        print_row(label, &cells);
    }
    println!();

    println!("== Figure 9(b): ETC, hash-based systems (Mops/s) ==");
    print_header("Put:Get", &hash.map(|(n, _)| n));
    for (label, put_ratio) in ratios {
        let mut cells = Vec::new();
        for (name, engine) in hash {
            let mut cfg = scale.config();
            cfg.engine = engine;
            cfg.workload = WorkloadSpec::Etc { put_ratio };
            cells.push((name, mops(&cfg)));
        }
        print_row(label, &cells);
    }
}
