//! Shared plumbing for the figure-regeneration harnesses.
//!
//! Every `benches/figN.rs` target reproduces one table or figure of the
//! FlatStore paper's evaluation (§5) and prints the same rows/series the
//! paper reports. The experiments run on the `simkv` discrete-event
//! testbed (see `DESIGN.md` for the hardware-substitution rationale), so
//! absolute numbers are model-calibrated; the *shapes* — who wins, by
//! roughly what factor, where crossovers fall — are the reproduction
//! targets recorded in `EXPERIMENTS.md`.
//!
//! Scaling knobs (environment variables):
//!
//! | Variable | Effect | Default |
//! |---|---|---|
//! | `FLATBENCH_QUICK=1` | shrink everything for smoke runs | off |
//! | `FLATBENCH_KEYSPACE` | keys per experiment | 200 000 |
//! | `FLATBENCH_OPS` | measured ops per data point | 120 000 |
//! | `FLATBENCH_CORES` | simulated server cores | 36 |
//! | `FLATBENCH_CLIENTS` | closed-loop client threads | 288 |

use simkv::{SimConfig, Summary, WorkloadSpec};
use workloads::KeyDist;

/// Experiment scale, resolved from the environment.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Keys per experiment.
    pub keyspace: u64,
    /// Measured operations per data point.
    pub ops: u64,
    /// Warm-up operations per data point.
    pub warmup: u64,
    /// Simulated server cores.
    pub ncores: usize,
    /// Closed-loop clients.
    pub clients: usize,
    /// PM pool chunks.
    pub pool_chunks: u32,
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

impl Scale {
    /// Resolves the scale from the environment.
    pub fn from_env() -> Scale {
        let quick = std::env::var("FLATBENCH_QUICK").is_ok_and(|v| v != "0");
        let (keyspace, ops, ncores, clients) = if quick {
            (30_000, 30_000, 8, 64)
        } else {
            (200_000, 120_000, 36, 288)
        };
        Scale {
            keyspace: env_u64("FLATBENCH_KEYSPACE", keyspace),
            ops: env_u64("FLATBENCH_OPS", ops),
            warmup: env_u64("FLATBENCH_OPS", ops) / 10,
            ncores: env_u64("FLATBENCH_CORES", ncores as u64) as usize,
            clients: env_u64("FLATBENCH_CLIENTS", clients as u64) as usize,
            pool_chunks: 512,
        }
    }

    /// A base simulation config at this scale (paper defaults: client
    /// batch 8, one HB group per socket).
    pub fn config(&self) -> SimConfig {
        SimConfig {
            ncores: self.ncores,
            group_size: self.ncores.div_ceil(2).max(1),
            clients: self.clients,
            client_batch: 8,
            keyspace: self.keyspace,
            pool_chunks: self.pool_chunks,
            ops: self.ops,
            warmup: self.warmup,
            ..SimConfig::default()
        }
    }
}

/// YCSB Put workload at `value_len` with the given skew (paper §5.1).
pub fn ycsb_put(value_len: usize, skew: bool) -> WorkloadSpec {
    WorkloadSpec::Ycsb {
        dist: if skew {
            KeyDist::Zipfian { theta: 0.99 }
        } else {
            KeyDist::Uniform
        },
        value_len,
        put_ratio: 1.0,
    }
}

/// Prints one experiment row: `label` then one throughput cell per system.
pub fn print_row(label: &str, cells: &[(&str, f64)]) {
    print!("{label:<14}");
    for (_, v) in cells {
        print!(" {v:>12.2}");
    }
    println!();
}

/// Prints the header matching [`print_row`].
pub fn print_header(first: &str, systems: &[&str]) {
    print!("{first:<14}");
    for s in systems {
        print!(" {s:>12}");
    }
    println!();
    println!("{}", "-".repeat(14 + systems.len() * 13));
}

/// Runs the simulation and returns Mops/s.
pub fn mops(cfg: &SimConfig) -> f64 {
    simkv::run(cfg).mops
}

/// Runs the simulation and returns the full summary.
pub fn run(cfg: &SimConfig) -> Summary {
    simkv::run(cfg)
}
