//! Model-based property tests: every index structure must behave exactly
//! like a `BTreeMap` under arbitrary insert/update/remove interleavings.

use std::collections::BTreeMap;
use std::sync::Arc;

use indexes::{Cceh, FastFair, FpTree, Index, IndexError, LevelHash, Mode, OrderedIndex};
use pmem::{PmAddr, PmRegion};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, value: u64 },
    Remove { key: u64 },
    Get { key: u64 },
}

fn ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..500, any::<u64>()).prop_map(|(key, value)| Op::Insert { key, value }),
            (0u64..500).prop_map(|key| Op::Remove { key }),
            (0u64..500).prop_map(|key| Op::Get { key }),
        ],
        1..400,
    )
}

fn check_against_model(idx: &mut dyn Index, script: &[Op]) -> Result<(), TestCaseError> {
    let mut model: BTreeMap<u64, u64> = BTreeMap::new();
    for op in script {
        match op {
            Op::Insert { key, value } => {
                let old = idx.insert(*key, *value).map_err(|e: IndexError| {
                    TestCaseError::fail(format!("unexpected index error: {e}"))
                })?;
                prop_assert_eq!(old, model.insert(*key, *value));
            }
            Op::Remove { key } => {
                prop_assert_eq!(idx.remove(*key), model.remove(key));
            }
            Op::Get { key } => {
                prop_assert_eq!(idx.get(*key), model.get(key).copied());
            }
        }
        prop_assert_eq!(idx.len(), model.len());
    }
    Ok(())
}

fn region() -> Arc<PmRegion> {
    Arc::new(PmRegion::new(64 << 20))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cceh_matches_model(script in ops()) {
        let pm = region();
        let mut idx = Cceh::new(pm, PmAddr(0), 64 << 20, Mode::Persistent, 1).unwrap();
        check_against_model(&mut idx, &script)?;
    }

    #[test]
    fn level_hash_matches_model(script in ops()) {
        let pm = region();
        let mut idx = LevelHash::new(pm, PmAddr(0), 64 << 20, Mode::Persistent, 8).unwrap();
        check_against_model(&mut idx, &script)?;
    }

    #[test]
    fn fastfair_matches_model(script in ops()) {
        let pm = region();
        let mut idx = FastFair::new(pm, PmAddr(0), 64 << 20, Mode::Persistent).unwrap();
        check_against_model(&mut idx, &script)?;
    }

    #[test]
    fn fptree_matches_model(script in ops()) {
        let pm = region();
        let mut idx = FpTree::new(pm, PmAddr(0), 64 << 20, Mode::Persistent).unwrap();
        check_against_model(&mut idx, &script)?;
    }

    #[test]
    fn ordered_indexes_scan_like_model(script in ops(), lo in 0u64..400, span in 1u64..200) {
        let pm = region();
        let mut ff = FastFair::new(Arc::clone(&pm), PmAddr(0), 32 << 20, Mode::Volatile).unwrap();
        let mut fp = FpTree::new(pm, PmAddr(32 << 20), 32 << 20, Mode::Volatile).unwrap();
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in &script {
            if let Op::Insert { key, value } = op {
                ff.insert(*key, *value).unwrap();
                fp.insert(*key, *value).unwrap();
                model.insert(*key, *value);
            }
        }
        let hi = lo + span;
        let expect: Vec<(u64, u64)> = model.range(lo..hi).map(|(k, v)| (*k, *v)).collect();
        for t in [&ff as &dyn OrderedIndex, &fp as &dyn OrderedIndex] {
            let mut got = Vec::new();
            t.range(lo, hi, &mut |k, v| { got.push((k, v)); true });
            prop_assert_eq!(&got, &expect);
        }
    }
}
