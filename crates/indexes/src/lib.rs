//! Baseline persistent index structures for the FlatStore reproduction.
//!
//! The FlatStore paper (Table 1, §5) compares against four state-of-the-art
//! persistent indexes. This crate implements all four from scratch, each
//! usable in two modes:
//!
//! * **Persistent mode** ([`Mode::Persistent`]) — every structural store is
//!   followed by the cacheline flushes and fences the original design
//!   prescribes. This is how the *compared systems* run in the evaluation:
//!   the index lives in PM and pays the full persistence cost.
//! * **Volatile mode** ([`Mode::Volatile`]) — identical code paths with all
//!   flushes/fences elided, mirroring the paper's method of reusing an index
//!   as FlatStore's DRAM-resident volatile index ("we place CCEH directly in
//!   DRAM and remove all its flush operations", §4.1).
//!
//! Implemented structures:
//!
//! | Type | Structure | Shape (paper Table 1) |
//! |---|---|---|
//! | [`Cceh`] | CCEH | three level (directory, segments, buckets), 4 slots/bucket |
//! | [`LevelHash`] | Level-Hashing | two-level (top/bottom), 4 slots/bucket |
//! | [`FastFair`] | FAST&FAIR | B+-tree, all nodes in PM, shift-based in-node inserts |
//! | [`FpTree`] | FPTree | B+-tree, inner nodes in DRAM, fingerprinted leaves in PM |
//!
//! All indexes map `u64` keys to opaque `u64` values (FlatStore packs a
//! 20-bit version and a 40-bit entry pointer into the value). The key
//! `u64::MAX` is reserved as the empty-slot sentinel.

mod cceh;
mod common;
mod error;
mod fastfair;
mod fptree;
mod level;
mod traits;

pub use cceh::Cceh;
pub use common::{Mode, MAX_KEY};
pub use error::IndexError;
pub use fastfair::FastFair;
pub use fptree::FpTree;
pub use level::LevelHash;
pub use traits::{Index, OrderedIndex};
