//! CCEH: Cacheline-Conscious Extendible Hashing (Nam et al., FAST '19),
//! reimplemented as a FlatStore comparison baseline.
//!
//! Three-level layout per the original paper and FlatStore Table 1: a
//! volatile *directory* of segment pointers (top hash bits), 16 KB PM
//! *segments* of 256 cacheline-sized *buckets*, 4 slots per bucket. Inserts
//! probe a 4-bucket window with linear probing; a full window triggers a
//! segment split (copy half the slots to a new segment, persist it whole,
//! update the directory — the write amplification FlatStore's log avoids).
//! Stale slots left behind by lazy deletion are recognized by checking the
//! slot's hash prefix against the segment's `(prefix, local_depth)`.

use std::sync::Arc;

use pmem::{PmAddr, PmRegion};

use crate::common::{hash64, Mode, Store, EMPTY};
use crate::error::IndexError;
use crate::traits::Index;

const SLOT_LEN: u64 = 16; // key + value
const SLOTS_PER_BUCKET: u64 = 4;
const BUCKET_LEN: u64 = SLOTS_PER_BUCKET * SLOT_LEN; // one cacheline
const BUCKETS_PER_SEG: u64 = 256;
const SEG_LEN: u64 = BUCKETS_PER_SEG * BUCKET_LEN; // 16 KB
const PROBE_BUCKETS: u64 = 4;
const MAX_GLOBAL_DEPTH: u32 = 28;

#[derive(Debug, Clone)]
struct Segment {
    addr: PmAddr,
    local_depth: u32,
    /// Top `local_depth` hash bits every resident key shares.
    prefix: u64,
}

/// A CCEH hash index over a PM arena.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{PmRegion, PmAddr};
/// use indexes::{Cceh, Index, Mode};
///
/// let pm = Arc::new(PmRegion::new(1 << 22));
/// let mut idx = Cceh::new(pm, PmAddr(0), 1 << 22, Mode::Persistent, 1)?;
/// idx.insert(7, 700)?;
/// assert_eq!(idx.get(7), Some(700));
/// # Ok::<(), indexes::IndexError>(())
/// ```
pub struct Cceh {
    store: Store,
    directory: Vec<u32>,
    segments: Vec<Segment>,
    global_depth: u32,
    len: usize,
}

impl std::fmt::Debug for Cceh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cceh")
            .field("global_depth", &self.global_depth)
            .field("segments", &self.segments.len())
            .field("len", &self.len)
            .finish()
    }
}

impl Cceh {
    /// Creates an index in `[base, base+len)` of `pm`, starting with
    /// `2^initial_depth` segments.
    ///
    /// # Errors
    ///
    /// [`IndexError::OutOfSpace`] if the arena cannot hold the initial
    /// segments.
    pub fn new(
        pm: Arc<PmRegion>,
        base: PmAddr,
        len: u64,
        mode: Mode,
        initial_depth: u32,
    ) -> Result<Cceh, IndexError> {
        let mut store = Store::new(pm, base, len, mode);
        let nsegs = 1u32 << initial_depth;
        let mut segments = Vec::with_capacity(nsegs as usize);
        let mut directory = Vec::with_capacity(nsegs as usize);
        for i in 0..nsegs {
            let addr = Self::fresh_segment(&mut store)?;
            segments.push(Segment {
                addr,
                local_depth: initial_depth,
                prefix: i as u64,
            });
            directory.push(i);
        }
        Ok(Cceh {
            store,
            directory,
            segments,
            global_depth: initial_depth,
            len: 0,
        })
    }

    fn fresh_segment(store: &mut Store) -> Result<PmAddr, IndexError> {
        let addr = store.alloc(SEG_LEN)?;
        store.pm.fill(addr, SEG_LEN as usize, 0xFF); // all-EMPTY slots
        store.flush(addr, SEG_LEN as usize);
        store.fence();
        Ok(addr)
    }

    #[inline]
    fn dir_index(&self, h: u64) -> usize {
        if self.global_depth == 0 {
            0
        } else {
            (h >> (64 - self.global_depth)) as usize
        }
    }

    #[inline]
    fn slot_addr(seg: PmAddr, bucket: u64, slot: u64) -> PmAddr {
        seg + bucket * BUCKET_LEN + slot * SLOT_LEN
    }

    #[inline]
    fn belongs(seg: &Segment, h: u64) -> bool {
        seg.local_depth == 0 || (h >> (64 - seg.local_depth)) == seg.prefix
    }

    /// Probes the window for `key`; returns `(slot_addr, current_value)` if
    /// found, plus the first usable empty slot.
    fn probe(&self, seg: &Segment, h: u64, key: u64) -> (Option<(PmAddr, u64)>, Option<PmAddr>) {
        let start = h & (BUCKETS_PER_SEG - 1);
        let mut empty = None;
        for i in 0..PROBE_BUCKETS {
            let bucket = (start + i) & (BUCKETS_PER_SEG - 1);
            for s in 0..SLOTS_PER_BUCKET {
                let a = Self::slot_addr(seg.addr, bucket, s);
                let k = self.store.pm.read_u64(a);
                if k == key {
                    return (Some((a, self.store.pm.read_u64(a + 8))), empty);
                }
                if empty.is_none() && (k == EMPTY || !Self::belongs(seg, hash64(k))) {
                    empty = Some(a);
                }
            }
        }
        (None, empty)
    }

    /// Visits every live `(key, value)` pair (unordered). Used by
    /// FlatStore's clean-shutdown index snapshot.
    pub fn for_each(&self, f: &mut dyn FnMut(u64, u64)) {
        for (seg_id, seg) in self.segments.iter().enumerate() {
            // Skip segments no longer referenced by the directory (there
            // are none in this implementation, but be defensive).
            if !self.directory.contains(&(seg_id as u32)) {
                continue;
            }
            for bucket in 0..BUCKETS_PER_SEG {
                for s in 0..SLOTS_PER_BUCKET {
                    let a = Self::slot_addr(seg.addr, bucket, s);
                    let k = self.store.pm.read_u64(a);
                    if k != EMPTY && Self::belongs(seg, hash64(k)) {
                        f(k, self.store.pm.read_u64(a + 8));
                    }
                }
            }
        }
    }

    fn split(&mut self, dir_idx: usize) -> Result<(), IndexError> {
        let seg_id = self.directory[dir_idx];
        let old = self.segments[seg_id as usize].clone();
        if old.local_depth >= MAX_GLOBAL_DEPTH {
            return Err(IndexError::OutOfSpace);
        }
        if old.local_depth == self.global_depth {
            // Double the directory (volatile metadata).
            if self.global_depth >= MAX_GLOBAL_DEPTH {
                return Err(IndexError::OutOfSpace);
            }
            let mut doubled = Vec::with_capacity(self.directory.len() * 2);
            for &e in &self.directory {
                doubled.push(e);
                doubled.push(e);
            }
            self.directory = doubled;
            self.global_depth += 1;
        }
        let new_depth = old.local_depth + 1;
        let new_prefix = (old.prefix << 1) | 1;
        let new_addr = Self::fresh_segment(&mut self.store)?;

        // Copy the slots whose hash now maps to the new segment.
        let mut moved = 0u64;
        for bucket in 0..BUCKETS_PER_SEG {
            for s in 0..SLOTS_PER_BUCKET {
                let a = Self::slot_addr(old.addr, bucket, s);
                let k = self.store.pm.read_u64(a);
                if k == EMPTY {
                    continue;
                }
                let h = hash64(k);
                if !Self::belongs(&old, h) {
                    continue; // already-stale slot
                }
                if (h >> (64 - new_depth)) == new_prefix {
                    let v = self.store.pm.read_u64(a + 8);
                    // Same bucket index bits; first empty slot in the window.
                    let start = h & (BUCKETS_PER_SEG - 1);
                    'place: for i in 0..PROBE_BUCKETS {
                        let b = (start + i) & (BUCKETS_PER_SEG - 1);
                        for t in 0..SLOTS_PER_BUCKET {
                            let na = Self::slot_addr(new_addr, b, t);
                            if self.store.pm.read_u64(na) == EMPTY {
                                self.store.pm.write_u64(na + 8, v);
                                self.store.pm.write_u64(na, k);
                                moved += 1;
                                break 'place;
                            }
                        }
                    }
                }
            }
        }
        let _ = moved;
        // Persist the whole new segment before publishing it (CCEH's
        // split-then-flush; the bulk of its write amplification).
        self.store.persist(new_addr, SEG_LEN as usize);

        let new_id = self.segments.len() as u32;
        self.segments.push(Segment {
            addr: new_addr,
            local_depth: new_depth,
            prefix: new_prefix,
        });
        self.segments[seg_id as usize].local_depth = new_depth;
        self.segments[seg_id as usize].prefix = old.prefix << 1;

        // Re-point directory entries covering the new prefix.
        let span = 1usize << (self.global_depth - new_depth);
        let first = (new_prefix << (self.global_depth - new_depth)) as usize;
        for e in &mut self.directory[first..first + span] {
            *e = new_id;
        }
        Ok(())
    }
}

impl Index for Cceh {
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, IndexError> {
        if key == EMPTY {
            return Err(IndexError::ReservedKey);
        }
        let h = hash64(key);
        for _ in 0..64 {
            let seg = self.segments[self.directory[self.dir_index(h)] as usize].clone();
            let (found, empty) = self.probe(&seg, h, key);
            if let Some((a, old)) = found {
                // In-place value update: 8 B store + flush + fence (the
                // repeated-cacheline pattern skewed workloads suffer from).
                self.store.pm.write_u64(a + 8, value);
                self.store.persist(a + 8, 8);
                return Ok(Some(old));
            }
            if let Some(a) = empty {
                // Value first, then key (8 B atomic publish), one cacheline
                // flush covers the 16 B slot.
                self.store.pm.write_u64(a + 8, value);
                self.store.pm.write_u64(a, key);
                self.store.persist(a, 16);
                self.len += 1;
                return Ok(None);
            }
            self.split(self.dir_index(h))?;
        }
        Err(IndexError::OutOfSpace)
    }

    fn get(&self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let seg = &self.segments[self.directory[self.dir_index(h)] as usize];
        self.probe(seg, h, key).0.map(|(_, v)| v)
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let h = hash64(key);
        let seg = self.segments[self.directory[self.dir_index(h)] as usize].clone();
        let (found, _) = self.probe(&seg, h, key);
        found.map(|(a, v)| {
            self.store.pm.write_u64(a, EMPTY);
            self.store.persist(a, 8);
            self.len -= 1;
            v
        })
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cceh {
        let pm = Arc::new(PmRegion::new(32 << 20));
        Cceh::new(pm, PmAddr(0), 32 << 20, Mode::Persistent, 1).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut idx = small();
        for k in 0..1000u64 {
            assert_eq!(idx.insert(k, k * 10).unwrap(), None);
        }
        assert_eq!(idx.len(), 1000);
        for k in 0..1000u64 {
            assert_eq!(idx.get(k), Some(k * 10));
        }
        assert_eq!(idx.remove(500), Some(5000));
        assert_eq!(idx.get(500), None);
        assert_eq!(idx.len(), 999);
        assert_eq!(idx.remove(500), None);
    }

    #[test]
    fn update_returns_old_value() {
        let mut idx = small();
        assert_eq!(idx.insert(1, 10).unwrap(), None);
        assert_eq!(idx.insert(1, 20).unwrap(), Some(10));
        assert_eq!(idx.get(1), Some(20));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn survives_many_splits() {
        let mut idx = small();
        let n = 60_000u64;
        for k in 0..n {
            idx.insert(k.wrapping_mul(0x9E3779B97F4A7C15), k).unwrap();
        }
        assert_eq!(idx.len(), n as usize);
        for k in 0..n {
            assert_eq!(idx.get(k.wrapping_mul(0x9E3779B97F4A7C15)), Some(k));
        }
        assert!(idx.global_depth > 1, "splits must have happened");
    }

    #[test]
    fn reserved_key_rejected() {
        let mut idx = small();
        assert_eq!(idx.insert(u64::MAX, 1), Err(IndexError::ReservedKey));
    }

    #[test]
    fn persistent_insert_flushes_once_volatile_never() {
        let pm = Arc::new(PmRegion::new(4 << 20));
        let mut idx = Cceh::new(Arc::clone(&pm), PmAddr(0), 4 << 20, Mode::Persistent, 1).unwrap();
        let before = pm.stats().snapshot();
        idx.insert(42, 1).unwrap();
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.flushes, 1, "slot fits one cacheline");
        assert_eq!(d.fences, 1);

        let pm2 = Arc::new(PmRegion::new(4 << 20));
        let mut vol = Cceh::new(Arc::clone(&pm2), PmAddr(0), 4 << 20, Mode::Volatile, 1).unwrap();
        vol.insert(42, 1).unwrap();
        assert_eq!(pm2.stats().flushes(), 0);
    }

    #[test]
    fn cas_swaps_only_on_match() {
        let mut idx = small();
        idx.insert(3, 30).unwrap();
        assert!(!idx.cas(3, 31, 99));
        assert_eq!(idx.get(3), Some(30));
        assert!(idx.cas(3, 30, 99));
        assert_eq!(idx.get(3), Some(99));
    }

    #[test]
    fn out_of_space_is_reported() {
        let pm = Arc::new(PmRegion::new(256 << 10));
        // Arena fits only a few segments.
        let mut idx = Cceh::new(pm, PmAddr(0), 256 << 10, Mode::Persistent, 1).unwrap();
        let mut err = None;
        for k in 0..1_000_000u64 {
            if let Err(e) = idx.insert(k, k) {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(IndexError::OutOfSpace));
    }
}
