//! The index abstraction shared by all four structures (and by FlatStore's
//! pluggable volatile index).

use crate::error::IndexError;

/// A mutable map from `u64` keys to opaque `u64` values.
///
/// FlatStore packs `(version, log-entry pointer)` into the value; the
/// baseline KV stores pack a record pointer. The key `u64::MAX` is reserved.
pub trait Index: Send {
    /// Inserts or updates `key`, returning the previous value if any.
    ///
    /// # Errors
    ///
    /// [`IndexError::OutOfSpace`] if the arena is full,
    /// [`IndexError::ReservedKey`] for the sentinel key.
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, IndexError>;

    /// Looks up `key`.
    fn get(&self, key: u64) -> Option<u64>;

    /// Removes `key`, returning its value if present.
    fn remove(&mut self, key: u64) -> Option<u64>;

    /// Atomically replaces `key`'s value with `new` only if it currently
    /// equals `old` (the log cleaner's pointer-update primitive). Returns
    /// whether the swap happened.
    fn cas(&mut self, key: u64, old: u64, new: u64) -> bool {
        if self.get(key) == Some(old) {
            // Single-writer default; concurrent indexes override.
            let _ = self.insert(key, new);
            true
        } else {
            false
        }
    }

    /// Number of live keys.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An [`Index`] that additionally supports ordered range scans
/// (the tree-based structures).
pub trait OrderedIndex: Index {
    /// Visits `(key, value)` pairs with `lo <= key < hi` in ascending key
    /// order until `f` returns `false`.
    fn range(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, u64) -> bool);
}
