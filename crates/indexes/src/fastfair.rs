//! FAST&FAIR (Hwang et al., FAST '18), reimplemented as a FlatStore
//! comparison baseline.
//!
//! A B+-tree whose nodes all live in PM (paper Table 1). Inserts shift the
//! sorted in-node entries with 8-byte stores and flush every touched
//! cacheline — no logging, readers tolerate the transient states. Splits
//! copy half a node out of place and link siblings (FAIR). This shift/split
//! traffic is the tree-side write amplification FlatStore's append-only log
//! eliminates.
//!
//! Simplifications vs. the original (documented for the reproduction): a
//! persistent entry count replaces NULL-terminated scanning (our engine
//! serializes writers per structure, so lock-free readers are not needed),
//! and deletion does not rebalance (sparse nodes remain valid; the paper's
//! evaluation is insert/lookup-dominated).

use std::sync::Arc;

use pmem::{PmAddr, PmRegion, CACHELINE};

use crate::common::{Mode, Store, EMPTY};
use crate::error::IndexError;
use crate::traits::{Index, OrderedIndex};

const NODE_LEN: u64 = 512;
const HDR_LEN: u64 = 32;
/// (512 − 32) / 16 = 30 entries per node.
const CAP: u16 = 30;

const OFF_IS_LEAF: u64 = 0;
const OFF_COUNT: u64 = 2;
const OFF_SIBLING: u64 = 8; // leaf: right sibling; inner: unused
const OFF_LEFTMOST: u64 = 16; // inner: child for keys < key[0]
const OFF_ENTRIES: u64 = HDR_LEN;

/// A FAST&FAIR B+-tree over a PM arena.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{PmRegion, PmAddr};
/// use indexes::{FastFair, Index, OrderedIndex, Mode};
///
/// let pm = Arc::new(PmRegion::new(1 << 22));
/// let mut t = FastFair::new(pm, PmAddr(0), 1 << 22, Mode::Persistent)?;
/// for k in [5u64, 1, 9] { t.insert(k, k * 2)?; }
/// let mut seen = vec![];
/// t.range(0, 10, &mut |k, _| { seen.push(k); true });
/// assert_eq!(seen, vec![1, 5, 9]);
/// # Ok::<(), indexes::IndexError>(())
/// ```
pub struct FastFair {
    store: Store,
    root: PmAddr,
    len: usize,
}

impl std::fmt::Debug for FastFair {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FastFair")
            .field("root", &self.root)
            .field("len", &self.len)
            .finish()
    }
}

struct NodeRef(PmAddr);

impl FastFair {
    /// Creates a tree in `[base, base+len)` of `pm`.
    ///
    /// # Errors
    ///
    /// [`IndexError::OutOfSpace`] if the arena cannot hold the root node.
    pub fn new(
        pm: Arc<PmRegion>,
        base: PmAddr,
        len: u64,
        mode: Mode,
    ) -> Result<FastFair, IndexError> {
        let mut store = Store::new(pm, base, len, mode);
        let root = Self::fresh_node(&mut store, true)?;
        Ok(FastFair {
            store,
            root,
            len: 0,
        })
    }

    fn fresh_node(store: &mut Store, is_leaf: bool) -> Result<PmAddr, IndexError> {
        let addr = store.alloc(NODE_LEN)?;
        store.pm.fill(addr, NODE_LEN as usize, 0);
        store.pm.write_u8(addr + OFF_IS_LEAF, is_leaf as u8);
        store.persist(addr, NODE_LEN as usize);
        Ok(addr)
    }

    #[inline]
    fn is_leaf(&self, n: PmAddr) -> bool {
        self.store.pm.read_u8(n + OFF_IS_LEAF) != 0
    }

    #[inline]
    fn count(&self, n: PmAddr) -> u16 {
        let mut b = [0u8; 2];
        self.store.pm.read(n + OFF_COUNT, &mut b);
        u16::from_le_bytes(b)
    }

    fn set_count(&self, n: PmAddr, c: u16) {
        // pmlint: allow(write-without-persist) — FAST&FAIR inserts persist
        // the whole node once per mutation at the call site, after the
        // shifted entries and the count are all in place.
        self.store.pm.write(n + OFF_COUNT, &c.to_le_bytes());
    }

    #[inline]
    fn entry_addr(n: PmAddr, i: u16) -> PmAddr {
        n + OFF_ENTRIES + i as u64 * 16
    }

    #[inline]
    fn entry(&self, n: PmAddr, i: u16) -> (u64, u64) {
        let a = Self::entry_addr(n, i);
        (self.store.pm.read_u64(a), self.store.pm.read_u64(a + 8))
    }

    fn write_entry(&self, n: PmAddr, i: u16, key: u64, val: u64) {
        let a = Self::entry_addr(n, i);
        // pmlint: allow(write-without-persist) — value before key is the
        // FAST ordering; callers flush the affected lines and fence once
        // per shift sequence (§FAST&FAIR), not per entry.
        self.store.pm.write_u64(a + 8, val);
        self.store.pm.write_u64(a, key);
    }

    /// Child of inner node `n` for `key`.
    fn child_for(&self, n: PmAddr, key: u64) -> PmAddr {
        let c = self.count(n);
        // Linear scan (nodes are one cacheline-friendly array).
        let mut child = self.store.pm.read_u64(n + OFF_LEFTMOST);
        for i in 0..c {
            let (k, v) = self.entry(n, i);
            if key >= k {
                child = v;
            } else {
                break;
            }
        }
        PmAddr(child)
    }

    /// Descends to the leaf for `key`, recording the path of inner nodes.
    fn descend(&self, key: u64) -> (PmAddr, Vec<PmAddr>) {
        let mut path = Vec::new();
        let mut n = self.root;
        while !self.is_leaf(n) {
            path.push(n);
            n = self.child_for(n, key);
        }
        (n, path)
    }

    /// Position of the first entry in `n` with key >= `key`.
    fn lower_bound(&self, n: PmAddr, key: u64) -> u16 {
        let c = self.count(n);
        for i in 0..c {
            if self.entry(n, i).0 >= key {
                return i;
            }
        }
        c
    }

    /// FAST in-node insertion: shift entries right with 8-byte stores,
    /// flushing each touched cacheline, then publish the count.
    fn insert_in_node(&mut self, n: PmAddr, key: u64, val: u64) {
        let c = self.count(n);
        debug_assert!(c < CAP);
        let pos = self.lower_bound(n, key);
        let mut i = c;
        while i > pos {
            let (k, v) = self.entry(n, i - 1);
            self.write_entry(n, i, k, v);
            i -= 1;
        }
        self.write_entry(n, pos, key, val);
        // Flush the dirtied span [pos .. c] plus the header line.
        let lo = Self::entry_addr(n, pos).align_down(CACHELINE);
        let hi = Self::entry_addr(n, c) + 16;
        self.store.flush(lo, (hi - lo) as usize);
        self.set_count(n, c + 1);
        self.store.flush(n, 8);
        self.store.fence();
    }

    /// Splits full node `n`; returns `(separator, new_right_node)`.
    fn split(&mut self, n: PmAddr) -> Result<(u64, PmAddr), IndexError> {
        let is_leaf = self.is_leaf(n);
        let right = Self::fresh_node(&mut self.store, is_leaf)?;
        let c = self.count(n);
        let mid = c / 2;
        let sep;
        let mut moved = 0u16;
        if is_leaf {
            sep = self.entry(n, mid).0;
            for i in mid..c {
                let (k, v) = self.entry(n, i);
                self.write_entry(right, moved, k, v);
                moved += 1;
            }
        } else {
            // Inner split: middle key moves up; its child becomes the new
            // node's leftmost.
            sep = self.entry(n, mid).0;
            let (_, mid_child) = self.entry(n, mid);
            self.store.pm.write_u64(right + OFF_LEFTMOST, mid_child);
            for i in (mid + 1)..c {
                let (k, v) = self.entry(n, i);
                self.write_entry(right, moved, k, v);
                moved += 1;
            }
        }
        self.set_count(right, moved);
        // Link sibling (FAIR) and persist the new node before shrinking the
        // old one.
        self.store
            .pm
            .write_u64(right + OFF_SIBLING, self.store.pm.read_u64(n + OFF_SIBLING));
        self.store.persist(right, NODE_LEN as usize);
        if is_leaf {
            self.store.pm.write_u64(n + OFF_SIBLING, right.offset());
            self.store.flush(n + OFF_SIBLING, 8);
        }
        self.set_count(n, mid);
        self.store.flush(n, 8);
        self.store.fence();
        Ok((sep, right))
    }

    fn insert_recursive(&mut self, key: u64, val: u64) -> Result<Option<u64>, IndexError> {
        let (leaf, path) = self.descend(key);
        // Existing key: in-place update.
        let pos = self.lower_bound(leaf, key);
        if pos < self.count(leaf) {
            let (k, v) = self.entry(leaf, pos);
            if k == key {
                self.store
                    .pm
                    .write_u64(Self::entry_addr(leaf, pos) + 8, val);
                self.store.persist(Self::entry_addr(leaf, pos) + 8, 8);
                return Ok(Some(v));
            }
        }
        // Split along the path bottom-up as needed.
        let mut target = leaf;
        if self.count(leaf) == CAP {
            let (sep, right) = self.split(leaf)?;
            self.insert_separator(&path, sep, right)?;
            // Re-descend: parents changed, and the key may now belong in
            // the new right node.
            target = self.descend(key).0;
            debug_assert!(self.count(target) < CAP);
        }
        self.insert_in_node(target, key, val);
        self.len += 1;
        Ok(None)
    }

    fn insert_separator(
        &mut self,
        path: &[PmAddr],
        mut sep: u64,
        mut right: PmAddr,
    ) -> Result<(), IndexError> {
        for &parent in path.iter().rev() {
            if self.count(parent) < CAP {
                self.insert_in_node(parent, sep, right.offset());
                return Ok(());
            }
            let (psep, pright) = self.split(parent)?;
            // Insert into the correct half.
            let target = if sep >= psep { pright } else { parent };
            self.insert_in_node(target, sep, right.offset());
            sep = psep;
            right = pright;
        }
        // Root split.
        let new_root = Self::fresh_node(&mut self.store, false)?;
        self.store
            .pm
            .write_u64(new_root + OFF_LEFTMOST, self.root.offset());
        self.write_entry(new_root, 0, sep, right.offset());
        self.set_count(new_root, 1);
        self.store.persist(new_root, NODE_LEN as usize);
        self.root = new_root;
        Ok(())
    }

    /// First leaf whose keys may reach `key`.
    fn leaf_for(&self, key: u64) -> PmAddr {
        self.descend(key).0
    }
}

impl Index for FastFair {
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, IndexError> {
        if key == EMPTY {
            return Err(IndexError::ReservedKey);
        }
        self.insert_recursive(key, value)
    }

    fn get(&self, key: u64) -> Option<u64> {
        let leaf = self.leaf_for(key);
        let pos = self.lower_bound(leaf, key);
        if pos < self.count(leaf) {
            let (k, v) = self.entry(leaf, pos);
            if k == key {
                return Some(v);
            }
        }
        None
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let leaf = self.leaf_for(key);
        let c = self.count(leaf);
        let pos = self.lower_bound(leaf, key);
        if pos >= c || self.entry(leaf, pos).0 != key {
            return None;
        }
        let old = self.entry(leaf, pos).1;
        // FAIR shift-left with per-cacheline flushes.
        for i in pos..c - 1 {
            let (k, v) = self.entry(leaf, i + 1);
            self.write_entry(leaf, i, k, v);
        }
        let lo = Self::entry_addr(leaf, pos).align_down(CACHELINE);
        let hi = Self::entry_addr(leaf, c);
        self.store.flush(lo, (hi - lo).max(8) as usize);
        self.set_count(leaf, c - 1);
        self.store.flush(leaf, 8);
        self.store.fence();
        self.len -= 1;
        Some(old)
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl OrderedIndex for FastFair {
    fn range(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, u64) -> bool) {
        let mut leaf = NodeRef(self.leaf_for(lo)).0;
        loop {
            let c = self.count(leaf);
            for i in 0..c {
                let (k, v) = self.entry(leaf, i);
                if k >= hi {
                    return;
                }
                if k >= lo && !f(k, v) {
                    return;
                }
            }
            let sib = self.store.pm.read_u64(leaf + OFF_SIBLING);
            if sib == 0 {
                return;
            }
            leaf = PmAddr(sib);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> FastFair {
        let pm = Arc::new(PmRegion::new(64 << 20));
        FastFair::new(pm, PmAddr(0), 64 << 20, Mode::Persistent).unwrap()
    }

    #[test]
    fn sorted_insert_get() {
        let mut t = tree();
        for k in 0..5000u64 {
            assert_eq!(t.insert(k, k + 1).unwrap(), None);
        }
        for k in 0..5000u64 {
            assert_eq!(t.get(k), Some(k + 1), "key {k}");
        }
        assert_eq!(t.get(5000), None);
    }

    #[test]
    fn random_insert_get_remove() {
        let mut t = tree();
        let mut keys: Vec<u64> = (0..5000u64)
            .map(|k| k.wrapping_mul(0x9E3779B97F4A7C15) >> 8)
            .collect();
        for &k in &keys {
            t.insert(k, k ^ 1).unwrap();
        }
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(t.len(), keys.len());
        for &k in &keys {
            assert_eq!(t.get(k), Some(k ^ 1));
        }
        for &k in keys.iter().step_by(3) {
            assert_eq!(t.remove(k), Some(k ^ 1));
            assert_eq!(t.get(k), None);
        }
    }

    #[test]
    fn range_scan_is_sorted_and_bounded() {
        let mut t = tree();
        for k in (0..2000u64).rev() {
            t.insert(k * 2, k).unwrap();
        }
        let mut seen = Vec::new();
        t.range(100, 500, &mut |k, _| {
            seen.push(k);
            true
        });
        let expect: Vec<u64> = (100..500).filter(|k| k % 2 == 0).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn range_scan_early_stop() {
        let mut t = tree();
        for k in 0..100u64 {
            t.insert(k, k).unwrap();
        }
        let mut seen = 0;
        t.range(0, 100, &mut |_, _| {
            seen += 1;
            seen < 10
        });
        assert_eq!(seen, 10);
    }

    #[test]
    fn update_in_place() {
        let mut t = tree();
        t.insert(42, 1).unwrap();
        assert_eq!(t.insert(42, 2).unwrap(), Some(1));
        assert_eq!(t.get(42), Some(2));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn shift_inserts_flush_more_than_appends() {
        // Inserting at the front of a near-full node dirties (and flushes)
        // more cachelines than appending at the back — FAST's signature
        // write pattern.
        let pm = Arc::new(PmRegion::new(8 << 20));
        let mut t = FastFair::new(Arc::clone(&pm), PmAddr(0), 8 << 20, Mode::Persistent).unwrap();
        for k in 10..38u64 {
            t.insert(k, k).unwrap();
        }
        let before = pm.stats().snapshot();
        t.insert(1, 1).unwrap(); // front insert: shifts 28 entries
        let front = pm.stats().snapshot().delta(&before).flushes;
        let before = pm.stats().snapshot();
        t.insert(40, 40).unwrap(); // back insert: shifts nothing
        let back = pm.stats().snapshot().delta(&before).flushes;
        assert!(front > back, "front {front} !> back {back}");
    }

    #[test]
    fn volatile_mode_never_flushes() {
        let pm = Arc::new(PmRegion::new(16 << 20));
        let mut t = FastFair::new(Arc::clone(&pm), PmAddr(0), 16 << 20, Mode::Volatile).unwrap();
        for k in 0..3000u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(pm.stats().flushes(), 0);
    }
}
