//! Shared storage plumbing for the index structures.

use std::sync::Arc;

use pmem::{PmAddr, PmRegion};

use crate::error::IndexError;

/// Largest permissible key; `u64::MAX` is the empty-slot sentinel.
pub const MAX_KEY: u64 = u64::MAX - 1;

/// The empty-slot sentinel stored in hash buckets.
pub(crate) const EMPTY: u64 = u64::MAX;

/// Whether an index persists its updates (the baseline configuration) or
/// elides all flushes (FlatStore's DRAM-resident volatile index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// Every structural store is flushed and fenced per the original design.
    #[default]
    Persistent,
    /// Identical code path with flushes/fences elided (index lives in DRAM).
    Volatile,
}

/// An index's arena: a range of a region plus a bump allocator and
/// mode-aware flush helpers.
#[derive(Debug)]
pub(crate) struct Store {
    pub pm: Arc<PmRegion>,
    mode: Mode,
    cursor: u64,
    end: u64,
    free: Vec<(u64, PmAddr)>, // (size, addr) free list of uniform nodes
}

impl Store {
    pub fn new(pm: Arc<PmRegion>, base: PmAddr, len: u64, mode: Mode) -> Self {
        assert!(
            base.offset() + len <= pm.len() as u64,
            "arena exceeds region"
        );
        Store {
            pm,
            mode,
            cursor: base.align_up(64).offset(),
            end: base.offset() + len,
            free: Vec::new(),
        }
    }

    #[allow(dead_code)]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// Bump-allocates `size` bytes at 64 B alignment, reusing freed blocks
    /// of the same size first.
    pub fn alloc(&mut self, size: u64) -> Result<PmAddr, IndexError> {
        if let Some(i) = self.free.iter().position(|(s, _)| *s == size) {
            return Ok(self.free.swap_remove(i).1);
        }
        let at = PmAddr(self.cursor).align_up(64);
        if at.offset() + size > self.end {
            return Err(IndexError::OutOfSpace);
        }
        self.cursor = at.offset() + size;
        Ok(at)
    }

    pub fn dealloc(&mut self, addr: PmAddr, size: u64) {
        self.free.push((size, addr));
    }

    #[inline]
    pub fn flush(&self, addr: PmAddr, len: usize) {
        if self.mode == Mode::Persistent {
            self.pm.flush(addr, len);
        }
    }

    #[inline]
    pub fn fence(&self) {
        if self.mode == Mode::Persistent {
            self.pm.fence();
        }
    }

    #[inline]
    pub fn persist(&self, addr: PmAddr, len: usize) {
        if self.mode == Mode::Persistent {
            self.pm.flush(addr, len);
            self.pm.fence();
        }
    }
}

/// 64-bit finalizer from MurmurHash3 — the hash used by all hash indexes.
#[inline]
pub(crate) fn hash64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51afd7ed558ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ceb9fe1a85ec53);
    k ^= k >> 33;
    k
}

/// A second, independent hash (for Level-Hashing's two hash locations).
#[inline]
pub(crate) fn hash64_alt(k: u64) -> u64 {
    hash64(k ^ 0x9e37_79b9_7f4a_7c15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_alloc_respects_bounds_and_alignment() {
        let pm = Arc::new(PmRegion::new(4096));
        let mut s = Store::new(pm, PmAddr(64), 1024, Mode::Persistent);
        let a = s.alloc(100).unwrap();
        let b = s.alloc(100).unwrap();
        assert!(a.is_aligned(64) && b.is_aligned(64));
        assert!(b.offset() >= a.offset() + 100);
        // Exhaustion
        assert!(s.alloc(2000).is_err());
        // Free list reuse
        s.dealloc(a, 100);
        assert_eq!(s.alloc(100).unwrap(), a);
    }

    #[test]
    fn volatile_mode_elides_flushes() {
        let pm = Arc::new(PmRegion::new(4096));
        let s = Store::new(Arc::clone(&pm), PmAddr(0), 4096, Mode::Volatile);
        s.pm.write_u64(PmAddr(0), 1);
        s.persist(PmAddr(0), 8);
        assert_eq!(pm.stats().flushes(), 0);
        assert_eq!(pm.stats().fences(), 0);
    }

    #[test]
    fn hashes_differ() {
        for k in 0..1000 {
            assert_ne!(hash64(k), hash64_alt(k));
        }
    }
}
