//! Level Hashing (Zuo et al., OSDI '18), reimplemented as a FlatStore
//! comparison baseline.
//!
//! Two levels of 4-slot buckets: a top level of `N` buckets and a bottom
//! level of `N/2`. A key has four candidate buckets — two top (independent
//! hashes) and two bottom. Conflicts are relieved by *moving* a resident
//! item to its alternate bucket (extra PM writes — the rehash-on-conflict
//! amplification the FlatStore paper calls out); when movement fails the
//! table resizes: a new top of `2N` buckets is allocated, the old top
//! becomes the new bottom, and every old-bottom entry is rehashed into the
//! new structure.

use std::sync::Arc;

use pmem::{PmAddr, PmRegion};

use crate::common::{hash64, hash64_alt, Mode, Store, EMPTY};
use crate::error::IndexError;
use crate::traits::Index;

const SLOT_LEN: u64 = 16;
const SLOTS_PER_BUCKET: u64 = 4;
const BUCKET_LEN: u64 = SLOTS_PER_BUCKET * SLOT_LEN;

/// A Level-Hashing index over a PM arena.
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{PmRegion, PmAddr};
/// use indexes::{LevelHash, Index, Mode};
///
/// let pm = Arc::new(PmRegion::new(1 << 22));
/// let mut idx = LevelHash::new(pm, PmAddr(0), 1 << 22, Mode::Persistent, 64)?;
/// idx.insert(1, 100)?;
/// assert_eq!(idx.get(1), Some(100));
/// # Ok::<(), indexes::IndexError>(())
/// ```
pub struct LevelHash {
    store: Store,
    top: PmAddr,
    bottom: PmAddr,
    /// Top-level bucket count (power of two); bottom has half.
    top_buckets: u64,
    len: usize,
}

impl std::fmt::Debug for LevelHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LevelHash")
            .field("top_buckets", &self.top_buckets)
            .field("len", &self.len)
            .finish()
    }
}

impl LevelHash {
    /// Creates an index in `[base, base+len)` of `pm` with `top_buckets`
    /// top-level buckets (rounded up to a power of two, minimum 4).
    ///
    /// # Errors
    ///
    /// [`IndexError::OutOfSpace`] if the arena cannot hold the two levels.
    pub fn new(
        pm: Arc<PmRegion>,
        base: PmAddr,
        len: u64,
        mode: Mode,
        top_buckets: u64,
    ) -> Result<LevelHash, IndexError> {
        let top_buckets = top_buckets.next_power_of_two().max(4);
        let mut store = Store::new(pm, base, len, mode);
        let top = Self::fresh_level(&mut store, top_buckets)?;
        let bottom = Self::fresh_level(&mut store, top_buckets / 2)?;
        Ok(LevelHash {
            store,
            top,
            bottom,
            top_buckets,
            len: 0,
        })
    }

    fn fresh_level(store: &mut Store, buckets: u64) -> Result<PmAddr, IndexError> {
        let addr = store.alloc(buckets * BUCKET_LEN)?;
        store.pm.fill(addr, (buckets * BUCKET_LEN) as usize, 0xFF);
        store.flush(addr, (buckets * BUCKET_LEN) as usize);
        store.fence();
        Ok(addr)
    }

    /// The four candidate buckets of `key`: two top, two bottom.
    fn candidates(&self, key: u64) -> [PmAddr; 4] {
        let (h1, h2) = (hash64(key), hash64_alt(key));
        let nb = self.top_buckets / 2;
        [
            self.top + (h1 % self.top_buckets) * BUCKET_LEN,
            self.top + (h2 % self.top_buckets) * BUCKET_LEN,
            self.bottom + (h1 % nb) * BUCKET_LEN,
            self.bottom + (h2 % nb) * BUCKET_LEN,
        ]
    }

    fn find_in_bucket(&self, bucket: PmAddr, key: u64) -> Option<PmAddr> {
        for s in 0..SLOTS_PER_BUCKET {
            let a = bucket + s * SLOT_LEN;
            if self.store.pm.read_u64(a) == key {
                return Some(a);
            }
        }
        None
    }

    fn empty_in_bucket(&self, bucket: PmAddr) -> Option<PmAddr> {
        for s in 0..SLOTS_PER_BUCKET {
            let a = bucket + s * SLOT_LEN;
            if self.store.pm.read_u64(a) == EMPTY {
                return Some(a);
            }
        }
        None
    }

    /// Writes a slot: value first, then the 8 B key publish, one flush.
    fn write_slot(&mut self, slot: PmAddr, key: u64, value: u64) {
        self.store.pm.write_u64(slot + 8, value);
        self.store.pm.write_u64(slot, key);
        self.store.persist(slot, 16);
    }

    /// Tries to relocate one resident of `bucket` to its alternate bucket on
    /// the same level, freeing a slot. Returns the freed slot.
    fn try_move(&mut self, bucket: PmAddr) -> Option<PmAddr> {
        for s in 0..SLOTS_PER_BUCKET {
            let a = bucket + s * SLOT_LEN;
            let k = self.store.pm.read_u64(a);
            if k == EMPTY {
                continue;
            }
            let cands = self.candidates(k);
            for alt in cands {
                if alt == bucket {
                    continue;
                }
                // All four candidates are legal homes for k, so any with
                // space works.
                if let Some(dst) = self.empty_in_bucket(alt) {
                    let v = self.store.pm.read_u64(a + 8);
                    // Copy first, then invalidate the source (ordered for
                    // crash consistency; duplicates are benign, loss is not).
                    self.write_slot(dst, k, v);
                    self.store.pm.write_u64(a, EMPTY);
                    self.store.persist(a, 8);
                    return Some(a);
                }
            }
        }
        None
    }

    /// Tries to place `(key, value)` without resizing: empty candidate slot
    /// first, then one round of movement. Returns whether it succeeded.
    fn insert_no_resize(&mut self, key: u64, value: u64) -> bool {
        let cands = self.candidates(key);
        for b in cands {
            if let Some(a) = self.empty_in_bucket(b) {
                self.write_slot(a, key, value);
                return true;
            }
        }
        for b in cands {
            if let Some(a) = self.try_move(b) {
                self.write_slot(a, key, value);
                return true;
            }
        }
        false
    }

    fn resize(&mut self) -> Result<(), IndexError> {
        let new_top_buckets = self.top_buckets * 2;
        let new_top = Self::fresh_level(&mut self.store, new_top_buckets)?;
        let old_bottom = self.bottom;
        let old_bottom_buckets = self.top_buckets / 2;

        // Collect the old-bottom entries to rehash.
        let mut items = Vec::new();
        for b in 0..old_bottom_buckets {
            for s in 0..SLOTS_PER_BUCKET {
                let a = old_bottom + b * BUCKET_LEN + s * SLOT_LEN;
                let k = self.store.pm.read_u64(a);
                if k != EMPTY {
                    items.push((k, self.store.pm.read_u64(a + 8)));
                }
            }
        }

        // Old top becomes the new bottom (its entries sit exactly at
        // `h % new_bottom_size`); old-bottom entries are rehashed into the
        // new structure with the full insert logic.
        self.bottom = self.top;
        self.top = new_top;
        self.top_buckets = new_top_buckets;
        self.store
            .dealloc(old_bottom, old_bottom_buckets * BUCKET_LEN);

        for (k, v) in items {
            if !self.insert_no_resize(k, v) {
                // Pathological collision pile-up: grow again and retry this
                // item (terminates at arena exhaustion).
                self.resize()?;
                if !self.insert_no_resize(k, v) {
                    return Err(IndexError::OutOfSpace);
                }
            }
        }
        Ok(())
    }
}

impl Index for LevelHash {
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, IndexError> {
        if key == EMPTY {
            return Err(IndexError::ReservedKey);
        }
        for _ in 0..8 {
            let cands = self.candidates(key);
            // Existing key: in-place value update.
            for b in cands {
                if let Some(a) = self.find_in_bucket(b, key) {
                    let old = self.store.pm.read_u64(a + 8);
                    self.store.pm.write_u64(a + 8, value);
                    self.store.persist(a + 8, 8);
                    return Ok(Some(old));
                }
            }
            // Empty slot (top buckets first), then movement, then resize.
            if self.insert_no_resize(key, value) {
                self.len += 1;
                return Ok(None);
            }
            self.resize()?;
        }
        Err(IndexError::OutOfSpace)
    }

    fn get(&self, key: u64) -> Option<u64> {
        for b in self.candidates(key) {
            if let Some(a) = self.find_in_bucket(b, key) {
                return Some(self.store.pm.read_u64(a + 8));
            }
        }
        None
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        for b in self.candidates(key) {
            if let Some(a) = self.find_in_bucket(b, key) {
                let v = self.store.pm.read_u64(a + 8);
                self.store.pm.write_u64(a, EMPTY);
                self.store.persist(a, 8);
                self.len -= 1;
                return Some(v);
            }
        }
        None
    }

    fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LevelHash {
        let pm = Arc::new(PmRegion::new(64 << 20));
        LevelHash::new(pm, PmAddr(0), 64 << 20, Mode::Persistent, 16).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut idx = small();
        for k in 0..2000u64 {
            assert_eq!(idx.insert(k, k + 1).unwrap(), None);
        }
        assert_eq!(idx.len(), 2000);
        for k in 0..2000u64 {
            assert_eq!(idx.get(k), Some(k + 1), "key {k}");
        }
        assert_eq!(idx.remove(7), Some(8));
        assert_eq!(idx.get(7), None);
        assert_eq!(idx.remove(7), None);
    }

    #[test]
    fn grows_through_resizes() {
        let mut idx = small();
        let start_buckets = idx.top_buckets;
        for k in 0..30_000u64 {
            idx.insert(k * 7 + 1, k).unwrap();
        }
        assert!(idx.top_buckets > start_buckets, "resize must have run");
        for k in 0..30_000u64 {
            assert_eq!(idx.get(k * 7 + 1), Some(k), "key {} lost", k * 7 + 1);
        }
    }

    #[test]
    fn update_in_place() {
        let mut idx = small();
        idx.insert(5, 1).unwrap();
        assert_eq!(idx.insert(5, 2).unwrap(), Some(1));
        assert_eq!(idx.get(5), Some(2));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn volatile_mode_never_flushes() {
        let pm = Arc::new(PmRegion::new(8 << 20));
        let mut idx =
            LevelHash::new(Arc::clone(&pm), PmAddr(0), 8 << 20, Mode::Volatile, 16).unwrap();
        for k in 0..5000u64 {
            idx.insert(k, k).unwrap();
        }
        assert_eq!(pm.stats().flushes(), 0);
        assert_eq!(pm.stats().fences(), 0);
    }

    #[test]
    fn reserved_key_rejected() {
        let mut idx = small();
        assert_eq!(idx.insert(u64::MAX, 0), Err(IndexError::ReservedKey));
    }
}
