//! Index errors.

use std::error::Error;
use std::fmt;

/// Errors returned by the index structures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexError {
    /// The index's PM arena is exhausted (no space for a new segment/node).
    OutOfSpace,
    /// The reserved sentinel key (`u64::MAX`) was passed.
    ReservedKey,
}

impl fmt::Display for IndexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexError::OutOfSpace => write!(f, "index arena out of space"),
            IndexError::ReservedKey => write!(f, "key u64::MAX is reserved"),
        }
    }
}

impl Error for IndexError {}
