//! FPTree (Oukid et al., SIGMOD '16), reimplemented as a FlatStore
//! comparison baseline.
//!
//! A hybrid B+-tree: **inner nodes live in DRAM** (rebuilt on recovery),
//! **leaves live in PM**. Each leaf keeps a one-byte *fingerprint* per slot
//! so lookups probe at most the matching slots, a presence *bitmap* whose
//! 8-byte atomic update commits an insert, and unsorted slots so inserts
//! never shift data (paper Table 1 / FlatStore §2.2). A Put costs two small
//! persists (slot+fingerprint, then bitmap); a split copies half the leaf
//! out of place.

use std::sync::Arc;

use pmem::{PmAddr, PmRegion};

use crate::common::{hash64, Mode, Store, EMPTY};
use crate::error::IndexError;
use crate::traits::{Index, OrderedIndex};

const LEAF_SLOTS: u16 = 28;
const LEAF_LEN: u64 = 64 + LEAF_SLOTS as u64 * 16; // 512 B
const OFF_BITMAP: u64 = 0;
const OFF_NEXT: u64 = 8;
const OFF_FPS: u64 = 16; // 28 fingerprint bytes
const OFF_SLOTS: u64 = 64;

/// DRAM inner fanout.
const INNER_FANOUT: usize = 16;

#[inline]
fn fingerprint(key: u64) -> u8 {
    (hash64(key) & 0xFF) as u8
}

/// A DRAM inner node: `children[i]` covers keys < `keys[i]`; the last child
/// covers the rest.
#[derive(Debug)]
struct Inner {
    keys: Vec<u64>,
    children: Vec<Child>,
}

#[derive(Debug)]
enum Child {
    Inner(Box<Inner>),
    Leaf(PmAddr),
}

/// An FPTree over a PM arena (leaves) and the Rust heap (inner nodes).
///
/// # Example
///
/// ```
/// use std::sync::Arc;
/// use pmem::{PmRegion, PmAddr};
/// use indexes::{FpTree, Index, OrderedIndex, Mode};
///
/// let pm = Arc::new(PmRegion::new(1 << 22));
/// let mut t = FpTree::new(pm, PmAddr(0), 1 << 22, Mode::Persistent)?;
/// t.insert(3, 33)?;
/// t.insert(1, 11)?;
/// let mut keys = vec![];
/// t.range(0, 10, &mut |k, _| { keys.push(k); true });
/// assert_eq!(keys, vec![1, 3]);
/// # Ok::<(), indexes::IndexError>(())
/// ```
pub struct FpTree {
    store: Store,
    root: Child,
    len: usize,
}

impl std::fmt::Debug for FpTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpTree").field("len", &self.len).finish()
    }
}

impl FpTree {
    /// Creates a tree in `[base, base+len)` of `pm`.
    ///
    /// # Errors
    ///
    /// [`IndexError::OutOfSpace`] if the arena cannot hold the first leaf.
    pub fn new(
        pm: Arc<PmRegion>,
        base: PmAddr,
        len: u64,
        mode: Mode,
    ) -> Result<FpTree, IndexError> {
        let mut store = Store::new(pm, base, len, mode);
        let leaf = Self::fresh_leaf(&mut store)?;
        Ok(FpTree {
            store,
            root: Child::Leaf(leaf),
            len: 0,
        })
    }

    fn fresh_leaf(store: &mut Store) -> Result<PmAddr, IndexError> {
        let addr = store.alloc(LEAF_LEN)?;
        store.pm.fill(addr, LEAF_LEN as usize, 0);
        store.persist(addr, LEAF_LEN as usize);
        Ok(addr)
    }

    #[inline]
    fn bitmap(&self, leaf: PmAddr) -> u64 {
        self.store.pm.read_u64(leaf + OFF_BITMAP)
    }

    #[inline]
    fn slot_addr(leaf: PmAddr, i: u16) -> PmAddr {
        leaf + OFF_SLOTS + i as u64 * 16
    }

    #[inline]
    fn slot(&self, leaf: PmAddr, i: u16) -> (u64, u64) {
        let a = Self::slot_addr(leaf, i);
        (self.store.pm.read_u64(a), self.store.pm.read_u64(a + 8))
    }

    /// Finds `key` in `leaf` using the fingerprint filter.
    fn find_slot(&self, leaf: PmAddr, key: u64) -> Option<u16> {
        let bm = self.bitmap(leaf);
        let fp = fingerprint(key);
        for i in 0..LEAF_SLOTS {
            if bm & (1 << i) == 0 {
                continue;
            }
            if self.store.pm.read_u8(leaf + OFF_FPS + i as u64) != fp {
                continue;
            }
            if self.slot(leaf, i).0 == key {
                return Some(i);
            }
        }
        None
    }

    fn leaf_for(root: &Child, key: u64) -> PmAddr {
        let mut node = root;
        loop {
            match node {
                Child::Leaf(a) => return *a,
                Child::Inner(inner) => {
                    let idx = inner.keys.partition_point(|&k| key >= k);
                    node = &inner.children[idx];
                }
            }
        }
    }

    /// Splits `leaf`, returning `(separator, right_leaf)`.
    fn split_leaf(&mut self, leaf: PmAddr) -> Result<(u64, PmAddr), IndexError> {
        let right = Self::fresh_leaf(&mut self.store)?;
        let bm = self.bitmap(leaf);
        let mut keys: Vec<(u64, u16)> = (0..LEAF_SLOTS)
            .filter(|i| bm & (1 << i) != 0)
            .map(|i| (self.slot(leaf, i).0, i))
            .collect();
        keys.sort_unstable();
        let mid = keys.len() / 2;
        let sep = keys[mid].0;
        // Copy the upper half into the new leaf (out-of-place).
        let mut new_bm = 0u64;
        for (j, &(k, i)) in keys[mid..].iter().enumerate() {
            let (_, v) = self.slot(leaf, i);
            let a = Self::slot_addr(right, j as u16);
            self.store.pm.write_u64(a, k);
            self.store.pm.write_u64(a + 8, v);
            self.store
                .pm
                .write_u8(right + OFF_FPS + j as u64, fingerprint(k));
            new_bm |= 1 << j;
        }
        self.store
            .pm
            .write_u64(right + OFF_NEXT, self.store.pm.read_u64(leaf + OFF_NEXT));
        self.store.pm.write_u64(right + OFF_BITMAP, new_bm);
        self.store.persist(right, LEAF_LEN as usize);
        // Link, then atomically clear the moved slots from the old bitmap.
        self.store.pm.write_u64(leaf + OFF_NEXT, right.offset());
        self.store.flush(leaf + OFF_NEXT, 8);
        let mut old_bm = bm;
        for &(_, i) in &keys[mid..] {
            old_bm &= !(1 << i);
        }
        self.store.pm.write_u64(leaf + OFF_BITMAP, old_bm);
        self.store.flush(leaf + OFF_BITMAP, 8);
        self.store.fence();
        Ok((sep, right))
    }

    /// Inserts `(sep, right)` into the DRAM inner path above the split leaf.
    fn insert_inner(root: &mut Child, key: u64, sep: u64, right: PmAddr) {
        // Recursive DRAM-only insert; splits inner nodes at fanout.
        fn rec(node: &mut Child, key: u64, sep: u64, right: PmAddr) -> Option<(u64, Child)> {
            match node {
                Child::Leaf(_) => {
                    // Replace the leaf with an inner node of two children.
                    let old = std::mem::replace(node, Child::Leaf(PmAddr::NULL));
                    *node = Child::Inner(Box::new(Inner {
                        keys: vec![sep],
                        children: vec![old, Child::Leaf(right)],
                    }));
                    None
                }
                Child::Inner(inner) => {
                    let idx = inner.keys.partition_point(|&k| key >= k);
                    let promoted = match &mut inner.children[idx] {
                        c @ Child::Leaf(_) => {
                            let _ = c;
                            inner.keys.insert(idx, sep);
                            inner.children.insert(idx + 1, Child::Leaf(right));
                            None
                        }
                        c @ Child::Inner(_) => rec(c, key, sep, right),
                    };
                    if let Some((k, child)) = promoted {
                        let idx = inner.keys.partition_point(|&ik| k >= ik);
                        inner.keys.insert(idx, k);
                        inner.children.insert(idx + 1, child);
                    }
                    if inner.keys.len() >= INNER_FANOUT {
                        let mid = inner.keys.len() / 2;
                        let up = inner.keys[mid];
                        let right_keys = inner.keys.split_off(mid + 1);
                        inner.keys.pop();
                        let right_children = inner.children.split_off(mid + 1);
                        return Some((
                            up,
                            Child::Inner(Box::new(Inner {
                                keys: right_keys,
                                children: right_children,
                            })),
                        ));
                    }
                    None
                }
            }
        }
        if let Some((k, new_child)) = rec(root, key, sep, right) {
            let old = std::mem::replace(root, Child::Leaf(PmAddr::NULL));
            *root = Child::Inner(Box::new(Inner {
                keys: vec![k],
                children: vec![old, new_child],
            }));
        }
    }
}

impl Index for FpTree {
    fn insert(&mut self, key: u64, value: u64) -> Result<Option<u64>, IndexError> {
        if key == EMPTY {
            return Err(IndexError::ReservedKey);
        }
        loop {
            let leaf = Self::leaf_for(&self.root, key);
            if let Some(i) = self.find_slot(leaf, key) {
                let a = Self::slot_addr(leaf, i) + 8;
                let old = self.store.pm.read_u64(a);
                self.store.pm.write_u64(a, value);
                self.store.persist(a, 8);
                return Ok(Some(old));
            }
            let bm = self.bitmap(leaf);
            let free = (!bm).trailing_zeros() as u16;
            if free < LEAF_SLOTS {
                // Slot + fingerprint, flush, fence, then the atomic bitmap
                // publish, flush, fence — FPTree's two-persist insert.
                let a = Self::slot_addr(leaf, free);
                self.store.pm.write_u64(a, key);
                self.store.pm.write_u64(a + 8, value);
                self.store
                    .pm
                    .write_u8(leaf + OFF_FPS + free as u64, fingerprint(key));
                self.store.flush(a, 16);
                self.store.flush(leaf + OFF_FPS + free as u64, 1);
                self.store.fence();
                self.store.pm.write_u64(leaf + OFF_BITMAP, bm | (1 << free));
                self.store.persist(leaf + OFF_BITMAP, 8);
                self.len += 1;
                return Ok(None);
            }
            let (sep, right) = self.split_leaf(leaf)?;
            Self::insert_inner(&mut self.root, key, sep, right);
        }
    }

    fn get(&self, key: u64) -> Option<u64> {
        let leaf = Self::leaf_for(&self.root, key);
        self.find_slot(leaf, key).map(|i| self.slot(leaf, i).1)
    }

    fn remove(&mut self, key: u64) -> Option<u64> {
        let leaf = Self::leaf_for(&self.root, key);
        let i = self.find_slot(leaf, key)?;
        let v = self.slot(leaf, i).1;
        let bm = self.bitmap(leaf) & !(1 << i);
        self.store.pm.write_u64(leaf + OFF_BITMAP, bm);
        self.store.persist(leaf + OFF_BITMAP, 8);
        self.len -= 1;
        Some(v)
    }

    fn len(&self) -> usize {
        self.len
    }
}

impl OrderedIndex for FpTree {
    fn range(&self, lo: u64, hi: u64, f: &mut dyn FnMut(u64, u64) -> bool) {
        // Leaves are unsorted internally: walk the chain, sorting each
        // leaf's live slots (as the original does for scans).
        let mut leaf = Self::leaf_for(&self.root, lo);
        loop {
            let bm = self.bitmap(leaf);
            let mut items: Vec<(u64, u64)> = (0..LEAF_SLOTS)
                .filter(|i| bm & (1 << i) != 0)
                .map(|i| self.slot(leaf, i))
                .filter(|(k, _)| *k >= lo && *k < hi)
                .collect();
            items.sort_unstable();
            for (k, v) in items {
                if !f(k, v) {
                    return;
                }
            }
            // Stop when this leaf's max key reaches hi.
            let max_key = (0..LEAF_SLOTS)
                .filter(|i| bm & (1 << i) != 0)
                .map(|i| self.slot(leaf, i).0)
                .max();
            if max_key.is_some_and(|m| m >= hi) {
                return;
            }
            let next = self.store.pm.read_u64(leaf + OFF_NEXT);
            if next == 0 {
                return;
            }
            leaf = PmAddr(next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree() -> FpTree {
        let pm = Arc::new(PmRegion::new(64 << 20));
        FpTree::new(pm, PmAddr(0), 64 << 20, Mode::Persistent).unwrap()
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = tree();
        for k in 0..5000u64 {
            assert_eq!(t.insert(k, k * 3).unwrap(), None);
        }
        for k in 0..5000u64 {
            assert_eq!(t.get(k), Some(k * 3), "key {k}");
        }
        assert_eq!(t.remove(123), Some(369));
        assert_eq!(t.get(123), None);
        assert_eq!(t.remove(123), None);
        assert_eq!(t.len(), 4999);
    }

    #[test]
    fn random_order_inserts() {
        let mut t = tree();
        let keys: Vec<u64> = (0..8000u64)
            .map(|k| k.wrapping_mul(0x9E3779B97F4A7C15) >> 4)
            .collect();
        for &k in &keys {
            t.insert(k, !k).unwrap();
        }
        for &k in &keys {
            assert_eq!(t.get(k), Some(!k));
        }
    }

    #[test]
    fn range_scan_sorted_across_leaves() {
        let mut t = tree();
        for k in (0..3000u64).rev() {
            t.insert(k, k).unwrap();
        }
        let mut seen = Vec::new();
        t.range(500, 1500, &mut |k, _| {
            seen.push(k);
            true
        });
        assert_eq!(seen, (500..1500).collect::<Vec<_>>());
    }

    #[test]
    fn insert_is_two_persist_ops() {
        let pm = Arc::new(PmRegion::new(8 << 20));
        let mut t = FpTree::new(Arc::clone(&pm), PmAddr(0), 8 << 20, Mode::Persistent).unwrap();
        t.insert(1, 1).unwrap(); // warm the leaf
        let before = pm.stats().snapshot();
        t.insert(2, 2).unwrap();
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.fences, 2, "slot persist + bitmap persist");
        assert!(d.flushes <= 3);
    }

    #[test]
    fn update_in_place_returns_old() {
        let mut t = tree();
        t.insert(9, 1).unwrap();
        assert_eq!(t.insert(9, 2).unwrap(), Some(1));
        assert_eq!(t.get(9), Some(2));
    }

    #[test]
    fn volatile_mode_never_flushes() {
        let pm = Arc::new(PmRegion::new(16 << 20));
        let mut t = FpTree::new(Arc::clone(&pm), PmAddr(0), 16 << 20, Mode::Volatile).unwrap();
        for k in 0..3000u64 {
            t.insert(k, k).unwrap();
        }
        assert_eq!(pm.stats().flushes(), 0);
    }
}
