//! The compacted log-entry format (paper §3.2, Figure 3).
//!
//! A pointer-based entry is exactly **16 bytes**, so sixteen of them fill one
//! 256 B XPLine and can be made durable with the cost of a single internal
//! media write. Layout (bit offsets, little-endian):
//!
//! ```text
//! [ Op:2 | Emd:2 | Version:20 | Key:64 | Ptr:32 | Crc:8          ]  = 128 bits
//! [ Op:2 | Emd:2 | Version:20 | Key:64 | Size:8 | Crc:8 | value… ]  = 104 bits + value
//! ```
//!
//! * `Op` — 0 is *invalid* (so zero-filled padding never parses as an
//!   entry), 1 = Put, 2 = Delete (tombstone), 3 = Seal (end of chunk).
//! * `Emd` — whether the value is embedded at the end of the entry.
//! * `Version` — 20-bit per-key version used by the log cleaner and by
//!   recovery to pick the newest entry. Wrap-around is not disambiguated;
//!   the cleaner keeps the set of in-log versions per key far below 2²⁰
//!   (documented paper limitation).
//! * `Ptr` — 32 bits storing `block_address >> 8`; blocks from the
//!   lazy-persist allocator are 256 B-aligned, so the low 8 bits carry no
//!   information and 40 bits of address space (1 TB) remain reachable.
//! * `Size` — `value_len − 1`, encoding inline values of 1..=256 bytes.
//!   Values larger than [`INLINE_MAX`] bytes (and empty values) are stored
//!   out of the log.
//! * `Crc` — CRC-8 (polynomial 0x07) over the whole encoded entry with the
//!   checksum byte zeroed. Recovery and replication catch-up verify it
//!   before replaying an entry, so a torn write (or a partially-shipped
//!   batch on a backup) truncates the log instead of replaying garbage.

use pmem::{PmAddr, PmRegion};

use crate::error::LogError;

/// Largest value embedded directly in a log entry (paper: 256 B, "enough to
/// saturate the bandwidth of Optane DCPMM").
pub const INLINE_MAX: usize = 256;

/// Size of a pointer-based (or tombstone/seal) entry.
pub const PTR_ENTRY_LEN: usize = 16;

/// Header bytes preceding the value of an inline entry.
pub const INLINE_HEADER_LEN: usize = 13;

const OP_MASK: u8 = 0b11;
const EMD_SHIFT: u32 = 2;
/// Byte offset of the inline-entry size field.
const INLINE_SIZE_OFF: u64 = 11;
/// Byte offset of the inline-entry checksum.
const INLINE_CRC_OFF: usize = 12;
/// Byte offset of the pointer/tombstone/seal checksum.
const PTR_CRC_OFF: usize = 15;

/// CRC-8, polynomial 0x07 (ATM HEC), bitwise — entries are tiny, so a
/// lookup table buys nothing.
fn crc8(bytes: &[u8], skip: usize) -> u8 {
    let mut crc = 0u8;
    for (i, &b) in bytes.iter().enumerate() {
        crc ^= if i == skip { 0 } else { b };
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ 0x07
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Operation recorded by a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogOp {
    /// Insert or update a key.
    Put,
    /// Tombstone: the key was deleted.
    Delete,
    /// Internal: marks the used end of a sealed chunk.
    Seal,
}

impl LogOp {
    fn code(self) -> u8 {
        match self {
            LogOp::Put => 1,
            LogOp::Delete => 2,
            LogOp::Seal => 3,
        }
    }

    fn from_code(c: u8) -> Option<LogOp> {
        match c {
            1 => Some(LogOp::Put),
            2 => Some(LogOp::Delete),
            3 => Some(LogOp::Seal),
            _ => None,
        }
    }
}

/// Where a Put's value lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No payload (tombstones, seals).
    None,
    /// Value stored out of the log in an allocator block (its 256 B-aligned
    /// address fits the 32-bit packed pointer field).
    Ptr(PmAddr),
    /// Value embedded in the entry (1..=256 bytes).
    Inline(Vec<u8>),
}

/// A decoded (or to-be-encoded) operation-log entry.
///
/// # Example
///
/// ```
/// use oplog::{LogEntry, LogOp, Payload};
/// let e = LogEntry::put_inline(42, 7, b"tiny".to_vec()).unwrap();
/// assert_eq!(e.encoded_len(), 17); // 13 B header + 4 B value
/// let t = LogEntry::tombstone(42, 8);
/// assert_eq!(t.encoded_len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Operation type.
    pub op: LogOp,
    /// The 8-byte key.
    pub key: u64,
    /// 20-bit per-key version (masked on encode).
    pub version: u32,
    /// The value location.
    pub payload: Payload,
}

impl LogEntry {
    /// A Put whose value is embedded in the log entry.
    ///
    /// # Errors
    ///
    /// [`LogError::ValueTooLarge`] if the value is empty or longer than
    /// [`INLINE_MAX`].
    pub fn put_inline(key: u64, version: u32, value: Vec<u8>) -> Result<LogEntry, LogError> {
        if value.is_empty() || value.len() > INLINE_MAX {
            return Err(LogError::ValueTooLarge { len: value.len() });
        }
        Ok(LogEntry {
            op: LogOp::Put,
            key,
            version,
            payload: Payload::Inline(value),
        })
    }

    /// A Put whose value lives in an allocator block at `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 256 B-aligned or exceeds 40 bits.
    pub fn put_ptr(key: u64, version: u32, block: PmAddr) -> LogEntry {
        assert!(
            block.is_aligned(256),
            "block pointers must be 256 B aligned"
        );
        assert!(block.offset() >> 40 == 0, "pointer exceeds 40 bits");
        LogEntry {
            op: LogOp::Put,
            key,
            version,
            payload: Payload::Ptr(block),
        }
    }

    /// A Delete tombstone.
    pub fn tombstone(key: u64, version: u32) -> LogEntry {
        LogEntry {
            op: LogOp::Delete,
            key,
            version,
            payload: Payload::None,
        }
    }

    pub(crate) fn seal() -> LogEntry {
        LogEntry {
            op: LogOp::Seal,
            key: 0,
            version: 0,
            payload: Payload::None,
        }
    }

    /// Encoded size in bytes: 16 for pointer-based entries, `13 + len` for
    /// inline entries.
    pub fn encoded_len(&self) -> usize {
        match &self.payload {
            Payload::Inline(v) => INLINE_HEADER_LEN + v.len(),
            _ => PTR_ENTRY_LEN,
        }
    }

    /// Appends the encoded entry to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let start = buf.len();
        let emd = matches!(self.payload, Payload::Inline(_)) as u8;
        let ver = self.version & 0xF_FFFF;
        let b0 = self.op.code() | (emd << EMD_SHIFT) | (((ver & 0xF) as u8) << 4);
        buf.push(b0);
        buf.extend_from_slice(&((ver >> 4) as u16).to_le_bytes());
        buf.extend_from_slice(&self.key.to_le_bytes());
        let crc_off = match &self.payload {
            Payload::Inline(v) => {
                buf.push((v.len() - 1) as u8);
                buf.push(0); // checksum placeholder
                buf.extend_from_slice(v);
                INLINE_CRC_OFF
            }
            Payload::Ptr(p) => {
                let packed = (p.offset() >> 8) as u32;
                buf.extend_from_slice(&packed.to_le_bytes());
                buf.push(0); // checksum placeholder
                PTR_CRC_OFF
            }
            Payload::None => {
                buf.extend_from_slice(&[0u8; 5]);
                PTR_CRC_OFF
            }
        };
        buf[start + crc_off] = crc8(&buf[start..], crc_off);
    }

    /// Decodes the entry at `addr`, returning it and its encoded length.
    /// Returns `Ok(None)` for padding (a zero op byte).
    ///
    /// # Errors
    ///
    /// [`LogError::ChecksumMismatch`] if the entry's CRC-8 does not match
    /// (a torn write); [`LogError::Corrupt`] if the bytes do not decode.
    pub fn decode(pm: &PmRegion, addr: PmAddr) -> Result<Option<(LogEntry, usize)>, LogError> {
        let b0 = pm.read_u8(addr);
        let Some(op) = LogOp::from_code(b0 & OP_MASK) else {
            return Ok(None); // padding
        };
        let emd = (b0 >> EMD_SHIFT) & 0b11;
        let inline = op == LogOp::Put && emd == 1;
        // Verify the checksum over the whole encoded entry before trusting
        // any field beyond the two needed to find its length.
        let (len, crc_off) = if inline {
            let size = pm.read_u8(addr + INLINE_SIZE_OFF) as usize + 1;
            (INLINE_HEADER_LEN + size, INLINE_CRC_OFF)
        } else {
            (PTR_ENTRY_LEN, PTR_CRC_OFF)
        };
        let raw = pm.read_vec(addr, len);
        if crc8(&raw, crc_off) != raw[crc_off] {
            return Err(LogError::ChecksumMismatch {
                addr: addr.offset(),
            });
        }
        let ver_lo = (b0 >> 4) as u32;
        let ver_hi = u16::from_le_bytes([raw[1], raw[2]]) as u32;
        let version = ver_lo | (ver_hi << 4);
        // pmlint: allow(no-unwrap) — raw is at least 16 bytes, so [3..11]
        // is 8 bytes.
        let key = u64::from_le_bytes(raw[3..11].try_into().expect("8 bytes"));
        match op {
            LogOp::Seal => Ok(Some((LogEntry::seal(), PTR_ENTRY_LEN))),
            LogOp::Delete => Ok(Some((
                LogEntry {
                    op,
                    key,
                    version,
                    payload: Payload::None,
                },
                PTR_ENTRY_LEN,
            ))),
            LogOp::Put if inline => {
                // Reuse the checksummed read buffer as the value (one
                // allocation per decode, not two): the header is drained
                // off the front and the Vec handed onward — the Get path
                // moves it to the client without another copy.
                let mut value = raw;
                value.drain(..INLINE_HEADER_LEN);
                Ok(Some((
                    LogEntry {
                        op,
                        key,
                        version,
                        payload: Payload::Inline(value),
                    },
                    len,
                )))
            }
            LogOp::Put => {
                // pmlint: allow(no-unwrap) — raw[11..15] is 4 bytes.
                let packed = u32::from_le_bytes(raw[11..15].try_into().expect("4 bytes"));
                let ptr = (packed as u64) << 8;
                if ptr == 0 {
                    return Err(LogError::Corrupt {
                        addr: addr.offset(),
                    });
                }
                Ok(Some((
                    LogEntry {
                        op,
                        key,
                        version,
                        payload: Payload::Ptr(PmAddr(ptr)),
                    },
                    PTR_ENTRY_LEN,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &LogEntry) -> LogEntry {
        let pm = PmRegion::new(4096);
        let mut buf = Vec::new();
        e.encode_into(&mut buf);
        assert_eq!(buf.len(), e.encoded_len());
        pm.write(PmAddr(64), &buf);
        let (got, len) = LogEntry::decode(&pm, PmAddr(64)).unwrap().unwrap();
        assert_eq!(len, e.encoded_len());
        got
    }

    #[test]
    fn ptr_entry_is_16_bytes_and_round_trips() {
        let e = LogEntry::put_ptr(0xdead_beef_0042, 0x5_4321, PmAddr(0x1234_5600));
        assert_eq!(e.encoded_len(), 16);
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn inline_entry_round_trips_all_sizes() {
        for len in [1usize, 2, 7, 8, 52, 255, 256] {
            let e = LogEntry::put_inline(99, 3, vec![0xA5; len]).unwrap();
            assert_eq!(e.encoded_len(), 13 + len);
            assert_eq!(round_trip(&e), e);
        }
    }

    #[test]
    fn tombstone_round_trips() {
        let e = LogEntry::tombstone(7, 0xF_FFFF);
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn version_is_masked_to_20_bits() {
        let e = LogEntry::tombstone(7, 0xABC_DEF0);
        let got = round_trip(&e);
        assert_eq!(got.version, 0xABC_DEF0 & 0xF_FFFF);
    }

    #[test]
    fn zero_bytes_decode_as_padding() {
        let pm = PmRegion::new(4096);
        assert_eq!(LogEntry::decode(&pm, PmAddr(0)).unwrap(), None);
    }

    #[test]
    fn oversized_or_empty_inline_rejected() {
        assert!(LogEntry::put_inline(1, 1, vec![]).is_err());
        assert!(LogEntry::put_inline(1, 1, vec![0; 257]).is_err());
    }

    #[test]
    #[should_panic(expected = "256 B aligned")]
    fn unaligned_ptr_panics() {
        let _ = LogEntry::put_ptr(1, 1, PmAddr(100));
    }

    #[test]
    fn corrupt_byte_fails_checksum() {
        // Flip one byte anywhere in an encoded entry (including the CRC
        // itself) and decode must report ChecksumMismatch, never a wrong
        // entry.
        for e in [
            LogEntry::put_ptr(0xdead_beef, 0x5_4321, PmAddr(0x1234_5600)),
            LogEntry::put_inline(99, 3, vec![0xA5; 8]).unwrap(),
            LogEntry::tombstone(7, 9),
        ] {
            let mut buf = Vec::new();
            e.encode_into(&mut buf);
            for i in 0..buf.len() {
                let pm = PmRegion::new(4096);
                let mut torn = buf.clone();
                torn[i] ^= 0x40; // keeps the op code valid (bits 0..2 untouched)
                pm.write(PmAddr(64), &torn);
                assert_eq!(
                    LogEntry::decode(&pm, PmAddr(64)),
                    Err(LogError::ChecksumMismatch { addr: 64 }),
                    "byte {i} of {e:?}"
                );
            }
        }
    }

    #[test]
    fn sixteen_ptr_entries_fill_one_xpline() {
        let mut buf = Vec::new();
        for k in 0..16u64 {
            LogEntry::put_ptr(k, 1, PmAddr(0x100 * (k + 1))).encode_into(&mut buf);
        }
        assert_eq!(buf.len(), 256);
    }
}
