//! The compacted log-entry format (paper §3.2, Figure 3).
//!
//! A pointer-based entry is exactly **16 bytes**, so sixteen of them fill one
//! 256 B XPLine and can be made durable with the cost of a single internal
//! media write. Layout (bit offsets, little-endian):
//!
//! ```text
//! [ Op:2 | Emd:2 | Version:20 | Key:64 | Ptr:40            ]  = 128 bits
//! [ Op:2 | Emd:2 | Version:20 | Key:64 | Size:8 | value... ]  = 96 bits + value
//! ```
//!
//! * `Op` — 0 is *invalid* (so zero-filled padding never parses as an
//!   entry), 1 = Put, 2 = Delete (tombstone), 3 = Seal (end of chunk).
//! * `Emd` — whether the value is embedded at the end of the entry.
//! * `Version` — 20-bit per-key version used by the log cleaner and by
//!   recovery to pick the newest entry. Wrap-around is not disambiguated;
//!   the cleaner keeps the set of in-log versions per key far below 2²⁰
//!   (documented paper limitation).
//! * `Ptr` — 40 bits storing `block_address >> 8`; blocks from the
//!   lazy-persist allocator are 256 B-aligned, so the low 8 bits carry no
//!   information and 48 bits of address space (128 TB) remain reachable.
//! * `Size` — `value_len − 1`, encoding inline values of 1..=256 bytes.
//!   Values larger than [`INLINE_MAX`] bytes (and empty values) are stored
//!   out of the log.

use pmem::{PmAddr, PmRegion};

use crate::error::LogError;

/// Largest value embedded directly in a log entry (paper: 256 B, "enough to
/// saturate the bandwidth of Optane DCPMM").
pub const INLINE_MAX: usize = 256;

/// Size of a pointer-based (or tombstone/seal) entry.
pub const PTR_ENTRY_LEN: usize = 16;

/// Header bytes preceding the value of an inline entry.
pub const INLINE_HEADER_LEN: usize = 12;

const OP_MASK: u8 = 0b11;
const EMD_SHIFT: u32 = 2;

/// Operation recorded by a log entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LogOp {
    /// Insert or update a key.
    Put,
    /// Tombstone: the key was deleted.
    Delete,
    /// Internal: marks the used end of a sealed chunk.
    Seal,
}

impl LogOp {
    fn code(self) -> u8 {
        match self {
            LogOp::Put => 1,
            LogOp::Delete => 2,
            LogOp::Seal => 3,
        }
    }

    fn from_code(c: u8) -> Option<LogOp> {
        match c {
            1 => Some(LogOp::Put),
            2 => Some(LogOp::Delete),
            3 => Some(LogOp::Seal),
            _ => None,
        }
    }
}

/// Where a Put's value lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// No payload (tombstones, seals).
    None,
    /// Value stored out of the log in an allocator block (its 256 B-aligned
    /// address fits the 40-bit pointer field).
    Ptr(PmAddr),
    /// Value embedded in the entry (1..=256 bytes).
    Inline(Vec<u8>),
}

/// A decoded (or to-be-encoded) operation-log entry.
///
/// # Example
///
/// ```
/// use oplog::{LogEntry, LogOp, Payload};
/// let e = LogEntry::put_inline(42, 7, b"tiny".to_vec()).unwrap();
/// assert_eq!(e.encoded_len(), 16); // 12 B header + 4 B value
/// let t = LogEntry::tombstone(42, 8);
/// assert_eq!(t.encoded_len(), 16);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogEntry {
    /// Operation type.
    pub op: LogOp,
    /// The 8-byte key.
    pub key: u64,
    /// 20-bit per-key version (masked on encode).
    pub version: u32,
    /// The value location.
    pub payload: Payload,
}

impl LogEntry {
    /// A Put whose value is embedded in the log entry.
    ///
    /// # Errors
    ///
    /// [`LogError::ValueTooLarge`] if the value is empty or longer than
    /// [`INLINE_MAX`].
    pub fn put_inline(key: u64, version: u32, value: Vec<u8>) -> Result<LogEntry, LogError> {
        if value.is_empty() || value.len() > INLINE_MAX {
            return Err(LogError::ValueTooLarge { len: value.len() });
        }
        Ok(LogEntry {
            op: LogOp::Put,
            key,
            version,
            payload: Payload::Inline(value),
        })
    }

    /// A Put whose value lives in an allocator block at `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block` is not 256 B-aligned or exceeds 48 bits.
    pub fn put_ptr(key: u64, version: u32, block: PmAddr) -> LogEntry {
        assert!(
            block.is_aligned(256),
            "block pointers must be 256 B aligned"
        );
        assert!(block.offset() >> 48 == 0, "pointer exceeds 48 bits");
        LogEntry {
            op: LogOp::Put,
            key,
            version,
            payload: Payload::Ptr(block),
        }
    }

    /// A Delete tombstone.
    pub fn tombstone(key: u64, version: u32) -> LogEntry {
        LogEntry {
            op: LogOp::Delete,
            key,
            version,
            payload: Payload::None,
        }
    }

    pub(crate) fn seal() -> LogEntry {
        LogEntry {
            op: LogOp::Seal,
            key: 0,
            version: 0,
            payload: Payload::None,
        }
    }

    /// Encoded size in bytes: 16 for pointer-based entries, `12 + len` for
    /// inline entries.
    pub fn encoded_len(&self) -> usize {
        match &self.payload {
            Payload::Inline(v) => INLINE_HEADER_LEN + v.len(),
            _ => PTR_ENTRY_LEN,
        }
    }

    /// Appends the encoded entry to `buf`.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        let emd = matches!(self.payload, Payload::Inline(_)) as u8;
        let ver = self.version & 0xF_FFFF;
        let b0 = self.op.code() | (emd << EMD_SHIFT) | (((ver & 0xF) as u8) << 4);
        buf.push(b0);
        buf.extend_from_slice(&((ver >> 4) as u16).to_le_bytes());
        buf.extend_from_slice(&self.key.to_le_bytes());
        match &self.payload {
            Payload::Inline(v) => {
                buf.push((v.len() - 1) as u8);
                buf.extend_from_slice(v);
            }
            Payload::Ptr(p) => {
                let packed = p.offset() >> 8; // 40 bits
                buf.extend_from_slice(&packed.to_le_bytes()[..5]);
            }
            Payload::None => buf.extend_from_slice(&[0u8; 5]),
        }
    }

    /// Decodes the entry at `addr`, returning it and its encoded length.
    /// Returns `Ok(None)` for padding (a zero op byte).
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] if the bytes do not decode.
    pub fn decode(pm: &PmRegion, addr: PmAddr) -> Result<Option<(LogEntry, usize)>, LogError> {
        let b0 = pm.read_u8(addr);
        let Some(op) = LogOp::from_code(b0 & OP_MASK) else {
            return Ok(None); // padding
        };
        let emd = (b0 >> EMD_SHIFT) & 0b11;
        let mut hdr = [0u8; 11];
        pm.read(addr, &mut hdr);
        let ver_lo = (b0 >> 4) as u32;
        let ver_hi = u16::from_le_bytes([hdr[1], hdr[2]]) as u32;
        let version = ver_lo | (ver_hi << 4);
        // pmlint: allow(no-unwrap) — hdr is 11 bytes, so [3..11] is 8 bytes.
        let key = u64::from_le_bytes(hdr[3..11].try_into().expect("8 bytes"));
        match op {
            LogOp::Seal => Ok(Some((LogEntry::seal(), PTR_ENTRY_LEN))),
            LogOp::Delete => Ok(Some((
                LogEntry {
                    op,
                    key,
                    version,
                    payload: Payload::None,
                },
                PTR_ENTRY_LEN,
            ))),
            LogOp::Put if emd == 1 => {
                let size = pm.read_u8(addr + 11) as usize + 1;
                let value = pm.read_vec(addr + 12, size);
                Ok(Some((
                    LogEntry {
                        op,
                        key,
                        version,
                        payload: Payload::Inline(value),
                    },
                    INLINE_HEADER_LEN + size,
                )))
            }
            LogOp::Put => {
                let mut pbytes = [0u8; 8];
                pm.read(addr + 11, &mut pbytes[..5]);
                let ptr = u64::from_le_bytes(pbytes) << 8;
                let payload = if ptr == 0 {
                    return Err(LogError::Corrupt {
                        addr: addr.offset(),
                    });
                } else {
                    Payload::Ptr(PmAddr(ptr))
                };
                Ok(Some((
                    LogEntry {
                        op,
                        key,
                        version,
                        payload,
                    },
                    PTR_ENTRY_LEN,
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(e: &LogEntry) -> LogEntry {
        let pm = PmRegion::new(4096);
        let mut buf = Vec::new();
        e.encode_into(&mut buf);
        assert_eq!(buf.len(), e.encoded_len());
        pm.write(PmAddr(64), &buf);
        let (got, len) = LogEntry::decode(&pm, PmAddr(64)).unwrap().unwrap();
        assert_eq!(len, e.encoded_len());
        got
    }

    #[test]
    fn ptr_entry_is_16_bytes_and_round_trips() {
        let e = LogEntry::put_ptr(0xdead_beef_0042, 0x5_4321, PmAddr(0x1234_5600));
        assert_eq!(e.encoded_len(), 16);
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn inline_entry_round_trips_all_sizes() {
        for len in [1usize, 2, 7, 8, 52, 255, 256] {
            let e = LogEntry::put_inline(99, 3, vec![0xA5; len]).unwrap();
            assert_eq!(e.encoded_len(), 12 + len);
            assert_eq!(round_trip(&e), e);
        }
    }

    #[test]
    fn tombstone_round_trips() {
        let e = LogEntry::tombstone(7, 0xF_FFFF);
        assert_eq!(round_trip(&e), e);
    }

    #[test]
    fn version_is_masked_to_20_bits() {
        let e = LogEntry::tombstone(7, 0xABC_DEF0);
        let got = round_trip(&e);
        assert_eq!(got.version, 0xABC_DEF0 & 0xF_FFFF);
    }

    #[test]
    fn zero_bytes_decode_as_padding() {
        let pm = PmRegion::new(4096);
        assert_eq!(LogEntry::decode(&pm, PmAddr(0)).unwrap(), None);
    }

    #[test]
    fn oversized_or_empty_inline_rejected() {
        assert!(LogEntry::put_inline(1, 1, vec![]).is_err());
        assert!(LogEntry::put_inline(1, 1, vec![0; 257]).is_err());
    }

    #[test]
    #[should_panic(expected = "256 B aligned")]
    fn unaligned_ptr_panics() {
        let _ = LogEntry::put_ptr(1, 1, PmAddr(100));
    }

    #[test]
    fn sixteen_ptr_entries_fill_one_xpline() {
        let mut buf = Vec::new();
        for k in 0..16u64 {
            LogEntry::put_ptr(k, 1, PmAddr(0x100 * (k + 1))).encode_into(&mut buf);
        }
        assert_eq!(buf.len(), 256);
    }
}
