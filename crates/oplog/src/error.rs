//! Operation-log errors.

use std::error::Error;
use std::fmt;

use pmalloc::AllocError;

/// Errors returned by the operation log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// A value too large (or empty) for inline embedding was passed where an
    /// inline entry was required.
    ValueTooLarge {
        /// The offending value length.
        len: usize,
    },
    /// No free chunk is available to extend the log.
    OutOfSpace,
    /// A batch larger than a chunk's usable space was submitted.
    BatchTooLarge {
        /// Encoded size of the batch.
        bytes: usize,
    },
    /// Undecodable bytes were found where an entry was expected.
    Corrupt {
        /// Address of the corruption.
        addr: u64,
    },
    /// An entry's CRC-8 did not match its bytes — a torn write (or a
    /// partially-shipped replication batch). Recovery truncates the log
    /// here instead of replaying the entry.
    ChecksumMismatch {
        /// Address of the torn entry.
        addr: u64,
    },
    /// The chunk allocator rejected an operation.
    Alloc(AllocError),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::ValueTooLarge { len } => {
                write!(f, "value of {len} bytes cannot be embedded in a log entry")
            }
            LogError::OutOfSpace => write!(f, "no free PM chunk to extend the log"),
            LogError::BatchTooLarge { bytes } => {
                write!(f, "batch of {bytes} bytes exceeds chunk capacity")
            }
            LogError::Corrupt { addr } => write!(f, "corrupt log entry at {addr:#x}"),
            LogError::ChecksumMismatch { addr } => {
                write!(f, "log entry checksum mismatch (torn write) at {addr:#x}")
            }
            LogError::Alloc(e) => write!(f, "allocator error: {e}"),
        }
    }
}

impl Error for LogError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            LogError::Alloc(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AllocError> for LogError {
    fn from(e: AllocError) -> Self {
        LogError::Alloc(e)
    }
}
