//! FlatStore's compacted operation log (paper §3.2–3.4).
//!
//! The log is the persistence half of FlatStore's decoupled design: every
//! Put/Delete appends one **compacted log entry** — 16 bytes for
//! pointer-based entries, `12 + len` bytes for values embedded inline — and
//! the volatile index simply points at those entries. Because entries are
//! tiny and appended together, a batch of sixteen pointer entries fills
//! exactly one 256 B XPLine: the persistence cost of a *batch* equals the
//! cost of a *single* entry, which is the paper's central throughput lever.
//!
//! Key pieces:
//!
//! * [`LogEntry`] / [`LogOp`] / [`Payload`] — the entry codec (Figure 3).
//! * [`OpLog`] — a per-core log over a chain of 4 MB chunks with batched,
//!   cacheline-padded appends, a persisted tail pointer, log cleaning
//!   ([`OpLog::clean_chunk`]) and a recovery scan
//!   ([`OpLog::recover_with`]).
//! * [`ChunkUsage`] — per-chunk liveness accounting for victim selection.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use pmem::{PmRegion, PmAddr};
//! use pmalloc::{ChunkManager, CHUNK_SIZE};
//! use oplog::{OpLog, LogEntry};
//!
//! let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize + 4096 * 64));
//! // Chunks must start 4 MB-aligned; the low 4 MB holds descriptors.
//! let mgr = Arc::new(ChunkManager::format(pm, PmAddr(CHUNK_SIZE), 7));
//! let mut log = OpLog::create(mgr, PmAddr(0))?;
//! let addrs = log.append_batch(&[
//!     LogEntry::put_inline(1, 0, b"alpha".to_vec())?,
//!     LogEntry::put_inline(2, 0, b"beta".to_vec())?,
//! ])?;
//! assert_eq!(log.read_entry(addrs[0])?.key, 1);
//! # Ok::<(), oplog::LogError>(())
//! ```

mod entry;
mod error;
mod log;

pub use entry::{LogEntry, LogOp, Payload, INLINE_HEADER_LEN, INLINE_MAX, PTR_ENTRY_LEN};
pub use error::LogError;
pub use log::{ChunkUsage, OpLog, Relocation, ENTRY_AREA};
