//! The per-core operation log: batched, cacheline-padded appends over a
//! chain of 4 MB PM chunks, with log cleaning and crash-recovery scan.

use std::collections::HashMap;
use std::sync::Arc;

use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion, CACHELINE};

use crate::entry::{LogEntry, LogOp, PTR_ENTRY_LEN};
use crate::error::LogError;

/// Byte offset of the first entry in a chunk (the first cacheline holds the
/// chunk header: reserved magic, next pointer, sequence number).
pub const ENTRY_AREA: u64 = 64;

/// Entries never extend past this offset; the reserved tail guarantees room
/// for a 16 B seal marker plus padding.
const ENTRY_END: u64 = CHUNK_SIZE - 64;

const OFF_NEXT: u64 = 8;
const OFF_SEQ: u64 = 16;

const DESC_HEAD: u64 = 0;
const DESC_TAIL: u64 = 8;

/// Liveness accounting for one log chunk, driving victim selection for the
/// cleaner (paper §3.4).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChunkUsage {
    /// Entries appended to this chunk (excluding seals/padding).
    pub total: u32,
    /// Entries known stale (superseded or deleted).
    pub dead: u32,
}

impl ChunkUsage {
    /// Entries still referenced.
    pub fn live(&self) -> u32 {
        self.total.saturating_sub(self.dead)
    }

    /// Fraction of entries still live (1.0 for an empty chunk).
    pub fn live_ratio(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.live() as f64 / self.total as f64
        }
    }
}

/// A relocation performed by the cleaner: the entry moved from `old` to
/// `new`; the volatile index must be CAS-updated accordingly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relocation {
    /// Previous entry address.
    pub old: PmAddr,
    /// New entry address.
    pub new: PmAddr,
    /// The relocated entry.
    pub entry: LogEntry,
}

/// A per-core compacted operation log (paper §3.2).
///
/// The log is a chain of 4 MB chunks taken whole from the shared
/// [`ChunkManager`]. A tiny persistent descriptor (two 8-byte words: head
/// chunk and tail address) anchors the chain; everything else — the chunk
/// list, the per-chunk liveness table — is volatile and rebuilt by
/// [`recover_with`](Self::recover_with).
///
/// ## Append path (paper's three-flush Put, steps 2–3)
///
/// [`append_batch`](Self::append_batch) encodes all entries back to back,
/// **pads the batch to a cacheline boundary** so adjacent batches never share
/// a cacheline (avoiding the repeat-flush stall of §2.3), flushes the batch
/// with one flush per touched cacheline + one fence, then persists the tail
/// pointer (one more flush + fence). Sixteen 16-byte pointer entries thus
/// cost 4 cacheline flushes — one 256 B XPLine — no matter how many requests
/// they represent.
pub struct OpLog {
    pm: Arc<PmRegion>,
    mgr: Arc<ChunkManager>,
    desc: PmAddr,
    /// Chain order, head first. The tail chunk is always last.
    chunks: Vec<PmAddr>,
    tail: PmAddr,
    usage: HashMap<u64, ChunkUsage>,
    seq: u64,
    scratch: Vec<u8>,
    pad_batches: bool,
}

impl std::fmt::Debug for OpLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpLog")
            .field("desc", &self.desc)
            .field("chunks", &self.chunks.len())
            .field("tail", &self.tail)
            .finish()
    }
}

impl OpLog {
    /// Creates a fresh log anchored at descriptor `desc` (64 B-aligned, two
    /// u64 words), allocating its first chunk.
    ///
    /// # Errors
    ///
    /// [`LogError::OutOfSpace`] if no chunk is free.
    ///
    /// # Panics
    ///
    /// Panics if `desc` is not 64 B-aligned.
    pub fn create(mgr: Arc<ChunkManager>, desc: PmAddr) -> Result<OpLog, LogError> {
        assert!(
            desc.is_aligned(CACHELINE),
            "descriptor must own a cacheline"
        );
        let pm = Arc::clone(mgr.pm());
        let first = mgr.take_raw_chunk().ok_or(LogError::OutOfSpace)?;
        pm.write_u64(first + OFF_NEXT, 0);
        pm.write_u64(first + OFF_SEQ, 0);
        pm.persist(first + OFF_NEXT, 16);
        let tail = first + ENTRY_AREA;
        pm.write_u64(desc + DESC_HEAD, first.offset());
        pm.write_u64(desc + DESC_TAIL, tail.offset());
        pm.persist(desc, 16);
        // Durability point: the descriptor now anchors a recoverable chain.
        pm.commit_point();
        let mut usage = HashMap::new();
        usage.insert(first.offset(), ChunkUsage::default());
        Ok(OpLog {
            pm,
            mgr,
            desc,
            chunks: vec![first],
            tail,
            usage,
            seq: 0,
            scratch: Vec::with_capacity(4096),
            pad_batches: true,
        })
    }

    /// Enables or disables cacheline padding between batches. Padding is on
    /// by default (paper §3.2: adjacent batches must not share a cacheline
    /// or the later one hits the repeat-flush stall); turning it off exists
    /// for the ablation benchmarks.
    pub fn set_batch_padding(&mut self, on: bool) {
        self.pad_batches = on;
    }

    /// Rebuilds a log from its persistent descriptor, invoking `f` for every
    /// surviving entry (in chain order). Used both for crash recovery (the
    /// caller replays entries into the volatile index, newest version wins)
    /// and after clean shutdown (the caller may ignore the entries).
    ///
    /// An entry failing its CRC-8 (a torn write) is **truncated, not
    /// replayed**: the scan stops there, and if the tear precedes the
    /// persisted tail the tail is pulled back and re-persisted so later
    /// appends overwrite the garbage.
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] on undecodable state.
    pub fn recover_with(
        mgr: Arc<ChunkManager>,
        desc: PmAddr,
        f: impl FnMut(LogEntry, PmAddr),
    ) -> Result<OpLog, LogError> {
        Self::recover_from(mgr, desc, None, f)
    }

    /// Like [`recover_with`](Self::recover_with), but skips every entry
    /// before `from` (a checkpoint cursor: a tail address recorded while
    /// the log was quiescent). Chunks preceding the cursor's chunk are not
    /// scanned at all — the checkpoint's recovery speedup (paper §3.5).
    /// Replication catch-up uses the same cursor semantics to ship only the
    /// suffix past a backup's persisted watermark. Torn entries truncate as
    /// in [`recover_with`](Self::recover_with).
    ///
    /// Only sound while the chain has not been re-ordered by the cleaner
    /// since the cursor was taken (the engine invalidates checkpoints
    /// before cleaning).
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] on undecodable state.
    pub fn recover_with_from(
        mgr: Arc<ChunkManager>,
        desc: PmAddr,
        from: PmAddr,
        f: impl FnMut(LogEntry, PmAddr),
    ) -> Result<OpLog, LogError> {
        Self::recover_from(mgr, desc, Some(from), f)
    }

    fn recover_from(
        mgr: Arc<ChunkManager>,
        desc: PmAddr,
        from: Option<PmAddr>,
        mut f: impl FnMut(LogEntry, PmAddr),
    ) -> Result<OpLog, LogError> {
        let pm = Arc::clone(mgr.pm());
        let head = PmAddr(pm.read_u64(desc + DESC_HEAD));
        let tail = PmAddr(pm.read_u64(desc + DESC_TAIL));
        if head == PmAddr::NULL {
            return Err(LogError::Corrupt {
                addr: desc.offset(),
            });
        }
        let mut chunks = Vec::new();
        let mut usage = HashMap::new();
        let mut seq = 0u64;
        let mut cur = head;
        let from_chunk = from.map(Self::chunk_of);
        let mut reached_cursor = from.is_none();
        let mut new_tail = tail;
        loop {
            chunks.push(cur);
            seq = seq.max(pm.read_u64(cur + OFF_SEQ));
            let mut count = 0u32;
            let end = if tail.offset() >= cur.offset() && tail - cur < CHUNK_SIZE {
                tail
            } else {
                PmAddr(cur.offset() + ENTRY_END)
            };
            let mut pos = cur + ENTRY_AREA;
            if !reached_cursor {
                if Some(cur) == from_chunk {
                    // Resume scanning exactly at the checkpoint cursor.
                    // pmlint: allow(no-unwrap) — from_chunk is Some only
                    // when `from` is (both derive from the same Option).
                    pos = from.expect("cursor present");
                    reached_cursor = true;
                } else {
                    // Entirely pre-checkpoint: skip its contents.
                    pos = end;
                }
            }
            while pos < end {
                match LogEntry::decode(&pm, pos) {
                    Ok(None) => {
                        // Padding: skip to the next cacheline.
                        pos = (pos + 1).align_up(CACHELINE);
                    }
                    Ok(Some((e, _))) if e.op == LogOp::Seal => break,
                    Ok(Some((e, len))) => {
                        count += 1;
                        f(e, pos);
                        pos += len as u64;
                    }
                    Err(LogError::ChecksumMismatch { .. }) => {
                        // Torn write: nothing from here on in this chunk was
                        // ever acknowledged. Truncate instead of replaying;
                        // if the tear precedes the persisted tail, pull the
                        // tail back so later appends overwrite the garbage.
                        if Self::chunk_of(tail) == cur && pos < tail {
                            new_tail = pos;
                        }
                        break;
                    }
                    Err(e) => return Err(e),
                }
            }
            usage.insert(
                cur.offset(),
                ChunkUsage {
                    total: count,
                    dead: 0,
                },
            );
            let next = PmAddr(pm.read_u64(cur + OFF_NEXT));
            if next == PmAddr::NULL {
                break;
            }
            cur = next;
        }
        if !reached_cursor {
            return Err(LogError::Corrupt {
                // pmlint: allow(no-unwrap) — reached_cursor starts false only
                // when `from` is Some (see the initialisation above).
                addr: from.expect("cursor present").offset(),
            });
        }
        if new_tail != tail {
            pm.write_u64(desc + DESC_TAIL, new_tail.offset());
            pm.persist(desc + DESC_TAIL, 8);
            // Durability point: the truncated tail is now the log's end.
            pm.commit_point();
        }
        Ok(OpLog {
            pm,
            mgr,
            desc,
            chunks,
            tail: new_tail,
            usage,
            seq,
            scratch: Vec::with_capacity(4096),
            pad_batches: true,
        })
    }

    /// The persistent descriptor address.
    pub fn desc(&self) -> PmAddr {
        self.desc
    }

    /// Current tail (next append position).
    pub fn tail(&self) -> PmAddr {
        self.tail
    }

    /// Chunk bases in chain order (head first; the tail chunk is last).
    pub fn chunks(&self) -> &[PmAddr] {
        &self.chunks
    }

    /// The underlying PM region.
    pub fn pm(&self) -> &Arc<PmRegion> {
        &self.pm
    }

    /// Base of the chunk containing `addr`.
    pub fn chunk_of(addr: PmAddr) -> PmAddr {
        addr.align_down(CHUNK_SIZE)
    }

    /// Liveness accounting for every chunk, chain order.
    pub fn usages(&self) -> impl Iterator<Item = (PmAddr, ChunkUsage)> + '_ {
        self.chunks
            .iter()
            .map(move |c| (*c, self.usage.get(&c.offset()).copied().unwrap_or_default()))
    }

    /// Records that the entry at `addr` became stale (superseded by a newer
    /// Put, deleted, or lost a recovery-replay race).
    pub fn note_dead(&mut self, addr: PmAddr) {
        let chunk = Self::chunk_of(addr);
        if let Some(u) = self.usage.get_mut(&chunk.offset()) {
            u.dead = (u.dead + 1).min(u.total);
        }
    }

    /// Appends `entries` as one durable batch; returns each entry's address.
    ///
    /// Costs `ceil(bytes / 64)` cacheline flushes + 1 fence for the entries,
    /// plus 1 flush + 1 fence for the tail pointer — regardless of how many
    /// entries the batch carries. The batch is padded to a cacheline
    /// boundary so the next batch starts on a fresh line.
    ///
    /// # Errors
    ///
    /// [`LogError::BatchTooLarge`] if the encoded batch exceeds a chunk;
    /// [`LogError::OutOfSpace`] if a new chunk was needed and none is free.
    pub fn append_batch(&mut self, entries: &[LogEntry]) -> Result<Vec<PmAddr>, LogError> {
        if entries.is_empty() {
            return Ok(Vec::new());
        }
        self.scratch.clear();
        let mut offsets = Vec::with_capacity(entries.len());
        for e in entries {
            debug_assert!(e.op != LogOp::Seal, "seal entries are internal");
            offsets.push(self.scratch.len() as u64);
            e.encode_into(&mut self.scratch);
        }
        // Cacheline padding (explicit zeros: recycled chunks hold garbage).
        // With padding disabled (ablation), batches still align to entry
        // boundaries but may share cachelines — and pay the repeat-flush
        // stall the paper's padding avoids.
        if self.pad_batches {
            while !self.scratch.len().is_multiple_of(CACHELINE as usize) {
                self.scratch.push(0);
            }
        }
        let len = self.scratch.len() as u64;
        if len > ENTRY_END - ENTRY_AREA {
            return Err(LogError::BatchTooLarge {
                bytes: len as usize,
            });
        }
        let chunk = Self::chunk_of(self.tail);
        if self.tail - chunk + len > ENTRY_END {
            self.seal_and_extend(chunk)?;
        }

        let base = self.tail;
        self.pm.write(base, &self.scratch);
        self.pm.flush(base, self.scratch.len());
        self.pm.fence();

        self.tail = base + len;
        self.pm.write_u64(self.desc + DESC_TAIL, self.tail.offset());
        self.pm.persist(self.desc + DESC_TAIL, 8);
        // Durability point: entries first, then the tail pointer — the
        // batch is now acknowledged-durable (pmcheck verifies the order).
        self.pm.commit_point();

        let cur = Self::chunk_of(base);
        self.usage.entry(cur.offset()).or_default().total += entries.len() as u32;
        Ok(offsets.into_iter().map(|o| base + o).collect())
    }

    fn seal_and_extend(&mut self, chunk: PmAddr) -> Result<(), LogError> {
        let new = self.mgr.take_raw_chunk().ok_or(LogError::OutOfSpace)?;
        self.seq += 1;
        self.pm.write_u64(new + OFF_NEXT, 0);
        self.pm.write_u64(new + OFF_SEQ, self.seq);
        self.pm.persist(new + OFF_NEXT, 16);
        // Seal marker at the old tail + link to the new chunk; one fence
        // covers both (they are independent writes, and the chain is only
        // followed up to the persisted tail).
        let mut seal = Vec::with_capacity(PTR_ENTRY_LEN);
        LogEntry::seal().encode_into(&mut seal);
        self.pm.write(self.tail, &seal);
        self.pm.flush(self.tail, seal.len());
        self.pm.write_u64(chunk + OFF_NEXT, new.offset());
        self.pm.flush(chunk + OFF_NEXT, 8);
        self.pm.fence();
        self.chunks.push(new);
        self.usage.insert(new.offset(), ChunkUsage::default());
        self.tail = new + ENTRY_AREA;
        Ok(())
    }

    /// Decodes the entry at `addr` (the Get path, via the volatile index).
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] if `addr` does not hold a valid entry.
    pub fn read_entry(&self, addr: PmAddr) -> Result<LogEntry, LogError> {
        match LogEntry::decode(&self.pm, addr)? {
            Some((e, _)) if e.op != LogOp::Seal => Ok(e),
            _ => Err(LogError::Corrupt {
                addr: addr.offset(),
            }),
        }
    }

    /// Picks cleaning victims: chunks (never the active tail chunk) whose
    /// live ratio is at most `max_live_ratio`, worst first.
    pub fn victims(&self, max_live_ratio: f64) -> Vec<PmAddr> {
        let tail_chunk = Self::chunk_of(self.tail);
        let mut v: Vec<(PmAddr, f64)> = self
            .usages()
            .filter(|(c, u)| *c != tail_chunk && u.total > 0 && u.live_ratio() <= max_live_ratio)
            .map(|(c, u)| (c, u.live_ratio()))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v.into_iter().map(|(c, _)| c).collect()
    }

    /// Reclaims `victim`: copies the entries `is_live` approves to a fresh
    /// chunk inserted at the chain head, unlinks the victim from the chain,
    /// and returns the relocations. The victim chunk is **not** returned to
    /// the pool — the caller must CAS the volatile index to the new
    /// addresses first and only then call
    /// [`ChunkManager::return_raw_chunk`] (typically after a grace period,
    /// since concurrent readers may still hold pre-CAS entry addresses).
    ///
    /// Crash-safe by ordering: the relocated chunk is fully persisted and
    /// linked before the victim is unlinked, and the victim is unlinked
    /// before its chunk can return to the pool. A crash in between recovers
    /// a superset of live entries; version comparison deduplicates.
    ///
    /// # Errors
    ///
    /// [`LogError::OutOfSpace`] if no relocation chunk is free;
    /// [`LogError::Corrupt`] if `victim` is not a cleanable chunk of this
    /// log.
    pub fn clean_chunk(
        &mut self,
        victim: PmAddr,
        mut is_live: impl FnMut(&LogEntry, PmAddr) -> bool,
    ) -> Result<Vec<Relocation>, LogError> {
        let idx = self
            .chunks
            .iter()
            .position(|c| *c == victim)
            .ok_or(LogError::Corrupt {
                addr: victim.offset(),
            })?;
        if victim == Self::chunk_of(self.tail) {
            return Err(LogError::Corrupt {
                addr: victim.offset(),
            });
        }

        // Collect live entries.
        let mut live = Vec::new();
        let mut pos = victim + ENTRY_AREA;
        let end = PmAddr(victim.offset() + ENTRY_END);
        while pos < end {
            match LogEntry::decode(&self.pm, pos)? {
                None => pos = (pos + 1).align_up(CACHELINE),
                Some((e, _)) if e.op == LogOp::Seal => break,
                Some((e, len)) => {
                    if is_live(&e, pos) {
                        live.push((e, pos));
                    }
                    pos += len as u64;
                }
            }
        }

        let mut relocations = Vec::with_capacity(live.len());
        let old_head = self.chunks[0];
        if live.is_empty() {
            // Nothing to relocate; just unlink and free.
            self.unlink(idx)?;
            self.pm.commit_point();
            return Ok(relocations);
        }

        let target = self.mgr.take_raw_chunk().ok_or(LogError::OutOfSpace)?;
        self.seq += 1;
        self.pm.write_u64(target + OFF_SEQ, self.seq);

        // Encode all live entries into the target chunk.
        self.scratch.clear();
        for (e, old) in &live {
            relocations.push(Relocation {
                old: *old,
                new: target + ENTRY_AREA + self.scratch.len() as u64,
                entry: e.clone(),
            });
            e.encode_into(&mut self.scratch);
        }
        while !self.scratch.len().is_multiple_of(CACHELINE as usize) {
            self.scratch.push(0);
        }
        // Seal the target right after its content so scans stop there.
        let mut seal = Vec::with_capacity(PTR_ENTRY_LEN);
        LogEntry::seal().encode_into(&mut seal);
        self.scratch.extend_from_slice(&seal);
        self.pm.write(target + ENTRY_AREA, &self.scratch);
        self.pm.flush(target + ENTRY_AREA, self.scratch.len());
        // Link target at the chain head.
        self.pm.write_u64(target + OFF_NEXT, old_head.offset());
        self.pm.flush(target + OFF_NEXT, 8);
        self.pm.fence();
        self.pm.write_u64(self.desc + DESC_HEAD, target.offset());
        self.pm.persist(self.desc + DESC_HEAD, 8);

        self.chunks.insert(0, target);
        self.usage.insert(
            target.offset(),
            ChunkUsage {
                total: live.len() as u32,
                dead: 0,
            },
        );

        // Victim moved one position right after the head insert.
        self.unlink(idx + 1)?;
        // Durability point: relocated entries persisted and linked, victim
        // unlinked — the chain is consistent again.
        self.pm.commit_point();
        Ok(relocations)
    }

    /// Unlinks `self.chunks[idx]` from the persistent chain. The chunk's
    /// memory stays valid until the caller returns it to the pool.
    fn unlink(&mut self, idx: usize) -> Result<(), LogError> {
        let victim = self.chunks[idx];
        let next = self.pm.read_u64(victim + OFF_NEXT);
        if idx == 0 {
            self.pm.write_u64(self.desc + DESC_HEAD, next);
            self.pm.persist(self.desc + DESC_HEAD, 8);
        } else {
            let pred = self.chunks[idx - 1];
            self.pm.write_u64(pred + OFF_NEXT, next);
            self.pm.persist(pred + OFF_NEXT, 8);
        }
        self.chunks.remove(idx);
        self.usage.remove(&victim.offset());
        Ok(())
    }

    /// Read-only scan of a log chain straight from its persistent
    /// descriptor, without constructing an [`OpLog`] (and so without
    /// needing the [`ChunkManager`] that owns the live log). Invokes `f`
    /// for every surviving entry at or after `from` (all entries when
    /// `from` is `None`) and returns the persisted tail.
    ///
    /// Used by replication catch-up to ship a quiescent primary's log
    /// suffix past a backup's persisted watermark; the cursor soundness
    /// caveat of [`recover_with_from`](Self::recover_with_from) applies.
    /// Unlike recovery, a torn entry here is an error (`ChecksumMismatch`)
    /// rather than a truncation: the caller's log is supposed to be quiet.
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] on undecodable state or when `from` is not on
    /// the chain; [`LogError::ChecksumMismatch`] on a torn entry.
    pub fn scan_descriptor(
        pm: &PmRegion,
        desc: PmAddr,
        from: Option<PmAddr>,
        mut f: impl FnMut(LogEntry, PmAddr),
    ) -> Result<PmAddr, LogError> {
        let head = PmAddr(pm.read_u64(desc + DESC_HEAD));
        let tail = PmAddr(pm.read_u64(desc + DESC_TAIL));
        if head == PmAddr::NULL {
            return Err(LogError::Corrupt {
                addr: desc.offset(),
            });
        }
        let from_chunk = from.map(Self::chunk_of);
        let mut reached_cursor = from.is_none();
        let mut cur = head;
        loop {
            let end = if tail.offset() >= cur.offset() && tail - cur < CHUNK_SIZE {
                tail
            } else {
                PmAddr(cur.offset() + ENTRY_END)
            };
            let mut pos = cur + ENTRY_AREA;
            if !reached_cursor {
                if Some(cur) == from_chunk {
                    // pmlint: allow(no-unwrap) — from_chunk is Some only
                    // when `from` is (both derive from the same Option).
                    pos = from.expect("cursor present");
                    reached_cursor = true;
                } else {
                    pos = end; // entirely pre-cursor: skip
                }
            }
            while pos < end {
                match LogEntry::decode(pm, pos)? {
                    None => pos = (pos + 1).align_up(CACHELINE),
                    Some((e, _)) if e.op == LogOp::Seal => break,
                    Some((e, len)) => {
                        f(e, pos);
                        pos += len as u64;
                    }
                }
            }
            let next = PmAddr(pm.read_u64(cur + OFF_NEXT));
            if next == PmAddr::NULL {
                break;
            }
            cur = next;
        }
        if !reached_cursor {
            return Err(LogError::Corrupt {
                // pmlint: allow(no-unwrap) — reached_cursor starts false
                // only when `from` is Some (see the initialisation above).
                addr: from.expect("cursor present").offset(),
            });
        }
        Ok(tail)
    }

    /// Scans all surviving entries in chain order (used by tests and the
    /// recovery path of the engine).
    ///
    /// # Errors
    ///
    /// [`LogError::Corrupt`] on undecodable state.
    pub fn scan(&self, mut f: impl FnMut(LogEntry, PmAddr)) -> Result<(), LogError> {
        for &chunk in &self.chunks {
            let end = if Self::chunk_of(self.tail) == chunk {
                self.tail
            } else {
                PmAddr(chunk.offset() + ENTRY_END)
            };
            let mut pos = chunk + ENTRY_AREA;
            while pos < end {
                match LogEntry::decode(&self.pm, pos)? {
                    None => pos = (pos + 1).align_up(CACHELINE),
                    Some((e, _)) if e.op == LogOp::Seal => break,
                    Some((e, len)) => {
                        f(e, pos);
                        pos += len as u64;
                    }
                }
            }
        }
        Ok(())
    }
}
