//! Flush-count regression tests: batching is the whole point of the
//! paper's horizontal batching, so lock in the device-level contract that
//! one batched append of N small entries costs ~ceil(bytes/64) cacheline
//! flushes — not N per-entry flushes — using `PmStats` deltas.

use std::sync::Arc;

use oplog::{LogEntry, OpLog};
use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};

fn fresh_log() -> (Arc<PmRegion>, OpLog) {
    let pm = Arc::new(PmRegion::new(8 * CHUNK_SIZE as usize + CHUNK_SIZE as usize));
    let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(CHUNK_SIZE), 8));
    let log = OpLog::create(mgr, PmAddr(0)).expect("create log");
    (pm, log)
}

/// A 16-byte compacted entry: 13 B header + 3 B inline value.
fn small_entry(key: u64) -> LogEntry {
    LogEntry::put_inline(key, 1, vec![0xAB; 3]).expect("inline entry")
}

#[test]
fn batched_append_flushes_cachelines_not_entries() {
    let (pm, mut log) = fresh_log();
    let entries: Vec<LogEntry> = (0..16).map(small_entry).collect();

    let before = pm.stats().snapshot();
    log.append_batch(&entries).expect("batched append");
    let delta = pm.stats().snapshot().delta(&before);

    // 16 entries x 16 B = 256 B = 4 cachelines, plus the tail-pointer
    // flush: far fewer than one flush per entry.
    assert!(
        delta.flushes < 16,
        "batched append of 16 entries should flush cachelines, not entries \
         (got {} flushes)",
        delta.flushes
    );
    // Entry data (4 lines) + tail pointer (1 line).
    assert_eq!(delta.flushes, 5, "4 data cachelines + 1 tail-pointer flush");
    // One fence for the entry data, one ordering the tail-pointer persist.
    assert_eq!(delta.fences, 2);
}

#[test]
fn singleton_appends_cost_more_flushes_than_one_batch() {
    let (batched_pm, mut batched_log) = fresh_log();
    let (single_pm, mut single_log) = fresh_log();
    let entries: Vec<LogEntry> = (0..16).map(small_entry).collect();

    let before = batched_pm.stats().snapshot();
    batched_log.append_batch(&entries).expect("batched append");
    let batched = batched_pm.stats().snapshot().delta(&before);

    let before = single_pm.stats().snapshot();
    for e in &entries {
        single_log
            .append_batch(std::slice::from_ref(e))
            .expect("singleton append");
    }
    let singles = single_pm.stats().snapshot().delta(&before);

    assert!(
        batched.flushes < singles.flushes,
        "one batch of 16 ({} flushes) must beat 16 singleton appends ({} flushes)",
        batched.flushes,
        singles.flushes
    );
    assert!(
        batched.fences < singles.fences,
        "one batch of 16 ({} fences) must beat 16 singleton appends ({} fences)",
        batched.fences,
        singles.fences
    );
    // Each singleton pays a (padded) data flush + a tail flush.
    assert_eq!(singles.flushes, 32);
}
