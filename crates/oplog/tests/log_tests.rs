//! Integration tests for the operation log: batching arithmetic, padding,
//! chunk rollover, cleaning and crash recovery.

use std::collections::HashMap;
use std::sync::Arc;

use oplog::{LogEntry, LogOp, OpLog, Payload};
use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};

/// Builds a PM layout: descriptors in the first 4 MB, `nchunks` pool chunks
/// after.
fn setup(nchunks: u32, crash: bool) -> (Arc<PmRegion>, Arc<ChunkManager>) {
    let len = (nchunks as usize + 1) * CHUNK_SIZE as usize;
    let pm = if crash {
        Arc::new(PmRegion::with_crash_tracking(len))
    } else {
        Arc::new(PmRegion::new(len))
    };
    let mgr = Arc::new(ChunkManager::format(
        Arc::clone(&pm),
        PmAddr(CHUNK_SIZE),
        nchunks,
    ));
    (pm, mgr)
}

#[test]
fn batch_of_16_ptr_entries_costs_5_flushes_2_fences() {
    let (pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    let entries: Vec<_> = (0..16)
        .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100 * (k + 1))))
        .collect();
    let before = pm.stats().snapshot();
    let addrs = log.append_batch(&entries).unwrap();
    let d = pm.stats().snapshot().delta(&before);
    // 16 × 16 B = 256 B = 4 cachelines, plus the tail pointer's line.
    assert_eq!(d.flushes, 5, "batch flush count");
    assert_eq!(d.fences, 2, "entries fence + tail fence");
    assert_eq!(addrs.len(), 16);
    // The paper's headline arithmetic: same cost as one entry's batch.
    let before = pm.stats().snapshot();
    log.append_batch(&entries[..1]).unwrap();
    let d1 = pm.stats().snapshot().delta(&before);
    assert_eq!(d1.flushes, 2); // 1 line of entry + tail
    assert_eq!(d1.fences, 2);
}

#[test]
fn adjacent_batches_never_share_a_cacheline() {
    let (pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    let mut last_line_end = 0u64;
    for k in 0..50u64 {
        let addrs = log
            .append_batch(&[LogEntry::put_ptr(k, 1, PmAddr(0x100))])
            .unwrap();
        let line = addrs[0].cacheline();
        assert!(
            addrs[0].offset().is_multiple_of(64),
            "batch must start cacheline-aligned"
        );
        assert!(line >= last_line_end, "batches share a cacheline");
        last_line_end = line + 1;
    }
    // No redundant (same-line) flushes on the entry path; the only repeated
    // line is the tail pointer.
    let s = pm.stats().snapshot();
    assert!(s.redundant_flushes == 0);
}

#[test]
fn entries_round_trip_through_read_entry() {
    let (_pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    let e1 = LogEntry::put_inline(7, 3, vec![9u8; 100]).unwrap();
    let e2 = LogEntry::put_ptr(8, 4, PmAddr(CHUNK_SIZE + 0x400));
    let e3 = LogEntry::tombstone(7, 5);
    let addrs = log
        .append_batch(&[e1.clone(), e2.clone(), e3.clone()])
        .unwrap();
    assert_eq!(log.read_entry(addrs[0]).unwrap(), e1);
    assert_eq!(log.read_entry(addrs[1]).unwrap(), e2);
    assert_eq!(log.read_entry(addrs[2]).unwrap(), e3);
}

#[test]
fn chunk_rollover_links_chain() {
    let (_pm, mgr) = setup(6, false);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    // Fill more than one chunk with max-size batches.
    let batch: Vec<_> = (0..1024)
        .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100)))
        .collect();
    let batch_bytes = 1024 * 16;
    let batches_per_chunk = (CHUNK_SIZE as usize - 128) / batch_bytes;
    let mut total = 0u64;
    for _ in 0..(batches_per_chunk + 2) {
        log.append_batch(&batch).unwrap();
        total += batch.len() as u64;
    }
    assert!(log.chunks().len() >= 2, "log should have rolled over");
    let mut seen = 0u64;
    log.scan(|_, _| seen += 1).unwrap();
    assert_eq!(seen, total);
}

#[test]
fn scan_order_preserves_append_order_within_chain() {
    let (_pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    for k in 0..100u64 {
        log.append_batch(&[LogEntry::put_ptr(k, k as u32, PmAddr(0x100))])
            .unwrap();
    }
    let mut keys = Vec::new();
    log.scan(|e, _| keys.push(e.key)).unwrap();
    assert_eq!(keys, (0..100).collect::<Vec<_>>());
}

#[test]
fn recovery_sees_only_persisted_tail() {
    let (pm, mgr) = setup(4, true);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    log.append_batch(&[LogEntry::put_inline(1, 1, vec![1; 8]).unwrap()])
        .unwrap();
    log.append_batch(&[LogEntry::put_inline(2, 1, vec![2; 8]).unwrap()])
        .unwrap();
    // A torn batch: written but the tail pointer was never persisted.
    let tail = log.tail();
    let mut torn = Vec::new();
    LogEntry::put_inline(3, 1, vec![3; 8])
        .unwrap()
        .encode_into(&mut torn);
    pm.write(tail, &torn);
    pm.flush(tail, torn.len());
    pm.fence();
    drop(log);
    pm.simulate_crash();

    let mgr2 = Arc::new(ChunkManager::recover(
        Arc::clone(&pm),
        PmAddr(CHUNK_SIZE),
        4,
    ));
    let mut recovered = Vec::new();
    let log = OpLog::recover_with(mgr2, PmAddr(0), |e, _| recovered.push(e.key)).unwrap();
    assert_eq!(recovered, vec![1, 2], "torn entry must not be replayed");
    assert_eq!(log.tail(), tail);
}

#[test]
fn torn_entry_before_tail_truncates_instead_of_replaying() {
    let (pm, mgr) = setup(4, false);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    log.append_batch(&[
        LogEntry::put_inline(1, 1, vec![1; 8]).unwrap(),
        LogEntry::put_inline(2, 1, vec![2; 8]).unwrap(),
    ])
    .unwrap();
    let addrs = log
        .append_batch(&[LogEntry::put_inline(3, 1, vec![3; 8]).unwrap()])
        .unwrap();
    let torn_at = addrs[0];
    let tail_before = log.tail();
    drop(log);
    // Tear the entry in place: flip one bit of its inline value, as a torn
    // media write (or a partially-shipped replication batch) would.
    let b = pm.read_u8(torn_at + 13);
    pm.write_u8(torn_at + 13, b ^ 0x40);
    pm.persist(torn_at + 13, 1);

    let mut recovered = Vec::new();
    let mut log =
        OpLog::recover_with(Arc::clone(&mgr), PmAddr(0), |e, _| recovered.push(e.key)).unwrap();
    assert_eq!(recovered, vec![1, 2], "torn entry must not be replayed");
    assert!(log.tail() < tail_before, "tail pulled back over the tear");
    assert_eq!(log.tail(), torn_at);

    // The truncated tail is persisted and appendable: a new batch
    // overwrites the garbage and a second recovery converges.
    log.append_batch(&[LogEntry::put_inline(4, 1, vec![4; 8]).unwrap()])
        .unwrap();
    drop(log);
    let mut again = Vec::new();
    OpLog::recover_with(mgr, PmAddr(0), |e, _| again.push(e.key)).unwrap();
    assert_eq!(again, vec![1, 2, 4]);
}

#[test]
fn recovery_after_rollover_walks_all_chunks() {
    let (pm, mgr) = setup(6, true);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    let batch: Vec<_> = (0..512)
        .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100)))
        .collect();
    let mut total = 0u64;
    while log.chunks().len() < 3 {
        log.append_batch(&batch).unwrap();
        total += batch.len() as u64;
    }
    drop(log);
    pm.simulate_crash();
    let mgr2 = Arc::new(ChunkManager::recover(
        Arc::clone(&pm),
        PmAddr(CHUNK_SIZE),
        6,
    ));
    let mut seen = 0u64;
    OpLog::recover_with(mgr2, PmAddr(0), |_, _| seen += 1).unwrap();
    assert_eq!(seen, total);
}

#[test]
fn cleaning_relocates_live_and_frees_the_chunk() {
    let (_pm, mgr) = setup(8, false);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();

    // Simulate an index: key -> (version, addr). Fill over a chunk boundary.
    // Even slots use round-unique keys (they stay live); odd slots reuse the
    // same keys every round (old versions die).
    let mut index: HashMap<u64, (u32, PmAddr)> = HashMap::new();
    let mut version = 1u32;
    let mut round = 0u64;
    while log.chunks().len() < 2 {
        let entries: Vec<_> = (0..512u64)
            .map(|k| {
                let key = if k % 2 == 0 { round * 10_000 + k } else { k };
                LogEntry::put_inline(key, version, vec![k as u8; 40]).unwrap()
            })
            .collect();
        let addrs = log.append_batch(&entries).unwrap();
        for (e, a) in entries.iter().zip(&addrs) {
            if let Some((_, old)) = index.insert(e.key, (version, *a)) {
                log.note_dead(old);
            }
        }
        version += 1;
        round += 1;
    }
    let victim = log.chunks()[0];
    let free_before = mgr.free_chunks();

    let index_ref = index.clone();
    let relocs = log
        .clean_chunk(victim, |e, addr| {
            index_ref
                .get(&e.key)
                .is_some_and(|(v, a)| *v == e.version && *a == addr)
        })
        .unwrap();
    // Dead entries (old versions) were dropped.
    assert!(!relocs.is_empty());
    for r in &relocs {
        let (v, a) = index.get_mut(&r.entry.key).unwrap();
        assert_eq!(*v, r.entry.version);
        assert_eq!(*a, r.old);
        *a = r.new; // CAS the index
        assert_eq!(log.read_entry(r.new).unwrap(), r.entry);
    }
    // The victim is unlinked but not yet pooled: the caller returns it
    // after the index CAS pass (grace-period reclamation).
    assert!(!log.chunks().contains(&victim));
    assert_eq!(mgr.free_chunks(), free_before - 1); // relocation target taken
    mgr.return_raw_chunk(victim).unwrap();
    assert_eq!(mgr.free_chunks(), free_before);

    // Full scan still yields exactly the live set.
    let mut live_seen: HashMap<u64, u32> = HashMap::new();
    log.scan(|e, addr| {
        if index
            .get(&e.key)
            .is_some_and(|(v, a)| *v == e.version && *a == addr)
        {
            live_seen.insert(e.key, e.version);
        }
    })
    .unwrap();
    assert_eq!(live_seen.len(), index.len());
}

#[test]
fn cleaning_empty_victim_just_frees() {
    let (_pm, mgr) = setup(8, false);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    while log.chunks().len() < 2 {
        let entries: Vec<_> = (0..512)
            .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100)))
            .collect();
        log.append_batch(&entries).unwrap();
    }
    let victim = log.chunks()[0];
    let free_before = mgr.free_chunks();
    let relocs = log.clean_chunk(victim, |_, _| false).unwrap();
    assert!(relocs.is_empty());
    mgr.return_raw_chunk(victim).unwrap();
    assert_eq!(mgr.free_chunks(), free_before + 1);
}

#[test]
fn cleaning_the_tail_chunk_is_refused() {
    let (_pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    log.append_batch(&[LogEntry::put_ptr(1, 1, PmAddr(0x100))])
        .unwrap();
    let tail_chunk = log.chunks()[0];
    assert!(log.clean_chunk(tail_chunk, |_, _| true).is_err());
}

#[test]
fn usage_accounting_tracks_dead_entries() {
    let (_pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    let addrs = log
        .append_batch(&[
            LogEntry::put_ptr(1, 1, PmAddr(0x100)),
            LogEntry::put_ptr(2, 1, PmAddr(0x200)),
        ])
        .unwrap();
    log.note_dead(addrs[0]);
    let (_, usage) = log.usages().next().unwrap();
    assert_eq!(usage.total, 2);
    assert_eq!(usage.dead, 1);
    assert_eq!(usage.live(), 1);
    assert!((usage.live_ratio() - 0.5).abs() < 1e-9);
}

#[test]
fn victims_exclude_tail_and_respect_threshold() {
    let (_pm, mgr) = setup(8, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    let mut first_chunk_addrs = Vec::new();
    while log.chunks().len() < 2 {
        let entries: Vec<_> = (0..256)
            .map(|k| LogEntry::put_ptr(k, 1, PmAddr(0x100)))
            .collect();
        let addrs = log.append_batch(&entries).unwrap();
        if log.chunks().len() == 1 {
            first_chunk_addrs.extend(addrs);
        }
    }
    assert!(log.victims(0.5).is_empty(), "everything is live");
    // Kill 80 % of the first chunk.
    let kill = first_chunk_addrs.len() * 4 / 5;
    for a in &first_chunk_addrs[..kill] {
        log.note_dead(*a);
    }
    let victims = log.victims(0.5);
    assert_eq!(victims, vec![log.chunks()[0]]);
}

#[test]
fn tombstones_survive_the_log_round_trip() {
    let (pm, mgr) = setup(4, true);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    log.append_batch(&[
        LogEntry::put_inline(5, 1, vec![1; 10]).unwrap(),
        LogEntry::tombstone(5, 2),
    ])
    .unwrap();
    drop(log);
    pm.simulate_crash();
    let mgr2 = Arc::new(ChunkManager::recover(
        Arc::clone(&pm),
        PmAddr(CHUNK_SIZE),
        4,
    ));
    let mut ops = Vec::new();
    OpLog::recover_with(mgr2, PmAddr(0), |e, _| ops.push((e.op, e.key, e.version))).unwrap();
    assert_eq!(ops, vec![(LogOp::Put, 5, 1), (LogOp::Delete, 5, 2)]);
}

#[test]
fn inline_payload_contents_preserved_across_crash() {
    let (pm, mgr) = setup(4, true);
    let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    let value: Vec<u8> = (0..=255).collect();
    log.append_batch(&[LogEntry::put_inline(9, 1, value.clone()).unwrap()])
        .unwrap();
    drop(log);
    pm.simulate_crash();
    let mgr2 = Arc::new(ChunkManager::recover(
        Arc::clone(&pm),
        PmAddr(CHUNK_SIZE),
        4,
    ));
    let mut got = None;
    OpLog::recover_with(mgr2, PmAddr(0), |e, _| {
        if let Payload::Inline(v) = &e.payload {
            got = Some(v.clone());
        }
    })
    .unwrap();
    assert_eq!(got.as_deref(), Some(&value[..]));
}

#[test]
fn padding_off_packs_batches_but_scan_still_works() {
    let (pm, mgr) = setup(4, false);
    let mut log = OpLog::create(mgr, PmAddr(0)).unwrap();
    log.set_batch_padding(false);
    let mut n = 0u64;
    for k in 0..40u64 {
        log.append_batch(&[LogEntry::put_ptr(k, 1, PmAddr(0x100))])
            .unwrap();
        n += 1;
    }
    // Without padding, consecutive 16 B batches share cachelines: the
    // second batch in a line re-flushes it (redundant-flush counter is 0
    // only because the line was re-dirtied; instead verify density).
    let span = log.tail().offset() - (log.chunks()[0].offset() + 64);
    assert_eq!(span, n * 16, "entries must be back-to-back");
    let mut seen = 0;
    log.scan(|_, _| seen += 1).unwrap();
    assert_eq!(seen, n);
    let _ = pm;
}

#[test]
fn padding_on_spends_more_space_than_padding_off() {
    let (_pm, mgr) = setup(8, false);
    let mut padded = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();
    let mut packed = OpLog::create(Arc::clone(&mgr), PmAddr(64)).unwrap();
    packed.set_batch_padding(false);
    for k in 0..32u64 {
        let e = [LogEntry::put_ptr(k, 1, PmAddr(0x100))];
        padded.append_batch(&e).unwrap();
        packed.append_batch(&e).unwrap();
    }
    let used = |l: &OpLog| l.tail().offset() % pmalloc::CHUNK_SIZE - 64;
    assert!(used(&padded) > used(&packed));
    assert_eq!(used(&padded), 32 * 64, "one cacheline per padded batch");
}
