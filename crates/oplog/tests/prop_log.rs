//! Property test: arbitrary batched workloads survive crash + recovery with
//! exactly the persisted prefix, and version-max replay equals a model map.

use std::collections::HashMap;
use std::sync::Arc;

use oplog::{LogEntry, LogOp, OpLog, Payload};
use pmalloc::{ChunkManager, CHUNK_SIZE};
use pmem::{PmAddr, PmRegion};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Cmd {
    Put { key: u64, val_len: usize },
    Del { key: u64 },
}

fn cmds() -> impl Strategy<Value = Vec<Vec<Cmd>>> {
    let cmd = prop_oneof![
        (0u64..40, 1usize..200).prop_map(|(key, val_len)| Cmd::Put { key, val_len }),
        (0u64..40).prop_map(|key| Cmd::Del { key }),
    ];
    prop::collection::vec(prop::collection::vec(cmd, 1..20), 1..30)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn replay_after_crash_matches_model(batches in cmds()) {
        let pm = Arc::new(PmRegion::with_crash_tracking(5 * CHUNK_SIZE as usize));
        let mgr = Arc::new(ChunkManager::format(Arc::clone(&pm), PmAddr(CHUNK_SIZE), 4));
        let mut log = OpLog::create(Arc::clone(&mgr), PmAddr(0)).unwrap();

        // Model: key -> Option<(version, value)>; None = deleted.
        let mut model: HashMap<u64, Option<(u32, Vec<u8>)>> = HashMap::new();
        let mut next_version: HashMap<u64, u32> = HashMap::new();

        for batch in &batches {
            let entries: Vec<LogEntry> = batch.iter().map(|c| match c {
                Cmd::Put { key, val_len } => {
                    let v = next_version.entry(*key).or_insert(0);
                    *v += 1;
                    let value = vec![(*key as u8).wrapping_add(*val_len as u8); *val_len];
                    model.insert(*key, Some((*v, value.clone())));
                    LogEntry::put_inline(*key, *v, value).unwrap()
                }
                Cmd::Del { key } => {
                    let v = next_version.entry(*key).or_insert(0);
                    *v += 1;
                    model.insert(*key, None);
                    LogEntry::tombstone(*key, *v)
                }
            }).collect();
            log.append_batch(&entries).unwrap();
        }
        drop(log);
        pm.simulate_crash();

        let mgr2 = Arc::new(ChunkManager::recover(Arc::clone(&pm), PmAddr(CHUNK_SIZE), 4));
        let mut replay: HashMap<u64, (u32, Option<Vec<u8>>)> = HashMap::new();
        OpLog::recover_with(mgr2, PmAddr(0), |e, _| {
            let newer = replay.get(&e.key).is_none_or(|(v, _)| e.version >= *v);
            if newer {
                let val = match (&e.op, &e.payload) {
                    (LogOp::Delete, _) => None,
                    (_, Payload::Inline(v)) => Some(v.clone()),
                    _ => None,
                };
                replay.insert(e.key, (e.version, val));
            }
        }).unwrap();

        for (key, state) in &model {
            match state {
                Some((ver, value)) => {
                    let (rv, rval) = replay.get(key).expect("live key lost by recovery");
                    prop_assert_eq!(rv, ver);
                    prop_assert_eq!(rval.as_ref(), Some(value));
                }
                None => {
                    // Deleted: replay must end on the tombstone.
                    if let Some((_, rval)) = replay.get(key) {
                        prop_assert!(rval.is_none(), "deleted key resurrected");
                    }
                }
            }
        }
    }
}
