//! The simulated persistent-memory region.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::addr::{PmAddr, CACHELINE};
use crate::stats::PmStats;
use crate::trace::PmEvent;

/// A zeroed, manually managed byte buffer.
struct RawBuf {
    ptr: *mut u8,
    layout: Layout,
}

impl RawBuf {
    fn new(len: usize) -> Self {
        assert!(len > 0, "PM region must be non-empty");
        // pmlint: allow(no-unwrap) — len > 0 asserted above and 64 is a valid
        // power-of-two alignment, so the layout is always constructible.
        let layout = Layout::from_size_align(len, CACHELINE as usize).expect("layout");
        // SAFETY: layout has non-zero size.
        let ptr = unsafe { alloc_zeroed(layout) };
        assert!(!ptr.is_null(), "PM region allocation failed");
        RawBuf { ptr, layout }
    }
}

impl Drop for RawBuf {
    fn drop(&mut self) {
        // SAFETY: allocated with this exact layout in `new`.
        unsafe { dealloc(self.ptr, self.layout) }
    }
}

// SAFETY: access discipline is enforced by callers (each byte range is owned
// by a single writer at a time); see the `PmRegion` docs.
unsafe impl Send for RawBuf {}
// SAFETY: same caller-enforced single-writer-per-range discipline as `Send`.
unsafe impl Sync for RawBuf {}

/// A simulated persistent-memory device.
///
/// The region models the two-level persistence hierarchy of real PM:
///
/// * **Live buffer** — what loads observe; plays the role of "CPU cache
///   merged with media". All [`write`](Self::write)s go here immediately.
/// * **Shadow buffer** (only with [`with_crash_tracking`](Self::with_crash_tracking)) —
///   what has actually reached the persistence domain. A cacheline is copied
///   to the shadow only when it is [`flush`](Self::flush)ed.
///   [`simulate_crash`](Self::simulate_crash) replaces the live contents with
///   the shadow, losing every un-flushed write — the failure mode a
///   PM data structure must survive.
///
/// # Concurrency discipline
///
/// `PmRegion` is `Send + Sync` and all methods take `&self`, mirroring raw
/// memory. Like raw memory, it does **not** serialize concurrent writers:
/// callers must ensure that a given byte range has at most one writer at a
/// time (FlatStore partitions PM per server core, so this holds by
/// construction). Concurrent reads of ranges being written may observe torn
/// data, exactly as on hardware; PM data structures are designed to tolerate
/// or exclude that.
///
/// # Addresses
///
/// All addresses are byte offsets ([`PmAddr`]) so that pointers stored inside
/// the region remain valid across "reboots" (re-instantiations from the same
/// backing state).
pub struct PmRegion {
    buf: RawBuf,
    shadow: Option<RawBuf>,
    /// One bit per cacheline: written since last flush.
    dirty: Vec<AtomicU64>,
    /// Strict-fence mode: lines flushed but not yet fenced, with the line
    /// contents captured at flush time. On a crash each survives only with
    /// probability ½ (seeded) — `clwb` alone does not order persistence.
    strict: Option<Mutex<StrictFence>>,
    len: usize,
    stats: PmStats,
    trace_on: AtomicBool,
    trace: Mutex<Vec<PmEvent>>,
    commit_epoch: AtomicU64,
}

struct StrictFence {
    pending: Vec<(u64, [u8; CACHELINE as usize])>,
    rng: u64,
}

impl std::fmt::Debug for PmRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PmRegion")
            .field("len", &self.len)
            .field("crash_tracking", &self.shadow.is_some())
            .field("stats", &self.stats.snapshot())
            .finish()
    }
}

impl PmRegion {
    /// Creates a region of `len` bytes without crash tracking (half the
    /// memory cost; `simulate_crash` is unavailable).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a multiple of the cacheline size (64).
    pub fn new(len: usize) -> Self {
        Self::build(len, false)
    }

    /// Creates a region of `len` bytes with a shadow copy tracking flushed
    /// state, enabling [`simulate_crash`](Self::simulate_crash).
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a multiple of the cacheline size (64).
    pub fn with_crash_tracking(len: usize) -> Self {
        Self::build(len, true)
    }

    /// Like [`with_crash_tracking`](Self::with_crash_tracking), but with
    /// **strict fence semantics**: a flushed cacheline only becomes part of
    /// the persisted state at the next [`fence`](Self::fence); on a crash,
    /// flushed-but-unfenced lines survive with probability ½ (deterministic
    /// per `seed`). Use this to catch code that flushes without fencing.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or not a multiple of the cacheline size (64).
    pub fn with_strict_fences(len: usize, seed: u64) -> Self {
        let mut r = Self::build(len, true);
        r.strict = Some(Mutex::new(StrictFence {
            pending: Vec::new(),
            rng: seed | 1,
        }));
        r
    }

    fn build(len: usize, crash: bool) -> Self {
        assert!(len > 0, "PM region must be non-empty");
        assert_eq!(
            len as u64 % CACHELINE,
            0,
            "PM region length must be a multiple of the 64 B cacheline"
        );
        let lines = len as u64 / CACHELINE;
        let words = lines.div_ceil(64) as usize;
        let mut dirty = Vec::with_capacity(words);
        dirty.resize_with(words, || AtomicU64::new(0));
        PmRegion {
            buf: RawBuf::new(len),
            shadow: crash.then(|| RawBuf::new(len)),
            dirty,
            strict: None,
            len,
            stats: PmStats::new(),
            trace_on: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
            commit_epoch: AtomicU64::new(0),
        }
    }

    /// Region size in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Always `false`; regions are non-empty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether this region was built with crash tracking.
    pub fn crash_tracking(&self) -> bool {
        self.shadow.is_some()
    }

    /// Persistence-operation counters for this region.
    pub fn stats(&self) -> &PmStats {
        &self.stats
    }

    #[inline]
    fn check(&self, addr: PmAddr, len: usize) {
        let end = addr
            .offset()
            .checked_add(len as u64)
            // pmlint: allow(no-unwrap) — deliberate loud death: an offset
            // overflow is a caller bug the bounds assert below cannot name.
            .expect("PM address overflow");
        assert!(
            end <= self.len as u64,
            "PM access out of bounds: {addr} + {len} > {}",
            self.len
        );
    }

    #[inline]
    fn mark_dirty(&self, addr: PmAddr, len: usize) {
        if len == 0 {
            return;
        }
        let first = addr.cacheline();
        let last = (addr + (len as u64 - 1)).cacheline();
        for line in first..=last {
            let word = (line / 64) as usize;
            let bit = line % 64;
            self.dirty[word].fetch_or(1 << bit, Ordering::Relaxed);
        }
    }

    #[inline]
    fn trace_event(&self, ev: PmEvent) {
        if self.trace_on.load(Ordering::Relaxed) {
            self.trace.lock().push(ev);
        }
    }

    /// Stores `src` at `addr`. The data is volatile until flushed and fenced.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    #[inline]
    pub fn write(&self, addr: PmAddr, src: &[u8]) {
        self.check(addr, src.len());
        // SAFETY: bounds checked; caller upholds the single-writer discipline.
        unsafe {
            std::ptr::copy_nonoverlapping(
                src.as_ptr(),
                self.buf.ptr.add(addr.offset() as usize),
                src.len(),
            );
        }
        self.mark_dirty(addr, src.len());
        self.stats.record_write(src.len() as u64);
        self.trace_event(PmEvent::Write {
            addr: addr.offset(),
            len: src.len() as u32,
        });
    }

    /// Stores a little-endian `u64` at `addr` (need not be aligned).
    pub fn write_u64(&self, addr: PmAddr, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Stores a single byte at `addr`.
    pub fn write_u8(&self, addr: PmAddr, v: u8) {
        self.write(addr, &[v]);
    }

    /// Fills `len` bytes at `addr` with `byte`.
    pub fn fill(&self, addr: PmAddr, len: usize, byte: u8) {
        self.check(addr, len);
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::write_bytes(self.buf.ptr.add(addr.offset() as usize), byte, len);
        }
        self.mark_dirty(addr, len);
        self.stats.record_write(len as u64);
        self.trace_event(PmEvent::Write {
            addr: addr.offset(),
            len: len as u32,
        });
    }

    /// Loads `dst.len()` bytes from `addr` into `dst`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the region.
    #[inline]
    pub fn read(&self, addr: PmAddr, dst: &mut [u8]) {
        self.check(addr, dst.len());
        // SAFETY: bounds checked.
        unsafe {
            std::ptr::copy_nonoverlapping(
                self.buf.ptr.add(addr.offset() as usize),
                dst.as_mut_ptr(),
                dst.len(),
            );
        }
        self.stats.record_read(dst.len() as u64);
        self.trace_event(PmEvent::Read {
            addr: addr.offset(),
            len: dst.len() as u32,
        });
    }

    /// Loads a little-endian `u64` from `addr`.
    pub fn read_u64(&self, addr: PmAddr) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Loads a single byte from `addr`.
    pub fn read_u8(&self, addr: PmAddr) -> u8 {
        let mut b = [0u8; 1];
        self.read(addr, &mut b);
        b[0]
    }

    /// Loads `len` bytes from `addr` into a fresh `Vec`.
    pub fn read_vec(&self, addr: PmAddr, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Flushes every cacheline overlapping `[addr, addr+len)` (`clwb`).
    ///
    /// With crash tracking, the flushed lines become part of the persisted
    /// (shadow) state. Flushing a clean line is counted as a *redundant
    /// flush* in [`PmStats`].
    pub fn flush(&self, addr: PmAddr, len: usize) {
        if len == 0 {
            return;
        }
        self.check(addr, len);
        let first = addr.cacheline();
        let last = (addr + (len as u64 - 1)).cacheline();
        for line in first..=last {
            self.flush_line(line);
        }
    }

    fn flush_line(&self, line: u64) {
        let word = (line / 64) as usize;
        let bit = 1u64 << (line % 64);
        let prev = self.dirty[word].fetch_and(!bit, Ordering::Relaxed);
        let was_dirty = prev & bit != 0;
        self.stats.record_flush(!was_dirty);
        if let Some(strict) = &self.strict {
            // Capture the line now; it reaches the shadow at the fence.
            let mut buf = [0u8; CACHELINE as usize];
            let off = (line * CACHELINE) as usize;
            // SAFETY: line is in bounds (derived from a checked range).
            unsafe {
                std::ptr::copy_nonoverlapping(self.buf.ptr.add(off), buf.as_mut_ptr(), buf.len());
            }
            strict.lock().pending.push((line, buf));
        } else if let Some(shadow) = &self.shadow {
            let off = (line * CACHELINE) as usize;
            // SAFETY: line is in bounds (derived from a checked range).
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.buf.ptr.add(off),
                    shadow.ptr.add(off),
                    CACHELINE as usize,
                );
            }
        }
        self.trace_event(PmEvent::Flush { line });
    }

    fn commit_pending(&self, pending: &mut Vec<(u64, [u8; CACHELINE as usize])>) {
        let Some(shadow) = &self.shadow else { return };
        for (line, bytes) in pending.drain(..) {
            let off = (line * CACHELINE) as usize;
            // SAFETY: captured from a bounds-checked line.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), shadow.ptr.add(off), bytes.len());
            }
        }
    }

    /// Issues an ordering fence (`sfence`). In strict-fence mode this is
    /// the moment flushed lines join the persisted state.
    pub fn fence(&self) {
        if let Some(strict) = &self.strict {
            self.commit_pending(&mut strict.lock().pending);
        }
        self.stats.record_fence();
        self.trace_event(PmEvent::Fence);
    }

    /// Convenience: `flush(addr, len)` followed by `fence()`.
    pub fn persist(&self, addr: PmAddr, len: usize) {
        self.flush(addr, len);
        self.fence();
    }

    /// Marks a **durability commit point**: the caller asserts that every
    /// store it issued so far has been flushed and fenced. The operation
    /// log places one after persisting its tail pointer, and the engine
    /// after publishing a checkpoint or clean-shutdown superblock.
    ///
    /// With tracing enabled this emits [`PmEvent::CommitPoint`] carrying a
    /// monotonically increasing epoch, which `pmcheck` replays to verify
    /// the claim. Without tracing the call is a no-op, so production hot
    /// paths pay nothing.
    pub fn commit_point(&self) {
        if self.trace_on.load(Ordering::Relaxed) {
            let epoch = self.commit_epoch.fetch_add(1, Ordering::Relaxed) + 1;
            self.trace.lock().push(PmEvent::CommitPoint { epoch });
        }
    }

    /// Is the cacheline containing `addr` dirty (written but not flushed)?
    pub fn is_dirty(&self, addr: PmAddr) -> bool {
        self.check(addr, 1);
        let line = addr.cacheline();
        let word = (line / 64) as usize;
        self.dirty[word].load(Ordering::Relaxed) & (1 << (line % 64)) != 0
    }

    /// Simulates a power failure: every write that was not flushed is lost,
    /// and the region's contents revert to the last flushed state.
    ///
    /// The caller must ensure no other thread is accessing the region (a
    /// crashed machine has no running threads).
    ///
    /// # Panics
    ///
    /// Panics if the region was not created with
    /// [`with_crash_tracking`](Self::with_crash_tracking).
    pub fn simulate_crash(&self) {
        let shadow = self
            .shadow
            .as_ref()
            // pmlint: allow(no-unwrap) — documented panic contract of this
            // test-oriented API (see the doc comment above).
            .expect("simulate_crash requires a region built with_crash_tracking");
        if let Some(strict) = &self.strict {
            // Flushed-but-unfenced lines race the power failure: each one
            // survives with probability ½ (seeded xorshift).
            let mut st = strict.lock();
            let pending = std::mem::take(&mut st.pending);
            let mut state = st.rng;
            let mut keep = Vec::new();
            for (line, bytes) in pending {
                // splitmix64: well-mixed low bits even for tiny seeds.
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                if z & 1 == 1 {
                    keep.push((line, bytes));
                }
            }
            st.rng = state;
            drop(st);
            self.commit_pending(&mut keep);
        }
        // SAFETY: both buffers are `len` bytes; quiescence is a documented
        // caller obligation.
        unsafe {
            std::ptr::copy_nonoverlapping(shadow.ptr, self.buf.ptr, self.len);
        }
        for w in &self.dirty {
            w.store(0, Ordering::Relaxed);
        }
    }

    /// Writes the **persisted** state (what a crash would preserve) to a
    /// file, making the simulated PM durable across processes.
    ///
    /// Regions without crash tracking save their live contents (everything
    /// is considered persisted).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        use std::io::Write;
        let src = self.shadow.as_ref().unwrap_or(&self.buf);
        // SAFETY: the buffer is `len` initialized bytes.
        let bytes = unsafe { std::slice::from_raw_parts(src.ptr, self.len) };
        let mut f = std::fs::File::create(path)?;
        f.write_all(&(self.len as u64).to_le_bytes())?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    /// Loads a region previously written by [`save`](Self::save).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; rejects truncated or oversized images.
    pub fn load(path: &std::path::Path, crash_tracking: bool) -> std::io::Result<PmRegion> {
        use std::io::Read;
        let mut f = std::fs::File::open(path)?;
        let mut hdr = [0u8; 8];
        f.read_exact(&mut hdr)?;
        let len = u64::from_le_bytes(hdr) as usize;
        if len == 0 || !len.is_multiple_of(CACHELINE as usize) {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bad PM image length",
            ));
        }
        let region = if crash_tracking {
            PmRegion::with_crash_tracking(len)
        } else {
            PmRegion::new(len)
        };
        // SAFETY: freshly allocated `len`-byte buffer.
        let live = unsafe { std::slice::from_raw_parts_mut(region.buf.ptr, len) };
        f.read_exact(live)?;
        if let Some(shadow) = &region.shadow {
            // The loaded contents are the persisted state.
            // SAFETY: same length allocation.
            unsafe { std::ptr::copy_nonoverlapping(region.buf.ptr, shadow.ptr, len) };
        }
        Ok(region)
    }

    /// Enables or disables event tracing (see [`PmEvent`]).
    pub fn set_trace(&self, on: bool) {
        self.trace_on.store(on, Ordering::Relaxed);
    }

    /// Drains and returns the events recorded since the last call.
    pub fn take_events(&self) -> Vec<PmEvent> {
        std::mem::take(&mut *self.trace.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::XPLINE;

    #[test]
    fn write_read_round_trip() {
        let pm = PmRegion::new(4096);
        pm.write(PmAddr(100), b"flatstore");
        let mut buf = [0u8; 9];
        pm.read(PmAddr(100), &mut buf);
        assert_eq!(&buf, b"flatstore");
        assert_eq!(pm.read_u8(PmAddr(100)), b'f');
    }

    #[test]
    fn u64_round_trip_unaligned() {
        let pm = PmRegion::new(4096);
        pm.write_u64(PmAddr(13), 0xdead_beef_cafe_f00d);
        assert_eq!(pm.read_u64(PmAddr(13)), 0xdead_beef_cafe_f00d);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let pm = PmRegion::new(128);
        pm.write(PmAddr(120), &[0u8; 16]);
    }

    #[test]
    #[should_panic(expected = "multiple of the 64")]
    fn unaligned_len_panics() {
        let _ = PmRegion::new(100);
    }

    #[test]
    fn crash_loses_unflushed_data() {
        let pm = PmRegion::with_crash_tracking(4096);
        pm.write(PmAddr(0), b"persisted");
        pm.persist(PmAddr(0), 9);
        pm.write(PmAddr(64), b"volatile!");
        pm.simulate_crash();
        assert_eq!(pm.read_vec(PmAddr(0), 9), b"persisted");
        assert_eq!(pm.read_vec(PmAddr(64), 9), vec![0u8; 9]);
    }

    #[test]
    fn crash_is_cacheline_granular() {
        let pm = PmRegion::with_crash_tracking(4096);
        // Two values on the same cacheline: flushing one persists both
        // (cacheline granularity), exactly like hardware.
        pm.write(PmAddr(0), b"aaaa");
        pm.write(PmAddr(32), b"bbbb");
        pm.persist(PmAddr(0), 4);
        pm.simulate_crash();
        assert_eq!(pm.read_vec(PmAddr(32), 4), b"bbbb");
    }

    #[test]
    fn flush_clears_dirty_and_counts_redundant() {
        let pm = PmRegion::new(4096);
        pm.write(PmAddr(0), &[1u8; 64]);
        assert!(pm.is_dirty(PmAddr(0)));
        pm.flush(PmAddr(0), 64);
        assert!(!pm.is_dirty(PmAddr(0)));
        let before = pm.stats().snapshot();
        pm.flush(PmAddr(0), 64); // redundant
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.redundant_flushes, 1);
    }

    #[test]
    fn flush_spans_cachelines() {
        let pm = PmRegion::new(4096);
        pm.write(PmAddr(60), &[7u8; 8]); // straddles lines 0 and 1
        let before = pm.stats().snapshot();
        pm.flush(PmAddr(60), 8);
        let d = pm.stats().snapshot().delta(&before);
        assert_eq!(d.flushes, 2);
        assert_eq!(d.redundant_flushes, 0);
    }

    #[test]
    fn trace_records_events_in_order() {
        let pm = PmRegion::new(4096);
        pm.set_trace(true);
        pm.write(PmAddr(XPLINE), &[1u8; 16]);
        pm.persist(PmAddr(XPLINE), 16);
        let ev = pm.take_events();
        assert_eq!(
            ev,
            vec![
                PmEvent::Write { addr: 256, len: 16 },
                PmEvent::Flush { line: 4 },
                PmEvent::Fence,
            ]
        );
        assert!(pm.take_events().is_empty());
        pm.set_trace(false);
        pm.write(PmAddr(0), &[0u8; 1]);
        assert!(pm.take_events().is_empty());
    }

    #[test]
    fn commit_points_trace_with_increasing_epochs() {
        let pm = PmRegion::new(4096);
        pm.commit_point(); // tracing off: no event, no epoch consumed
        pm.set_trace(true);
        pm.write(PmAddr(0), b"x");
        pm.persist(PmAddr(0), 1);
        pm.commit_point();
        pm.commit_point();
        let ev = pm.take_events();
        assert_eq!(
            ev,
            vec![
                PmEvent::Write { addr: 0, len: 1 },
                PmEvent::Flush { line: 0 },
                PmEvent::Fence,
                PmEvent::CommitPoint { epoch: 1 },
                PmEvent::CommitPoint { epoch: 2 },
            ]
        );
    }

    #[test]
    fn fill_marks_dirty() {
        let pm = PmRegion::with_crash_tracking(4096);
        pm.fill(PmAddr(128), 64, 0xAB);
        assert!(pm.is_dirty(PmAddr(128)));
        pm.persist(PmAddr(128), 64);
        pm.simulate_crash();
        assert_eq!(pm.read_vec(PmAddr(128), 64), vec![0xAB; 64]);
    }

    #[test]
    fn strict_fences_gate_persistence() {
        let pm = PmRegion::with_strict_fences(4096, 7);
        pm.write(PmAddr(0), b"fenced!!");
        pm.flush(PmAddr(0), 8);
        pm.fence();
        // Flushed but never fenced: only probabilistically durable.
        pm.write(PmAddr(1024), b"unfenced");
        pm.flush(PmAddr(1024), 8);
        pm.simulate_crash();
        assert_eq!(pm.read_vec(PmAddr(0), 8), b"fenced!!");
        let survived = pm.read_vec(PmAddr(1024), 8);
        assert!(
            survived == b"unfenced".to_vec() || survived == vec![0u8; 8],
            "unfenced line must be all-or-nothing"
        );
    }

    #[test]
    fn strict_fences_eventually_drop_an_unfenced_line() {
        // Across seeds, at least one crash must lose an unfenced line —
        // proving the mode actually injects the failure.
        let mut dropped = false;
        for seed in 0..16u64 {
            let pm = PmRegion::with_strict_fences(4096, seed);
            pm.write(PmAddr(0), b"x");
            pm.flush(PmAddr(0), 1);
            pm.simulate_crash();
            if pm.read_u8(PmAddr(0)) == 0 {
                dropped = true;
            }
        }
        assert!(dropped, "no seed ever dropped an unfenced flush");
    }

    #[test]
    fn save_and_load_preserve_persisted_state_only() {
        let dir = std::env::temp_dir().join(format!("pmem-save-{}", std::process::id()));
        let pm = PmRegion::with_crash_tracking(4096);
        pm.write(PmAddr(0), b"durable");
        pm.persist(PmAddr(0), 7);
        pm.write(PmAddr(64), b"volatile");
        pm.save(&dir).unwrap();

        let back = PmRegion::load(&dir, true).unwrap();
        assert_eq!(back.len(), 4096);
        assert_eq!(back.read_vec(PmAddr(0), 7), b"durable");
        // The unflushed write never reached the persisted state.
        assert_eq!(back.read_vec(PmAddr(64), 8), vec![0u8; 8]);
        // Crash tracking works on the loaded region too.
        back.write(PmAddr(128), b"new");
        back.simulate_crash();
        assert_eq!(back.read_vec(PmAddr(128), 3), vec![0u8; 3]);
        assert_eq!(back.read_vec(PmAddr(0), 7), b"durable");
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn load_rejects_garbage_images() {
        let dir = std::env::temp_dir().join(format!("pmem-bad-{}", std::process::id()));
        std::fs::write(&dir, [9u8; 8]).unwrap(); // absurd length header
        assert!(PmRegion::load(&dir, false).is_err());
        std::fs::remove_file(&dir).unwrap();
    }

    #[test]
    fn concurrent_disjoint_writers() {
        use std::sync::Arc;
        let pm = Arc::new(PmRegion::new(64 * 1024));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let pm = Arc::clone(&pm);
            handles.push(std::thread::spawn(move || {
                let base = PmAddr(t * 16 * 1024);
                for i in 0..100u64 {
                    pm.write_u64(base + i * 8, t * 1000 + i);
                }
                pm.persist(base, 800);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for t in 0..4u64 {
            let base = PmAddr(t * 16 * 1024);
            for i in 0..100u64 {
                assert_eq!(pm.read_u64(base + i * 8), t * 1000 + i);
            }
        }
    }
}
