//! Simulated byte-addressable persistent memory.
//!
//! This crate is the hardware substrate of the FlatStore reproduction. It
//! models an Intel Optane DC Persistent Memory module closely enough that the
//! persistence-critical logic of a PM key-value store — flush placement,
//! fence ordering, cacheline alignment, batching and crash recovery — can be
//! implemented and validated without the physical device:
//!
//! * [`PmRegion`] is a byte-addressable region with explicit [`flush`] /
//!   [`fence`] operations mirroring `clwb` / `sfence`. Writes land in a
//!   volatile "CPU cache" (the live buffer); with crash tracking enabled, a
//!   shadow copy holds only the flushed state, and [`PmRegion::simulate_crash`]
//!   discards everything that was never flushed — exactly the data loss a
//!   power failure causes on real hardware.
//! * [`PmStats`] counts every write, flush and fence so tests and benchmarks
//!   can assert on the *number of persistence operations*, the quantity the
//!   FlatStore paper optimizes.
//! * [`cost`] provides a discrete-event cost model of the device calibrated
//!   to the paper's Figure 1 measurements: 64 B cacheline flush granularity,
//!   256 B internal XPLine write granularity with a small write-combining
//!   buffer, a shared (non-scalable) media bandwidth server, and the ~800 ns
//!   stall on repeated flushes to the same cacheline.
//!
//! [`flush`]: PmRegion::flush
//! [`fence`]: PmRegion::fence
//!
//! # Example
//!
//! ```
//! use pmem::{PmRegion, PmAddr};
//!
//! let pm = PmRegion::with_crash_tracking(1 << 20);
//! pm.write(PmAddr(0), b"hello");
//! // Not yet flushed: a crash would lose it.
//! pm.simulate_crash();
//! let mut buf = [0u8; 5];
//! pm.read(PmAddr(0), &mut buf);
//! assert_eq!(&buf, b"\0\0\0\0\0");
//!
//! pm.write(PmAddr(0), b"hello");
//! pm.persist(PmAddr(0), 5); // flush + fence
//! pm.simulate_crash();
//! pm.read(PmAddr(0), &mut buf);
//! assert_eq!(&buf, b"hello");
//! ```

mod addr;
pub mod cost;
mod region;
mod stats;
mod trace;

pub use addr::{PmAddr, CACHELINE, XPLINE};
pub use region::PmRegion;
pub use stats::{PmStats, PmStatsSnapshot, REDUNDANT_FLUSH_BUDGET};
pub use trace::PmEvent;
