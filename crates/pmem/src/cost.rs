//! Discrete-event cost model of an Optane-like persistent-memory device.
//!
//! The model reproduces the four empirical behaviours of Intel Optane DCPMM
//! that the FlatStore paper's design responds to (paper §2.3, Figure 1):
//!
//! 1. **Coarse internal write granularity.** Media writes happen in 256 B
//!    XPLine blocks; flushing a single dirty cacheline still occupies the
//!    media for a full block. A small write-combining buffer
//!    ([`CostParams::xpbuffer_blocks`]) merges flushes that hit a block which
//!    is still buffered — this is why batching 16 compacted log entries into
//!    one block costs the same as persisting a single entry.
//! 2. **Non-scalable write bandwidth.** All media writes serialize through a
//!    single bandwidth server (`media_free_at`), so adding threads stops
//!    helping once the device saturates.
//! 3. **Sequential ≈ random under high concurrency.** A sequential stream
//!    gets a cheaper per-block service time, but the device only tracks a
//!    limited number of open streams ([`CostParams::seq_streams`]); with more
//!    concurrent writers the sequential bonus disappears, matching Fig. 1(b).
//! 4. **Repeated flushes to the same cacheline stall (~800 ns).** A flush
//!    that hits a cacheline flushed within the last
//!    [`CostParams::repeat_window_ns`] is delayed by
//!    [`CostParams::repeat_flush_stall_ns`], matching the "In-place" bar of
//!    Fig. 1(c). FlatStore's batch padding exists to avoid exactly this.
//!
//! The model is deliberately simple and fully deterministic: the `simkv`
//! discrete-event simulator feeds it the flush/read events that the *real*
//! data-structure code emitted and advances per-core virtual clocks with the
//! completion times it returns.

use std::collections::HashMap;

/// Calibration constants for the device model, in nanoseconds.
///
/// Defaults approximate the 4-DIMM Optane DCPMM platform of the paper; see
/// `EXPERIMENTS.md` for the calibration rationale. All fields are public so
/// experiments can explore other device points.
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// CPU-side cost of issuing one `clwb` (the instruction itself).
    pub flush_issue_ns: f64,
    /// Issue→durability latency for a flush whose block is part of a
    /// detected sequential stream (the write lands in an open buffer row).
    pub flush_latency_seq_ns: f64,
    /// Issue→durability latency for a random-block flush.
    pub flush_latency_rnd_ns: f64,
    /// Media service time per 256 B block for a sequential-successor write.
    pub media_seq_ns: f64,
    /// Media service time per 256 B block for a random write.
    pub media_rnd_ns: f64,
    /// Write-combining buffer capacity in 256 B blocks. Flushes to a block
    /// still in the buffer merge for free.
    pub xpbuffer_blocks: usize,
    /// How many concurrent sequential streams the device can track before
    /// sequential writes degrade to random service time.
    pub seq_streams: usize,
    /// Extra stall when a cacheline is flushed again within
    /// [`repeat_window_ns`](Self::repeat_window_ns).
    pub repeat_flush_stall_ns: f64,
    /// Window for the repeat-flush stall.
    pub repeat_window_ns: f64,
    /// Latency of a load served from PM media.
    pub read_latency_ns: f64,
    /// Additional per-byte read cost (bandwidth term).
    pub read_ns_per_byte: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            flush_issue_ns: 25.0,
            flush_latency_seq_ns: 40.0,
            flush_latency_rnd_ns: 150.0,
            media_seq_ns: 15.0,
            media_rnd_ns: 30.0,
            xpbuffer_blocks: 64,
            seq_streams: 20,
            repeat_flush_stall_ns: 800.0,
            repeat_window_ns: 900.0,
            read_latency_ns: 170.0,
            read_ns_per_byte: 0.05,
        }
    }
}

/// Packs a block's durability time and its sequential-stream flag into the
/// LRU's `u64` value slot (the low bit of the f64 mantissa is noise).
#[inline]
fn pack_block(done: f64, seq: bool) -> u64 {
    (done.to_bits() & !1) | seq as u64
}

#[inline]
fn unpack_block(v: u64) -> (f64, bool) {
    (f64::from_bits(v & !1), v & 1 == 1)
}

/// A tiny LRU set keyed by `u64`, sized for double-digit capacities.
///
/// Eviction scans all entries; capacities in this model are ≤ a few hundred,
/// so the scan is cheaper than a linked structure.
#[derive(Debug)]
struct LruMap {
    cap: usize,
    tick: u64,
    /// key -> (value, last-use tick)
    map: HashMap<u64, (u64, u64)>,
}

impl LruMap {
    fn new(cap: usize) -> Self {
        LruMap {
            cap: cap.max(1),
            tick: 0,
            map: HashMap::with_capacity(cap + 1),
        }
    }

    fn get(&mut self, key: u64) -> Option<u64> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|e| {
            e.1 = tick;
            e.0
        })
    }

    #[allow(dead_code)]
    fn contains_touch(&mut self, key: u64) -> bool {
        self.get(key).is_some()
    }

    fn insert(&mut self, key: u64, value: u64) {
        self.tick += 1;
        self.map.insert(key, (value, self.tick));
        if self.map.len() > self.cap {
            if let Some((&victim, _)) = self.map.iter().min_by_key(|(_, (_, t))| *t) {
                self.map.remove(&victim);
            }
        }
    }
}

/// Aggregate device activity, for utilization reporting.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DeviceStats {
    /// 256 B media block writes actually performed.
    pub media_writes: u64,
    /// Flushes merged into a still-buffered block (no media cost).
    pub merged_flushes: u64,
    /// Flushes that hit the repeat-flush stall.
    pub repeat_stalls: u64,
    /// Total media busy time in ns.
    pub media_busy_ns: f64,
}

impl DeviceStats {
    /// Appends these counters as rows of `section` (the shared
    /// [`obs::StatsReport`] vocabulary every layer reports in).
    pub fn fill_section(&self, section: &mut obs::Section) {
        section
            .row("media_writes", self.media_writes)
            .row("merged_flushes", self.merged_flushes)
            .row("repeat_stalls", self.repeat_stalls)
            .row("media_busy_ns", self.media_busy_ns);
    }
}

/// The shared device: a bandwidth server plus write-combining and
/// stream-tracking state.
///
/// One `Device` instance represents the whole PM subsystem and is shared by
/// every simulated core; its single `media_free_at` horizon is what makes
/// write bandwidth non-scalable.
///
/// # Example
///
/// ```
/// use pmem::cost::{CostParams, Device};
/// let mut dev = Device::new(CostParams::default());
/// // Four flushes to the same 256 B block: only the first pays for media.
/// let t0 = dev.flush(0.0, 0, 0);
/// let t1 = dev.flush(t0, 0, 1);
/// assert!(t1 - t0 < t0, "merged flush is cheaper than the first");
/// assert_eq!(dev.stats().media_writes, 1);
/// assert_eq!(dev.stats().merged_flushes, 1);
/// ```
#[derive(Debug)]
pub struct Device {
    params: CostParams,
    /// Outstanding media work (ns) not yet drained at `media_last_ns`.
    media_backlog_ns: f64,
    /// Latest time the backlog was drained to.
    media_last_ns: f64,
    xpbuffer: LruMap,
    stream_last_block: LruMap,
    line_last_flush: HashMap<u64, f64>,
    stats: DeviceStats,
}

impl Device {
    /// Creates a device with the given calibration.
    pub fn new(params: CostParams) -> Self {
        let xp = params.xpbuffer_blocks;
        let streams = params.seq_streams;
        Device {
            params,
            media_backlog_ns: 0.0,
            media_last_ns: 0.0,
            xpbuffer: LruMap::new(xp),
            stream_last_block: LruMap::new(streams),
            line_last_flush: HashMap::new(),
            stats: DeviceStats::default(),
        }
    }

    /// The calibration constants in use.
    pub fn params(&self) -> &CostParams {
        &self.params
    }

    /// Activity counters.
    pub fn stats(&self) -> DeviceStats {
        self.stats
    }

    /// Charges a flush of cacheline `line` issued by `stream` (a core id) at
    /// time `now`; returns the time at which the flushed data is durable.
    ///
    /// The issuing core does not block for this duration — it blocks at its
    /// next fence, for the max of its outstanding completions (see
    /// `simkv`).
    pub fn flush(&mut self, now: f64, stream: u64, line: u64) -> f64 {
        let block = line / 4; // 4 × 64 B cachelines per 256 B XPLine

        // Repeat-flush stall (Fig. 1c "In-place").
        let mut extra = 0.0;
        if let Some(&last) = self.line_last_flush.get(&line) {
            if now - last < self.params.repeat_window_ns {
                extra = self.params.repeat_flush_stall_ns;
                self.stats.repeat_stalls += 1;
            }
        }

        let completion = if let Some(v) = self.xpbuffer.get(block) {
            // Merged into the still-buffered block: no media work, but
            // durability cannot precede the block's media write.
            let (block_done, seq) = unpack_block(v);
            let lat = if seq {
                self.params.flush_latency_seq_ns
            } else {
                self.params.flush_latency_rnd_ns
            };
            self.stats.merged_flushes += 1;
            (now + lat).max(block_done) + extra
        } else {
            let seq = self.stream_last_block.get(stream) == Some(block.wrapping_sub(1));
            self.stream_last_block.insert(stream, block);
            let (service, lat) = if seq {
                (self.params.media_seq_ns, self.params.flush_latency_seq_ns)
            } else {
                (self.params.media_rnd_ns, self.params.flush_latency_rnd_ns)
            };
            // Leaky-bucket media queue: the backlog drains at media rate
            // as (virtual) time advances and every block write adds its
            // service time. Anchoring the delay to the caller's own clock
            // keeps the model causal for slightly out-of-order simulated
            // cores while still saturating at the media rate.
            let elapsed = (now - self.media_last_ns).max(0.0);
            self.media_last_ns = self.media_last_ns.max(now);
            self.media_backlog_ns = (self.media_backlog_ns - elapsed).max(0.0) + service;
            self.stats.media_writes += 1;
            self.stats.media_busy_ns += service;
            let done = now + self.media_backlog_ns + lat + extra;
            self.xpbuffer.insert(block, pack_block(done, seq));
            done
        };

        self.line_last_flush.insert(line, completion);
        if self.line_last_flush.len() > 1 << 16 {
            let horizon = now - self.params.repeat_window_ns;
            self.line_last_flush.retain(|_, t| *t >= horizon);
        }
        completion
    }

    /// Charges a PM load of `len` bytes at time `now`; returns its
    /// completion time. Reads do not occupy the write-bandwidth server
    /// (Optane read bandwidth is several times its write bandwidth).
    pub fn read(&mut self, now: f64, len: u32) -> f64 {
        now + self.params.read_latency_ns + self.params.read_ns_per_byte * len as f64
    }

    /// Fraction of wall time `[0, now]` the media spent writing.
    pub fn utilization(&self, now: f64) -> f64 {
        if now <= 0.0 {
            0.0
        } else {
            (self.stats.media_busy_ns / now).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Device {
        Device::new(CostParams::default())
    }

    #[test]
    fn flushes_within_one_block_merge() {
        let mut d = dev();
        let mut now = 0.0;
        for line in 0..4 {
            now = d.flush(now, 0, line);
        }
        assert_eq!(d.stats().media_writes, 1);
        assert_eq!(d.stats().merged_flushes, 3);
    }

    #[test]
    fn random_blocks_each_pay_media() {
        let mut d = dev();
        let mut now = 0.0;
        for i in 0..8 {
            now = d.flush(now, 0, i * 4_000 + 17);
        }
        assert_eq!(d.stats().media_writes, 8);
        assert_eq!(d.stats().merged_flushes, 0);
    }

    #[test]
    fn sequential_stream_is_faster_than_random() {
        let p = CostParams::default();
        // Sequential: blocks 0,1,2,... (lines 0,4,8,...)
        let mut ds = dev();
        let mut t_seq = 0.0;
        for b in 0..100u64 {
            t_seq = ds.flush(t_seq, 0, b * 4);
        }
        // Random: far-apart blocks.
        let mut dr = dev();
        let mut t_rnd = 0.0;
        for b in 0..100u64 {
            t_rnd = dr.flush(t_rnd, 0, (b * 7919 % 100_000) * 4);
        }
        assert!(t_seq < t_rnd, "seq {t_seq} !< rnd {t_rnd}");
        // The per-block gap approaches the service-time difference.
        assert!(t_rnd - t_seq > 50.0 * (p.media_rnd_ns - p.media_seq_ns));
    }

    #[test]
    fn many_streams_lose_the_sequential_bonus() {
        // One stream sequential: cheap. 64 interleaved sequential streams
        // with a 20-entry tracker: each stream's context is evicted between
        // its accesses, so writes are serviced as random.
        let mut d1 = dev();
        let mut t = 0.0;
        for b in 1..=200u64 {
            t = d1.flush(t, 0, b * 4);
        }
        let one_stream_media = d1.stats().media_busy_ns;

        let mut dn = dev();
        let mut t = 0.0;
        let streams = 64u64;
        for round in 1..=(200 / streams + 1) {
            for s in 0..streams {
                // Stream s writes its own sequential region, interleaved.
                let block = s * 1_000_000 + round;
                t = dn.flush(t, s, block * 4);
            }
        }
        let per_block_1 = one_stream_media / d1.stats().media_writes as f64;
        let per_block_n = dn.stats().media_busy_ns / dn.stats().media_writes as f64;
        assert!(per_block_1 < per_block_n);
        assert!((per_block_1 - CostParams::default().media_seq_ns).abs() < 1.0);
        assert!((per_block_n - CostParams::default().media_rnd_ns).abs() < 1.0);
    }

    #[test]
    fn repeat_flush_same_line_stalls() {
        let mut d = dev();
        let t1 = d.flush(0.0, 0, 42);
        let t2 = d.flush(t1, 0, 42);
        assert!(
            t2 - t1 >= CostParams::default().repeat_flush_stall_ns,
            "repeat flush not stalled: {} -> {}",
            t1,
            t2
        );
        assert_eq!(d.stats().repeat_stalls, 1);
        // After the window passes, no stall.
        let later = t2 + CostParams::default().repeat_window_ns + 1.0;
        let t3 = d.flush(later, 0, 42);
        assert!(t3 - later < CostParams::default().repeat_flush_stall_ns);
    }

    #[test]
    fn media_bandwidth_serializes_concurrent_flushes() {
        let mut d = dev();
        // Two cores issue at the same instant to different blocks: the second
        // completion is pushed back by the first's service time.
        let a = d.flush(0.0, 0, 0);
        let b = d.flush(0.0, 1, 4_000);
        assert!(b > a);
        let gap = b - a;
        assert!((gap - CostParams::default().media_rnd_ns).abs() < 1.0);
    }

    #[test]
    fn reads_scale_with_length() {
        let mut d = dev();
        let small = d.read(0.0, 64);
        let large = d.read(0.0, 4096);
        assert!(large > small);
        assert!(small >= CostParams::default().read_latency_ns);
    }

    #[test]
    fn utilization_bounded() {
        let mut d = dev();
        let mut t = 0.0;
        for i in 0..1000 {
            t = d.flush(t, 0, i * 8);
        }
        let u = d.utilization(t);
        assert!(u > 0.0 && u <= 1.0);
    }
}

#[cfg(test)]
mod probe_debug {
    use super::*;

    #[test]
    fn four_interleaved_seq_streams_get_seq_service() {
        let mut d = Device::new(CostParams::default());
        let mut clocks = [0.0f64; 4];
        for op in 0..50u64 {
            for s in 0..4u64 {
                let base_line = s * 100_000 + op * 4;
                let mut t = clocks[s as usize];
                let mut done = t;
                for l in 0..4 {
                    t += d.params().flush_issue_ns;
                    done = done.max(d.flush(t, s, base_line + l));
                }
                clocks[s as usize] = t.max(done);
            }
        }
        let per_block = d.stats().media_busy_ns / d.stats().media_writes as f64;
        assert!(
            (per_block - CostParams::default().media_seq_ns).abs() < 2.0,
            "expected seq service, got {per_block} ns/block"
        );
    }
}
