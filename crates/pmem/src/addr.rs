//! Addresses and hardware granularities.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// CPU cacheline size in bytes — the granularity of `clwb`-style flushes.
pub const CACHELINE: u64 = 64;

/// Optane DCPMM internal write granularity ("XPLine") in bytes.
///
/// Every media write, no matter how few bytes were actually dirtied, costs a
/// full 256 B internal write — the mismatch FlatStore's batching exploits.
pub const XPLINE: u64 = 256;

/// A byte offset into a [`PmRegion`](crate::PmRegion).
///
/// Persistent pointers stored *inside* PM must be position-independent, so
/// the whole reproduction addresses PM by offset rather than by virtual
/// address (real PM systems re-map the device at arbitrary addresses across
/// reboots).
///
/// # Example
///
/// ```
/// use pmem::{PmAddr, CACHELINE};
/// let a = PmAddr(100);
/// assert_eq!(a.align_down(CACHELINE), PmAddr(64));
/// assert_eq!(a.align_up(CACHELINE), PmAddr(128));
/// assert_eq!(a.cacheline(), 1);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PmAddr(pub u64);

impl PmAddr {
    /// The null / invalid address (offset 0 is reserved by convention).
    pub const NULL: PmAddr = PmAddr(0);

    /// Returns the raw byte offset.
    #[inline]
    pub fn offset(self) -> u64 {
        self.0
    }

    /// Rounds down to a multiple of `align` (must be a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> PmAddr {
        debug_assert!(align.is_power_of_two());
        PmAddr(self.0 & !(align - 1))
    }

    /// Rounds up to a multiple of `align` (must be a power of two).
    #[inline]
    pub fn align_up(self, align: u64) -> PmAddr {
        debug_assert!(align.is_power_of_two());
        PmAddr((self.0 + align - 1) & !(align - 1))
    }

    /// Is this address a multiple of `align`?
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        self.0.is_multiple_of(align)
    }

    /// Index of the 64 B cacheline containing this address.
    #[inline]
    pub fn cacheline(self) -> u64 {
        self.0 / CACHELINE
    }

    /// Index of the 256 B XPLine block containing this address.
    #[inline]
    pub fn xpline(self) -> u64 {
        self.0 / XPLINE
    }
}

impl fmt::Debug for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PmAddr({:#x})", self.0)
    }
}

impl fmt::Display for PmAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl Add<u64> for PmAddr {
    type Output = PmAddr;
    #[inline]
    fn add(self, rhs: u64) -> PmAddr {
        PmAddr(self.0 + rhs)
    }
}

impl AddAssign<u64> for PmAddr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<PmAddr> for PmAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: PmAddr) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for PmAddr {
    fn from(v: u64) -> Self {
        PmAddr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_round_trips() {
        for v in [0u64, 1, 63, 64, 65, 255, 256, 257, 4095] {
            let a = PmAddr(v);
            assert!(a.align_down(CACHELINE).0 <= v);
            assert!(a.align_up(CACHELINE).0 >= v);
            assert!(a.align_down(CACHELINE).is_aligned(CACHELINE));
            assert!(a.align_up(CACHELINE).is_aligned(CACHELINE));
            assert!(a.align_up(CACHELINE).0 - v < CACHELINE);
        }
    }

    #[test]
    fn line_and_block_indices() {
        assert_eq!(PmAddr(0).cacheline(), 0);
        assert_eq!(PmAddr(63).cacheline(), 0);
        assert_eq!(PmAddr(64).cacheline(), 1);
        assert_eq!(PmAddr(255).xpline(), 0);
        assert_eq!(PmAddr(256).xpline(), 1);
        // Four cachelines per XPLine.
        assert_eq!(PmAddr(64 * 4).xpline(), 1);
    }

    #[test]
    fn arithmetic() {
        let a = PmAddr(100) + 28;
        assert_eq!(a, PmAddr(128));
        assert_eq!(a - PmAddr(100), 28);
        let mut b = PmAddr(0);
        b += 7;
        assert_eq!(b.offset(), 7);
    }
}
