//! Persistence-operation counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// Counters of every persistence-relevant operation performed on a
/// [`PmRegion`](crate::PmRegion).
///
/// The FlatStore paper's central argument is about the *count* of flushes a
/// KV store issues per operation; these counters let tests assert that, e.g.,
/// a batched append of 16 log entries flushes 4 cachelines and not 16.
///
/// All counters are monotonically increasing and safe to read concurrently.
///
/// # Example
///
/// ```
/// use pmem::{PmRegion, PmAddr};
/// let pm = PmRegion::new(4096);
/// pm.write(PmAddr(0), &[1u8; 128]);
/// pm.flush(PmAddr(0), 128);
/// pm.fence();
/// let s = pm.stats().snapshot();
/// assert_eq!(s.flushes, 2); // 128 B spans two cachelines
/// assert_eq!(s.fences, 1);
/// ```
#[derive(Debug, Default)]
pub struct PmStats {
    writes: AtomicU64,
    bytes_written: AtomicU64,
    reads: AtomicU64,
    bytes_read: AtomicU64,
    flushes: AtomicU64,
    redundant_flushes: AtomicU64,
    fences: AtomicU64,
}

impl PmStats {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub(crate) fn record_write(&self, bytes: u64) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_read(&self, bytes: u64) {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn record_flush(&self, redundant: bool) {
        self.flushes.fetch_add(1, Ordering::Relaxed);
        if redundant {
            self.redundant_flushes.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(crate) fn record_fence(&self) {
        self.fences.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of cacheline flush operations issued so far.
    pub fn flushes(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    /// Number of fences issued so far.
    pub fn fences(&self) -> u64 {
        self.fences.load(Ordering::Relaxed)
    }

    /// Total bytes passed to `write`.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough point-in-time copy of all counters.
    pub fn snapshot(&self) -> PmStatsSnapshot {
        PmStatsSnapshot {
            writes: self.writes.load(Ordering::Relaxed),
            bytes_written: self.bytes_written.load(Ordering::Relaxed),
            reads: self.reads.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
            flushes: self.flushes.load(Ordering::Relaxed),
            redundant_flushes: self.redundant_flushes.load(Ordering::Relaxed),
            fences: self.fences.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`PmStats`], suitable for diffing around an
/// operation under test.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PmStatsSnapshot {
    /// Number of `write` calls.
    pub writes: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Number of `read` calls.
    pub reads: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Number of cacheline flushes.
    pub flushes: u64,
    /// Flushes of cachelines that were not dirty (wasted work).
    pub redundant_flushes: u64,
    /// Number of fences.
    pub fences: u64,
}

/// Regression budget for [`PmStatsSnapshot::redundant_flush_ratio`] on the
/// standard engine workload (mixed inline/out-of-place puts, gets and
/// deletes driven through the session path).
///
/// FlatStore's design goal is that every issued `clwb` does useful work:
/// batches are cacheline-padded so adjacent batches never re-flush a shared
/// line, and the lazy-persist allocator keeps bitmap flushes off the hot
/// path. A rising ratio means some path started flushing clean lines —
/// wasted PM bandwidth and, on real hardware, the ~800 ns repeat-flush
/// stall. The engine regression test
/// (`flatstore/tests/flush_budget.rs`) fails if the workload ratio ever
/// exceeds this budget; `pmcheck` additionally reports each individual
/// redundant flush as a `Violation` in strict mode.
///
/// The observed ratio on the standard workload is ~0 (every flush follows
/// a store to the same line); 2% leaves headroom for benign layout changes
/// without letting a systematic regression through.
pub const REDUNDANT_FLUSH_BUDGET: f64 = 0.02;

impl PmStatsSnapshot {
    /// Difference `self - earlier`, counter by counter.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is not actually earlier.
    pub fn delta(&self, earlier: &PmStatsSnapshot) -> PmStatsSnapshot {
        PmStatsSnapshot {
            writes: self.writes - earlier.writes,
            bytes_written: self.bytes_written - earlier.bytes_written,
            reads: self.reads - earlier.reads,
            bytes_read: self.bytes_read - earlier.bytes_read,
            flushes: self.flushes - earlier.flushes,
            redundant_flushes: self.redundant_flushes - earlier.redundant_flushes,
            fences: self.fences - earlier.fences,
        }
    }

    /// Fraction of flushes that targeted clean cachelines (wasted work);
    /// 0 when no flush was issued.
    pub fn redundant_flush_ratio(&self) -> f64 {
        if self.flushes == 0 {
            0.0
        } else {
            self.redundant_flushes as f64 / self.flushes as f64
        }
    }

    /// Appends these counters as rows of `section` (the shared
    /// [`obs::StatsReport`] vocabulary every layer reports in).
    pub fn fill_section(&self, section: &mut obs::Section) {
        section
            .row("writes", self.writes)
            .row("bytes_written", self.bytes_written)
            .row("reads", self.reads)
            .row("bytes_read", self.bytes_read)
            .row("flushes", self.flushes)
            .row("redundant_flushes", self.redundant_flushes)
            .row("redundant_flush_ratio", self.redundant_flush_ratio())
            .row("fences", self.fences);
    }
}

impl std::fmt::Display for PmStatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut report = obs::StatsReport::new("pm");
        self.fill_section(report.section("pm"));
        report.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_delta() {
        let s = PmStats::new();
        s.record_write(10);
        s.record_flush(false);
        let a = s.snapshot();
        s.record_write(5);
        s.record_flush(true);
        s.record_fence();
        let b = s.snapshot();
        let d = b.delta(&a);
        assert_eq!(d.writes, 1);
        assert_eq!(d.bytes_written, 5);
        assert_eq!(d.flushes, 1);
        assert_eq!(d.redundant_flushes, 1);
        assert_eq!(d.fences, 1);
    }

    #[test]
    fn display_and_report_rows() {
        let s = PmStats::new();
        s.record_flush(false);
        s.record_flush(false);
        s.record_flush(true);
        s.record_fence();
        let snap = s.snapshot();
        assert!((snap.redundant_flush_ratio() - 1.0 / 3.0).abs() < 1e-12);
        let text = snap.to_string();
        assert!(text.contains("[pm]"));
        assert!(text.contains("redundant_flush_ratio"));
        let mut report = obs::StatsReport::new("t");
        snap.fill_section(report.section("pm"));
        assert_eq!(report.get("pm", "flushes"), Some(&obs::Value::U64(3)));
    }
}
