//! Event tracing for the discrete-event cost model.

/// A single persistence-relevant hardware event emitted by a
/// [`PmRegion`](crate::PmRegion) with tracing enabled.
///
/// The `simkv` discrete-event simulator runs the *real* data-structure code
/// against a traced region, drains the events the operation emitted, and
/// charges each one to simulated time through [`cost::Device`](crate::cost::Device).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PmEvent {
    /// A store of `len` bytes at byte offset `addr`.
    Write {
        /// Byte offset of the store.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// A `clwb`-style flush of the 64 B cacheline with index `line`.
    Flush {
        /// Cacheline index (byte offset / 64).
        line: u64,
    },
    /// An `sfence`-style ordering fence.
    Fence,
    /// A load of `len` bytes at byte offset `addr` (used to charge PM read
    /// latency for Get paths that touch the device).
    Read {
        /// Byte offset of the load.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// A durability commit point emitted by
    /// [`PmRegion::commit_point`](crate::PmRegion::commit_point): the
    /// caller asserts that everything it wrote so far is persistent (e.g.
    /// the operation log just persisted its tail pointer, or the engine
    /// just published a checkpoint). `pmcheck` verifies the claim: every
    /// store issued before a commit point must have been flushed **and**
    /// fenced by the time the marker appears in the stream.
    ///
    /// `epoch` is a monotonically increasing marker index (1-based), so
    /// violations can name the durability epoch they fall into.
    CommitPoint {
        /// 1-based index of this commit point within the region's trace.
        epoch: u64,
    },
}
